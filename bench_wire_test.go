package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/wire"
)

// benchCellResult builds a representative stored cell: aggregate counts
// plus a full per-injection detail stream, the shape a Detail campaign
// persists.
func benchCellResult(n int) *finject.Result {
	res := &finject.Result{Injections: n, Occupancy: 0.42}
	res.Outcomes[gpu.OutcomeMasked] = n - n/8 - n/16
	res.Outcomes[gpu.OutcomeSDC] = n / 8
	res.Outcomes[gpu.OutcomeDUE] = n / 16
	res.GoldenStats = gpu.RunStats{Cycles: 123456, Instructions: 98765, LaneInstructions: 3456789, Launches: 2}
	res.Records = make([]finject.Record, n)
	for i := range res.Records {
		res.Records[i] = finject.Record{
			Fault: gpu.Fault{
				Structure: gpu.RegisterFile, Unit: i % 16, Entry: i % 4096,
				Bit: uint(i % 32), Cycle: int64(100 * i),
			},
			Outcome:      gpu.Outcome(i % int(gpu.NumOutcomes)),
			CorruptBytes: (i % 7) * 4,
		}
	}
	return res
}

// benchSeedStores writes the same cells to a JSON-lines and a binary
// store, returning both paths.
func benchSeedStores(b *testing.B, dir string, cells, perCell int) (jsonPath, binPath string) {
	b.Helper()
	jsonPath = filepath.Join(dir, "cells.jsonl")
	binPath = filepath.Join(dir, "cells.store")
	for _, tc := range []struct{ path, format string }{
		{jsonPath, campaign.FormatJSON},
		{binPath, campaign.FormatBinary},
	} {
		st, err := campaign.OpenStore(tc.path, tc.format)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < cells; i++ {
			key := campaign.CellSpec{Chip: "Mini NVIDIA", Benchmark: "matrixMul", Seed: uint64(i)}.Key()
			if err := st.Put(key, benchCellResult(perCell)); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
	return jsonPath, binPath
}

// BenchmarkWireEncodeDecode measures the wire codec round trip for one
// detailed cell result — the per-Put and per-open unit of work of the
// binary store.
func BenchmarkWireEncodeDecode(b *testing.B) {
	res := benchCellResult(400)
	var frame []byte
	for i := 0; i < b.N; i++ {
		var w wire.Writer
		finject.EncodeResult(&w, res)
		frame = w.Bytes()
		got, err := finject.DecodeResult(wire.NewReader(frame))
		if err != nil {
			b.Fatal(err)
		}
		if got.Injections != res.Injections || len(got.Records) != len(res.Records) {
			b.Fatal("round trip lost data")
		}
	}
	b.SetBytes(int64(len(frame)))
}

// BenchmarkBinaryStoreOpen contrasts cold-opening (index rebuild) of the
// two store formats over identical contents, and reports their on-disk
// sizes — the axis the wire format exists to win.
func BenchmarkBinaryStoreOpen(b *testing.B) {
	dir := b.TempDir()
	jsonPath, binPath := benchSeedStores(b, dir, 40, 400)
	js, err := os.Stat(jsonPath)
	if err != nil {
		b.Fatal(err)
	}
	bs, err := os.Stat(binPath)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("on-disk: json %d bytes, binary %d bytes (%.2fx smaller)",
		js.Size(), bs.Size(), float64(js.Size())/float64(bs.Size()))

	for _, tc := range []struct{ name, path string }{
		{"json", jsonPath},
		{"binary", binPath},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cells int
			for i := 0; i < b.N; i++ {
				st, err := campaign.OpenStore(tc.path, campaign.FormatAuto)
				if err != nil {
					b.Fatal(err)
				}
				cells = st.Len()
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
			if cells != 40 {
				b.Fatalf("store holds %d cells, want 40", cells)
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}
