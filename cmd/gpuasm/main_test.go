package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sassKernel = ".kernel k\n    S2R R0, SR_TID.X\n    EXIT\n"
const siKernel = ".kernel k\n    s_endpgm\n"

func TestRunSASSFromStdin(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-"}, strings.NewReader(sassKernel), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kernel        k", "instructions  2"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSIFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.s")
	if err := os.WriteFile(path, []byte(siKernel), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if err := run([]string{"-dialect", "si", "-dis", path}, nil, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "s_endpgm") {
		t.Fatalf("disassembly missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, tc := range []struct {
		args  []string
		stdin string
	}{
		{[]string{"-no-such-flag"}, ""},
		{[]string{}, ""},                                 // no input file
		{[]string{"-dialect", "arm", "-"}, sassKernel},   // unknown dialect
		{[]string{"/no/such/file.sass"}, ""},             // unreadable file
		{[]string{"-"}, "BOGUS_OPCODE R0\n"},             // parse error
		{[]string{"-dialect", "si", "-"}, "v_nope v0\n"}, // parse error
	} {
		var out, errOut strings.Builder
		if err := run(tc.args, strings.NewReader(tc.stdin), &out, &errOut); err == nil {
			t.Errorf("args %v accepted", tc.args)
		}
	}
}
