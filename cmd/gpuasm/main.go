// Command gpuasm assembles and inspects kernels in the two ISA dialects
// used by the reproduction: the SASS-like NVIDIA dialect and the SI-like
// AMD dialect. It reports the resource footprint that drives occupancy
// (registers per thread, local memory per group, kernel parameters) and
// can dump the resolved instruction stream.
//
//	gpuasm -dialect sass  kernel.sass
//	gpuasm -dialect si -dis kernel.s
//	echo '.kernel k
//	EXIT' | gpuasm -dialect sass -
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/sass"
	"repro/internal/siasm"
)

// errUsage marks argument errors the FlagSet has already reported on
// stderr; main exits non-zero without printing them again.
var errUsage = errors.New("usage error")

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "gpuasm: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main's testable core.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gpuasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dialect = fs.String("dialect", "sass", "ISA dialect: sass (NVIDIA) or si (AMD)")
		dis     = fs.Bool("dis", false, "dump the resolved instruction stream")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem on stderr.
		return errUsage
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gpuasm [-dialect sass|si] [-dis] <file|->")
	}

	var src []byte
	var err error
	if fs.Arg(0) == "-" {
		src, err = io.ReadAll(stdin)
	} else {
		src, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}

	switch *dialect {
	case "sass":
		p, err := sass.Assemble(string(src))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "kernel        %s\n", p.Name)
		fmt.Fprintf(stdout, "instructions  %d\n", len(p.Instrs))
		fmt.Fprintf(stdout, "regs/thread   %d\n", p.NumRegs)
		fmt.Fprintf(stdout, "shared bytes  %d\n", p.SharedBytes)
		fmt.Fprintf(stdout, "params        %d\n", p.NumParams)
		if *dis {
			fmt.Fprint(stdout, p.Disassemble())
		}
	case "si":
		p, err := siasm.Assemble(string(src))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "kernel        %s\n", p.Name)
		fmt.Fprintf(stdout, "instructions  %d\n", len(p.Instrs))
		fmt.Fprintf(stdout, "vgprs/item    %d\n", p.NumVGPRs)
		fmt.Fprintf(stdout, "sgprs/wave    %d\n", p.NumSGPRs)
		fmt.Fprintf(stdout, "lds bytes     %d\n", p.LDSBytes)
		fmt.Fprintf(stdout, "kernargs      %d\n", p.NumKArgs)
		if *dis {
			fmt.Fprint(stdout, p.Disassemble())
		}
	default:
		return fmt.Errorf("unknown dialect %q (want sass or si)", *dialect)
	}
	return nil
}
