// Command gpuasm assembles and inspects kernels in the two ISA dialects
// used by the reproduction: the SASS-like NVIDIA dialect and the SI-like
// AMD dialect. It reports the resource footprint that drives occupancy
// (registers per thread, local memory per group, kernel parameters) and
// can dump the resolved instruction stream.
//
//	gpuasm -dialect sass  kernel.sass
//	gpuasm -dialect si -dis kernel.s
//	echo '.kernel k
//	EXIT' | gpuasm -dialect sass -
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/sass"
	"repro/internal/siasm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpuasm: ")
	var (
		dialect = flag.String("dialect", "sass", "ISA dialect: sass (NVIDIA) or si (AMD)")
		dis     = flag.Bool("dis", false, "dump the resolved instruction stream")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: gpuasm [-dialect sass|si] [-dis] <file|->")
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		log.Fatal(err)
	}

	switch *dialect {
	case "sass":
		p, err := sass.Assemble(string(src))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kernel        %s\n", p.Name)
		fmt.Printf("instructions  %d\n", len(p.Instrs))
		fmt.Printf("regs/thread   %d\n", p.NumRegs)
		fmt.Printf("shared bytes  %d\n", p.SharedBytes)
		fmt.Printf("params        %d\n", p.NumParams)
		if *dis {
			fmt.Print(p.Disassemble())
		}
	case "si":
		p, err := siasm.Assemble(string(src))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kernel        %s\n", p.Name)
		fmt.Printf("instructions  %d\n", len(p.Instrs))
		fmt.Printf("vgprs/item    %d\n", p.NumVGPRs)
		fmt.Printf("sgprs/wave    %d\n", p.NumSGPRs)
		fmt.Printf("lds bytes     %d\n", p.LDSBytes)
		fmt.Printf("kernargs      %d\n", p.NumKArgs)
		if *dis {
			fmt.Print(p.Disassemble())
		}
	default:
		log.Fatalf("unknown dialect %q (want sass or si)", *dialect)
	}
}
