// Command figures regenerates the paper's evaluation figures end to end:
//
//	figures -fig 1            register-file AVF (FI + ACE + occupancy)
//	figures -fig 2            local-memory AVF (7 shared-memory benchmarks)
//	figures -fig 3            EPF (executions per failure, both structures)
//	figures -fig all          everything
//
// Beyond the canned figures, any declarative experiment spec runs the
// same way:
//
//	figures -spec sweep.json                 run a spec locally
//	figures -spec sweep.json -n 100          ...with a reduced budget
//	figures -spec sweep.json -server http://host:8080
//	                                         ...on a fiserver, streamed
//
// The figure flags (-fig, -chips, -bench, ...) are themselves compiled
// into specs internally — a figure run and the equivalent spec run are
// the same code path and produce byte-identical output.
//
// Useful knobs: -n (injections per campaign; the paper uses 2000, and it
// becomes the cap when -margin is set), -margin/-confidence (adaptive
// sampling: stop each campaign once its AVF interval is tight enough),
// -checkpoint (fast-forward injections through golden snapshots: auto,
// off, or a cycle interval; results are byte-identical either way),
// -workers, -seed, -bench (comma-separated subset), -chips
// (comma-separated subset), -store (persistent result cache; warm reruns
// perform zero injections).
//
// All figures of one invocation share a campaign scheduler, so Fig. 3
// reuses every cell Figs. 1 and 2 already measured.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/cli"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/finject"
	"repro/internal/report"
	"repro/internal/workloads"
)

// errUsage marks argument errors the FlagSet has already reported on
// stderr; main exits non-zero without printing them again.
var errUsage = errors.New("usage error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main's testable core: it parses args, runs the requested
// figures and writes tables (or JSON) to stdout and progress notes to
// stderr.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig       = fs.String("fig", "all", "figure to regenerate: 1, 2, 3 or all")
		seed      = fs.Uint64("seed", 1, "campaign seed")
		benches   = fs.String("bench", "", "comma-separated benchmark subset (default: figure-appropriate suite)")
		chipSel   = fs.String("chips", "", "comma-separated chip subset (default: the paper's four)")
		storePath = fs.String("store", "", "result store path (in-memory only when empty)")
		storeFmt  = fs.String("store-format", campaign.FormatAuto, "store file format: auto (sniff existing files, JSON for new), json, or binary")
		ladderDir = fs.String("ladder-dir", "", "directory for persisted checkpoint ladders, shared read-only (mmap) across processes")
		asJSON    = fs.Bool("json", false, "emit figures as JSON instead of tables")
		specPath  = fs.String("spec", "", "run this experiment spec (JSON) instead of a canned figure")
		serverURL = fs.String("server", "", "with -spec: run on this fiserver (POST /v1/experiments) instead of locally")
	)
	pf := cli.AddPolicyFlags(fs)
	obs := cli.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem on stderr.
		return errUsage
	}
	// Tables and JSON go to stdout; progress is structured logging on
	// stderr, so piped output stays parseable.
	log, closeTrace := obs.Init(stderr, slog.LevelDebug)
	defer func() {
		if terr := closeTrace(); terr != nil {
			fmt.Fprintf(stderr, "figures: %v\n", terr)
		}
	}()

	if err := pf.Validate(); err != nil {
		return err
	}
	if *ladderDir != "" {
		if err := os.MkdirAll(*ladderDir, 0o755); err != nil {
			return fmt.Errorf("-ladder-dir: %w", err)
		}
		finject.SetLadderDir(*ladderDir)
	}

	if *specPath != "" {
		if *serverURL != "" && (*storePath != "" || pf.Workers != 0) {
			return errors.New("-store and -workers are local-only: with -server the fiserver owns its store and worker pool")
		}
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		spec, err := experiment.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		// Explicitly set campaign flags override the spec, so CI and
		// quick local runs can shrink a committed spec without editing
		// it; the grid axes always come from the file.
		fs.Visit(func(fl *flag.Flag) {
			if pf.Override(fl.Name, &spec) {
				return
			}
			if fl.Name == "seed" {
				spec.Seed = *seed
			}
		})
		return runSpec(ctx, spec, *serverURL, *storePath, *storeFmt, pf.Workers, *asJSON, stdout, log)
	}
	if *serverURL != "" {
		return errors.New("-server needs -spec (the canned figures run locally)")
	}

	var store campaign.Store
	if *storePath != "" {
		ds, err := campaign.OpenStore(*storePath, *storeFmt)
		if err != nil {
			return err
		}
		defer ds.Close()
		log.Info("store opened", "path", ds.Path(), "cells", ds.Len())
		store = ds
	}
	sched := campaign.New(campaign.Config{Store: store, CampaignWorkers: pf.Workers})
	opts := core.Options{
		Injections: pf.N, Seed: *seed, Workers: pf.Workers,
		Confidence: pf.Confidence, Margin: pf.Margin, Checkpoint: pf.Checkpoint(), Scheduler: sched,
	}
	if *chipSel != "" {
		for _, name := range strings.Split(*chipSel, ",") {
			c, err := chips.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Chips = append(opts.Chips, c)
		}
	}
	if *benches != "" {
		for _, name := range strings.Split(*benches, ",") {
			b, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}

	run1 := *fig == "1" || *fig == "all"
	run2 := *fig == "2" || *fig == "all"
	run3 := *fig == "3" || *fig == "all"
	if !run1 && !run2 && !run3 {
		return fmt.Errorf("unknown figure %q (want 1, 2, 3 or all)", *fig)
	}

	if run1 {
		start := time.Now()
		f, err := core.FigureRegisterFileContext(ctx, opts)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Fig. 1 — Register File AVF (FI + ACE), %d injections/campaign", opts.Injections)
		if err := writeFigure(stdout, f, title, *asJSON); err != nil {
			return err
		}
		wallTime(stdout, log, *asJSON, "fig 1", start)
	}
	if run2 {
		start := time.Now()
		f, err := core.FigureLocalMemoryContext(ctx, opts)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Fig. 2 — Local Memory AVF (FI + ACE), %d injections/campaign", opts.Injections)
		if err := writeFigure(stdout, f, title, *asJSON); err != nil {
			return err
		}
		wallTime(stdout, log, *asJSON, "fig 2", start)
	}
	if run3 {
		start := time.Now()
		f, err := core.FigureEPFContext(ctx, opts)
		if err != nil {
			return err
		}
		title := "Fig. 3 — Executions per Failure (EPF)"
		var werr error
		if *asJSON {
			werr = report.WriteEPFJSON(stdout, f, title)
		} else {
			werr = report.WriteEPF(stdout, f, title)
		}
		if werr != nil {
			return werr
		}
		wallTime(stdout, log, *asJSON, "fig 3", start)
	}
	st := sched.Stats()
	log.Info("campaigns done",
		"runs", st.Runs, "injections", st.Injections,
		"cached", st.Hits+st.Joins, "upgraded", st.Upgrades, "goldens", st.GoldenRuns)
	return nil
}

// writeFigure renders an AVF figure as a table or as JSON.
func writeFigure(w io.Writer, f *core.Figure, title string, asJSON bool) error {
	if asJSON {
		return report.WriteFigureJSON(w, f, title)
	}
	return report.WriteFigure(w, f, title)
}

// runSpec executes one declarative experiment spec — locally over a
// scheduler (honoring -store and -workers) or on a fiserver via the
// shared client — and renders the result as tables or JSON.
func runSpec(ctx context.Context, spec experiment.Spec, serverURL, storePath, storeFormat string, workers int, asJSON bool, stdout io.Writer, log *slog.Logger) error {
	start := time.Now()
	var res *experiment.Result
	if serverURL != "" {
		cl := &client.Client{Base: serverURL}
		var err error
		res, err = cl.RunExperiment(ctx, spec, func(ev client.Event) {
			switch ev.Event {
			case "job":
				log.Info("experiment accepted", "name", ev.Name, "job", ev.ID, "cells", ev.Total)
			case "cell":
				log.Info("cell done", "done", ev.Done, "total", ev.Total,
					"chip", ev.Chip, "benchmark", ev.Benchmark, "structure", ev.Structure, "cached", ev.Cached)
			}
		})
		if err != nil {
			return err
		}
	} else {
		var store campaign.Store
		if storePath != "" {
			ds, err := campaign.OpenStore(storePath, storeFormat)
			if err != nil {
				return err
			}
			defer ds.Close()
			log.Info("store opened", "path", ds.Path(), "cells", ds.Len())
			store = ds
		}
		sched := campaign.New(campaign.Config{Store: store, CampaignWorkers: workers})
		runner := &experiment.Runner{
			Scheduler: sched,
			OnCell: func(p experiment.Progress) {
				log.Info("cell done", "done", p.Done, "total", p.Total,
					"cell", p.Spec.String(), "cached", p.Cached)
			},
		}
		var err error
		res, err = runner.Run(ctx, spec)
		if err != nil {
			return err
		}
		st := sched.Stats()
		defer log.Info("campaigns done",
			"runs", st.Runs, "injections", st.Injections,
			"cached", st.Hits+st.Joins, "goldens", st.GoldenRuns)
	}
	if asJSON {
		if err := report.WriteExperimentJSON(stdout, res); err != nil {
			return err
		}
	} else {
		if err := report.WriteExperiment(stdout, res); err != nil {
			return err
		}
	}
	wallTime(stdout, log, asJSON, "spec", start)
	return nil
}

// wallTime reports a phase's wall-clock time: appended to the tables in
// human mode, routed to the structured log under -json so the machine
// output stays a comparable JSON document (the store-format CI smoke
// diffs it byte for byte).
func wallTime(stdout io.Writer, log *slog.Logger, asJSON bool, phase string, start time.Time) {
	d := time.Since(start).Round(time.Millisecond)
	if asJSON {
		log.Info("phase done", "phase", phase, "wall", d.String())
		return
	}
	fmt.Fprintf(stdout, "\n(%s wall time: %v)\n\n", phase, d)
}
