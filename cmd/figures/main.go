// Command figures regenerates the paper's evaluation figures end to end:
//
//	figures -fig 1            register-file AVF (FI + ACE + occupancy)
//	figures -fig 2            local-memory AVF (7 shared-memory benchmarks)
//	figures -fig 3            EPF (executions per failure, both structures)
//	figures -fig all          everything
//
// Useful knobs: -n (injections per campaign; the paper uses 2000),
// -seed, -bench (comma-separated subset), -chips (comma-separated subset),
// -store (persistent result cache; warm reruns perform zero injections).
//
// All figures of one invocation share a campaign scheduler, so Fig. 3
// reuses every cell Figs. 1 and 2 already measured.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/finject"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 1, 2, 3 or all")
		n         = flag.Int("n", finject.DefaultInjections, "fault injections per campaign")
		seed      = flag.Uint64("seed", 1, "campaign seed")
		benches   = flag.String("bench", "", "comma-separated benchmark subset (default: figure-appropriate suite)")
		chipSel   = flag.String("chips", "", "comma-separated chip subset (default: the paper's four)")
		workers   = flag.Int("workers", 0, "parallel simulations per campaign (default GOMAXPROCS)")
		storePath = flag.String("store", "", "JSON-lines result store path (in-memory only when empty)")
		asJSON    = flag.Bool("json", false, "emit figures as JSON instead of tables")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var store campaign.Store
	if *storePath != "" {
		ds, err := campaign.OpenDiskStore(*storePath)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		log.Printf("store %s: %d cells", ds.Path(), ds.Len())
		store = ds
	}
	sched := campaign.New(campaign.Config{Store: store, CampaignWorkers: *workers})
	opts := core.Options{Injections: *n, Seed: *seed, Workers: *workers, Scheduler: sched}
	if *chipSel != "" {
		for _, name := range strings.Split(*chipSel, ",") {
			c, err := chips.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			opts.Chips = append(opts.Chips, c)
		}
	}
	if *benches != "" {
		for _, name := range strings.Split(*benches, ",") {
			b, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}

	run1 := *fig == "1" || *fig == "all"
	run2 := *fig == "2" || *fig == "all"
	run3 := *fig == "3" || *fig == "all"
	if !run1 && !run2 && !run3 {
		log.Fatalf("unknown figure %q (want 1, 2, 3 or all)", *fig)
	}

	if run1 {
		start := time.Now()
		f, err := core.FigureRegisterFileContext(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Fig. 1 — Register File AVF (FI + ACE), %d injections/campaign", opts.Injections)
		if err := writeFigure(f, title, *asJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n(fig 1 wall time: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if run2 {
		start := time.Now()
		f, err := core.FigureLocalMemoryContext(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Fig. 2 — Local Memory AVF (FI + ACE), %d injections/campaign", opts.Injections)
		if err := writeFigure(f, title, *asJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n(fig 2 wall time: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if run3 {
		start := time.Now()
		f, err := core.FigureEPFContext(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		title := "Fig. 3 — Executions per Failure (EPF)"
		var werr error
		if *asJSON {
			werr = report.WriteEPFJSON(os.Stdout, f, title)
		} else {
			werr = report.WriteEPF(os.Stdout, f, title)
		}
		if werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("\n(fig 3 wall time: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	st := sched.Stats()
	log.Printf("campaigns: %d executed, %d served from store, %d goldens", st.Runs, st.Hits+st.Joins, st.GoldenRuns)
}

// writeFigure renders an AVF figure as a table or as JSON.
func writeFigure(f *core.Figure, title string, asJSON bool) error {
	if asJSON {
		return report.WriteFigureJSON(os.Stdout, f, title)
	}
	return report.WriteFigure(os.Stdout, f, title)
}
