package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTinyFigure(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-fig", "1", "-chips", "Mini NVIDIA", "-bench", "vectoradd", "-n", "20", "-seed", "5"}
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 1") || !strings.Contains(out.String(), "vectoradd") {
		t.Fatalf("figure output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "campaigns: 1 executed") {
		t.Fatalf("campaign summary missing:\n%s", errOut.String())
	}
}

func TestRunTinyFigureJSON(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-fig", "2", "-chips", "Mini AMD", "-bench", "reduction", "-n", "20", "-json"}
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	// The JSON document comes first; the wall-time note follows it.
	var doc map[string]any
	if err := json.NewDecoder(strings.NewReader(out.String())).Decode(&doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc["structure"] != "local-memory" {
		t.Fatalf("figure document: %v", doc)
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-fig", "9"},
		{"-chips", "No Such GPU"},
		{"-bench", "nope"},
		{"-margin", "1.5"},
		{"-confidence", "0"},
	} {
		var out, errOut strings.Builder
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(errOut.String(), "-fig") {
		t.Fatalf("usage text missing:\n%s", errOut.String())
	}
}
