package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/service"
)

func TestRunTinyFigure(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-fig", "1", "-chips", "Mini NVIDIA", "-bench", "vectoradd", "-n", "20", "-seed", "5"}
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 1") || !strings.Contains(out.String(), "vectoradd") {
		t.Fatalf("figure output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), `msg="campaigns done" runs=1`) {
		t.Fatalf("campaign summary missing:\n%s", errOut.String())
	}
}

func TestRunTinyFigureJSON(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-fig", "2", "-chips", "Mini AMD", "-bench", "reduction", "-n", "20", "-json"}
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	// The JSON document comes first; the wall-time note follows it.
	var doc map[string]any
	if err := json.NewDecoder(strings.NewReader(out.String())).Decode(&doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc["structure"] != "local-memory" {
		t.Fatalf("figure document: %v", doc)
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-fig", "9"},
		{"-chips", "No Such GPU"},
		{"-bench", "nope"},
		{"-margin", "1.5"},
		{"-confidence", "0"},
	} {
		var out, errOut strings.Builder
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(errOut.String(), "-fig") {
		t.Fatalf("usage text missing:\n%s", errOut.String())
	}
}

// writeMiniSpec writes a small experiment spec to a temp file.
func writeMiniSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const miniProtectionSpec = `{
	"version": 1,
	"name": "mini-protection",
	"chips": ["Mini NVIDIA"],
	"benchmarks": ["matrixMul"],
	"structures": ["register-file", "local-memory"],
	"estimator": "fi",
	"injections": 200,
	"seed": 31,
	"metrics": {
		"epf": true,
		"protection": [
			{"name": "unprotected"},
			{"name": "parity-rf", "schemes": [{"structure": "register-file", "scheme": "parity"}]}
		]
	}
}`

// TestRunSpecFile: the protection what-if sweep — a scenario the figure
// flags cannot express — runs from a JSON spec via -spec, and explicit
// campaign flags override the file.
func TestRunSpecFile(t *testing.T) {
	path := writeMiniSpec(t, miniProtectionSpec)
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-n", "40"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"mini-protection", "Executions per Failure", "protection what-ifs", "unprotected", "parity-rf", "40 injections/campaign"} {
		if !strings.Contains(text, want) {
			t.Fatalf("spec output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errOut.String(), `msg="cell done" done=2 total=2`) {
		t.Fatalf("progress lines missing:\n%s", errOut.String())
	}
}

func TestRunSpecFileJSON(t *testing.T) {
	path := writeMiniSpec(t, miniProtectionSpec)
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-n", "30", "-json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spec struct {
			Name       string `json:"name"`
			Injections int    `json:"injections"`
		} `json:"spec"`
		Tables     []json.RawMessage `json:"tables"`
		Protection []json.RawMessage `json:"protection"`
	}
	if err := json.NewDecoder(strings.NewReader(out.String())).Decode(&doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc.Spec.Name != "mini-protection" || doc.Spec.Injections != 30 {
		t.Fatalf("spec echo wrong: %+v", doc.Spec)
	}
	if len(doc.Tables) != 2 || len(doc.Protection) != 2 {
		t.Fatalf("result shape: %d tables, %d protection rows", len(doc.Tables), len(doc.Protection))
	}
}

// TestRunSpecOnServer drives -spec -server against a live fiserver.
func TestRunSpecOnServer(t *testing.T) {
	sched := campaign.New(campaign.Config{})
	ts := httptest.NewServer(service.NewServer(sched))
	defer ts.Close()

	path := writeMiniSpec(t, miniProtectionSpec)
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-n", "40", "-server", ts.URL}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "protection what-ifs") {
		t.Fatalf("remote spec output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "job=exp-") {
		t.Fatalf("job line missing:\n%s", errOut.String())
	}
	if sched.Stats().Runs == 0 {
		t.Fatal("server scheduler never executed a campaign")
	}
}

func TestRunSpecErrors(t *testing.T) {
	badSpec := writeMiniSpec(t, `{"version": 1, "injctions": 5}`)
	for _, args := range [][]string{
		{"-spec", "/no/such/file.json"},
		{"-spec", badSpec},
		{"-server", "http://localhost:1"}, // -server without -spec
	} {
		var out, errOut strings.Builder
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunSpecServerRejectsLocalFlags: -store and -workers configure the
// local scheduler and must not be silently dropped on remote runs.
func TestRunSpecServerRejectsLocalFlags(t *testing.T) {
	path := writeMiniSpec(t, miniProtectionSpec)
	for _, args := range [][]string{
		{"-spec", path, "-server", "http://localhost:1", "-store", "/tmp/x.jsonl"},
		{"-spec", path, "-server", "http://localhost:1", "-workers", "4"},
	} {
		var out, errOut strings.Builder
		err := run(context.Background(), args, &out, &errOut)
		if err == nil || !strings.Contains(err.Error(), "local-only") {
			t.Errorf("args %v: err %v, want local-only rejection", args, err)
		}
	}
}
