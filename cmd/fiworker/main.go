// Command fiworker is a pull-based remote worker for a fiserver running
// with -workers-remote: it leases campaign cells from the server's queue,
// executes them with the local deterministic injection engine, and
// streams the results back. Any number of workers may point at one
// server; cells are deduplicated and sharded server-side, leases expire
// and re-queue if a worker dies, and determinism guarantees every worker
// computes byte-identical results for the same cell.
//
//	fiserver -addr :8080 -workers-remote
//	fiworker -server http://localhost:8080
//	fiworker -server http://localhost:8080 -concurrency 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/cli"
	"repro/internal/finject"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// errUsage marks argument errors the FlagSet has already reported on
// stderr; main exits non-zero without printing them again.
var errUsage = errors.New("usage error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "fiworker: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main's testable core: it drains leases from the server until
// ctx is canceled.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fiworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server    = fs.String("server", "http://127.0.0.1:8080", "fiserver base URL, or a comma-separated list for a clustered control plane (sticky failover)")
		name      = fs.String("name", "", "worker name (default host-pid)")
		conc      = fs.Int("concurrency", 1, "cells executed in parallel")
		campWorks = fs.Int("campaign-workers", 0, "parallel simulations per cell (default GOMAXPROCS/concurrency)")
		poll      = fs.Duration("poll", 2*time.Second, "lease long-poll duration")
		quiet     = fs.Bool("quiet", false, "suppress per-cell log lines")
		metrics   = fs.String("metrics-addr", "", "serve GET /metrics (Prometheus text) on this sidecar address, e.g. :9091")
		pprof     = fs.Bool("pprof", false, "with -metrics-addr: also serve net/http/pprof under /debug/pprof/")
		ladderDir = fs.String("ladder-dir", "", "directory for persisted checkpoint ladders, shared read-only (mmap) across processes")
	)
	obs := cli.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem on stderr.
		return errUsage
	}
	if *conc < 1 {
		fmt.Fprintln(stderr, "fiworker: -concurrency must be at least 1")
		return errUsage
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "fiworker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *ladderDir != "" {
		if err := os.MkdirAll(*ladderDir, 0o755); err != nil {
			return fmt.Errorf("-ladder-dir: %w", err)
		}
		finject.SetLadderDir(*ladderDir)
	}

	// -quiet floors the logger at warn so the per-lease info lines go
	// away but failures still surface.
	floor := slog.LevelDebug
	if *quiet {
		floor = slog.LevelWarn
	}
	log, closeTrace := obs.Init(stderr, floor)
	defer func() {
		if terr := closeTrace(); terr != nil {
			fmt.Fprintf(stderr, "fiworker: %v\n", terr)
		}
	}()
	log = log.With("worker", *name)

	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return err
		}
		msrv := &http.Server{Handler: telemetry.MetricsMux(*pprof)}
		defer msrv.Close()
		go msrv.Serve(ln)
		fmt.Fprintf(stdout, "metrics on %s\n", ln.Addr())
	}

	w := worker.New(&worker.Client{Base: *server, Name: *name}, worker.Options{
		Concurrency:     *conc,
		CampaignWorkers: *campWorks,
		Poll:            *poll,
		Logger:          log,
	})
	fmt.Fprintf(stdout, "worker %s serving %s (concurrency %d)\n", *name, *server, *conc)
	err := w.Run(ctx)
	fmt.Fprintf(stdout, "worker %s done: %d cells completed, %d failed\n", *name, w.Completed(), w.Failed())
	return err
}
