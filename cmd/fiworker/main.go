// Command fiworker is a pull-based remote worker for a fiserver running
// with -workers-remote: it leases campaign cells from the server's queue,
// executes them with the local deterministic injection engine, and
// streams the results back. Any number of workers may point at one
// server; cells are deduplicated and sharded server-side, leases expire
// and re-queue if a worker dies, and determinism guarantees every worker
// computes byte-identical results for the same cell.
//
//	fiserver -addr :8080 -workers-remote
//	fiworker -server http://localhost:8080
//	fiworker -server http://localhost:8080 -concurrency 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/worker"
)

// errUsage marks argument errors the FlagSet has already reported on
// stderr; main exits non-zero without printing them again.
var errUsage = errors.New("usage error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "fiworker: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main's testable core: it drains leases from the server until
// ctx is canceled.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fiworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server    = fs.String("server", "http://127.0.0.1:8080", "fiserver base URL")
		name      = fs.String("name", "", "worker name (default host-pid)")
		conc      = fs.Int("concurrency", 1, "cells executed in parallel")
		campWorks = fs.Int("campaign-workers", 0, "parallel simulations per cell (default GOMAXPROCS/concurrency)")
		poll      = fs.Duration("poll", 2*time.Second, "lease long-poll duration")
		quiet     = fs.Bool("quiet", false, "suppress per-cell log lines")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem on stderr.
		return errUsage
	}
	if *conc < 1 {
		fmt.Fprintln(stderr, "fiworker: -concurrency must be at least 1")
		return errUsage
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "fiworker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	var log io.Writer
	if !*quiet {
		log = stdout
	}
	w := worker.New(&worker.Client{Base: *server, Name: *name}, worker.Options{
		Concurrency:     *conc,
		CampaignWorkers: *campWorks,
		Poll:            *poll,
		Log:             log,
	})
	fmt.Fprintf(stdout, "worker %s serving %s (concurrency %d)\n", *name, *server, *conc)
	err := w.Run(ctx)
	fmt.Fprintf(stdout, "worker %s done: %d cells completed, %d failed\n", *name, w.Completed(), w.Failed())
	return err
}
