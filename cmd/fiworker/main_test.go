package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

// syncBuffer is a strings.Builder safe for the worker's concurrent log
// writes.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestWorkerRunAgainstServer(t *testing.T) {
	q := campaign.NewLeaseQueue(time.Minute)
	sched := campaign.New(campaign.Config{Executor: campaign.NewRemoteExecutor(q), Workers: 64})
	srv := service.NewServer(sched)
	srv.ServeWorkers(q)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-server", ts.URL, "-name", "test-worker", "-poll", "20ms", "-campaign-workers", "1",
		}, &out, &errOut)
	}()

	// One cell through the fleet of one.
	c, err := campaign.CellSpec{
		Chip: "Mini NVIDIA", Benchmark: "vectoradd", Injections: 15, Seed: 3,
	}.Normalize().Campaign()
	if err != nil {
		t.Fatal(err)
	}
	runCtx, runCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer runCancel()
	res, err := sched.Run(runCtx, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != 15 {
		t.Fatalf("realized %d injections", res.Injections)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exit: %v\n%s", err, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
	if !strings.Contains(out.String(), "worker test-worker serving") {
		t.Fatalf("missing banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 cells completed") {
		t.Fatalf("missing completion summary:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errOut syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-concurrency", "0"}, &out, &errOut); err == nil {
		t.Error("zero concurrency accepted")
	}
}
