package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GeForce GTX 480", "benchmarks:", "vectoradd"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunTinyCampaign(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-chip", "Mini NVIDIA", "-bench", "vectoradd", "-n", "25", "-seed", "3"}
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gufi campaign: Mini NVIDIA / vectoradd", "AVF (FI)", "masked="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("campaign output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunAdaptiveCampaign(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-chip", "Mini NVIDIA", "-bench", "vectoradd", "-n", "2000", "-margin", "0.1"}
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adaptive") || strings.Contains(out.String(), "injections        2000 of cap") {
		t.Fatalf("adaptive campaign should stop below the cap:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-chip", "No Such GPU"},
		{"-chip", "HD Radeon 7970"}, // AMD part under the NVIDIA tool
		{"-structure", "l2cache"},
		{"-margin", "5"},        // out of [0,1)
		{"-confidence", "1.01"}, // out of (0,1)
	} {
		var out, errOut strings.Builder
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h returned %v", err)
	}
}
