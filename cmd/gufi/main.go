// Command gufi runs a single reliability-assessment campaign on one of
// the simulated NVIDIA GPUs, mirroring the paper's GUFI tool (GPGPU-Sim
// based): statistical fault injection plus ACE analysis on the register
// file or shared memory.
//
//	gufi -chip "GeForce GTX 480" -bench matrixMul -structure regfile -n 2000
package main

import (
	"repro/internal/cli"
	"repro/internal/gpu"
)

func main() {
	cli.Main("gufi", gpu.NVIDIA)
}
