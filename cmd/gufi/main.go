// Command gufi runs a single reliability-assessment campaign on one of
// the simulated NVIDIA GPUs, mirroring the paper's GUFI tool (GPGPU-Sim
// based): statistical fault injection plus ACE analysis on the register
// file or shared memory.
//
//	gufi -chip "GeForce GTX 480" -bench matrixMul -structure regfile -n 2000
//
// With -margin set, -n becomes the cap and the campaign stops as soon as
// the AVF interval is tight enough (adaptive statistical sampling).
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/cli"
	"repro/internal/gpu"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gufi: %v\n", err)
		os.Exit(1)
	}
}

// run is main's testable core. Interrupting ctx cancels the campaign
// promptly.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	_ = stderr // errors surface through the return value
	return cli.RunContext(ctx, "gufi", gpu.NVIDIA, args, stdout)
}
