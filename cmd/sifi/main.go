// Command sifi runs a single reliability-assessment campaign on the
// simulated AMD Southern Islands GPU, mirroring the paper's SIFI tool
// (Multi2Sim based): statistical fault injection plus ACE analysis on the
// vector register file or the local data share.
//
//	sifi -bench reduction -structure local -n 2000
package main

import (
	"repro/internal/cli"
	"repro/internal/gpu"
)

func main() {
	cli.Main("sifi", gpu.AMD)
}
