package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HD Radeon 7970", "benchmarks:", "reduction"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "GeForce") {
		t.Fatal("sifi listed an NVIDIA chip")
	}
}

func TestRunTinyCampaign(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-chip", "Mini AMD", "-bench", "vectoradd", "-n", "25", "-seed", "3"}
	if err := run(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sifi campaign: Mini AMD / vectoradd", "AVF (FI)", "masked="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("campaign output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-chip", "GeForce GTX 480"}, // NVIDIA part under the AMD tool
		{"-bench", "nope"},
	} {
		var out, errOut strings.Builder
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
