package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// validScrape renders the live default registry — exactly what a real
// /metrics scrape serves.
func validScrape(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := telemetry.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestLintStdinValid(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(validScrape(t)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok: ") {
		t.Fatalf("output %q", out.String())
	}
}

func TestLintStdinInvalid(t *testing.T) {
	bad := "# HELP x y\n# TYPE x counter\nx notanumber\n"
	if err := run(nil, strings.NewReader(bad), io.Discard); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if err := run(nil, strings.NewReader(""), io.Discard); err == nil {
		t.Fatal("empty exposition accepted")
	}
}

func TestLintFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte(validScrape(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{good}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "good.txt: ok") {
		t.Fatalf("output %q", out.String())
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("orphan_sample 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, nil, io.Discard); err == nil {
		t.Fatal("undeclared family accepted")
	}
	if err := run([]string{filepath.Join(dir, "missing.txt")}, nil, io.Discard); err == nil {
		t.Fatal("missing file accepted")
	}
}
