// Command metricslint validates a Prometheus text-exposition payload —
// the format served by fiserver's GET /metrics and fiworker's
// -metrics-addr sidecar — read from stdin or from file arguments. It is
// the CI smoke's scrape checker:
//
//	curl -s localhost:8080/metrics | metricslint
//	metricslint scrape.txt
//
// Checks: every line parses, every family declares HELP and TYPE before
// its samples, no duplicate families or series, histogram samples use
// only the _bucket/_sum/_count shapes, and every value is numeric. On
// success it prints the family count; any violation is reported with
// its line number and the exit status is 1.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
		os.Exit(1)
	}
}

// run validates each named file, or stdin when no files are given.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		families, err := telemetry.ValidateExposition(stdin)
		if err != nil {
			return err
		}
		if families == 0 {
			return errors.New("empty exposition (no metric families)")
		}
		fmt.Fprintf(stdout, "ok: %d metric families\n", families)
		return nil
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		families, ferr := telemetry.ValidateExposition(f)
		f.Close()
		if ferr != nil {
			return fmt.Errorf("%s: %w", path, ferr)
		}
		if families == 0 {
			return fmt.Errorf("%s: empty exposition (no metric families)", path)
		}
		fmt.Fprintf(stdout, "%s: ok, %d metric families\n", path, families)
	}
	return nil
}
