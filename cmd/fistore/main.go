// Command fistore inspects, verifies and converts the on-disk files of
// the campaign fleet: result stores (JSON lines or the binary wire
// format) and binary checkpoint-ladder files.
//
//	fistore inspect cells.store        header, record counts, dedupe ratio
//	fistore verify  cells.store        full structural + checksum check
//	fistore convert -to binary cells.jsonl cells.store
//	fistore convert -to json   cells.store cells.jsonl
//
// inspect and verify are strictly read-only (they never compact or
// truncate, unlike opening a store for campaigning). convert copies the
// live records of a store into a fresh file of the other format and then
// proves the copy by re-reading both files and comparing every record.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/campaign"
	"repro/internal/finject"
	"repro/internal/wire"
)

// errUsage marks argument errors already reported on stderr.
var errUsage = errors.New("usage error")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "fistore: %v\n", err)
		}
		os.Exit(1)
	}
}

func usage(stderr io.Writer) error {
	fmt.Fprintln(stderr, "usage: fistore inspect <file> | verify <file> | convert -to json|binary <src> <dst>")
	return errUsage
}

// run is main's testable core.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "inspect":
		if len(args) != 2 {
			return usage(stderr)
		}
		return inspect(args[1], stdout)
	case "verify":
		if len(args) != 2 {
			return usage(stderr)
		}
		return verify(args[1], stdout)
	case "convert":
		fs := flag.NewFlagSet("fistore convert", flag.ContinueOnError)
		fs.SetOutput(stderr)
		to := fs.String("to", "", "target store format: json or binary")
		if err := fs.Parse(args[1:]); err != nil {
			if errors.Is(err, flag.ErrHelp) {
				return nil
			}
			return errUsage
		}
		if fs.NArg() != 2 || (*to != campaign.FormatJSON && *to != campaign.FormatBinary) {
			return usage(stderr)
		}
		return convert(fs.Arg(0), fs.Arg(1), *to, stdout)
	default:
		return usage(stderr)
	}
}

// inspect prints a read-only summary of any fleet file.
func inspect(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !wire.IsWireFile(data) {
		return inspectJSONStore(path, data, w)
	}
	kind, _, err := wire.ParseHeader(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "%s: wire v%d %s file, %d bytes\n", path, data[4], kind, len(data))
	switch kind {
	case wire.FileStore:
		return inspectBinaryStore(path, data, w)
	case wire.FileLadder:
		return inspectLadder(path, data, w)
	}
	return nil
}

// inspectJSONStore summarizes a JSON-lines result store without opening
// it for writing (no compaction, no torn-tail truncation).
func inspectJSONStore(path string, data []byte, w io.Writer) error {
	live := map[campaign.CellKey]bool{}
	records, torn := 0, false
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			torn = true
			break
		}
		if raw := bytes.TrimSpace(rest[:nl]); len(raw) > 0 {
			key, _, err := campaign.DecodeJSONRecord(raw)
			if err != nil {
				return fmt.Errorf("%s record %d: %w", path, records+1, err)
			}
			live[key] = true
			records++
		}
		rest = rest[nl+1:]
	}
	fmt.Fprintf(w, "%s: JSON-lines store, %d bytes\n", path, len(data))
	fmt.Fprintf(w, "  records   %d (%d live, %d dead)\n", records, len(live), records-len(live))
	if torn {
		fmt.Fprintln(w, "  torn tail (unterminated final record; healed on next open)")
	}
	return nil
}

// inspectBinaryStore summarizes a wire-format result store.
func inspectBinaryStore(path string, data []byte, w io.Writer) error {
	live := map[campaign.CellKey]bool{}
	records := 0
	good, err := wire.ScanRecords(data, func(rec wire.Record) error {
		if rec.Kind != wire.RecCell {
			return nil
		}
		r := wire.NewReader(rec.Payload)
		key := campaign.CellKey(r.String())
		if err := r.Err(); err != nil {
			return err
		}
		live[key] = true
		records++
		return nil
	})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "  records   %d (%d live, %d dead)\n", records, len(live), records-len(live))
	if good < len(data) {
		fmt.Fprintf(w, "  torn tail (%d trailing bytes; healed on next open)\n", len(data)-good)
	}
	return nil
}

// inspectLadder summarizes a ladder file: identity, rungs, and how much
// the content-addressed page pool deduplicated.
func inspectLadder(path string, data []byte, w io.Writer) error {
	var (
		pages, snapshots int
		refs             int
		metaBytes        int
	)
	_, err := wire.ScanRecords(data, func(rec wire.Record) error {
		switch rec.Kind {
		case wire.RecLadderInfo:
			r := wire.NewReader(rec.Payload)
			chip, bench, interval, declared := r.String(), r.String(), r.I64(), r.U32()
			if err := r.Err(); err != nil {
				return err
			}
			iv := "auto"
			if interval > 0 {
				iv = fmt.Sprintf("%d cycles", interval)
			}
			fmt.Fprintf(w, "  ladder    %s / %s, interval %s, %d rungs\n", chip, bench, iv, declared)
		case wire.RecPage:
			pages++
		case wire.RecSnapshot:
			r := wire.NewReader(rec.Payload)
			r.I64()
			r.U32()
			r.U32()
			refs += len(r.U32s())
			metaBytes += len(r.Blob())
			if err := r.Err(); err != nil {
				return err
			}
			snapshots++
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "  snapshots %d (%d bytes device meta)\n", snapshots, metaBytes)
	dedup := 0.0
	if refs > 0 {
		dedup = 1 - float64(pages)/float64(refs)
	}
	fmt.Fprintf(w, "  pages     %d stored for %d references (%.1f%% deduplicated)\n", pages, refs, 100*dedup)
	return nil
}

// verify fully checks a file: framing, checksums, and record decodes.
func verify(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !wire.IsWireFile(data) {
		return verifyJSONStore(path, data, w)
	}
	kind, _, err := wire.ParseHeader(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	switch kind {
	case wire.FileStore:
		records := 0
		good, err := wire.ScanRecords(data, func(rec wire.Record) error {
			if rec.Kind != wire.RecCell {
				return nil
			}
			r := wire.NewReader(rec.Payload)
			if key := r.String(); key == "" {
				return fmt.Errorf("%w: record at offset %d has an empty key", wire.ErrCorrupt, rec.Off)
			}
			if _, err := finject.DecodeResult(r); err != nil {
				return fmt.Errorf("record at offset %d: %w", rec.Off, err)
			}
			records++
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if good < len(data) {
			fmt.Fprintf(w, "%s: ok, %d records (torn tail of %d bytes; healed on next open)\n", path, records, len(data)-good)
			return nil
		}
		fmt.Fprintf(w, "%s: ok, %d records\n", path, records)
		return nil
	case wire.FileLadder:
		pages, snapshots, err := wire.VerifyLadder(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(w, "%s: ok, %d snapshots over %d pages\n", path, snapshots, pages)
		return nil
	}
	return fmt.Errorf("%s: unknown wire file kind", path)
}

// verifyJSONStore decodes every line of a JSON store.
func verifyJSONStore(path string, data []byte, w io.Writer) error {
	records := 0
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			fmt.Fprintf(w, "%s: ok, %d records (torn tail of %d bytes; healed on next open)\n", path, records, len(rest))
			return nil
		}
		if raw := bytes.TrimSpace(rest[:nl]); len(raw) > 0 {
			if _, _, err := campaign.DecodeJSONRecord(raw); err != nil {
				return fmt.Errorf("%s record %d: %w", path, records+1, err)
			}
			records++
		}
		rest = rest[nl+1:]
	}
	fmt.Fprintf(w, "%s: ok, %d records\n", path, records)
	return nil
}

// convert copies the live records of the store at src into a fresh dst
// file of the target format, then re-reads both files and proves every
// record survived the round trip.
func convert(src, dst, format string, w io.Writer) error {
	if _, err := os.Stat(dst); err == nil {
		return fmt.Errorf("%s already exists (refusing to overwrite)", dst)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	from, err := campaign.OpenStore(src, campaign.FormatAuto)
	if err != nil {
		return err
	}
	defer from.Close()
	to, err := campaign.OpenStore(dst, format)
	if err != nil {
		return err
	}
	for _, k := range from.Keys() {
		res, ok, err := from.Get(k)
		if err != nil || !ok {
			to.Close()
			return fmt.Errorf("read %s from %s: ok=%v err=%v", k, src, ok, err)
		}
		if err := to.Put(k, res); err != nil {
			to.Close()
			return err
		}
	}
	if err := to.Close(); err != nil {
		return err
	}

	// Prove the conversion: a fresh open of dst must contain exactly the
	// records of src.
	check, err := campaign.OpenStore(dst, campaign.FormatAuto)
	if err != nil {
		return fmt.Errorf("re-open converted store: %w", err)
	}
	defer check.Close()
	if check.Len() != from.Len() {
		return fmt.Errorf("converted store holds %d cells, source holds %d", check.Len(), from.Len())
	}
	for _, k := range from.Keys() {
		want, _, _ := from.Get(k)
		got, ok, err := check.Get(k)
		if err != nil || !ok {
			return fmt.Errorf("converted store is missing cell %s", k)
		}
		if !resultsEqual(want, got) {
			return fmt.Errorf("cell %s does not round-trip", k)
		}
	}
	sb, _ := os.Stat(src)
	db, _ := os.Stat(dst)
	fmt.Fprintf(w, "%s (%d bytes) -> %s (%s, %d bytes): %d cells converted and verified\n",
		src, sb.Size(), dst, format, db.Size(), from.Len())
	return nil
}

// resultsEqual compares two results field by field, treating nil and
// empty detail slices as equal (JSON and wire encode them the same way).
func resultsEqual(a, b *finject.Result) bool {
	if a.Outcomes != b.Outcomes || a.Injections != b.Injections ||
		a.GoldenStats != b.GoldenStats || a.Occupancy != b.Occupancy ||
		len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			return false
		}
	}
	return true
}
