package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/finject"
	"repro/internal/gpu"
)

// testKey mints a syntactically plausible cell key.
func testKey(i byte) campaign.CellKey {
	return campaign.CellKey(strings.Repeat(string([]byte{'a' + i%16}), 64))
}

// testResult builds a distinguishable synthetic result; odd indices get
// per-injection detail records so the detail path round-trips too.
func testResult(i int) *finject.Result {
	res := &finject.Result{
		Outcomes:   [gpu.NumOutcomes]int{50 + i, 10, 5, 2},
		Injections: 67 + i,
		GoldenStats: gpu.RunStats{
			Cycles: int64(10000 + i), Instructions: 5000, LaneInstructions: 120000, Launches: 2,
			RegOcc:   gpu.OccStats{AllocUnitCycles: 0.25 * float64(i+1)},
			LocalOcc: gpu.OccStats{AllocUnitCycles: 0.125},
		},
		Occupancy: 0.75,
	}
	if i%2 == 1 {
		res.Records = []finject.Record{
			{Fault: gpu.Fault{Structure: gpu.RegisterFile, Unit: i, Entry: 7, Bit: 3, Cycle: 42}, Outcome: gpu.OutcomeSDC, CorruptBytes: 8},
			{Fault: gpu.Fault{Structure: gpu.LocalMemory, Unit: 0, Entry: 1, Bit: 5, Width: 2, Cycle: 99}, Outcome: gpu.OutcomeMasked},
		}
	}
	return res
}

// seedStore populates a fresh store file in the given format.
func seedStore(t *testing.T, path, format string, n int) {
	t.Helper()
	st, err := campaign.OpenStore(path, format)
	if err != nil {
		t.Fatalf("OpenStore(%s): %v", format, err)
	}
	for i := 0; i < n; i++ {
		if err := st.Put(testKey(byte(i)), testResult(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestConvertJSONToBinaryAndBack(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "cells.jsonl")
	seedStore(t, src, campaign.FormatJSON, 5)

	bin := filepath.Join(dir, "cells.store")
	var out bytes.Buffer
	if err := run([]string{"convert", "-to", "binary", src, bin}, &out, &out); err != nil {
		t.Fatalf("convert to binary: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "5 cells converted and verified") {
		t.Fatalf("convert output = %q", out.String())
	}

	back := filepath.Join(dir, "back.jsonl")
	out.Reset()
	if err := run([]string{"convert", "-to", "json", bin, back}, &out, &out); err != nil {
		t.Fatalf("convert back to json: %v\n%s", err, out.String())
	}

	// The full JSON -> binary -> JSON loop must preserve every record.
	a, err := campaign.OpenStore(src, campaign.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := campaign.OpenStore(back, campaign.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Len() != b.Len() {
		t.Fatalf("round trip lost cells: %d != %d", a.Len(), b.Len())
	}
	for _, k := range a.Keys() {
		x, _, _ := a.Get(k)
		y, ok, _ := b.Get(k)
		if !ok || !resultsEqual(x, y) {
			t.Fatalf("cell %s did not survive the round trip", k)
		}
	}
}

func TestConvertRefusesOverwrite(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "cells.jsonl")
	seedStore(t, src, campaign.FormatJSON, 1)
	var out bytes.Buffer
	if err := run([]string{"convert", "-to", "binary", src, src}, &out, &out); err == nil {
		t.Fatal("convert over an existing file should fail")
	}
}

func TestInspectAndVerifyStores(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		format, file, want string
	}{
		{campaign.FormatJSON, "cells.jsonl", "JSON-lines store"},
		{campaign.FormatBinary, "cells.store", "wire v1 store file"},
	} {
		path := filepath.Join(dir, tc.file)
		seedStore(t, path, tc.format, 3)
		var out bytes.Buffer
		if err := run([]string{"inspect", path}, &out, &out); err != nil {
			t.Fatalf("inspect %s: %v", tc.format, err)
		}
		if !strings.Contains(out.String(), tc.want) || !strings.Contains(out.String(), "3 live") {
			t.Fatalf("inspect %s output = %q", tc.format, out.String())
		}
		out.Reset()
		if err := run([]string{"verify", path}, &out, &out); err != nil {
			t.Fatalf("verify %s: %v", tc.format, err)
		}
		if !strings.Contains(out.String(), "ok, 3 records") {
			t.Fatalf("verify %s output = %q", tc.format, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"inspect"},
		{"convert", "-to", "yaml", "a", "b"},
	} {
		if err := run(args, &out, &out); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}
