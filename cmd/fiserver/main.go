// Command fiserver serves the campaign orchestration subsystem over
// HTTP: clients submit batches of fault-injection cells, poll status,
// fetch results, and run whole figures with streamed progress. All
// requests share one scheduler and one store, so identical cells are
// computed once ever — across requests, clients and (with -store)
// process restarts. Jobs may carry an execution policy (adaptive margin,
// confidence, injection cap) and figure runs accept margin= and
// confidence= query parameters.
//
//	fiserver -addr :8080 -store cells.jsonl
//
//	curl -s localhost:8080/v1/figure?fig=1\&n=100\&margin=0.03 | tail -1
//	curl -s -X POST localhost:8080/v1/jobs -d '{"cells":[{"chip":"GeForce GTX 480","benchmark":"vectoradd","structure":"register-file","injections":200,"seed":1}],"policy":{"margin":0.05}}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

// errUsage marks argument errors the FlagSet has already reported on
// stderr; main exits non-zero without printing them again.
var errUsage = errors.New("usage error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "fiserver: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main's testable core: it binds the listener, reports the bound
// address on stdout ("listening on ..."), and serves until ctx is
// canceled, then shuts down gracefully.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fiserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		storePath = fs.String("store", "", "JSON-lines result store path (in-memory only when empty)")
		memCap    = fs.Int("mem-cap", 0, "in-memory store capacity in cells (0 = unbounded; ignored with -store)")
		workers   = fs.Int("workers", 0, "concurrently executing cells (default GOMAXPROCS)")
		campWorks = fs.Int("campaign-workers", 0, "parallel simulations inside one campaign (default GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem on stderr.
		return errUsage
	}

	var store campaign.Store
	if *storePath != "" {
		ds, err := campaign.OpenDiskStore(*storePath)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(stdout, "store %s: %d cells\n", ds.Path(), ds.Len())
		store = ds
	} else {
		store = campaign.NewMemoryStore(*memCap)
	}
	sched := campaign.New(campaign.Config{
		Store:           store,
		Workers:         *workers,
		CampaignWorkers: *campWorks,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:     service.NewServer(sched),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "shut down")
	return nil
}
