// Command fiserver serves the campaign orchestration subsystem over
// HTTP: clients submit batches of fault-injection cells, poll status,
// fetch results, and run whole figures with streamed progress. All
// requests share one scheduler and one store, so identical cells are
// computed once ever — across requests, clients and (with -store)
// process restarts. Jobs may carry an execution policy (adaptive margin,
// confidence, injection cap) and figure runs accept margin= and
// confidence= query parameters.
//
// With -workers-remote the server stops simulating in-process and
// instead shards cells across a fleet of fiworker processes under
// expiring leases (see cmd/fiworker); determinism makes the results
// byte-identical either way.
//
// With -job-store the job table itself is write-ahead journaled: jobs,
// their per-cell progress and results survive a crash or restart, and
// unfinished jobs resume on boot with already-completed cells served
// from the warm result store (zero re-injections).
//
// With -api-keys the server is multi-tenant: every client request must
// carry "Authorization: Bearer <key>", jobs are labeled and isolated by
// tenant, and per-tenant quotas (max-jobs, inj-rate) answer 429 when
// exceeded. With -cluster-dir several fiservers share one store and one
// job journal; an ownership journal in that directory elects a single
// active owner, standbys answer 503, and a standby seizes ownership
// (and resumes the dead owner's jobs) when heartbeats go stale.
//
//	fiserver -addr :8080 -store cells.jsonl
//	fiserver -addr :8080 -store cells.jsonl -job-store jobs.jsonl
//	fiserver -addr :8080 -workers-remote -lease-ttl 30s
//	fiserver -addr :8080 -api-keys keys.conf -cluster-dir /shared/fi
//
//	curl -s localhost:8080/v1/figure?fig=1\&n=100\&margin=0.03 | tail -1
//	curl -s -X POST localhost:8080/v1/jobs -d '{"cells":[{"chip":"GeForce GTX 480","benchmark":"vectoradd","structure":"register-file","injections":200,"seed":1}],"policy":{"margin":0.05}}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/finject"
	"repro/internal/service"
)

// errUsage marks argument errors the FlagSet has already reported on
// stderr; main exits non-zero without printing them again.
var errUsage = errors.New("usage error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "fiserver: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main's testable core: it binds the listener, reports the bound
// address on stdout ("listening on ..."), and serves until ctx is
// canceled, then shuts down gracefully.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fiserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		storePath = fs.String("store", "", "result store path (in-memory only when empty)")
		storeFmt  = fs.String("store-format", campaign.FormatAuto, "store file format: auto (sniff existing files, JSON for new), json, or binary")
		ladderDir = fs.String("ladder-dir", "", "directory for persisted checkpoint ladders, shared read-only (mmap) across processes")
		jobStore  = fs.String("job-store", "", "write-ahead job journal path; jobs survive restart and unfinished ones resume on boot")
		memCap    = fs.Int("mem-cap", 0, "in-memory store capacity in cells (0 = unbounded; ignored with -store)")
		workers   = fs.Int("workers", 0, "concurrently executing cells (default GOMAXPROCS; with -workers-remote, the fleet-wide in-flight bound, default 256)")
		campWorks = fs.Int("campaign-workers", 0, "parallel simulations inside one campaign (default GOMAXPROCS)")
		remote    = fs.Bool("workers-remote", false, "execute cells on remote fiworker processes instead of in-process")
		leaseTTL  = fs.Duration("lease-ttl", campaign.DefaultLeaseTTL, "remote lease expiry after the last heartbeat")
		drain     = fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown deadline for in-flight requests and jobs")
		pprof     = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		apiKeys   = fs.String("api-keys", "", "API key file enabling multi-tenant auth: one \"key tenant [weight=N] [max-jobs=N] [inj-rate=N]\" per line")
		cluster   = fs.String("cluster-dir", "", "shared directory holding the ownership journal; servers pointed at it elect one active owner")
		serverID  = fs.String("server-id", "", "this server's identity in the ownership journal (default host-pid)")
		takeover  = fs.Duration("takeover-ttl", service.DefaultTakeoverTTL, "heartbeat staleness after which a standby seizes ownership")
	)
	obs := cli.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem on stderr.
		return errUsage
	}
	log, closeTrace := obs.Init(stderr, slog.LevelDebug)
	defer func() {
		if terr := closeTrace(); terr != nil {
			fmt.Fprintf(stderr, "fiserver: %v\n", terr)
		}
	}()

	if *ladderDir != "" {
		if err := os.MkdirAll(*ladderDir, 0o755); err != nil {
			return fmt.Errorf("-ladder-dir: %w", err)
		}
		finject.SetLadderDir(*ladderDir)
	}

	var keys *service.KeySet
	if *apiKeys != "" {
		ks, err := service.LoadKeys(*apiKeys)
		if err != nil {
			return err
		}
		keys = ks
		fmt.Fprintf(stdout, "api keys %s: %d tenants\n", *apiKeys, len(ks.Tenants()))
	}

	// Everything that touches the shared store or job journal lives in
	// activate. Standalone boots run it inline; with -cluster-dir it is
	// deferred until this server owns the journal, so a standby never
	// opens (or recovers) state that the active owner is writing.
	var (
		closeMu sync.Mutex
		closers []io.Closer
		appSrv  *service.Server
	)
	defer func() {
		closeMu.Lock()
		defer closeMu.Unlock()
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i].Close()
		}
	}()
	activate := func() (http.Handler, error) {
		var store campaign.Store
		if *storePath != "" {
			ds, err := campaign.OpenStore(*storePath, *storeFmt)
			if err != nil {
				return nil, err
			}
			closeMu.Lock()
			closers = append(closers, ds)
			closeMu.Unlock()
			fmt.Fprintf(stdout, "store %s: %d cells\n", ds.Path(), ds.Len())
			store = ds
		} else {
			store = campaign.NewMemoryStore(*memCap)
		}
		var queue *campaign.LeaseQueue
		var exec campaign.Executor
		nworkers := *workers
		if *remote {
			queue = campaign.NewLeaseQueue(*leaseTTL)
			exec = campaign.NewRemoteExecutor(queue)
			if nworkers == 0 {
				// The in-flight bound is how many cells the fleet can see at
				// once; one machine's core count would starve remote workers.
				nworkers = 256
			}
		}
		sched := campaign.New(campaign.Config{
			Store:           store,
			Workers:         nworkers,
			CampaignWorkers: *campWorks,
			Executor:        exec,
		})

		handler := service.NewServer(sched)
		handler.SetLogger(log)
		if *pprof {
			handler.EnablePprof()
		}
		if keys != nil {
			handler.SetAuth(keys)
		}
		if queue != nil {
			handler.ServeWorkers(queue)
			if keys != nil {
				for _, t := range keys.Tenants() {
					queue.SetWeight(t.Name, t.Weight)
				}
			}
			fmt.Fprintf(stdout, "remote workers enabled (lease TTL %s)\n", *leaseTTL)
		}
		if *jobStore != "" {
			js, err := service.OpenJobStore(*jobStore)
			if err != nil {
				return nil, err
			}
			closeMu.Lock()
			closers = append(closers, js)
			closeMu.Unlock()
			// FISERVER_CRASH arms a test-only crash barrier (see the chaos
			// harness in internal/service/chaostest): the process SIGKILLs
			// itself at the named journal transition. Never set in production.
			if p := os.Getenv("FISERVER_CRASH"); p != "" {
				js.SetFaultPoint(p)
				fmt.Fprintf(stdout, "crash barrier armed: %s\n", p)
			}
			rec, err := handler.UseJobStore(js)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(stdout, "job store %s: %d jobs restored, %d resumed\n", js.Path(), rec.Restored, rec.Resumed)
		}
		closeMu.Lock()
		appSrv = handler
		closeMu.Unlock()
		return handler, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var root http.Handler
	if *cluster != "" {
		if err := os.MkdirAll(*cluster, 0o755); err != nil {
			return fmt.Errorf("-cluster-dir: %w", err)
		}
		id := *serverID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		cl := service.NewCluster(*cluster, id, *takeover, activate)
		cl.SetLogger(log)
		// A deposed owner has been fenced out of the job store by a higher
		// epoch; the only safe move is to drain and exit so a supervisor
		// can restart it as a fresh standby.
		cl.OnDeposed(func() {
			fmt.Fprintf(stderr, "fiserver: deposed by a higher epoch, shutting down\n")
			cancel()
		})
		if err := cl.Start(); err != nil {
			return err
		}
		defer cl.Close()
		state, epoch := cl.State()
		fmt.Fprintf(stdout, "cluster %s: server %s %s at epoch %d (takeover TTL %s)\n", *cluster, id, state, epoch, *takeover)
		root = cl
	} else {
		h, err := activate()
		if err != nil {
			return err
		}
		root = h
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:     root,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Two-phase drain under one deadline: stop taking requests and
		// finish the in-flight ones, then cancel and reap the
		// asynchronous job goroutines so no simulation outlives the
		// process's accept loop.
		shutdownCtx, stopDrain := context.WithTimeout(context.Background(), *drain)
		defer stopDrain()
		srv.Shutdown(shutdownCtx)
		closeMu.Lock()
		handler := appSrv
		closeMu.Unlock()
		if handler != nil {
			if err := handler.Shutdown(shutdownCtx); err != nil {
				fmt.Fprintf(stderr, "fiserver: drain: %v\n", err)
			}
		}
	}()
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained
	fmt.Fprintln(stdout, "shut down")
	return nil
}
