// Command fiserver serves the campaign orchestration subsystem over
// HTTP: clients submit batches of fault-injection cells, poll status,
// fetch results, and run whole figures with streamed progress. All
// requests share one scheduler and one store, so identical cells are
// computed once ever — across requests, clients and (with -store)
// process restarts.
//
//	fiserver -addr :8080 -store cells.jsonl
//
//	curl -s localhost:8080/v1/figure?fig=1\&n=100 | tail -1
//	curl -s -X POST localhost:8080/v1/jobs -d '{"cells":[{"chip":"GeForce GTX 480","benchmark":"vectoradd","structure":"register-file","injections":200,"seed":1}]}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fiserver: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		storePath = flag.String("store", "", "JSON-lines result store path (in-memory only when empty)")
		memCap    = flag.Int("mem-cap", 0, "in-memory store capacity in cells (0 = unbounded; ignored with -store)")
		workers   = flag.Int("workers", 0, "concurrently executing cells (default GOMAXPROCS)")
		campWorks = flag.Int("campaign-workers", 0, "parallel simulations inside one campaign (default GOMAXPROCS)")
	)
	flag.Parse()

	var store campaign.Store
	if *storePath != "" {
		ds, err := campaign.OpenDiskStore(*storePath)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		log.Printf("store %s: %d cells", ds.Path(), ds.Len())
		store = ds
	} else {
		store = campaign.NewMemoryStore(*memCap)
	}
	sched := campaign.New(campaign.Config{
		Store:           store,
		Workers:         *workers,
		CampaignWorkers: *campWorks,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     service.NewServer(sched),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}
