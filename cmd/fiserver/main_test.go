package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/worker"
)

// syncBuffer is a strings.Builder safe for the concurrent writes of the
// server goroutine and the polling test.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// startServer runs fiserver on an ephemeral port and returns its base
// URL plus a stop function that shuts it down and checks the exit error.
func startServer(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, extraArgs...), &out, &errOut)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never reported its address:\n%s\n%s", out.String(), errOut.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addr = rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("server exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("server did not shut down")
		}
		if !strings.Contains(out.String(), "shut down") {
			t.Errorf("missing shutdown notice:\n%s", out.String())
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	store := filepath.Join(t.TempDir(), "cells.jsonl")
	base, stop := startServer(t, "-store", store)
	defer stop()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// A tiny job through the full submit/status/result cycle.
	body := `{"cells":[{"chip":"Mini NVIDIA","benchmark":"vectoradd","structure":"register-file","injections":15,"seed":2}]}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		t.Fatalf("submit: %v (%+v)", err, submitted)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, submitted.ID))
		if err != nil {
			t.Fatal(err)
		}
		var status struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.State == "done" {
			break
		}
		if status.State != "running" || time.Now().After(deadline) {
			t.Fatalf("job state %q", status.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, submitted.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
}

// TestRemoteModeEndToEnd runs fiserver with -workers-remote plus one
// fiworker against it, and checks that a job executes on the worker and
// that shutdown drains cleanly.
func TestRemoteModeEndToEnd(t *testing.T) {
	base, stop := startServer(t, "-workers-remote", "-lease-ttl", "1s", "-drain-timeout", "10s")
	defer stop()

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	w := worker.New(&worker.Client{Base: base, Name: "test-worker"}, worker.Options{
		Poll: 20 * time.Millisecond, CampaignWorkers: 2,
	})
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(wctx)
	}()
	defer func() { wcancel(); <-workerDone }()

	body := `{"cells":[{"chip":"Mini NVIDIA","benchmark":"vectoradd","structure":"register-file","injections":15,"seed":2},
	                   {"chip":"Mini NVIDIA","benchmark":"transpose","structure":"register-file","injections":15,"seed":2}]}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		t.Fatalf("submit: %v (%+v)", err, submitted)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, submitted.ID))
		if err != nil {
			t.Fatal(err)
		}
		var status struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.State == "done" {
			break
		}
		if status.State != "running" || time.Now().After(deadline) {
			t.Fatalf("job state %q", status.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if w.Completed() == 0 {
		t.Fatal("job finished but the remote worker executed nothing")
	}
}

// TestDrainCancelsStuckJobs submits a job that can never finish (remote
// mode, no workers attached) and checks shutdown still drains within the
// deadline instead of abandoning the job goroutine.
func TestDrainCancelsStuckJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers-remote", "-drain-timeout", "5s"}, &out, &errOut)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address:\n%s", errOut.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addr = rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	body := `{"cells":[{"chip":"Mini NVIDIA","benchmark":"vectoradd","structure":"register-file","injections":15,"seed":7}]}`
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down with a stuck job")
	}
	if strings.Contains(errOut.String(), "drain:") {
		t.Fatalf("drain did not finish in time:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("missing shutdown notice:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errOut syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "not-an-address:::"}, &out, &errOut); err == nil {
		t.Error("bad address accepted")
	}
}
