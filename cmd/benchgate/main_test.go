package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkInjectionLoop/workers=1-8         	       3	  41769284 ns/op	      9576 inj/s
BenchmarkInjectionLoop/workers=1-8         	       3	  40211003 ns/op	      9912 inj/s
BenchmarkInjectionLoop/workers=4-8         	       3	  12769284 ns/op	     31301 inj/s
BenchmarkAdaptiveVsFixed/fixed-n-8         	       3	 212000000 ns/op	      2000 realized-n
BenchmarkAdaptiveVsFixed/adaptive-margin=5%-8      3	  42000000 ns/op	       400 realized-n
PASS
ok  	repro	12.345s
`

func TestParseKeepsMinimumAndStripsProcSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkInjectionLoop/workers=1":            40211003,
		"BenchmarkInjectionLoop/workers=4":            12769284,
		"BenchmarkAdaptiveVsFixed/fixed-n":            212000000,
		"BenchmarkAdaptiveVsFixed/adaptive-margin=5%": 42000000,
	}
	if len(rep.NsPerOp) != len(want) {
		t.Fatalf("parsed %d benchmarks: %+v", len(rep.NsPerOp), rep.NsPerOp)
	}
	for name, ns := range want {
		if rep.NsPerOp[name] != ns {
			t.Fatalf("%s = %v, want %v", name, rep.NsPerOp[name], ns)
		}
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := &Report{NsPerOp: map[string]float64{"BenchmarkX": 100}}
	fresh := &Report{NsPerOp: map[string]float64{"BenchmarkX": 120, "BenchmarkNew": 5}}
	var out strings.Builder
	if err := Compare(&out, base, fresh, 0.25); err != nil {
		t.Fatalf("+20%% failed a 25%% gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := &Report{NsPerOp: map[string]float64{"BenchmarkX": 100, "BenchmarkY": 100}}
	fresh := &Report{NsPerOp: map[string]float64{"BenchmarkX": 130, "BenchmarkY": 99}}
	var out strings.Builder
	err := Compare(&out, base, fresh, 0.25)
	if err == nil {
		t.Fatalf("+30%% passed a 25%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESS") || !strings.Contains(out.String(), "BenchmarkX") {
		t.Fatalf("report:\n%s", out.String())
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := &Report{NsPerOp: map[string]float64{"BenchmarkGone": 100}}
	fresh := &Report{NsPerOp: map[string]float64{"BenchmarkOther": 100}}
	var out strings.Builder
	if err := Compare(&out, base, fresh, 0.25); err == nil {
		t.Fatal("missing baseline benchmark passed the gate")
	}
}

func TestRunRecordAndGate(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.json")
	var out, errOut strings.Builder
	if err := run([]string{"-record", baseline, input}, &out, &errOut); err != nil {
		t.Fatalf("record: %v\n%s", err, errOut.String())
	}
	// Fresh == baseline: the gate passes and records the artifact.
	artifact := filepath.Join(dir, "fresh.json")
	out.Reset()
	if err := run([]string{"-baseline", baseline, "-record", artifact, "-tolerance", "0.25", input}, &out, &errOut); err != nil {
		t.Fatalf("gate: %v\n%s\n%s", err, out.String(), errOut.String())
	}
	if _, err := os.Stat(artifact); err != nil {
		t.Fatal(err)
	}

	// A slowed-down run fails the gate.
	slow := strings.ReplaceAll(sampleOutput, "  41769284 ns/op", " 141769284 ns/op")
	slow = strings.ReplaceAll(slow, "  40211003 ns/op", " 140211003 ns/op")
	if err := os.WriteFile(input, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", baseline, "-tolerance", "0.25", input}, &out, &errOut); err == nil {
		t.Fatalf("3.5x slowdown passed the gate:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{}, &out, &errOut); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run([]string{"-baseline", "x.json", "-tolerance", "-1"}, &out, &errOut); err == nil {
		t.Error("negative tolerance accepted")
	}
}
