package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkInjectionLoop/workers=1-8         	       3	  41769284 ns/op	      9576 inj/s
BenchmarkInjectionLoop/workers=1-8         	       3	  40211003 ns/op	      9912 inj/s
BenchmarkInjectionLoop/workers=4-8         	       3	  12769284 ns/op	     31301 inj/s
BenchmarkAdaptiveVsFixed/fixed-n-8         	       3	 212000000 ns/op	      2000 realized-n
BenchmarkAdaptiveVsFixed/adaptive-margin=5%-8      3	  42000000 ns/op	       400 realized-n
PASS
ok  	repro	12.345s
`

func TestParseKeepsMinimumAndStripsProcSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkInjectionLoop/workers=1":            40211003,
		"BenchmarkInjectionLoop/workers=4":            12769284,
		"BenchmarkAdaptiveVsFixed/fixed-n":            212000000,
		"BenchmarkAdaptiveVsFixed/adaptive-margin=5%": 42000000,
	}
	if len(rep.NsPerOp) != len(want) {
		t.Fatalf("parsed %d benchmarks: %+v", len(rep.NsPerOp), rep.NsPerOp)
	}
	for name, ns := range want {
		if rep.NsPerOp[name] != ns {
			t.Fatalf("%s = %v, want %v", name, rep.NsPerOp[name], ns)
		}
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := &Report{NsPerOp: map[string]float64{"BenchmarkX": 100}}
	fresh := &Report{NsPerOp: map[string]float64{"BenchmarkX": 120, "BenchmarkNew": 5}}
	var out strings.Builder
	if err := Compare(&out, base, fresh, 0.25, 0.25); err != nil {
		t.Fatalf("+20%% failed a 25%% gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := &Report{NsPerOp: map[string]float64{"BenchmarkX": 100, "BenchmarkY": 100}}
	fresh := &Report{NsPerOp: map[string]float64{"BenchmarkX": 130, "BenchmarkY": 99}}
	var out strings.Builder
	err := Compare(&out, base, fresh, 0.25, 0.25)
	if err == nil {
		t.Fatalf("+30%% passed a 25%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESS") || !strings.Contains(out.String(), "BenchmarkX") {
		t.Fatalf("report:\n%s", out.String())
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := &Report{NsPerOp: map[string]float64{"BenchmarkGone": 100}}
	fresh := &Report{NsPerOp: map[string]float64{"BenchmarkOther": 100}}
	var out strings.Builder
	if err := Compare(&out, base, fresh, 0.25, 0.25); err == nil {
		t.Fatal("missing baseline benchmark passed the gate")
	}
}

func TestRunRecordAndGate(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.json")
	var out, errOut strings.Builder
	if err := run([]string{"-record", baseline, input}, &out, &errOut); err != nil {
		t.Fatalf("record: %v\n%s", err, errOut.String())
	}
	// Fresh == baseline: the gate passes and records the artifact.
	artifact := filepath.Join(dir, "fresh.json")
	out.Reset()
	if err := run([]string{"-baseline", baseline, "-record", artifact, "-tolerance", "0.25", input}, &out, &errOut); err != nil {
		t.Fatalf("gate: %v\n%s\n%s", err, out.String(), errOut.String())
	}
	if _, err := os.Stat(artifact); err != nil {
		t.Fatal(err)
	}

	// A slowed-down run fails the gate.
	slow := strings.ReplaceAll(sampleOutput, "  41769284 ns/op", " 141769284 ns/op")
	slow = strings.ReplaceAll(slow, "  40211003 ns/op", " 140211003 ns/op")
	if err := os.WriteFile(input, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", baseline, "-tolerance", "0.25", input}, &out, &errOut); err == nil {
		t.Fatalf("3.5x slowdown passed the gate:\n%s", out.String())
	}
}

const benchmemOutput = `goos: linux
BenchmarkInjectionLoop/workers=1-8  3  41769284 ns/op  9576 inj/s  1048576 B/op  2585 allocs/op
BenchmarkInjectionLoop/workers=8-8  3  12769284 ns/op  31301 inj/s  1048576 B/op  2985 allocs/op
PASS
`

func TestParseBenchmemAndCPUs(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchmemOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPUs != 8 {
		t.Errorf("cpus = %d, want 8 (from the -8 suffix)", rep.CPUs)
	}
	if got := rep.AllocsPerOp["BenchmarkInjectionLoop/workers=1"]; got != 2585 {
		t.Errorf("allocs/op = %v, want 2585", got)
	}
	// Output without -benchmem leaves AllocsPerOp nil.
	rep, err = Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllocsPerOp != nil {
		t.Errorf("allocs parsed from benchmem-less output: %+v", rep.AllocsPerOp)
	}
}

func TestCompareGatesAllocs(t *testing.T) {
	base := &Report{
		NsPerOp:     map[string]float64{"BenchmarkX": 100},
		AllocsPerOp: map[string]float64{"BenchmarkX": 1000},
	}
	fresh := &Report{
		NsPerOp:     map[string]float64{"BenchmarkX": 100},
		AllocsPerOp: map[string]float64{"BenchmarkX": 1300},
	}
	var out strings.Builder
	if err := Compare(&out, base, fresh, 0.25, 0.25); err == nil {
		t.Fatalf("+30%% allocs passed a 25%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("alloc regression not reported:\n%s", out.String())
	}
	// Within tolerance passes; a baseline without alloc numbers never
	// gates them.
	fresh.AllocsPerOp["BenchmarkX"] = 1200
	out.Reset()
	if err := Compare(&out, base, fresh, 0.25, 0.25); err != nil {
		t.Fatalf("+20%% allocs failed a 25%% gate: %v\n%s", err, out.String())
	}
	base.AllocsPerOp = nil
	fresh.AllocsPerOp["BenchmarkX"] = 1e9
	out.Reset()
	if err := Compare(&out, base, fresh, 0.25, 0.25); err != nil {
		t.Fatalf("alloc gate fired without baseline numbers: %v\n%s", err, out.String())
	}
}

func TestScalingGate(t *testing.T) {
	gate := &ScalingGate{
		Numerator:   "BenchmarkInjectionLoop/workers=8",
		Denominator: "BenchmarkInjectionLoop/workers=1",
		MaxRatio:    0.35,
		MinCPUs:     8,
	}
	base := &Report{
		NsPerOp: map[string]float64{
			"BenchmarkInjectionLoop/workers=1": 100,
			"BenchmarkInjectionLoop/workers=8": 30,
		},
		Scaling: gate,
	}
	fresh := &Report{
		NsPerOp: map[string]float64{
			"BenchmarkInjectionLoop/workers=1": 100,
			"BenchmarkInjectionLoop/workers=8": 30,
		},
		CPUs: 8,
	}

	var out strings.Builder
	if err := Compare(&out, base, fresh, 0.25, 0.25); err != nil {
		t.Fatalf("ratio 0.30 failed a 0.35 gate: %v\n%s", err, out.String())
	}

	// Serialized run: workers=8 no faster than workers=1. Keep the
	// per-benchmark ns/op gate quiet (same baseline) so the failure is
	// attributable to the ratio alone.
	fresh.NsPerOp["BenchmarkInjectionLoop/workers=8"] = 98
	base.NsPerOp["BenchmarkInjectionLoop/workers=8"] = 98
	out.Reset()
	if err := Compare(&out, base, fresh, 0.25, 0.25); err == nil {
		t.Fatalf("ratio 0.98 passed a 0.35 gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "scaling") {
		t.Fatalf("ratio failure not attributed to the scaling gate:\n%s", out.String())
	}

	// The same serialized numbers on an underprovisioned box skip the
	// gate with a note instead of failing (parallel speedup cannot be
	// measured without the cores) — and instead of silently passing.
	fresh.CPUs = 1
	out.Reset()
	if err := Compare(&out, base, fresh, 0.25, 0.25); err != nil {
		t.Fatalf("scaling gate enforced on a 1-CPU run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "skip") {
		t.Fatalf("skipped gate not reported:\n%s", out.String())
	}

	// A gate whose benchmarks are missing from the run fails loudly.
	fresh.CPUs = 8
	delete(fresh.NsPerOp, "BenchmarkInjectionLoop/workers=8")
	delete(base.NsPerOp, "BenchmarkInjectionLoop/workers=8") // keep the per-benchmark gate quiet
	out.Reset()
	if err := Compare(&out, base, fresh, 0.25, 0.25); err == nil {
		t.Fatalf("scaling gate with missing numerator passed:\n%s", out.String())
	}
}

func TestRecordStripsScalingConfig(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(input, []byte(benchmemOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	recorded := filepath.Join(dir, "rec.json")
	var out, errOut strings.Builder
	if err := run([]string{"-record", recorded, input}, &out, &errOut); err != nil {
		t.Fatalf("record: %v\n%s", err, errOut.String())
	}
	rep, err := readReport(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scaling != nil {
		t.Error("recorded report carries scaling configuration")
	}
	if rep.CPUs != 8 || rep.AllocsPerOp == nil {
		t.Errorf("recorded report lost measurements: %+v", rep)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{}, &out, &errOut); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run([]string{"-baseline", "x.json", "-tolerance", "-1"}, &out, &errOut); err == nil {
		t.Error("negative tolerance accepted")
	}
}
