// Command benchgate is the CI benchmark regression gate: it parses `go
// test -bench` output, aggregates ns/op and allocs/op per benchmark
// (minimum across -count repetitions, the noise-robust choice), records
// the numbers as JSON, and compares them against a committed baseline
// with relative tolerances — exiting non-zero when any benchmark
// regressed or disappeared.
//
//	go test -run xxx -bench 'BenchmarkInjectionLoop' \
//	    -benchmem -benchtime 3x -count 3 . | tee bench.txt
//	benchgate -record BENCH_new.json bench.txt                # first run
//	benchgate -baseline BENCH_baseline.json -tolerance 0.25 bench.txt
//
// Beyond per-benchmark numbers, the baseline may carry a "scaling"
// block — a wall-clock ratio gate between two benchmarks, e.g.
// workers=8 over workers=1 of the injection loop. The ratio gate is
// enforced only when the fresh run's recorded CPU count (the -N
// GOMAXPROCS suffix of the result lines) is at least the block's
// min_cpus: parallel speedup cannot be measured on a box without the
// cores, so underprovisioned runs skip it with a note instead of
// failing (or worse, silently passing a meaningless ratio).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// errUsage marks argument errors already reported on stderr.
var errUsage = errors.New("usage error")

// ScalingGate is the baseline's wall-clock ratio gate: the fresh run
// fails when ns/op(Numerator) / ns/op(Denominator) exceeds MaxRatio,
// provided the run had at least MinCPUs cores.
type ScalingGate struct {
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	MaxRatio    float64 `json:"max_ratio"`
	// MinCPUs guards the gate against underprovisioned runners (1 when
	// omitted, i.e. always enforced).
	MinCPUs int `json:"min_cpus,omitempty"`
}

// Report is the JSON format of a recorded benchmark run and of the
// committed baseline.
type Report struct {
	// NsPerOp maps a benchmark's full name (including sub-benchmark
	// path, without the -N GOMAXPROCS suffix) to its best observed
	// ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp is the matching minimum allocs/op, present for runs
	// made with -benchmem.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	// CPUs is the GOMAXPROCS the run was made under, recovered from the
	// benchmark-name suffix (1 when the suffix is absent).
	CPUs int `json:"cpus,omitempty"`
	// Scaling, when present in a baseline, turns on the ratio gate. It
	// is configuration, not measurement: -record never writes it.
	Scaling *ScalingGate `json:"scaling,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "", "baseline JSON to compare against (no comparison when empty)")
		record    = fs.String("record", "", "write the parsed numbers to this JSON file")
		tolerance = fs.Float64("tolerance", 0.25, "allowed relative ns/op regression (0.25 = +25%)")
		allocTol  = fs.Float64("alloc-tolerance", 0.25, "allowed relative allocs/op regression (0.25 = +25%)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if *tolerance < 0 || *allocTol < 0 {
		fmt.Fprintln(stderr, "benchgate: tolerances must be >= 0")
		return errUsage
	}
	if *baseline == "" && *record == "" {
		fmt.Fprintln(stderr, "benchgate: nothing to do: need -baseline and/or -record")
		return errUsage
	}

	var in io.Reader = os.Stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "benchgate: at most one input file")
		return errUsage
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	report, err := Parse(in)
	if err != nil {
		return err
	}
	if len(report.NsPerOp) == 0 {
		return errors.New("no benchmark results in input")
	}

	if *record != "" {
		if err := writeReport(*record, report); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d benchmarks to %s\n", len(report.NsPerOp), *record)
	}
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			return err
		}
		return Compare(stdout, base, report, *tolerance, *allocTol)
	}
	return nil
}

// Parse extracts ns/op (and, with -benchmem, allocs/op) per benchmark
// from `go test -bench` output, keeping the minimum over repeated runs
// of the same benchmark and the largest GOMAXPROCS suffix seen.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{NsPerOp: make(map[string]float64), CPUs: 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := rep.NsPerOp[res.name]; !seen || res.ns < prev {
			rep.NsPerOp[res.name] = res.ns
		}
		if res.allocs >= 0 {
			if rep.AllocsPerOp == nil {
				rep.AllocsPerOp = make(map[string]float64)
			}
			if prev, seen := rep.AllocsPerOp[res.name]; !seen || res.allocs < prev {
				rep.AllocsPerOp[res.name] = res.allocs
			}
		}
		if res.cpus > rep.CPUs {
			rep.CPUs = res.cpus
		}
	}
	return rep, sc.Err()
}

// lineResult is one parsed benchmark result line.
type lineResult struct {
	name   string
	ns     float64
	allocs float64 // -1 when the line has no allocs/op column
	cpus   int
}

// parseLine reads one result line, e.g.
//
//	BenchmarkInjectionLoop/workers=4-8  3  41769284 ns/op  9576 inj/s  2585 allocs/op
//
// returning the name with the trailing -GOMAXPROCS suffix stripped so
// baselines survive machines with different core counts (the suffix
// itself is kept as the run's CPU count).
func parseLine(line string) (lineResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return lineResult{}, false
	}
	res := lineResult{allocs: -1, cpus: 1}
	found := false
	for i := 3; i < len(fields); i++ {
		switch fields[i] {
		case "ns/op":
			ns, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return lineResult{}, false
			}
			res.ns = ns
			found = true
		case "allocs/op":
			if a, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
				res.allocs = a
			}
		}
	}
	if !found {
		return lineResult{}, false
	}
	res.name = fields[0]
	if dash := strings.LastIndex(res.name, "-"); dash > 0 {
		if n, err := strconv.Atoi(res.name[dash+1:]); err == nil {
			res.name = res.name[:dash]
			res.cpus = n
		}
	}
	return res, true
}

// Compare fails (with a per-benchmark report) when any baseline
// benchmark is missing from fresh, regressed beyond the ns/op
// tolerance, or regressed beyond the allocs/op tolerance (checked only
// where both sides recorded allocations). New benchmarks absent from
// the baseline pass with a note — they gate once the baseline is
// refreshed. A scaling block in the baseline additionally gates the
// wall-clock ratio between two benchmarks, skipped with a note when the
// fresh run had fewer CPUs than the block requires.
func Compare(w io.Writer, base, fresh *Report, tolerance, allocTolerance float64) error {
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	bad := 0
	for _, name := range names {
		old := base.NsPerOp[name]
		now, ok := fresh.NsPerOp[name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %-50s baseline %.0f ns/op, not in fresh run\n", name, old)
			bad++
			continue
		}
		change := (now - old) / old
		status := "ok      "
		if change > tolerance {
			status = "REGRESS "
			bad++
		}
		fmt.Fprintf(w, "%s %-50s %12.0f -> %12.0f ns/op (%+.1f%%, tolerance +%.0f%%)\n",
			status, name, old, now, 100*change, 100*tolerance)

		oldAllocs, haveOld := base.AllocsPerOp[name]
		newAllocs, haveNew := fresh.AllocsPerOp[name]
		if !haveOld || !haveNew || oldAllocs == 0 {
			continue
		}
		achange := (newAllocs - oldAllocs) / oldAllocs
		astatus := "ok      "
		if achange > allocTolerance {
			astatus = "REGRESS "
			bad++
		}
		fmt.Fprintf(w, "%s %-50s %12.0f -> %12.0f allocs/op (%+.1f%%, tolerance +%.0f%%)\n",
			astatus, name, oldAllocs, newAllocs, 100*achange, 100*allocTolerance)
	}
	for name := range fresh.NsPerOp {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Fprintf(w, "new      %-50s %12.0f ns/op (not in baseline)\n", name, fresh.NsPerOp[name])
		}
	}
	if g := base.Scaling; g != nil {
		if err := checkScaling(w, g, fresh); err != nil {
			fmt.Fprintf(w, "REGRESS  scaling gate: %v\n", err)
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d benchmark(s) regressed or went missing against the baseline", bad)
	}
	return nil
}

// checkScaling evaluates the baseline's ratio gate against the fresh
// run. A run on fewer CPUs than the gate requires is a skip, not a
// failure — and never a fabricated pass: the skip is printed so the log
// shows the gate did not run.
func checkScaling(w io.Writer, g *ScalingGate, fresh *Report) error {
	if g.Numerator == "" || g.Denominator == "" || g.MaxRatio <= 0 {
		return fmt.Errorf("malformed scaling block %+v", *g)
	}
	if minCPUs := g.MinCPUs; minCPUs > 1 && fresh.CPUs < minCPUs {
		fmt.Fprintf(w, "skip     scaling gate %s : %s (run used %d CPU(s), gate needs >= %d)\n",
			g.Numerator, g.Denominator, fresh.CPUs, minCPUs)
		return nil
	}
	num, ok := fresh.NsPerOp[g.Numerator]
	if !ok {
		return fmt.Errorf("numerator %q not in fresh run", g.Numerator)
	}
	den, ok := fresh.NsPerOp[g.Denominator]
	if !ok || den == 0 {
		return fmt.Errorf("denominator %q not in fresh run", g.Denominator)
	}
	ratio := num / den
	status := "ok      "
	var err error
	if ratio > g.MaxRatio {
		status = "REGRESS "
		err = fmt.Errorf("%s / %s = %.2f exceeds max ratio %.2f", g.Numerator, g.Denominator, ratio, g.MaxRatio)
	}
	fmt.Fprintf(w, "%s scaling %s : %s = %.2f (max %.2f, cpus %d)\n",
		status, g.Numerator, g.Denominator, ratio, g.MaxRatio, fresh.CPUs)
	return err
}

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.NsPerOp) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return &rep, nil
}

func writeReport(path string, rep *Report) error {
	rep.Scaling = nil // configuration lives only in hand-edited baselines
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
