// Command benchgate is the CI benchmark regression gate: it parses `go
// test -bench` output, aggregates ns/op per benchmark (minimum across
// -count repetitions, the noise-robust choice), records the numbers as
// JSON, and compares them against a committed baseline with a relative
// tolerance — exiting non-zero when any benchmark regressed or
// disappeared.
//
//	go test -bench 'BenchmarkInjectionLoop|BenchmarkAdaptiveVsFixed' \
//	    -benchtime 3x -count 3 . | tee bench.txt
//	benchgate -record BENCH_new.json bench.txt                # first run
//	benchgate -baseline BENCH_baseline.json -tolerance 0.25 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// errUsage marks argument errors already reported on stderr.
var errUsage = errors.New("usage error")

// Report is the JSON format of a recorded benchmark run and of the
// committed baseline.
type Report struct {
	// NsPerOp maps a benchmark's full name (including sub-benchmark
	// path, without the -N GOMAXPROCS suffix) to its best observed
	// ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "", "baseline JSON to compare against (no comparison when empty)")
		record    = fs.String("record", "", "write the parsed numbers to this JSON file")
		tolerance = fs.Float64("tolerance", 0.25, "allowed relative ns/op regression (0.25 = +25%)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if *tolerance < 0 {
		fmt.Fprintln(stderr, "benchgate: -tolerance must be >= 0")
		return errUsage
	}
	if *baseline == "" && *record == "" {
		fmt.Fprintln(stderr, "benchgate: nothing to do: need -baseline and/or -record")
		return errUsage
	}

	var in io.Reader = os.Stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "benchgate: at most one input file")
		return errUsage
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	report, err := Parse(in)
	if err != nil {
		return err
	}
	if len(report.NsPerOp) == 0 {
		return errors.New("no benchmark results in input")
	}

	if *record != "" {
		if err := writeReport(*record, report); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d benchmarks to %s\n", len(report.NsPerOp), *record)
	}
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			return err
		}
		return Compare(stdout, base, report, *tolerance)
	}
	return nil
}

// Parse extracts ns/op per benchmark from `go test -bench` output,
// keeping the minimum over repeated runs of the same benchmark.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{NsPerOp: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := rep.NsPerOp[name]; !seen || ns < prev {
			rep.NsPerOp[name] = ns
		}
	}
	return rep, sc.Err()
}

// parseLine reads one result line, e.g.
//
//	BenchmarkInjectionLoop/workers=4-8  3  41769284 ns/op  9576 inj/s
//
// returning the name with the trailing -GOMAXPROCS suffix stripped so
// baselines survive machines with different core counts.
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	// Find the "ns/op" unit; its value is the preceding field.
	for i := 3; i < len(fields); i++ {
		if fields[i] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return "", 0, false
		}
		name := fields[0]
		if dash := strings.LastIndex(name, "-"); dash > 0 {
			if _, err := strconv.Atoi(name[dash+1:]); err == nil {
				name = name[:dash]
			}
		}
		return name, ns, true
	}
	return "", 0, false
}

// Compare fails (with a per-benchmark report) when any baseline
// benchmark is missing from fresh or regressed beyond the tolerance.
// New benchmarks absent from the baseline pass with a note — they gate
// once the baseline is refreshed.
func Compare(w io.Writer, base, fresh *Report, tolerance float64) error {
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	bad := 0
	for _, name := range names {
		old := base.NsPerOp[name]
		now, ok := fresh.NsPerOp[name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %-50s baseline %.0f ns/op, not in fresh run\n", name, old)
			bad++
			continue
		}
		change := (now - old) / old
		status := "ok      "
		if change > tolerance {
			status = "REGRESS "
			bad++
		}
		fmt.Fprintf(w, "%s %-50s %12.0f -> %12.0f ns/op (%+.1f%%, tolerance +%.0f%%)\n",
			status, name, old, now, 100*change, 100*tolerance)
	}
	for name := range fresh.NsPerOp {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Fprintf(w, "new      %-50s %12.0f ns/op (not in baseline)\n", name, fresh.NsPerOp[name])
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d benchmark(s) regressed or went missing against the baseline", bad)
	}
	return nil
}

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.NsPerOp) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return &rep, nil
}

func writeReport(path string, rep *Report) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
