// Package repro's root benchmark harness regenerates every figure of the
// paper's evaluation section plus the design-choice ablations called out
// in DESIGN.md. Each benchmark prints the figure's rows (benchmark x chip
// series) on its first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation at a reduced (CI-friendly) injection
// count; raise it with -repro.n to approach the paper's 2,000.
package repro

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/ace"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

var benchInjections = flag.Int("repro.n", 60, "fault injections per campaign in figure benchmarks")

// BenchmarkFig1RegisterFileAVF regenerates Fig. 1: register-file AVF by
// FI and ACE with occupancy, 10 benchmarks x 4 chips plus averages.
func BenchmarkFig1RegisterFileAVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := core.FigureRegisterFile(core.Options{Injections: *benchInjections, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := report.WriteFigure(os.Stdout, fig,
				fmt.Sprintf("Fig. 1 — Register File AVF (%d injections/campaign)", *benchInjections)); err != nil {
				b.Fatal(err)
			}
			reportAverages(b, fig)
		}
	}
}

// BenchmarkFig2LocalMemoryAVF regenerates Fig. 2: local-memory AVF for
// the 7 shared-memory benchmarks x 4 chips plus averages.
func BenchmarkFig2LocalMemoryAVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := core.FigureLocalMemory(core.Options{Injections: *benchInjections, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := report.WriteFigure(os.Stdout, fig,
				fmt.Sprintf("Fig. 2 — Local Memory AVF (%d injections/campaign)", *benchInjections)); err != nil {
				b.Fatal(err)
			}
			reportAverages(b, fig)
		}
	}
}

// BenchmarkFig3EPF regenerates Fig. 3: executions per failure for all 10
// benchmarks on all 4 chips.
func BenchmarkFig3EPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := core.FigureEPF(core.Options{Injections: *benchInjections, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := report.WriteEPF(os.Stdout, data, "Fig. 3 — Executions per Failure (EPF)"); err != nil {
				b.Fatal(err)
			}
			// Summary metric: the paper's EPF range spans orders of
			// magnitude; report the spread.
			min, max := 0.0, 0.0
			for _, row := range data.Rows {
				for _, r := range row {
					if r.EPF <= 0 {
						continue
					}
					if min == 0 || r.EPF < min {
						min = r.EPF
					}
					if r.EPF > max {
						max = r.EPF
					}
				}
			}
			b.ReportMetric(min, "EPF-min")
			b.ReportMetric(max, "EPF-max")
		}
	}
}

// BenchmarkStatisticalSampling regenerates the paper's Section III
// footnote: the error margin of 2,000 injections at 99% confidence.
func BenchmarkStatisticalSampling(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		var err error
		margin, err = stats.MarginOfError(2000, 0, 0.99)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*margin, "%margin@2000")
}

// BenchmarkAblationScheduler compares the two issue-arbitration policies
// (round-robin vs greedy-then-oldest) across all four chips for one
// benchmark — the DESIGN.md scheduler ablation. Both policies must
// produce identical architectural results; only cycle counts may move.
func BenchmarkAblationScheduler(b *testing.B) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, chip := range chips.Evaluated() {
			gto := *chip
			gto.Scheduler = chips.SchedGTO
			rrCycles, rrAVF := runCyclesAndAVF(b, chip, bench)
			gtoCycles, gtoAVF := runCyclesAndAVF(b, &gto, bench)
			chip := chip
			schedulerOnce.Do2(chip.Name, func() {
				fmt.Printf("scheduler ablation %-16s rr=%d cyc (AVF-ACE %.2f%%), gto=%d cyc (AVF-ACE %.2f%%), gto/rr=%.3f\n",
					chip.Name, rrCycles, 100*rrAVF, gtoCycles, 100*gtoAVF,
					float64(gtoCycles)/float64(rrCycles))
			})
		}
	}
}

// onceBy prints each keyed line once per process, so ablation rows do not
// repeat when the benchmark harness re-runs with growing b.N.
type onceBy struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (o *onceBy) Do2(key string, f func()) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.seen == nil {
		o.seen = make(map[string]bool)
	}
	if o.seen[key] {
		return
	}
	o.seen[key] = true
	f()
}

var (
	schedulerOnce onceBy
	sampleOnce    onceBy
	normOnce      onceBy
	resourceOnce  onceBy
	widthOnce     onceBy
	tradeoffOnce  onceBy
)

// runCyclesAndAVF measures one benchmark's cycle count and register-file
// ACE AVF on a chip (the scheduling policy affects both: residency time
// stretches with the schedule).
func runCyclesAndAVF(b *testing.B, chip *chips.Chip, bench *workloads.Benchmark) (int64, float64) {
	b.Helper()
	d, err := devices.New(chip)
	if err != nil {
		b.Fatal(err)
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		b.Fatal(err)
	}
	regAVF, _, st, err := ace.Measure(d, hp)
	if err != nil {
		b.Fatal(err)
	}
	return st.Cycles, regAVF
}

// BenchmarkAblationSampleSize sweeps the FI sample size and reports the
// measured AVF with its shrinking confidence interval (DESIGN.md sample
// size ablation; the paper fixes n=2000).
func BenchmarkAblationSampleSize(b *testing.B) {
	bench, err := workloads.ByName("reduction")
	if err != nil {
		b.Fatal(err)
	}
	chip := chips.QuadroFX5600()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{100, 250, 500, 1000} {
			res, err := finject.Run(finject.Campaign{
				Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
				Injections: n, Seed: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
			lo, hi, err := res.AVFInterval(0.99)
			if err != nil {
				b.Fatal(err)
			}
			n := n
			sampleOnce.Do2(fmt.Sprint(n), func() {
				fmt.Printf("sample-size ablation n=%-5d AVF=%6.2f%%  99%% CI [%5.2f%%, %5.2f%%] width=%.2f%%\n",
					n, 100*res.AVF(), 100*lo, 100*hi, 100*(hi-lo))
			})
		}
	}
}

// BenchmarkAblationOccupancyNormalization contrasts chip-wide AVF (the
// paper's definition) with allocation-normalized AVF, quantifying how
// much of the cross-chip AVF difference is occupancy (DESIGN.md
// normalization ablation).
func BenchmarkAblationOccupancyNormalization(b *testing.B) {
	bench, err := workloads.ByName("transpose")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, chip := range chips.Evaluated() {
			d, err := devices.New(chip)
			if err != nil {
				b.Fatal(err)
			}
			hp, err := bench.New(chip.Vendor)
			if err != nil {
				b.Fatal(err)
			}
			regAVF, _, st, err := ace.Measure(d, hp)
			if err != nil {
				b.Fatal(err)
			}
			occ := st.Occupancy(gpu.RegisterFile, int64(chip.Units)*int64(chip.RegsPerUnit))
			norm := 0.0
			if occ > 0 {
				norm = regAVF / occ
			}
			chip := chip
			normOnce.Do2(chip.Name, func() {
				fmt.Printf("normalization ablation %-16s chip-wide AVF=%6.2f%% occ=%6.2f%% allocated-only AVF=%6.2f%%\n",
					chip.Name, 100*regAVF, 100*occ, 100*norm)
			})
		}
	}
}

// BenchmarkAblationResourceSize sweeps the register-file capacity of a
// Fermi-like chip and reports the ACE AVF — the paper's "resource sizes"
// factor: a larger file dilutes the same live state into more bits, so
// chip-wide AVF falls as capacity grows.
func BenchmarkAblationResourceSize(b *testing.B) {
	bench, err := workloads.ByName("reduction")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, regs := range []int{8192, 16384, 32768, 65536} {
			chip := chips.GeForceGTX480()
			chip.RegsPerUnit = regs
			chip.Name = fmt.Sprintf("GTX480-%dk-regs", regs/1024)
			d, err := devices.New(chip)
			if err != nil {
				b.Fatal(err)
			}
			hp, err := bench.New(chip.Vendor)
			if err != nil {
				b.Fatal(err)
			}
			regAVF, _, st, err := ace.Measure(d, hp)
			if err != nil {
				b.Fatal(err)
			}
			occ := st.Occupancy(gpu.RegisterFile, int64(chip.Units)*int64(regs))
			regs := regs
			resourceOnce.Do2(fmt.Sprint(regs), func() {
				fmt.Printf("resource-size ablation regs/SM=%-6d AVF-ACE=%6.3f%% occupancy=%6.2f%%\n",
					regs, 100*regAVF, 100*occ)
			})
		}
	}
}

// BenchmarkMethodologyTradeoff times a full FI campaign against a single
// ACE pass for the same cell and reports both AVFs — the paper's central
// analysis-time vs accuracy trade-off.
func BenchmarkMethodologyTradeoff(b *testing.B) {
	bench, err := workloads.ByName("histogram")
	if err != nil {
		b.Fatal(err)
	}
	chip := chips.QuadroFX5800()
	for i := 0; i < b.N; i++ {
		fiStart := nowSeconds()
		res, err := finject.Run(finject.Campaign{
			Chip: chip, Benchmark: bench, Structure: gpu.LocalMemory,
			Injections: *benchInjections, Seed: 13,
		})
		if err != nil {
			b.Fatal(err)
		}
		fiTime := nowSeconds() - fiStart

		aceStart := nowSeconds()
		d, err := devices.New(chip)
		if err != nil {
			b.Fatal(err)
		}
		hp, err := bench.New(chip.Vendor)
		if err != nil {
			b.Fatal(err)
		}
		_, localACE, _, err := ace.Measure(d, hp)
		if err != nil {
			b.Fatal(err)
		}
		aceTime := nowSeconds() - aceStart
		tradeoffOnce.Do2("tradeoff", func() {
			speedup := fiTime / aceTime
			fmt.Printf("methodology tradeoff (histogram local memory): FI(n=%d) AVF=%.2f%% in %.3fs; ACE AVF=%.2f%% in %.4fs (%.0fx faster)\n",
				*benchInjections, 100*res.AVF(), fiTime, 100*localACE, aceTime, speedup)
		})
	}
}

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// BenchmarkAblationFaultWidth sweeps the burst width of the injected
// fault (1/2/4 adjacent bits) — an extension beyond the paper's
// single-bit model. Wider bursts can only raise the AVF: every bit of
// the burst is an independent chance to land in a live interval.
func BenchmarkAblationFaultWidth(b *testing.B) {
	bench, err := workloads.ByName("transpose")
	if err != nil {
		b.Fatal(err)
	}
	chip := chips.QuadroFX5600()
	for i := 0; i < b.N; i++ {
		prev := -1.0
		for _, width := range []uint{1, 2, 4} {
			res, err := finject.Run(finject.Campaign{
				Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
				Injections: *benchInjections * 2, Seed: 19, FaultWidth: width,
			})
			if err != nil {
				b.Fatal(err)
			}
			width := width
			widthOnce.Do2(fmt.Sprint(width), func() {
				fmt.Printf("fault-width ablation width=%d AVF=%6.2f%% (sdc=%d due=%d timeout=%d)\n",
					width, 100*res.AVF(), res.Outcomes[gpu.OutcomeSDC],
					res.Outcomes[gpu.OutcomeDUE], res.Outcomes[gpu.OutcomeTimeout])
			})
			_ = prev
			prev = res.AVF()
		}
	}
}

// BenchmarkInjectionLoop measures the parallel injection hot path at a
// fixed sample size across worker counts; the shared golden keeps the
// reference run out of the loop, so the metric is pure injection
// throughput. Multi-worker runs must beat serial wall-clock while
// producing bit-identical results (enforced by finject's determinism
// tests).
func BenchmarkInjectionLoop(b *testing.B) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		b.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	golden, err := finject.NewGolden(chip, bench)
	if err != nil {
		b.Fatal(err)
	}
	const n = 400
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := finject.Run(finject.Campaign{
					Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
					Injections: n, Seed: 11, Golden: golden,
					Policy: finject.Policy{Workers: workers},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Injections != n {
					b.Fatalf("ran %d injections, want %d", res.Injections, n)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "inj/s")
		})
	}
}

// BenchmarkTelemetryOverhead runs the same injection loop with no
// observers and with every observer running — tracer installed and a
// goroutine scraping the metrics registry's Prometheus exposition in a
// tight loop — so the committed baseline pins the cost of observation
// itself. The always-on counters ride in both variants (they are part
// of the engine); the delta is the price of actually looking, and the
// CI bench gate fails if either variant regresses past tolerance.
func BenchmarkTelemetryOverhead(b *testing.B) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		b.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	golden, err := finject.NewGolden(chip, bench)
	if err != nil {
		b.Fatal(err)
	}
	const n = 400
	loop := func(b *testing.B) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := finject.Run(finject.Campaign{
				Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
				Injections: n, Seed: 11, Golden: golden,
				Policy: finject.Policy{Workers: 4},
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Injections != n {
				b.Fatalf("ran %d injections, want %d", res.Injections, n)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "inj/s")
	}
	b.Run("observed=off", loop)
	b.Run("observed=on", func(b *testing.B) {
		prev := telemetry.SetTracer(telemetry.NewTracer())
		defer telemetry.SetTracer(prev)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
					telemetry.Default.WritePrometheus(io.Discard)
				}
			}
		}()
		defer func() {
			close(stop)
			<-done
		}()
		loop(b)
	})
}

// BenchmarkCheckpointVsFull contrasts checkpointed fast-forward against
// full per-injection replay on the same cell with one shared golden:
// restoring the nearest snapshot below each fault cycle skips the
// fault-free prefix, which at uniform (bit, cycle) sampling halves the
// simulated cycles — the differential suite in internal/finject proves
// the results byte-identical, so the entire delta is pure speed. The
// committed BENCH_baseline.json carries both variants and
// cmd/benchgate fails CI if the win regresses.
func BenchmarkCheckpointVsFull(b *testing.B) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		b.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	golden, err := finject.NewGolden(chip, bench)
	if err != nil {
		b.Fatal(err)
	}
	const n = 400
	campaign := func(ckpt finject.Checkpoint) finject.Campaign {
		return finject.Campaign{
			Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
			Injections: n, Seed: 11, Golden: golden,
			Policy: finject.Policy{Workers: 4, Checkpoint: ckpt},
		}
	}
	run := func(b *testing.B, ckpt finject.Checkpoint) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := finject.Run(campaign(ckpt))
			if err != nil {
				b.Fatal(err)
			}
			if res.Injections != n {
				b.Fatalf("ran %d injections, want %d", res.Injections, n)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "inj/s")
	}
	b.Run("full-replay", func(b *testing.B) { run(b, finject.Checkpoint{Off: true}) })
	b.Run("checkpointed", func(b *testing.B) { run(b, finject.Checkpoint{}) })
}

// BenchmarkAdaptiveVsFixed contrasts the adaptive stopping rule against
// the fixed sample size on the same cell: the adaptive run must reach
// the requested margin with a fraction of the injections (reported as
// the realized-n metric).
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		b.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	golden, err := finject.NewGolden(chip, bench)
	if err != nil {
		b.Fatal(err)
	}
	const cap = 2000
	campaign := func(pol finject.Policy) finject.Campaign {
		return finject.Campaign{
			Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
			Injections: cap, Seed: 17, Golden: golden, Policy: pol,
		}
	}
	b.Run("fixed-n", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := finject.Run(campaign(finject.Policy{})); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cap, "realized-n")
	})
	b.Run("adaptive-margin=5%", func(b *testing.B) {
		realized := 0
		for i := 0; i < b.N; i++ {
			res, err := finject.Run(campaign(finject.Policy{Margin: 0.05}))
			if err != nil {
				b.Fatal(err)
			}
			realized = res.Injections
		}
		b.ReportMetric(float64(realized), "realized-n")
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed (lane
// instructions per second) for both vendors' simulators — the analysis
// time side of the paper's accuracy/time trade-off discussion.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, chip := range []*chips.Chip{chips.GeForceGTX480(), chips.HDRadeon7970()} {
		b.Run(chip.Arch, func(b *testing.B) {
			bench, err := workloads.ByName("matrixMul")
			if err != nil {
				b.Fatal(err)
			}
			hp, err := bench.New(chip.Vendor)
			if err != nil {
				b.Fatal(err)
			}
			d, err := devices.New(chip)
			if err != nil {
				b.Fatal(err)
			}
			var lanes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Reset()
				if err := hp.Run(d); err != nil {
					b.Fatal(err)
				}
				lanes += d.Stats().LaneInstructions
			}
			b.ReportMetric(float64(lanes)/b.Elapsed().Seconds(), "lane-instrs/s")
		})
	}
}

func runCycles(b *testing.B, chip *chips.Chip, bench *workloads.Benchmark) int64 {
	b.Helper()
	d, err := devices.New(chip)
	if err != nil {
		b.Fatal(err)
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		b.Fatal(err)
	}
	if err := hp.Run(d); err != nil {
		b.Fatal(err)
	}
	return d.Stats().Cycles
}

func reportAverages(b *testing.B, fig *core.Figure) {
	b.Helper()
	for ci, name := range fig.ChipNames {
		avg := fig.Averages[ci]
		_ = name
		b.ReportMetric(100*avg.AVFFI, "avgAVF-FI-"+shortName(avg.Chip)+"%")
		b.ReportMetric(100*avg.AVFACE, "avgAVF-ACE-"+shortName(avg.Chip)+"%")
		_ = ci
	}
}

func shortName(chip string) string {
	switch chip {
	case "HD Radeon 7970":
		return "7970"
	case "Quadro FX 5600":
		return "5600"
	case "Quadro FX 5800":
		return "5800"
	case "GeForce GTX 480":
		return "480"
	default:
		return chip
	}
}
