package cli

import (
	"flag"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/finject"
)

// PolicyFlags is the one shared definition of the engine-policy
// command-line knobs: -n, -workers, -margin, -confidence and
// -checkpoint. gufi, sifi and figures all register the block through
// AddPolicyFlags, so the three tools agree on names, defaults and help
// text, and a policy flag added here appears everywhere at once.
type PolicyFlags struct {
	// N is the injection count (the cap when Margin is set).
	N int
	// Workers bounds parallel device replicas per campaign (0 =
	// GOMAXPROCS).
	Workers int
	// Margin > 0 turns on adaptive sampling.
	Margin float64
	// Confidence is the interval and stopping-rule level.
	Confidence float64
	// CheckpointRaw is the unparsed -checkpoint value; Validate resolves
	// it into Checkpoint().
	CheckpointRaw string

	ckpt finject.Checkpoint
}

// AddPolicyFlags registers the shared policy flag block on fs and
// returns the destination struct. Call Validate after fs.Parse.
func AddPolicyFlags(fs *flag.FlagSet) *PolicyFlags {
	p := &PolicyFlags{}
	fs.IntVar(&p.N, "n", finject.DefaultInjections, "fault injections per campaign (the cap when -margin is set)")
	fs.IntVar(&p.Workers, "workers", 0, "parallel simulations per campaign (default GOMAXPROCS)")
	fs.Float64Var(&p.Margin, "margin", 0, "adaptive mode: stop each campaign once the AVF interval half-width reaches this (0 = run exactly -n injections)")
	fs.Float64Var(&p.Confidence, "confidence", finject.DefaultConfidence, "confidence level for AVF intervals and adaptive stopping")
	fs.StringVar(&p.CheckpointRaw, "checkpoint", "auto", "checkpointed fast-forward: auto, off, or a snapshot interval in cycles")
	return p
}

// Validate range-checks the parsed values and resolves -checkpoint.
func (p *PolicyFlags) Validate() error {
	if p.Margin < 0 || p.Margin >= 1 {
		return fmt.Errorf("margin %v outside [0,1)", p.Margin)
	}
	if p.Confidence <= 0 || p.Confidence >= 1 {
		return fmt.Errorf("confidence %v outside (0,1)", p.Confidence)
	}
	ck, err := finject.ParseCheckpoint(p.CheckpointRaw)
	if err != nil {
		return err
	}
	p.ckpt = ck
	return nil
}

// Checkpoint returns the parsed -checkpoint knob. Valid after Validate.
func (p *PolicyFlags) Checkpoint() finject.Checkpoint { return p.ckpt }

// SpecPolicy compiles the flags into an experiment-spec policy block; an
// "auto" checkpoint stays nil so the spec keeps its own default.
func (p *PolicyFlags) SpecPolicy() experiment.Policy {
	pol := experiment.Policy{Margin: p.Margin, Confidence: p.Confidence}
	if p.ckpt != (finject.Checkpoint{}) {
		ck := p.ckpt
		pol.Checkpoint = &ck
	}
	return pol
}

// Override applies one explicitly-set flag onto a parsed spec file —
// the fs.Visit hook that lets committed specs shrink to any budget —
// and reports whether the flag belonged to the policy block.
func (p *PolicyFlags) Override(name string, spec *experiment.Spec) bool {
	switch name {
	case "n":
		spec.Injections = p.N
	case "margin":
		spec.Policy.Margin = p.Margin
	case "confidence":
		spec.Policy.Confidence = p.Confidence
	case "checkpoint":
		ck := p.ckpt
		spec.Policy.Checkpoint = &ck
	default:
		return false
	}
	return true
}
