package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/telemetry"
)

// Obs carries the observability flags shared by every cmd/ binary:
// -log-level and -log-format select the structured logger, -trace
// collects campaign spans into a Chrome trace-event JSON file viewable
// in chrome://tracing or ui.perfetto.dev.
type Obs struct {
	level  *string
	format *string
	trace  *string
}

// AddObsFlags registers the shared observability flags on fs.
func AddObsFlags(fs *flag.FlagSet) *Obs {
	return &Obs{
		level:  fs.String("log-level", "info", "log level: debug, info, warn or error"),
		format: fs.String("log-format", "text", "log format: text or json"),
		trace:  fs.String("trace", "", "write campaign spans to this file as Chrome trace-event JSON"),
	}
}

// Level returns the parsed -log-level.
func (o *Obs) Level() slog.Level { return telemetry.ParseLevel(*o.level) }

// Init builds the structured logger writing to w (floored at floor, so
// e.g. a -quiet flag can raise the threshold), installs it as the slog
// default, and — when -trace was given — installs the process tracer.
// The returned cleanup uninstalls the tracer and writes the trace file;
// call it exactly once, after the work is done.
func (o *Obs) Init(w io.Writer, floor slog.Level) (*slog.Logger, func() error) {
	level := o.Level()
	if level < floor {
		level = floor
	}
	log := telemetry.NewLogger(w, level, *o.format)
	slog.SetDefault(log)

	if *o.trace == "" {
		return log, func() error { return nil }
	}
	tracer := telemetry.NewTracer()
	telemetry.SetTracer(tracer)
	path := *o.trace
	return log, func() error {
		telemetry.SetTracer(nil)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		log.Info("trace written", "path", path, "spans", tracer.Len())
		return nil
	}
}
