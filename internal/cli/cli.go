// Package cli implements the shared command-line driver behind the gufi
// (NVIDIA) and sifi (AMD) campaign tools.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Run executes one campaign for the given tool name, vendor, argument
// list and output stream.
func Run(tool string, vendor gpu.Vendor, args []string, w io.Writer) error {
	return RunContext(context.Background(), tool, vendor, args, w)
}

// RunContext is Run under a context; the gufi and sifi mains call it
// with a signal-canceled context so interrupts stop the campaign.
func RunContext(ctx context.Context, tool string, vendor gpu.Vendor, args []string, w io.Writer) error {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	defaultChip := "HD Radeon 7970"
	if vendor == gpu.NVIDIA {
		defaultChip = "GeForce GTX 480"
	}
	var (
		chipName   = fs.String("chip", defaultChip, "chip to simulate")
		benchName  = fs.String("bench", "vectoradd", "benchmark to run")
		structSel  = fs.String("structure", "regfile", "structure: regfile or local")
		n          = fs.Int("n", finject.DefaultInjections, "fault injections (the cap when -margin is set)")
		seed       = fs.Uint64("seed", 1, "campaign seed")
		workers    = fs.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		confidence = fs.Float64("confidence", finject.DefaultConfidence, "confidence level for AVF intervals and adaptive stopping")
		margin     = fs.Float64("margin", 0, "adaptive mode: stop once the AVF interval half-width reaches this (0 = run exactly -n injections)")
		storePath  = fs.String("store", "", "JSON-lines result store; repeated identical campaigns are served from it")
		listFlag   = fs.Bool("list", false, "list chips and benchmarks, then exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// Usage was printed; asking for help is not a failure.
			return nil
		}
		return err
	}

	if *margin < 0 || *margin >= 1 {
		return fmt.Errorf("margin %v outside [0,1)", *margin)
	}
	if *confidence <= 0 || *confidence >= 1 {
		return fmt.Errorf("confidence %v outside (0,1)", *confidence)
	}

	if *listFlag {
		fmt.Fprintf(w, "%s chips:\n", vendor)
		for _, c := range chips.Evaluated() {
			if c.Vendor == vendor {
				fmt.Fprintf(w, "  %-18s %s, %d units, %.3f GHz, %d regs/unit, %d KB local/unit\n",
					c.Name, c.Arch, c.Units, c.ClockGHz, c.RegsPerUnit, c.LocalBytesPerUnit>>10)
			}
		}
		fmt.Fprintln(w, "benchmarks:")
		for _, b := range workloads.All() {
			local := ""
			if b.UsesLocal {
				local = " (uses local memory)"
			}
			fmt.Fprintf(w, "  %s%s\n", b.Name, local)
		}
		return nil
	}

	chip, err := chips.ByName(*chipName)
	if err != nil {
		return err
	}
	if chip.Vendor != vendor {
		return fmt.Errorf("chip %s is a %s part; use the other tool", chip.Name, chip.Vendor)
	}
	bench, err := workloads.ByName(*benchName)
	if err != nil {
		return err
	}
	var st gpu.Structure
	switch strings.ToLower(*structSel) {
	case "regfile", "register-file", "rf", "vgpr":
		st = gpu.RegisterFile
	case "local", "local-memory", "shared", "lds":
		st = gpu.LocalMemory
	default:
		return fmt.Errorf("unknown structure %q (want regfile or local)", *structSel)
	}
	if st == gpu.LocalMemory && !bench.UsesLocal {
		return fmt.Errorf("benchmark %s does not use local memory (the paper's Fig. 2 covers only the 7 shared-memory benchmarks)", bench.Name)
	}

	opts := core.Options{Injections: *n, Seed: *seed, Workers: *workers, Confidence: *confidence, Margin: *margin}
	var sched *campaign.Scheduler
	if *storePath != "" {
		store, err := campaign.OpenDiskStore(*storePath)
		if err != nil {
			return err
		}
		defer store.Close()
		sched = campaign.New(campaign.Config{Store: store, CampaignWorkers: *workers})
		opts.Scheduler = sched
	}

	start := time.Now()
	cell, err := core.MeasureCellContext(ctx, chip, bench, st, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	worstCase, err := stats.MarginOfError(cell.Injections, 0, *confidence)
	if err != nil {
		return err
	}
	secs, err := metrics.ExecSeconds(cell.Cycles, chip.ClockGHz)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s campaign: %s / %s / %s\n", tool, chip.Name, bench.Name, st)
	if *margin > 0 {
		fmt.Fprintf(w, "  injections        %d of cap %d (adaptive: half-width %.2f%% <= margin %.2f%% at %.0f%% confidence, or cap)\n",
			cell.Injections, *n, 100*(cell.AVFFIHi-cell.AVFFILo)/2, 100**margin, 100**confidence)
	} else {
		fmt.Fprintf(w, "  injections        %d (worst-case margin ±%.2f%% at %.0f%% confidence)\n", cell.Injections, 100*worstCase, 100**confidence)
	}
	fmt.Fprintf(w, "  golden cycles     %d  (%.3e s at %.3f GHz)\n", cell.Cycles, secs, chip.ClockGHz)
	fmt.Fprintf(w, "  occupancy         %.2f%%\n", 100*cell.Occupancy)
	fmt.Fprintf(w, "  AVF (FI)          %.2f%%  [%.2f%%, %.2f%%] @%.0f%%\n", 100*cell.AVFFI, 100*cell.AVFFILo, 100*cell.AVFFIHi, 100**confidence)
	fmt.Fprintf(w, "  AVF (ACE)         %.2f%%\n", 100*cell.AVFACE)
	fmt.Fprintf(w, "  outcomes          masked=%d sdc=%d due=%d timeout=%d\n",
		cell.Outcomes[gpu.OutcomeMasked], cell.Outcomes[gpu.OutcomeSDC],
		cell.Outcomes[gpu.OutcomeDUE], cell.Outcomes[gpu.OutcomeTimeout])
	fmt.Fprintf(w, "  wall time         %v\n", elapsed.Round(time.Millisecond))
	if sched != nil {
		st := sched.Stats()
		fmt.Fprintf(w, "  store             %s (hits=%d runs=%d)\n", *storePath, st.Hits, st.Runs)
	}
	return nil
}
