// Package cli implements the shared command-line driver behind the gufi
// (NVIDIA) and sifi (AMD) campaign tools. Both tools are spec-first:
// -spec runs a declarative experiment file, and the classic single-cell
// flags are compiled into a one-cell spec internally, so either path is
// the same runner and the same result store.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/experiment"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Run executes one campaign for the given tool name, vendor, argument
// list and output stream.
func Run(tool string, vendor gpu.Vendor, args []string, w io.Writer) error {
	return RunContext(context.Background(), tool, vendor, args, w)
}

// RunContext is Run under a context; the gufi and sifi mains call it
// with a signal-canceled context so interrupts stop the campaign.
func RunContext(ctx context.Context, tool string, vendor gpu.Vendor, args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	defaultChip := "HD Radeon 7970"
	if vendor == gpu.NVIDIA {
		defaultChip = "GeForce GTX 480"
	}
	var (
		chipName    = fs.String("chip", defaultChip, "chip to simulate")
		benchName   = fs.String("bench", "vectoradd", "benchmark to run")
		structSel   = fs.String("structure", "regfile", "structure: regfile or local")
		seed        = fs.Uint64("seed", 1, "campaign seed")
		storePath   = fs.String("store", "", "result store file; repeated identical campaigns are served from it")
		storeFormat = fs.String("store-format", campaign.FormatAuto, "store file format: auto (sniff existing files, JSON for new), json, or binary")
		ladderDir   = fs.String("ladder-dir", "", "directory for persisted checkpoint ladders, shared read-only (mmap) across processes")
		specPath    = fs.String("spec", "", "run this experiment spec (JSON) instead of one flag-built cell")
		asJSON      = fs.Bool("json", false, "with -spec: emit the result as JSON instead of tables")
		listFlag    = fs.Bool("list", false, "list chips and benchmarks, then exit")
	)
	pf := AddPolicyFlags(fs)
	obs := AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// Usage was printed; asking for help is not a failure.
			return nil
		}
		return err
	}
	// Results go to w; structured logs and spans are observability and go
	// to stderr / the -trace file, never mixing into parseable output.
	_, closeTrace := obs.Init(os.Stderr, slog.LevelDebug)
	defer func() {
		if terr := closeTrace(); terr != nil && err == nil {
			err = terr
		}
	}()

	if err := pf.Validate(); err != nil {
		return err
	}
	if *ladderDir != "" {
		if err := os.MkdirAll(*ladderDir, 0o755); err != nil {
			return fmt.Errorf("%s: -ladder-dir: %w", tool, err)
		}
		finject.SetLadderDir(*ladderDir)
	}

	if *listFlag {
		fmt.Fprintf(w, "%s chips:\n", vendor)
		for _, c := range chips.Evaluated() {
			if c.Vendor == vendor {
				fmt.Fprintf(w, "  %-18s %s, %d units, %.3f GHz, %d regs/unit, %d KB local/unit\n",
					c.Name, c.Arch, c.Units, c.ClockGHz, c.RegsPerUnit, c.LocalBytesPerUnit>>10)
			}
		}
		fmt.Fprintln(w, "benchmarks:")
		for _, b := range workloads.All() {
			local := ""
			if b.UsesLocal {
				local = " (uses local memory)"
			}
			fmt.Fprintf(w, "  %s%s\n", b.Name, local)
		}
		return nil
	}

	scheduler := func() (*campaign.Scheduler, func(io.Writer), error) {
		var store campaign.Store
		closeStore := func() {}
		if *storePath != "" {
			ds, err := campaign.OpenStore(*storePath, *storeFormat)
			if err != nil {
				return nil, nil, err
			}
			store = ds
			closeStore = func() { ds.Close() }
		}
		sched := campaign.New(campaign.Config{Store: store, CampaignWorkers: pf.Workers})
		summary := func(out io.Writer) {
			defer closeStore()
			if *storePath != "" {
				st := sched.Stats()
				fmt.Fprintf(out, "  store             %s (hits=%d runs=%d)\n", *storePath, st.Hits, st.Runs)
			}
		}
		return sched, summary, nil
	}

	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		spec, err := experiment.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		// Explicitly set campaign flags override the file, matching
		// cmd/figures, so committed specs shrink to any budget.
		fs.Visit(func(fl *flag.Flag) {
			if pf.Override(fl.Name, &spec) {
				return
			}
			if fl.Name == "seed" {
				spec.Seed = *seed
			}
		})
		// A spec without a chip axis would normalize to the paper's
		// four chips — both vendors — and could then run on neither
		// tool; default it to this tool's vendor instead. Everything
		// else stays raw: the runner's Validate must see the file's own
		// values so out-of-range typos are rejected, not defaulted.
		if len(spec.Chips) == 0 {
			for _, c := range chips.Evaluated() {
				if c.Vendor == vendor {
					spec.Chips = append(spec.Chips, c.Name)
				}
			}
		}
		// Each tool owns one vendor's chips, as in the paper.
		for _, name := range spec.Chips {
			c, err := chips.ByName(name)
			if err != nil {
				return err
			}
			if c.Vendor != vendor {
				return fmt.Errorf("chip %s is a %s part; use the other tool (or cmd/figures, which is vendor-neutral)", c.Name, c.Vendor)
			}
		}
		sched, statsLine, err := scheduler()
		if err != nil {
			return err
		}
		runner := &experiment.Runner{Scheduler: sched}
		res, err := runner.Run(ctx, spec)
		if err != nil {
			statsLine(io.Discard)
			return err
		}
		if *asJSON {
			err = report.WriteExperimentJSON(w, res)
		} else {
			err = report.WriteExperiment(w, res)
		}
		statsLine(w)
		return err
	}

	// Classic single-cell mode: the flags compile into a one-cell spec
	// and run through the same runner as every other surface.
	chip, err := chips.ByName(*chipName)
	if err != nil {
		return err
	}
	if chip.Vendor != vendor {
		return fmt.Errorf("chip %s is a %s part; use the other tool", chip.Name, chip.Vendor)
	}
	bench, err := workloads.ByName(*benchName)
	if err != nil {
		return err
	}
	var st gpu.Structure
	switch strings.ToLower(*structSel) {
	case "regfile", "register-file", "rf", "vgpr":
		st = gpu.RegisterFile
	case "local", "local-memory", "shared", "lds":
		st = gpu.LocalMemory
	default:
		return fmt.Errorf("unknown structure %q (want regfile or local)", *structSel)
	}
	if st == gpu.LocalMemory && !bench.UsesLocal {
		return fmt.Errorf("benchmark %s does not use local memory (the paper's Fig. 2 covers only the 7 shared-memory benchmarks)", bench.Name)
	}

	spec := experiment.Spec{
		Chips:      []string{chip.Name},
		Benchmarks: []string{bench.Name},
		Structures: []gpu.Structure{st},
		Estimator:  experiment.EstimatorBoth,
		Injections: pf.N,
		Seed:       *seed,
		Policy:     pf.SpecPolicy(),
	}
	sched, statsLine, err := scheduler()
	if err != nil {
		return err
	}
	runner := &experiment.Runner{Scheduler: sched}
	start := time.Now()
	res, err := runner.Run(ctx, spec)
	if err != nil {
		statsLine(io.Discard)
		return err
	}
	elapsed := time.Since(start)
	cell := res.Tables[0].Cells[0][0]

	worstCase, err := stats.MarginOfError(cell.Injections, 0, pf.Confidence)
	if err != nil {
		return err
	}
	secs, err := metrics.ExecSeconds(cell.Cycles, chip.ClockGHz)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s campaign: %s / %s / %s\n", tool, chip.Name, bench.Name, st)
	if pf.Margin > 0 {
		fmt.Fprintf(w, "  injections        %d of cap %d (adaptive: half-width %.2f%% <= margin %.2f%% at %.0f%% confidence, or cap)\n",
			cell.Injections, pf.N, 100*(cell.AVFFIHi-cell.AVFFILo)/2, 100*pf.Margin, 100*pf.Confidence)
	} else {
		fmt.Fprintf(w, "  injections        %d (worst-case margin ±%.2f%% at %.0f%% confidence)\n", cell.Injections, 100*worstCase, 100*pf.Confidence)
	}
	fmt.Fprintf(w, "  golden cycles     %d  (%.3e s at %.3f GHz)\n", cell.Cycles, secs, chip.ClockGHz)
	fmt.Fprintf(w, "  occupancy         %.2f%%\n", 100*cell.Occupancy)
	fmt.Fprintf(w, "  AVF (FI)          %.2f%%  [%.2f%%, %.2f%%] @%.0f%%\n", 100*cell.AVFFI, 100*cell.AVFFILo, 100*cell.AVFFIHi, 100*pf.Confidence)
	fmt.Fprintf(w, "  AVF (ACE)         %.2f%%\n", 100*cell.AVFACE)
	fmt.Fprintf(w, "  outcomes          masked=%d sdc=%d due=%d timeout=%d\n",
		cell.Outcomes[gpu.OutcomeMasked], cell.Outcomes[gpu.OutcomeSDC],
		cell.Outcomes[gpu.OutcomeDUE], cell.Outcomes[gpu.OutcomeTimeout])
	fmt.Fprintf(w, "  wall time         %v\n", elapsed.Round(time.Millisecond))
	statsLine(w)
	return nil
}
