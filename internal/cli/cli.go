// Package cli implements the shared command-line driver behind the gufi
// (NVIDIA) and sifi (AMD) campaign tools.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Main runs one campaign tool with os-level arguments, exiting non-zero
// on error. Interrupts cancel the campaign promptly.
func Main(tool string, vendor gpu.Vendor) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := RunContext(ctx, tool, vendor, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// Run executes one campaign for the given tool name, vendor, argument
// list and output stream.
func Run(tool string, vendor gpu.Vendor, args []string, w io.Writer) error {
	return RunContext(context.Background(), tool, vendor, args, w)
}

// RunContext is Run under a context; it is Main's testable core.
func RunContext(ctx context.Context, tool string, vendor gpu.Vendor, args []string, w io.Writer) error {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	defaultChip := "HD Radeon 7970"
	if vendor == gpu.NVIDIA {
		defaultChip = "GeForce GTX 480"
	}
	var (
		chipName  = fs.String("chip", defaultChip, "chip to simulate")
		benchName = fs.String("bench", "vectoradd", "benchmark to run")
		structSel = fs.String("structure", "regfile", "structure: regfile or local")
		n         = fs.Int("n", finject.DefaultInjections, "fault injections")
		seed      = fs.Uint64("seed", 1, "campaign seed")
		workers   = fs.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		storePath = fs.String("store", "", "JSON-lines result store; repeated identical campaigns are served from it")
		listFlag  = fs.Bool("list", false, "list chips and benchmarks, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listFlag {
		fmt.Fprintf(w, "%s chips:\n", vendor)
		for _, c := range chips.Evaluated() {
			if c.Vendor == vendor {
				fmt.Fprintf(w, "  %-18s %s, %d units, %.3f GHz, %d regs/unit, %d KB local/unit\n",
					c.Name, c.Arch, c.Units, c.ClockGHz, c.RegsPerUnit, c.LocalBytesPerUnit>>10)
			}
		}
		fmt.Fprintln(w, "benchmarks:")
		for _, b := range workloads.All() {
			local := ""
			if b.UsesLocal {
				local = " (uses local memory)"
			}
			fmt.Fprintf(w, "  %s%s\n", b.Name, local)
		}
		return nil
	}

	chip, err := chips.ByName(*chipName)
	if err != nil {
		return err
	}
	if chip.Vendor != vendor {
		return fmt.Errorf("chip %s is a %s part; use the other tool", chip.Name, chip.Vendor)
	}
	bench, err := workloads.ByName(*benchName)
	if err != nil {
		return err
	}
	var st gpu.Structure
	switch strings.ToLower(*structSel) {
	case "regfile", "register-file", "rf", "vgpr":
		st = gpu.RegisterFile
	case "local", "local-memory", "shared", "lds":
		st = gpu.LocalMemory
	default:
		return fmt.Errorf("unknown structure %q (want regfile or local)", *structSel)
	}
	if st == gpu.LocalMemory && !bench.UsesLocal {
		return fmt.Errorf("benchmark %s does not use local memory (the paper's Fig. 2 covers only the 7 shared-memory benchmarks)", bench.Name)
	}

	opts := core.Options{Injections: *n, Seed: *seed, Workers: *workers}
	var sched *campaign.Scheduler
	if *storePath != "" {
		store, err := campaign.OpenDiskStore(*storePath)
		if err != nil {
			return err
		}
		defer store.Close()
		sched = campaign.New(campaign.Config{Store: store, CampaignWorkers: *workers})
		opts.Scheduler = sched
	}

	start := time.Now()
	cell, err := core.MeasureCellContext(ctx, chip, bench, st, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	margin, err := stats.MarginOfError(*n, 0, 0.99)
	if err != nil {
		return err
	}
	secs, err := metrics.ExecSeconds(cell.Cycles, chip.ClockGHz)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s campaign: %s / %s / %s\n", tool, chip.Name, bench.Name, st)
	fmt.Fprintf(w, "  injections        %d (worst-case margin ±%.2f%% at 99%% confidence)\n", *n, 100*margin)
	fmt.Fprintf(w, "  golden cycles     %d  (%.3e s at %.3f GHz)\n", cell.Cycles, secs, chip.ClockGHz)
	fmt.Fprintf(w, "  occupancy         %.2f%%\n", 100*cell.Occupancy)
	fmt.Fprintf(w, "  AVF (FI)          %.2f%%  [%.2f%%, %.2f%%] @99%%\n", 100*cell.AVFFI, 100*cell.AVFFILo, 100*cell.AVFFIHi)
	fmt.Fprintf(w, "  AVF (ACE)         %.2f%%\n", 100*cell.AVFACE)
	fmt.Fprintf(w, "  outcomes          masked=%d sdc=%d due=%d timeout=%d\n",
		cell.Outcomes[gpu.OutcomeMasked], cell.Outcomes[gpu.OutcomeSDC],
		cell.Outcomes[gpu.OutcomeDUE], cell.Outcomes[gpu.OutcomeTimeout])
	fmt.Fprintf(w, "  wall time         %v\n", elapsed.Round(time.Millisecond))
	if sched != nil {
		st := sched.Stats()
		fmt.Fprintf(w, "  store             %s (hits=%d runs=%d)\n", *storePath, st.Hits, st.Runs)
	}
	return nil
}
