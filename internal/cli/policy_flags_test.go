package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/finject"
)

// TestPolicyFlagsHelpGolden pins the -h output of the shared policy
// flag block byte for byte. gufi, sifi and figures all print exactly
// this text (plus their tool-specific flags), so a change here is a
// user-visible CLI change across all three tools at once — update the
// golden deliberately, not incidentally.
func TestPolicyFlagsHelpGolden(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	AddPolicyFlags(fs)
	fs.PrintDefaults()

	const golden = `  -checkpoint string
    	checkpointed fast-forward: auto, off, or a snapshot interval in cycles (default "auto")
  -confidence float
    	confidence level for AVF intervals and adaptive stopping (default 0.99)
  -margin float
    	adaptive mode: stop each campaign once the AVF interval half-width reaches this (0 = run exactly -n injections)
  -n int
    	fault injections per campaign (the cap when -margin is set) (default 2000)
  -workers int
    	parallel simulations per campaign (default GOMAXPROCS)
`
	if got := buf.String(); got != golden {
		t.Errorf("policy flag help changed:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestPolicyFlagsValidate(t *testing.T) {
	parse := func(t *testing.T, args ...string) (*PolicyFlags, error) {
		t.Helper()
		fs := flag.NewFlagSet("tool", flag.ContinueOnError)
		fs.SetOutput(&bytes.Buffer{})
		p := AddPolicyFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return p, p.Validate()
	}

	if _, err := parse(t); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if _, err := parse(t, "-margin", "1.5"); err == nil || !strings.Contains(err.Error(), "margin") {
		t.Errorf("margin 1.5 accepted (err=%v)", err)
	}
	if _, err := parse(t, "-confidence", "0"); err == nil || !strings.Contains(err.Error(), "confidence") {
		t.Errorf("confidence 0 accepted (err=%v)", err)
	}
	if _, err := parse(t, "-checkpoint", "sometimes"); err == nil {
		t.Error("bad -checkpoint accepted")
	}

	p, err := parse(t, "-checkpoint", "128")
	if err != nil {
		t.Fatal(err)
	}
	if ck := p.Checkpoint(); ck.Off || ck.Interval != 128 {
		t.Errorf("-checkpoint 128 parsed to %+v", ck)
	}
}

func TestPolicyFlagsSpecPolicy(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	p := AddPolicyFlags(fs)
	if err := fs.Parse([]string{"-margin", "0.05", "-confidence", "0.9"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pol := p.SpecPolicy()
	if pol.Margin != 0.05 || pol.Confidence != 0.9 {
		t.Errorf("SpecPolicy = %+v", pol)
	}
	// An "auto" checkpoint must stay nil so specs keep their own default.
	if pol.Checkpoint != nil {
		t.Errorf("auto checkpoint produced explicit spec knob %+v", *pol.Checkpoint)
	}

	fs = flag.NewFlagSet("tool", flag.ContinueOnError)
	p = AddPolicyFlags(fs)
	if err := fs.Parse([]string{"-checkpoint", "off"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if pol := p.SpecPolicy(); pol.Checkpoint == nil || !pol.Checkpoint.Off {
		t.Errorf("-checkpoint off lost: %+v", pol.Checkpoint)
	}
}

func TestPolicyFlagsOverride(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	p := AddPolicyFlags(fs)
	if err := fs.Parse([]string{"-n", "100", "-margin", "0.02", "-checkpoint", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	spec := experiment.Spec{Injections: 2000, Seed: 9, Policy: experiment.Policy{Margin: 0.5}}
	overridden := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { overridden[fl.Name] = p.Override(fl.Name, &spec) })

	if !overridden["n"] || !overridden["margin"] || !overridden["checkpoint"] {
		t.Fatalf("policy flags not claimed by Override: %v", overridden)
	}
	if spec.Injections != 100 || spec.Policy.Margin != 0.02 {
		t.Errorf("overrides not applied: %+v", spec)
	}
	if spec.Policy.Checkpoint == nil || *spec.Policy.Checkpoint != (finject.Checkpoint{Interval: 64}) {
		t.Errorf("checkpoint override not applied: %+v", spec.Policy.Checkpoint)
	}
	if spec.Seed != 9 {
		t.Errorf("Override touched a non-policy field: seed=%d", spec.Seed)
	}
	if p.Override("seed", &spec) {
		t.Error("Override claimed -seed, which is not a policy flag")
	}
}
