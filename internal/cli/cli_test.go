package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gpu"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := Run("gufi", gpu.NVIDIA, []string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Quadro FX 5600", "GeForce GTX 480", "matrixMul", "vectoradd", "uses local memory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Radeon") {
		t.Fatal("gufi listed an AMD chip")
	}
}

func TestRunCampaign(t *testing.T) {
	var sb strings.Builder
	err := Run("sifi", gpu.AMD, []string{"-bench", "vectoradd", "-n", "40", "-seed", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"HD Radeon 7970", "AVF (FI)", "AVF (ACE)", "occupancy", "masked="} {
		if !strings.Contains(out, want) {
			t.Fatalf("campaign output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithStore(t *testing.T) {
	store := filepath.Join(t.TempDir(), "cells.jsonl")
	args := []string{"-bench", "vectoradd", "-n", "30", "-seed", "8", "-store", store}

	var cold strings.Builder
	if err := Run("gufi", gpu.NVIDIA, args, &cold); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold.String(), "hits=0 runs=1") {
		t.Fatalf("cold run should execute the campaign:\n%s", cold.String())
	}

	var warm strings.Builder
	if err := Run("gufi", gpu.NVIDIA, args, &warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "hits=1 runs=0") {
		t.Fatalf("warm run should be served from the store:\n%s", warm.String())
	}
	// The numbers must match between cold and warm runs.
	extract := func(out, label string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, label) {
				return line
			}
		}
		t.Fatalf("no %q line in:\n%s", label, out)
		return ""
	}
	if extract(cold.String(), "AVF (FI)") != extract(warm.String(), "AVF (FI)") {
		t.Fatal("stored result differs from computed result")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-chip", "No Such GPU"},
		{"-chip", "HD Radeon 7970"}, // AMD chip under the NVIDIA tool
		{"-bench", "nope"},
		{"-structure", "l2cache"},
		{"-bench", "vectoradd", "-structure", "local"}, // not a local-memory benchmark
	}
	for _, args := range cases {
		if err := Run("gufi", gpu.NVIDIA, args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSpec: both tools run declarative specs over their own vendor's
// chips, with the shared renderer.
func TestRunSpec(t *testing.T) {
	path := writeSpec(t, `{
		"version": 1,
		"name": "nv-sweep",
		"chips": ["Mini NVIDIA"],
		"benchmarks": ["vectoradd", "transpose"],
		"estimator": "fi",
		"injections": 20,
		"seed": 3
	}`)
	var sb strings.Builder
	if err := Run("gufi", gpu.NVIDIA, []string{"-spec", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"nv-sweep", "register-file AVF", "vectoradd", "transpose", "average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("spec output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSpecJSON(t *testing.T) {
	path := writeSpec(t, `{
		"version": 1,
		"chips": ["Mini AMD"],
		"benchmarks": ["reduction"],
		"estimator": "fi",
		"injections": 20
	}`)
	var sb strings.Builder
	if err := Run("sifi", gpu.AMD, []string{"-spec", path, "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Chips []string `json:"chips"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Chips) != 1 || doc.Chips[0] != "Mini AMD" {
		t.Fatalf("chips: %v", doc.Chips)
	}
}

// TestRunSpecVendorGate: gufi refuses AMD chips in specs, exactly as it
// does for -chip.
func TestRunSpecVendorGate(t *testing.T) {
	path := writeSpec(t, `{
		"version": 1,
		"chips": ["HD Radeon 7970"],
		"benchmarks": ["vectoradd"],
		"injections": 10
	}`)
	var sb strings.Builder
	err := Run("gufi", gpu.NVIDIA, []string{"-spec", path}, &sb)
	if err == nil || !strings.Contains(err.Error(), "use the other tool") {
		t.Fatalf("vendor gate missing: %v", err)
	}
}

func TestRunSpecBadFile(t *testing.T) {
	var sb strings.Builder
	if err := Run("gufi", gpu.NVIDIA, []string{"-spec", "/no/such.json"}, &sb); err == nil {
		t.Fatal("missing spec file accepted")
	}
	bad := writeSpec(t, `{"version": 1, "bogus_field": true}`)
	if err := Run("gufi", gpu.NVIDIA, []string{"-spec", bad}, &sb); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestRunSpecDefaultsToVendorChips: a spec with no chip axis (the
// README's minimal form) must default to the tool's own vendor rather
// than normalizing to the mixed four-chip paper grid and then failing
// the vendor gate.
func TestRunSpecDefaultsToVendorChips(t *testing.T) {
	path := writeSpec(t, `{
		"version": 1,
		"benchmarks": ["vectoradd"],
		"estimator": "fi",
		"injections": 10,
		"seed": 1
	}`)
	var sb strings.Builder
	if err := Run("sifi", gpu.AMD, []string{"-spec", path}, &sb); err != nil {
		t.Fatalf("chips-less spec rejected: %v", err)
	}
	if !strings.Contains(sb.String(), "HD Radeon 7970") {
		t.Fatalf("AMD default chip missing:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "GeForce") || strings.Contains(sb.String(), "Quadro") {
		t.Fatalf("sifi ran NVIDIA chips:\n%s", sb.String())
	}
}

// TestRunSpecFlagOverride: explicitly set campaign flags override the
// file, matching cmd/figures (the documented contract).
func TestRunSpecFlagOverride(t *testing.T) {
	path := writeSpec(t, `{
		"version": 1,
		"chips": ["Mini NVIDIA"],
		"benchmarks": ["vectoradd"],
		"estimator": "fi",
		"injections": 500,
		"seed": 2
	}`)
	var sb strings.Builder
	if err := Run("gufi", gpu.NVIDIA, []string{"-spec", path, "-n", "25"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "25 injections/campaign") {
		t.Fatalf("-n did not override the spec:\n%s", sb.String())
	}
}

// TestRunSpecRejectsBadConfidence: out-of-range policy values in the
// file must be rejected, not silently defaulted.
func TestRunSpecRejectsBadConfidence(t *testing.T) {
	path := writeSpec(t, `{
		"version": 1,
		"chips": ["Mini NVIDIA"],
		"benchmarks": ["vectoradd"],
		"injections": 10,
		"policy": {"confidence": 95}
	}`)
	var sb strings.Builder
	err := Run("gufi", gpu.NVIDIA, []string{"-spec", path}, &sb)
	if err == nil || !strings.Contains(err.Error(), "confidence") {
		t.Fatalf("confidence typo accepted: %v", err)
	}
}
