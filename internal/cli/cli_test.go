package cli

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gpu"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := Run("gufi", gpu.NVIDIA, []string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Quadro FX 5600", "GeForce GTX 480", "matrixMul", "vectoradd", "uses local memory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Radeon") {
		t.Fatal("gufi listed an AMD chip")
	}
}

func TestRunCampaign(t *testing.T) {
	var sb strings.Builder
	err := Run("sifi", gpu.AMD, []string{"-bench", "vectoradd", "-n", "40", "-seed", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"HD Radeon 7970", "AVF (FI)", "AVF (ACE)", "occupancy", "masked="} {
		if !strings.Contains(out, want) {
			t.Fatalf("campaign output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithStore(t *testing.T) {
	store := filepath.Join(t.TempDir(), "cells.jsonl")
	args := []string{"-bench", "vectoradd", "-n", "30", "-seed", "8", "-store", store}

	var cold strings.Builder
	if err := Run("gufi", gpu.NVIDIA, args, &cold); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold.String(), "hits=0 runs=1") {
		t.Fatalf("cold run should execute the campaign:\n%s", cold.String())
	}

	var warm strings.Builder
	if err := Run("gufi", gpu.NVIDIA, args, &warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "hits=1 runs=0") {
		t.Fatalf("warm run should be served from the store:\n%s", warm.String())
	}
	// The numbers must match between cold and warm runs.
	extract := func(out, label string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, label) {
				return line
			}
		}
		t.Fatalf("no %q line in:\n%s", label, out)
		return ""
	}
	if extract(cold.String(), "AVF (FI)") != extract(warm.String(), "AVF (FI)") {
		t.Fatal("stored result differs from computed result")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-chip", "No Such GPU"},
		{"-chip", "HD Radeon 7970"}, // AMD chip under the NVIDIA tool
		{"-bench", "nope"},
		{"-structure", "l2cache"},
		{"-bench", "vectoradd", "-structure", "local"}, // not a local-memory benchmark
	}
	for _, args := range cases {
		if err := Run("gufi", gpu.NVIDIA, args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
