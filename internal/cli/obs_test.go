package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/telemetry"
)

// TestRunWithTrace drives the shared observability flags end to end
// through the campaign driver: -trace must leave a parseable Chrome
// trace-event file with campaign spans, and the tracer must be
// uninstalled afterwards.
func TestRunWithTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	args := []string{"-bench", "vectoradd", "-n", "30", "-seed", "3",
		"-trace", tracePath, "-log-level", "warn"}
	if err := Run("gufi", gpu.NVIDIA, args, &sb); err != nil {
		t.Fatal(err)
	}
	if telemetry.ActiveTracer() != nil {
		t.Fatal("tracer left installed after the run")
	}
	buf, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v\n%s", err, buf)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no spans")
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"cell_execute", "golden_run", "injection_round"} {
		if !names[want] {
			t.Fatalf("trace missing %s span; got %v", want, names)
		}
	}
}

// TestObsFlagErrors pins flag validation: a bad -log-level falls back
// to info rather than failing the run (observability must never block
// science), and an unwritable -trace path is a real error.
func TestObsFlagErrors(t *testing.T) {
	var sb strings.Builder
	args := []string{"-bench", "vectoradd", "-n", "20", "-seed", "3",
		"-log-level", "nonsense"}
	if err := Run("gufi", gpu.NVIDIA, args, &sb); err != nil {
		t.Fatalf("bad -log-level should degrade to info, got %v", err)
	}

	sb.Reset()
	args = []string{"-bench", "vectoradd", "-n", "20", "-seed", "3",
		"-trace", filepath.Join(t.TempDir(), "no", "such", "dir", "t.json")}
	if err := Run("gufi", gpu.NVIDIA, args, &sb); err == nil {
		t.Fatal("unwritable -trace path accepted")
	}
	if telemetry.ActiveTracer() != nil {
		t.Fatal("tracer left installed after a failed trace write")
	}
}
