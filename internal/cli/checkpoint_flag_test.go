package cli

import (
	"strings"
	"testing"

	"repro/internal/gpu"
)

// TestRunCheckpointFlag runs the same tiny campaign with checkpointing
// off and with a fixed interval; both must succeed and print identical
// AVF lines (the knob is execution-only), while a malformed value is
// rejected before anything runs.
func TestRunCheckpointFlag(t *testing.T) {
	run := func(ckpt string) string {
		t.Helper()
		var sb strings.Builder
		err := Run("sifi", gpu.AMD, []string{"-bench", "vectoradd", "-n", "40", "-seed", "5", "-checkpoint", ckpt}, &sb)
		if err != nil {
			t.Fatalf("-checkpoint %s: %v", ckpt, err)
		}
		return sb.String()
	}
	avfLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "AVF (FI)") {
				return line
			}
		}
		t.Fatalf("no AVF line in output:\n%s", out)
		return ""
	}
	off := avfLine(run("off"))
	fixed := avfLine(run("1024"))
	if off != fixed {
		t.Fatalf("checkpoint knob changed the measured AVF:\noff:  %s\n1024: %s", off, fixed)
	}

	var sb strings.Builder
	if err := Run("sifi", gpu.AMD, []string{"-checkpoint", "sometimes"}, &sb); err == nil {
		t.Fatal("bad -checkpoint value accepted")
	}
}
