package campaign

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func testCampaign(t *testing.T, bench string) finject.Campaign {
	t.Helper()
	b, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	return finject.Campaign{
		Chip:       chips.MiniNVIDIA(),
		Benchmark:  b,
		Structure:  gpu.RegisterFile,
		Injections: 40,
		Seed:       11,
	}
}

func TestKeyCanonicalization(t *testing.T) {
	// A campaign written with implicit defaults and one with the defaults
	// spelled out are the same cell.
	implicit := CellSpec{Chip: "Mini NVIDIA", Benchmark: "vectoradd", Seed: 3}
	explicit := CellSpec{
		Chip:           "Mini NVIDIA",
		Benchmark:      "vectoradd",
		Seed:           3,
		Injections:     finject.DefaultInjections,
		FaultWidth:     1,
		WatchdogFactor: finject.DefaultWatchdogFactor,
	}
	if implicit.Key() != explicit.Key() {
		t.Fatal("defaulted and explicit specs disagree on the key")
	}
	if implicit.Normalize() != explicit.Normalize() {
		t.Fatal("normalized specs differ")
	}
}

func TestKeyDistinguishesParameters(t *testing.T) {
	base := CellSpec{Chip: "Mini NVIDIA", Benchmark: "vectoradd", Seed: 3, Injections: 100}
	seen := map[CellKey]string{base.Key(): "base"}
	variants := map[string]CellSpec{
		"seed":       {Chip: "Mini NVIDIA", Benchmark: "vectoradd", Seed: 4, Injections: 100},
		"chip":       {Chip: "Mini AMD", Benchmark: "vectoradd", Seed: 3, Injections: 100},
		"benchmark":  {Chip: "Mini NVIDIA", Benchmark: "transpose", Seed: 3, Injections: 100},
		"structure":  {Chip: "Mini NVIDIA", Benchmark: "vectoradd", Seed: 3, Injections: 100, Structure: gpu.LocalMemory},
		"injections": {Chip: "Mini NVIDIA", Benchmark: "vectoradd", Seed: 3, Injections: 101},
		"width":      {Chip: "Mini NVIDIA", Benchmark: "vectoradd", Seed: 3, Injections: 100, FaultWidth: 2},
		"watchdog":   {Chip: "Mini NVIDIA", Benchmark: "vectoradd", Seed: 3, Injections: 100, WatchdogFactor: 5},
	}
	for name, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

func TestSpecOfRoundTrip(t *testing.T) {
	c := testCampaign(t, "vectoradd")
	spec := SpecOf(c)
	if spec.Chip != "Mini NVIDIA" || spec.Benchmark != "vectoradd" {
		t.Fatalf("spec labels: %+v", spec)
	}
	if spec.Injections != 40 || spec.FaultWidth != 1 || spec.WatchdogFactor != finject.DefaultWatchdogFactor {
		t.Fatalf("spec not normalized: %+v", spec)
	}
	back, err := spec.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	if SpecOf(back) != spec {
		t.Fatalf("round trip changed the spec: %+v vs %+v", SpecOf(back), spec)
	}
	if back.Chip.Name != c.Chip.Name || back.Benchmark.Name != c.Benchmark.Name {
		t.Fatal("round trip resolved different chip or benchmark")
	}
}

func TestSpecCampaignUnknownNames(t *testing.T) {
	if _, err := (CellSpec{Chip: "no such chip", Benchmark: "vectoradd"}).Campaign(); err == nil {
		t.Fatal("unknown chip accepted")
	}
	if _, err := (CellSpec{Chip: "Mini NVIDIA", Benchmark: "no such bench"}).Campaign(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
