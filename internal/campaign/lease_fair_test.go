package campaign

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// enqueue queues one cell for a tenant and returns after it is visible
// to Lease (the producer goroutine keeps waiting for the result; tests
// that never complete cells simply leak the goroutine until cancel).
func enqueue(t *testing.T, q *LeaseQueue, ctx context.Context, tenant string, seed uint64, injections int) {
	t.Helper()
	before := q.Stats().Pending
	go q.Do(ctx, Task{Spec: testSpec(seed, injections), Tenant: tenant})
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Pending == before {
		if time.Now().After(deadline) {
			t.Fatal("cell never queued")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLeaseSingleTenantIsExactLegacyLPT byte-pins the degenerate case:
// with every pending cell under one tenant (named or empty), the pop
// order must be exactly the legacy largest-first schedule that
// TestLeaseOrderIsLargestFirst pins for the no-tenant queue.
func TestLeaseSingleTenantIsExactLegacyLPT(t *testing.T) {
	for _, tenant := range []string{"", "acme"} {
		t.Run(fmt.Sprintf("tenant=%q", tenant), func(t *testing.T) {
			q, _ := newTestQueue(time.Minute)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			costs := []int{100, 900, 400}
			for i, c := range costs {
				enqueue(t, q, ctx, tenant, uint64(20+i), c)
			}
			want := []int{900, 400, 100}
			for i, w := range want {
				leases := q.Lease("w1", 1)
				if len(leases) != 1 {
					t.Fatalf("pop %d: got %d leases", i, len(leases))
				}
				if got := leases[0].Task.Spec.Injections; got != w {
					t.Fatalf("pop %d: cost %d, want %d (legacy LPT order)", i, got, w)
				}
			}
		})
	}
}

// TestLeaseFairShareDRRProperty generates random tenant/arrival tables
// and asserts the deficit round-robin pop keeps every pair of
// continuously-backlogged tenants' normalized service (cost granted per
// unit weight) within two quanta of each other at every prefix of the
// grant sequence — the DRR fairness bound plus one quantum of slack for
// the cell-granularity rounding at the measurement instant.
func TestLeaseFairShareDRRProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		q, _ := newTestQueue(time.Minute)
		ctx, cancel := context.WithCancel(context.Background())

		tenants := 2 + rng.Intn(3)
		weights := make([]int, tenants)
		backlog := make([]int64, tenants) // total queued cost per tenant
		var quantum int64
		seed := uint64(1000 * trial)
		for ti := 0; ti < tenants; ti++ {
			weights[ti] = 1 + rng.Intn(3)
			q.SetWeight(fmt.Sprintf("t%d", ti), weights[ti])
			cells := 4 + rng.Intn(5)
			for c := 0; c < cells; c++ {
				cost := 50 + rng.Intn(950)
				seed++
				enqueue(t, q, ctx, fmt.Sprintf("t%d", ti), seed, cost)
				backlog[ti] += int64(cost)
				if int64(cost) > quantum {
					quantum = int64(cost)
				}
			}
		}

		served := make([]int64, tenants)
		for {
			leases := q.Lease("w", 1)
			if len(leases) == 0 {
				break
			}
			var ti int
			fmt.Sscanf(leases[0].Task.Tenant, "t%d", &ti)
			served[ti] += int64(leases[0].Task.Spec.Injections)

			// Fairness holds between tenants that both still have work
			// pending (a drained tenant legitimately stops accruing).
			for a := 0; a < tenants; a++ {
				for b := a + 1; b < tenants; b++ {
					if served[a] >= backlog[a] || served[b] >= backlog[b] {
						continue
					}
					na := served[a] / int64(weights[a])
					nb := served[b] / int64(weights[b])
					if diff := na - nb; diff > 2*quantum || diff < -2*quantum {
						t.Fatalf("trial %d: tenants t%d/t%d normalized service %d vs %d diverged beyond 2x quantum %d (weights %v, served %v)",
							trial, a, b, na, nb, quantum, weights, served)
					}
				}
			}
		}
		cancel()
	}
}

// TestLeaseFairShareWeights checks weight proportionality end to end: a
// weight-3 tenant draining a long backlog against a weight-1 tenant
// receives roughly three times the service over the race.
func TestLeaseFairShareWeights(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q.SetWeight("gold", 3)
	q.SetWeight("bronze", 1)
	const cells, cost = 30, 100
	seed := uint64(5000)
	for i := 0; i < cells; i++ {
		seed++
		enqueue(t, q, ctx, "gold", seed, cost)
		seed++
		enqueue(t, q, ctx, "bronze", seed, cost)
	}
	served := map[string]int64{}
	// Stop while both tenants are still backlogged so the ratio is a
	// fair-share measurement, not a drain artifact.
	for i := 0; i < cells; i++ {
		leases := q.Lease("w", 1)
		if len(leases) != 1 {
			t.Fatalf("pop %d: got %d leases", i, len(leases))
		}
		served[leases[0].Task.Tenant] += int64(leases[0].Task.Spec.Injections)
	}
	if served["gold"] == 0 || served["bronze"] == 0 {
		t.Fatalf("a tenant was starved: %v", served)
	}
	ratio := float64(served["gold"]) / float64(served["bronze"])
	if ratio < 2.0 || ratio > 4.0 {
		t.Fatalf("weight-3 vs weight-1 service ratio %.2f outside [2,4]: %v", ratio, served)
	}
}

// TestLeaseBatchAcrossTenantsStillFair drives multi-cell grants (max >
// 1) across tenants and checks every backlogged tenant appears in the
// combined grant stream before any tenant is served twice its share.
func TestLeaseBatchAcrossTenantsStillFair(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seed := uint64(9000)
	for ti := 0; ti < 3; ti++ {
		for c := 0; c < 6; c++ {
			seed++
			enqueue(t, q, ctx, fmt.Sprintf("t%d", ti), seed, 100+10*ti)
		}
	}
	leases := q.Lease("big-worker", 6)
	if len(leases) != 6 {
		t.Fatalf("granted %d cells, want 6", len(leases))
	}
	byTenant := map[string]int{}
	for _, l := range leases {
		byTenant[l.Task.Tenant]++
	}
	for ti := 0; ti < 3; ti++ {
		if n := byTenant[fmt.Sprintf("t%d", ti)]; n != 2 {
			t.Fatalf("equal-weight 3-tenant batch of 6 not split 2/2/2: %v", byTenant)
		}
	}
}
