package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// detailResult is fakeResult plus per-injection records, so the wire
// round trip covers the detail path too.
func detailResult(n int) *finject.Result {
	res := fakeResult(n)
	res.Records = []finject.Record{
		{Fault: gpu.Fault{Structure: gpu.RegisterFile, Unit: 1, Entry: 2, Bit: 3, Cycle: 40}, Outcome: gpu.OutcomeSDC, CorruptBytes: 16},
		{Fault: gpu.Fault{Structure: gpu.LocalMemory, Unit: 0, Entry: 9, Bit: 7, Width: 4, Cycle: 77}, Outcome: gpu.OutcomeMasked},
	}
	return res
}

func TestBinaryStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.store")
	b, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellSpec{Chip: "c", Benchmark: "b", Seed: 1}.Key()
	k2 := CellSpec{Chip: "c", Benchmark: "b", Seed: 2}.Key()
	if err := b.Put(k1, fakeResult(50)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(k2, detailResult(60)); err != nil {
		t.Fatal(err)
	}
	// Overwrite k1; the newest frame must win after reopen.
	want1 := detailResult(70)
	if err := b.Put(k1, want1); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Len() != 2 || b2.Records() != 3 {
		t.Fatalf("reopened store: len=%d records=%d, want 2/3", b2.Len(), b2.Records())
	}
	got, ok, err := b2.Get(k1)
	if err != nil || !ok {
		t.Fatalf("k1 after reopen: %v %v", ok, err)
	}
	if got.Injections != want1.Injections || got.Outcomes != want1.Outcomes ||
		got.GoldenStats != want1.GoldenStats || got.Occupancy != want1.Occupancy ||
		len(got.Records) != len(want1.Records) {
		t.Fatalf("k1 round trip: got %+v want %+v", got, want1)
	}
	for i := range want1.Records {
		if got.Records[i] != want1.Records[i] {
			t.Fatalf("k1 detail record %d: got %+v want %+v", i, got.Records[i], want1.Records[i])
		}
	}
	if got, ok, _ := b2.Get(k2); !ok || got.Injections != 60 || len(got.Records) != 2 {
		t.Fatalf("k2 round trip: %v %+v", ok, got)
	}
}

// TestBinaryStoreHealsTornTail pins the crash contract: any prefix of an
// interrupted final append is truncated away on open, complete frames
// survive, and the store keeps appending cleanly afterwards.
func TestBinaryStoreHealsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.store")
	b, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellSpec{Chip: "c", Benchmark: "b", Seed: 1}.Key()
	if err := b.Put(k1, fakeResult(50)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a process killed mid-append: a second frame with only its
	// first half on disk.
	var w wire.Writer
	w.String(string(CellSpec{Chip: "c", Benchmark: "b", Seed: 2}.Key()))
	finject.EncodeResult(&w, fakeResult(60))
	frame := wire.AppendRecord(nil, wire.RecCell, w.Bytes())
	torn := append(append([]byte(nil), whole...), frame[:len(frame)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatalf("torn tail was not healed: %v", err)
	}
	if b2.Len() != 1 || b2.Records() != 1 {
		t.Fatalf("after healing: len=%d records=%d, want 1/1", b2.Len(), b2.Records())
	}
	// The next append must land on the healed boundary.
	k3 := CellSpec{Chip: "c", Benchmark: "b", Seed: 3}.Key()
	if err := b2.Put(k3, fakeResult(70)); err != nil {
		t.Fatal(err)
	}
	b2.Close()
	b3, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	if b3.Len() != 2 {
		t.Fatalf("append after healing lost cells: len=%d", b3.Len())
	}
}

func TestBinaryStoreRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.store")
	b, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellSpec{Chip: "c", Benchmark: "b", Seed: 1}.Key()
	if err := b.Put(k1, fakeResult(50)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(CellSpec{Chip: "c", Benchmark: "b", Seed: 2}.Key(), fakeResult(60)); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Flip one byte inside the FIRST frame: fully present, bad CRC — a
	// hard error, never silently healed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[wire.HeaderSize+20] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBinaryDiskStore(path); err == nil {
		t.Fatal("corrupt store opened cleanly")
	}
}

func TestBinaryStoreCompactIsByteStable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cells.store")
	b, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]CellKey, 5)
	for i := range keys {
		keys[i] = CellSpec{Chip: "c", Benchmark: "b", Seed: uint64(i)}.Key()
	}
	// Puts in scrambled order with overwrites; compaction must emit
	// sorted keys so equal stores are byte-identical on disk.
	for _, i := range []int{3, 1, 4, 0, 2, 1, 3} {
		if err := b.Put(keys[i], fakeResult(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Records() != 5 || b.Len() != 5 {
		t.Fatalf("after compact: records=%d len=%d", b.Records(), b.Len())
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("repeated compaction changed the file bytes")
	}
	b.Close()

	// A sibling store built from the same cells compacts to the same
	// bytes regardless of insertion order.
	path2 := filepath.Join(dir, "cells2.store")
	b2, err := OpenBinaryDiskStore(path2)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4, 1, 3} {
		if err := b2.Put(keys[i], fakeResult(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b2.Compact(); err != nil {
		t.Fatal(err)
	}
	b2.Close()
	sibling, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, sibling) {
		t.Fatal("equal stores are not byte-identical after compaction")
	}
}

func TestBinaryStoreAutoCompactOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.store")
	b, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	key := CellSpec{Chip: "c", Benchmark: "b"}.Key()
	for i := 0; i <= CompactDeadThreshold+1; i++ {
		if err := b.Put(key, fakeResult(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenBinaryDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Records() != 1 || b2.Len() != 1 {
		t.Fatalf("auto-compaction left records=%d len=%d, want 1/1", b2.Records(), b2.Len())
	}
	if res, ok, _ := b2.Get(key); !ok || res.Injections != CompactDeadThreshold+2 {
		t.Fatalf("latest value lost: ok=%v res=%+v", ok, res)
	}
}

func TestOpenStoreRouting(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "cells.jsonl")
	binPath := filepath.Join(dir, "cells.store")
	key := CellSpec{Chip: "c", Benchmark: "b"}.Key()

	for _, tc := range []struct{ path, format string }{
		{jsonPath, FormatJSON},
		{binPath, FormatBinary},
	} {
		st, err := OpenStore(tc.path, tc.format)
		if err != nil {
			t.Fatalf("OpenStore(%s): %v", tc.format, err)
		}
		if err := st.Put(key, fakeResult(9)); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}

	// Auto sniffs each existing file back to its own implementation.
	st, err := OpenStore(jsonPath, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*DiskStore); !ok {
		t.Fatalf("auto-opened JSON store is %T", st)
	}
	st.Close()
	st, err = OpenStore(binPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*BinaryDiskStore); !ok {
		t.Fatalf("auto-opened binary store is %T", st)
	}
	st.Close()

	// A format that contradicts the file on disk is an error, both ways.
	if _, err := OpenStore(jsonPath, FormatBinary); err == nil {
		t.Fatal("binary open of a JSON file should fail")
	}
	if _, err := OpenStore(binPath, FormatJSON); err == nil {
		t.Fatal("json open of a binary file should fail")
	}
	if _, err := OpenStore(binPath, "parquet"); err == nil {
		t.Fatal("unknown format should fail")
	}

	// The direct constructors refuse the other format too.
	if _, err := OpenDiskStore(binPath); err == nil {
		t.Fatal("OpenDiskStore accepted a wire file")
	}
	if _, err := OpenBinaryDiskStore(jsonPath); err == nil {
		t.Fatal("OpenBinaryDiskStore accepted a JSON file")
	}

	// A fresh path under auto defaults to JSON lines.
	freshPath := filepath.Join(dir, "fresh")
	fresh, err := OpenStore(freshPath, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.(*DiskStore); !ok {
		t.Fatalf("fresh auto store is %T, want *DiskStore", fresh)
	}
	fresh.Close()
}

// TestStoreGaugeParity proves the two disk formats publish identical
// fi_store_records_live/_dead accounting for identical histories, and
// that Close withdraws a store's contribution.
func TestStoreGaugeParity(t *testing.T) {
	dir := t.TempDir()
	k1 := CellSpec{Chip: "c", Benchmark: "b", Seed: 1}.Key()
	k2 := CellSpec{Chip: "c", Benchmark: "b", Seed: 2}.Key()

	type delta struct{ live, dead int64 }
	history := func(format, file string) delta {
		live0 := telemetry.StoreRecordsLive.Value()
		dead0 := telemetry.StoreRecordsDead.Value()
		st, err := OpenStore(filepath.Join(dir, file), format)
		if err != nil {
			t.Fatal(err)
		}
		// Identical history: two cells, one of them overwritten once.
		for _, put := range []struct {
			k CellKey
			n int
		}{{k1, 10}, {k2, 20}, {k1, 30}} {
			if err := st.Put(put.k, fakeResult(put.n)); err != nil {
				t.Fatal(err)
			}
		}
		d := delta{telemetry.StoreRecordsLive.Value() - live0, telemetry.StoreRecordsDead.Value() - dead0}
		st.Close()
		if l, dd := telemetry.StoreRecordsLive.Value()-live0, telemetry.StoreRecordsDead.Value()-dead0; l != 0 || dd != 0 {
			t.Fatalf("%s: Close left live=%d dead=%d on the gauges", format, l, dd)
		}
		return d
	}

	j := history(FormatJSON, "cells.jsonl")
	b := history(FormatBinary, "cells.store")
	if j != b {
		t.Fatalf("gauge accounting drifted between formats: json=%+v binary=%+v", j, b)
	}
	if j.live != 2 || j.dead != 1 {
		t.Fatalf("history published live=%d dead=%d, want 2/1", j.live, j.dead)
	}
}
