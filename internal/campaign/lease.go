package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/finject"
	"repro/internal/telemetry"
)

// DefaultLeaseTTL bounds how long a worker may sit on a leased cell
// without a heartbeat before the cell is handed to someone else.
const DefaultLeaseTTL = 30 * time.Second

// leaseHistoryCap bounds the remembered outcomes of finished leases (the
// idempotence window for duplicate completions).
const leaseHistoryCap = 4096

// Task is one unit of remote work: the cell's normalized spec plus the
// stopping rule. This is everything that travels to a worker — worker
// counts and scheduling are each worker's own business, and determinism
// guarantees the result depends on nothing else.
type Task struct {
	Spec CellSpec `json:"spec"`
	// Policy carries the stopping rule in the engine's versioned Config
	// form; the cap is already resolved into Spec.Injections, and worker
	// counts are each worker's own business (workers overwrite them).
	Policy finject.Config `json:"policy"`
	// Corr is the job correlation id of the producer that queued the cell,
	// carried across the wire purely for observability: workers tag their
	// logs and spans with it so one grep reconstructs a cell's life across
	// processes. It never participates in task identity (see sameWork).
	Corr string `json:"corr,omitempty"`
	// Tenant attributes the cell for fair-share scheduling (see Lease's
	// deficit round-robin) and per-tenant queue-depth gauges. Like Corr it
	// never participates in task identity: identical cells queued by two
	// tenants are interchangeable work and coalesce, accounted to whichever
	// tenant queued first.
	Tenant string `json:"tenant,omitempty"`
}

// sameWork reports whether two tasks describe the same computation —
// the same normalized cell under the same stopping rule. Correlation
// metadata is deliberately excluded: two jobs asking for one cell are
// interchangeable work, and a late completion must be able to fulfill a
// redo queued under a different job id.
func sameWork(a, b Task) bool {
	return a.Spec == b.Spec && a.Policy.Equal(b.Policy)
}

// Lease is one granted lease: a work item plus the handle the worker
// heartbeats and completes against.
type Lease struct {
	ID   string `json:"id"`
	Task Task   `json:"task"`
	// TTLMillis tells the worker how often to heartbeat (the lease
	// expires and re-queues this far after the last heartbeat).
	TTLMillis int64 `json:"ttl_ms"`
}

// LeaseStats is a point-in-time snapshot of queue activity.
type LeaseStats struct {
	// Pending and Leased count live cells by state.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	// Completed, Failed and Expired count lease outcomes since
	// construction: results delivered, worker-reported errors, and leases
	// that timed out and re-queued their cell.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Expired   int64 `json:"expired"`
}

// ErrUnknownLease is returned by Complete and reported by Heartbeat when
// the lease id was never granted (or has aged out of the idempotence
// window).
var ErrUnknownLease = fmt.Errorf("campaign: unknown lease")

// leaseEntry is one live cell: pending (leaseID empty) or leased.
type leaseEntry struct {
	task    Task
	key     CellKey
	seq     int
	waiters int

	leaseID  string
	worker   string
	deadline time.Time
	attempts int

	done chan struct{}
	res  *finject.Result
	err  error
}

// leaseOutcome remembers how a finished (completed or expired) lease
// ended — and for what task — so late and duplicate completions resolve
// correctly.
type leaseOutcome struct {
	task      Task
	completed bool
}

// LeaseQueue distributes campaign cells to pull-based workers under
// expiring leases. Producers call Do and block for the result; workers
// call Lease, Heartbeat and Complete. A lease that outlives its TTL
// without a heartbeat re-queues its cell, so a dead worker never loses a
// cell — and because execution is deterministic, a late completion from a
// worker presumed dead is byte-identical to the redo and is accepted.
// Cells are handed out largest-first (LPT order, see planner.go) so the
// fleet's makespan stays near the balanced optimum.
type LeaseQueue struct {
	ttl time.Duration
	now func() time.Time

	mu        sync.Mutex
	seq       int
	nextLease int
	entries   map[CellKey]*leaseEntry
	leased    map[string]*leaseEntry // active leases by id
	history   map[string]leaseOutcome
	histOrder []string
	wake      chan struct{} // closed and replaced when work arrives

	// Fair-share state (deficit round-robin across tenants, see Lease).
	// ring holds every tenant ever seen, in first-activation order, and
	// ringPos is the persistent round-robin cursor; deficit carries each
	// tenant's unspent service credit while it stays backlogged, and
	// weights scale the per-round credit (default 1).
	weights map[string]int
	deficit map[string]int64
	ring    []string
	ringPos int

	// lastTenantPending mirrors lastPending per tenant for the
	// fi_lease_queue_depth_tenant gauge's delta accounting.
	lastTenantPending map[string]int

	// Outcome counters are atomics so monitoring paths can read them
	// without contending for q.mu (they are still only written under it).
	completed, failed, expired atomic.Int64

	// lastPending/lastLeased remember this queue's previous contribution
	// to the fleet-wide depth gauges, so multiple queues in one process
	// (tests, embedded servers) aggregate additively instead of fighting
	// over an absolute Set.
	lastPending, lastLeased int
}

// NewLeaseQueue builds a queue whose leases expire ttl after their last
// heartbeat (DefaultLeaseTTL when ttl <= 0).
func NewLeaseQueue(ttl time.Duration) *LeaseQueue {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &LeaseQueue{
		ttl:               ttl,
		now:               time.Now,
		entries:           make(map[CellKey]*leaseEntry),
		leased:            make(map[string]*leaseEntry),
		history:           make(map[string]leaseOutcome),
		wake:              make(chan struct{}),
		weights:           make(map[string]int),
		deficit:           make(map[string]int64),
		lastTenantPending: make(map[string]int),
	}
}

// TTL returns the queue's lease TTL.
func (q *LeaseQueue) TTL() time.Duration { return q.ttl }

// SetWeight sets a tenant's fair-share weight (clamped to >= 1). A
// tenant with weight w receives w times the service credit of a
// weight-1 tenant per round-robin visit while both stay backlogged.
func (q *LeaseQueue) SetWeight(tenant string, weight int) {
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	q.weights[tenant] = weight
	q.mu.Unlock()
}

// noteTenantLocked adds a tenant to the round-robin ring the first time
// work arrives for it. Tenants are never removed: the ring is bounded
// by the operator's tenant table and a stable ring keeps the visit
// order deterministic. Callers hold q.mu.
func (q *LeaseQueue) noteTenantLocked(tenant string) {
	for _, t := range q.ring {
		if t == tenant {
			return
		}
	}
	q.ring = append(q.ring, tenant)
}

// Wake returns a channel that closes when new work may be available —
// the idle-wait primitive behind the lease endpoint's long poll. Grab a
// fresh channel after every wakeup.
func (q *LeaseQueue) Wake() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.wake
}

// wakeLocked wakes every parked Wake waiter. Callers hold q.mu.
func (q *LeaseQueue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// syncGaugesLocked publishes this queue's current pending/leased counts
// to the fleet gauges as deltas against its previous contribution.
// Callers hold q.mu.
func (q *LeaseQueue) syncGaugesLocked() {
	pending := 0
	perTenant := make(map[string]int)
	for _, e := range q.entries {
		if e.leaseID == "" {
			pending++
			perTenant[tenantLabel(e.task.Tenant)]++
		}
	}
	leased := len(q.leased)
	telemetry.LeaseQueueDepth.Add(int64(pending - q.lastPending))
	telemetry.LeaseOutstanding.Add(int64(leased - q.lastLeased))
	q.lastPending, q.lastLeased = pending, leased
	for t, n := range perTenant {
		if d := n - q.lastTenantPending[t]; d != 0 {
			telemetry.LeaseTenantDepth.With(t).Add(int64(d))
		}
	}
	for t, last := range q.lastTenantPending {
		if _, live := perTenant[t]; !live && last != 0 {
			telemetry.LeaseTenantDepth.With(t).Add(int64(-last))
		}
	}
	q.lastTenantPending = perTenant
}

// tenantLabel maps the empty tenant (unauthenticated single-tenant
// servers) to the label value the metric catalog documents.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// Do publishes the task (joining an identical cell already queued) and
// blocks until a worker completes it or ctx ends. Abandoning a cell no
// other producer waits for removes it from the queue unless a worker
// already holds its lease — then the (deterministic, thus still valid)
// result is simply dropped when it arrives.
func (q *LeaseQueue) Do(ctx context.Context, t Task) (*finject.Result, error) {
	t.Spec = t.Spec.Normalize()
	key := t.Spec.Key()
	q.mu.Lock()
	e, ok := q.entries[key]
	if !ok {
		e = &leaseEntry{task: t, key: key, seq: q.seq, done: make(chan struct{})}
		q.seq++
		q.entries[key] = e
		q.noteTenantLocked(t.Tenant)
		q.wakeLocked()
	}
	e.waiters++
	q.syncGaugesLocked()
	q.mu.Unlock()

	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		q.mu.Lock()
		e.waiters--
		if e.waiters == 0 && e.leaseID == "" && q.entries[key] == e {
			delete(q.entries, key)
		}
		q.syncGaugesLocked()
		q.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Lease grants up to max pending cells to the worker, renewing the
// queue's notion of time first so expired leases re-queue before the pop.
// With one tenant (or none) the pop is the classic LPT schedule: max == 1
// grants the single largest pending cell, and max > 1 plans cost-balanced
// shards over the whole backlog and grants one shard, so a multi-cell
// worker gets a representative mix instead of starving the rest of the
// fleet of large cells. With multiple backlogged tenants the pop switches
// to weighted deficit round-robin across tenants — each visit credits a
// tenant quantum x weight (quantum = the largest pending cell cost, so
// every backlogged tenant advances every round) and grants cells, in LPT
// order within the tenant, while credit lasts. That bounds any tenant's
// normalized service deficit by one quantum per unit weight while
// degenerating to exactly the legacy LPT order when only one tenant has
// work.
func (q *LeaseQueue) Lease(worker string, max int) []Lease {
	if max <= 0 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()

	pending := q.pendingLocked()
	if len(pending) == 0 {
		return nil
	}
	tenants := make(map[string]bool, 1)
	for _, e := range pending {
		tenants[e.task.Tenant] = true
	}
	var take []*leaseEntry
	switch {
	case len(tenants) > 1 && len(pending) > max:
		take = q.drrSelectLocked(pending, max)
	case max == 1 || len(pending) <= max:
		take = pending
		if len(take) > max {
			take = take[:max]
		}
	default:
		specs := make([]CellSpec, len(pending))
		byKey := make(map[CellKey]*leaseEntry, len(pending))
		for i, e := range pending {
			specs[i] = e.task.Spec
			byKey[e.key] = e
		}
		shards := PlanShards(specs, (len(pending)+max-1)/max)
		for _, s := range shards[0] {
			take = append(take, byKey[s.Key()])
		}
		if len(take) > max {
			take = take[:max]
		}
	}

	now := q.now()
	leases := make([]Lease, 0, len(take))
	for _, e := range take {
		q.nextLease++
		e.leaseID = fmt.Sprintf("lease-%06d", q.nextLease)
		e.worker = worker
		e.deadline = now.Add(q.ttl)
		q.leased[e.leaseID] = e
		leases = append(leases, Lease{ID: e.leaseID, Task: e.task, TTLMillis: q.ttl.Milliseconds()})
	}
	telemetry.LeasesGranted.Add(int64(len(leases)))
	q.syncGaugesLocked()
	return leases
}

// pendingLocked returns the pending entries in LPT order. Callers hold
// q.mu.
func (q *LeaseQueue) pendingLocked() []*leaseEntry {
	var pending []*leaseEntry
	for _, e := range q.entries {
		if e.leaseID == "" {
			pending = append(pending, e)
		}
	}
	sortLPT(pending)
	return pending
}

// drrSelectLocked picks up to max entries by weighted deficit
// round-robin across tenants. pending must be LPT-sorted (so each
// tenant's sub-queue inherits LPT order) and span more than one tenant.
// The quantum is the largest pending cell cost: a full round then
// credits every backlogged tenant enough to release at least its head
// cell, so no tenant is ever starved and the normalized service gap
// between any two continuously-backlogged tenants stays within one
// quantum per unit weight. A tenant visited with nothing pending
// forfeits its accumulated credit (standard DRR: idle flows do not bank
// service). Callers hold q.mu.
func (q *LeaseQueue) drrSelectLocked(pending []*leaseEntry, max int) []*leaseEntry {
	sub := make(map[string][]*leaseEntry)
	var quantum int64
	for _, e := range pending {
		sub[e.task.Tenant] = append(sub[e.task.Tenant], e)
		if c := shardCost(e.task.Spec); c > quantum {
			quantum = c
		}
	}
	if quantum < 1 {
		quantum = 1
	}
	take := make([]*leaseEntry, 0, max)
	remaining := len(pending)
	for len(take) < max && remaining > 0 {
		t := q.ring[q.ringPos%len(q.ring)]
		queue := sub[t]
		if len(queue) == 0 {
			q.deficit[t] = 0
			q.ringPos = (q.ringPos + 1) % len(q.ring)
			continue
		}
		w := q.weights[t]
		if w < 1 {
			w = 1
		}
		// Credit on demand: one quantum x weight when the banked deficit
		// no longer covers the head cell. quantum >= every cell cost, so
		// a single credit always releases at least the head.
		if q.deficit[t] < shardCost(queue[0].task.Spec) {
			q.deficit[t] += quantum * int64(w)
		}
		for len(queue) > 0 && len(take) < max && q.deficit[t] >= shardCost(queue[0].task.Spec) {
			q.deficit[t] -= shardCost(queue[0].task.Spec)
			take = append(take, queue[0])
			queue = queue[1:]
			remaining--
		}
		sub[t] = queue
		// Advance only when this tenant's budget or backlog is spent; a
		// grant truncated by max leaves the cursor here so the unspent
		// deficit carries into the next Lease call instead of evaporating.
		if len(queue) == 0 || q.deficit[t] < shardCost(queue[0].task.Spec) {
			q.ringPos = (q.ringPos + 1) % len(q.ring)
		}
	}
	return take
}

// Heartbeat extends the lease's deadline by one TTL and reports whether
// the lease is still live — false tells the worker its cell was re-queued
// (or already completed) and further work on it is wasted.
func (q *LeaseQueue) Heartbeat(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	q.syncGaugesLocked()
	e, ok := q.leased[id]
	if !ok {
		return false
	}
	e.deadline = q.now().Add(q.ttl)
	telemetry.LeaseHeartbeats.Inc()
	return true
}

// Complete resolves a lease with a result or a worker-reported error
// (errMsg non-empty). It is idempotent: completing the same lease twice is
// a no-op, and a late completion from a lease that already expired still
// fulfills the cell if no one else finished it first — determinism makes
// every completion of a cell interchangeable. Only a lease id that was
// never granted errors.
func (q *LeaseQueue) Complete(id string, res *finject.Result, errMsg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()

	defer q.syncGaugesLocked()
	if e, ok := q.leased[id]; ok {
		q.fulfillLocked(e, res, errMsg)
		return nil
	}
	h, ok := q.history[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownLease, id)
	}
	if h.completed {
		return nil // duplicate completion
	}
	// The lease expired. If the *same* task is still live (pending again
	// or re-leased), accept this completion and retire the redo. The
	// task comparison matters: the live entry could be a later request
	// for the same cell under a tighter stopping rule, which this
	// result — computed under the old rule — would not satisfy.
	if e, live := q.entries[h.task.Spec.Key()]; live && sameWork(e.task, h.task) {
		q.fulfillLocked(e, res, errMsg)
	}
	return nil
}

// fulfillLocked delivers a result (or error) to the entry's waiters and
// retires the entry and its active lease, if any. Callers hold q.mu.
func (q *LeaseQueue) fulfillLocked(e *leaseEntry, res *finject.Result, errMsg string) {
	if errMsg != "" {
		e.err = fmt.Errorf("campaign: worker %s failed %s: %s", e.worker, e.task.Spec, errMsg)
		q.failed.Add(1)
		telemetry.LeaseFailures.Inc()
	} else {
		e.res = res
		q.completed.Add(1)
		telemetry.LeaseCompletions.Inc()
	}
	if e.leaseID != "" {
		q.recordLocked(e.leaseID, leaseOutcome{task: e.task, completed: true})
		delete(q.leased, e.leaseID)
		e.leaseID = ""
	}
	delete(q.entries, e.key)
	close(e.done)
}

// expireLocked re-queues every leased cell whose deadline has passed —
// unless no producer waits for it anymore, in which case the cell is
// dropped instead of burning another worker on an unwanted result.
// Callers hold q.mu.
func (q *LeaseQueue) expireLocked() {
	now := q.now()
	for id, e := range q.leased {
		if !e.deadline.Before(now) {
			continue
		}
		q.recordLocked(id, leaseOutcome{task: e.task})
		delete(q.leased, id)
		e.leaseID = ""
		e.worker = ""
		e.attempts++
		q.expired.Add(1)
		telemetry.LeaseExpiries.Inc()
		if e.waiters == 0 {
			delete(q.entries, e.key)
		}
	}
}

// recordLocked remembers a finished lease's outcome within the bounded
// idempotence window. Callers hold q.mu.
func (q *LeaseQueue) recordLocked(id string, out leaseOutcome) {
	q.history[id] = out
	q.histOrder = append(q.histOrder, id)
	for len(q.histOrder) > leaseHistoryCap {
		delete(q.history, q.histOrder[0])
		q.histOrder = q.histOrder[1:]
	}
}

// Stats snapshots the queue.
func (q *LeaseQueue) Stats() LeaseStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	q.syncGaugesLocked()
	st := LeaseStats{Completed: q.completed.Load(), Failed: q.failed.Load(), Expired: q.expired.Load()}
	st.Leased = len(q.leased)
	for _, e := range q.entries {
		if e.leaseID == "" {
			st.Pending++
		}
	}
	return st
}
