// Package campaign is the orchestration layer over the fault-injection
// engine: content-addressed identities for campaign cells, pluggable
// result stores (in-memory LRU and JSON-lines disk), and a deduplicating,
// cancelable scheduler that shares golden reference runs across
// structures. It turns "run a figure" into "schedule, cache and serve
// campaign cells": identical cells are computed once ever, concurrent
// duplicate submissions coalesce onto one execution, and the figure
// drivers (internal/core), the CLI tools and the fiserver front-end all
// draw from the same store.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/chips"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// CellSpec is the canonical, value-typed identity of one campaign cell:
// every parameter that determines the campaign's result, and nothing that
// does not (worker counts, detail flags and shared goldens change neither
// outcomes nor statistics).
type CellSpec struct {
	Chip       string        `json:"chip"`
	Benchmark  string        `json:"benchmark"`
	Structure  gpu.Structure `json:"structure"`
	Injections int           `json:"injections"`
	Seed       uint64        `json:"seed"`
	// FaultWidth is the burst width in adjacent bits (1 = the paper's
	// single-bit model).
	FaultWidth uint `json:"fault_width"`
	// WatchdogFactor is the hang threshold as a multiple of the golden
	// cycle count.
	WatchdogFactor int `json:"watchdog_factor"`
	// CheckpointOff and CheckpointInterval carry the checkpointed
	// fast-forward knob (finject.Checkpoint) across process boundaries.
	// They are execution hints only: checkpointing never changes a
	// cell's result, so both stay out of Key() — cells that differ only
	// here share one key and one stored result, and specs written before
	// the knob existed keep their keys and warm stores.
	CheckpointOff      bool  `json:"checkpoint_off,omitempty"`
	CheckpointInterval int64 `json:"checkpoint_interval,omitempty"`
}

// CheckpointPolicy returns the spec's checkpoint knob in engine form.
func (s CellSpec) CheckpointPolicy() finject.Checkpoint {
	return finject.Checkpoint{Off: s.CheckpointOff, Interval: s.CheckpointInterval}
}

// Config returns the spec's execution configuration in the engine's
// versioned form — the construction path Campaign() goes through.
func (s CellSpec) Config() finject.Config {
	ck := s.CheckpointPolicy()
	return finject.Config{Version: finject.ConfigVersion, Seed: s.Seed, Checkpoint: &ck}
}

// Normalize resolves defaulted fields so that specs describing the same
// campaign compare and hash equal no matter how they were written.
func (s CellSpec) Normalize() CellSpec {
	if s.Injections <= 0 {
		s.Injections = finject.DefaultInjections
	}
	if s.FaultWidth < 2 {
		s.FaultWidth = 1
	}
	if s.WatchdogFactor <= 0 {
		s.WatchdogFactor = finject.DefaultWatchdogFactor
	}
	return s
}

// SpecOf derives the cell identity of a campaign. The campaign must carry
// a chip and a benchmark. The injection count recorded is the campaign's
// cap (Policy.MaxInjections when set): an adaptive policy's Margin and
// Confidence are a stopping rule, not part of the fault sample, so they
// stay out of the identity — the scheduler instead checks whether a
// cached cell's realized sample satisfies the requesting policy.
func SpecOf(c finject.Campaign) CellSpec {
	s := CellSpec{
		Injections:         c.Policy.Cap(c.Injections),
		Seed:               c.Seed,
		FaultWidth:         c.FaultWidth,
		WatchdogFactor:     c.WatchdogFactor,
		CheckpointOff:      c.Policy.Checkpoint.Off,
		CheckpointInterval: c.Policy.Checkpoint.Interval,
	}
	if c.Chip != nil {
		s.Chip = c.Chip.Name
	}
	if c.Benchmark != nil {
		s.Benchmark = c.Benchmark.Name
	}
	s.Structure = c.Structure
	return s.Normalize()
}

// Campaign resolves the spec back into a runnable campaign, looking the
// chip and benchmark up by name.
func (s CellSpec) Campaign() (finject.Campaign, error) {
	s = s.Normalize()
	if s.CheckpointInterval < 0 {
		return finject.Campaign{}, fmt.Errorf("campaign: negative checkpoint interval %d", s.CheckpointInterval)
	}
	chip, err := chips.ByName(s.Chip)
	if err != nil {
		return finject.Campaign{}, err
	}
	bench, err := workloads.ByName(s.Benchmark)
	if err != nil {
		return finject.Campaign{}, err
	}
	c := finject.Campaign{
		Chip:           chip,
		Benchmark:      bench,
		Structure:      s.Structure,
		Injections:     s.Injections,
		Seed:           s.Seed,
		FaultWidth:     s.FaultWidth,
		WatchdogFactor: s.WatchdogFactor,
	}
	s.Config().ApplyTo(&c)
	return c, nil
}

// String renders the spec for logs and progress lines.
func (s CellSpec) String() string {
	s = s.Normalize()
	return fmt.Sprintf("%s/%s/%s n=%d seed=%d", s.Chip, s.Benchmark, s.Structure, s.Injections, s.Seed)
}

// CellKey is the content-addressed digest of a normalized CellSpec: a
// stable identity usable as a map key, an on-disk record key and a wire
// handle. Equal campaigns produce equal keys; any parameter change that
// could alter the result produces a different key.
type CellKey string

// Key hashes the normalized spec.
func (s CellSpec) Key() CellKey {
	s = s.Normalize()
	h := sha256.New()
	fmt.Fprintf(h, "cell|%q|%q|%d|%d|%d|%d|%d",
		s.Chip, s.Benchmark, s.Structure, s.Injections, s.Seed, s.FaultWidth, s.WatchdogFactor)
	return CellKey(hex.EncodeToString(h.Sum(nil)))
}
