package campaign

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/chips"
	"repro/internal/finject"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Request is one normalized cell execution handed to an Executor by the
// scheduler (or by a worker draining a lease queue). Spec and Key pin the
// result-determining parameters; Policy carries the stopping rule (Margin,
// Confidence) plus a Workers hint that local executors may honor and
// remote tiers ignore — neither changes the result, which is fixed by the
// spec alone.
type Request struct {
	Spec   CellSpec
	Key    CellKey
	Policy finject.Policy
	// Campaign, when it carries a chip and benchmark, is the resolved
	// local form of Spec; executors that simulate in-process use it
	// directly (it may reference chips that are not in the registry).
	// When empty, executors resolve Spec through the registries instead —
	// the only option across a process boundary.
	Campaign finject.Campaign
}

// campaign resolves the request into a runnable campaign.
func (r Request) campaign() (finject.Campaign, error) {
	c := r.Campaign
	if c.Chip == nil || c.Benchmark == nil {
		var err error
		c, err = r.Spec.Campaign()
		if err != nil {
			return finject.Campaign{}, err
		}
	}
	c.Policy = r.Policy
	// The cap already lives in Spec.Injections; a nonzero MaxInjections
	// here would double-apply it.
	c.Policy.MaxInjections = 0
	c.Detail = false
	return c, nil
}

// Executor runs one campaign cell to completion. The scheduler owns
// caching, deduplication and concurrency bounds; an Executor owns only
// the execution itself, which makes the local simulation path and a
// remote worker fleet interchangeable. Executions must be deterministic
// functions of the request's Spec: a cell computed by any executor is
// byte-identical to the same cell computed by any other.
type Executor interface {
	Execute(ctx context.Context, req Request) (*finject.Result, error)
}

// LocalExecutor executes cells in-process through the fault-injection
// engine, sharing one golden reference run per (chip, benchmark) pair
// across all structures and campaigns — the execute path previously
// embedded in the scheduler, now reusable by remote workers too.
//
// The golden cache is lock-free for readers: lookups load an immutable
// map through an atomic pointer, writers clone-and-swap under gmu. A
// figure fanning a (chip, benchmark) pair across every structure hits
// the cached entry on all but the first request, so the hit path never
// serializes campaigns.
type LocalExecutor struct {
	gmu    sync.Mutex // serializes golden-map writers only
	golden atomic.Pointer[map[string]*goldenCall]

	goldenRuns atomic.Int64
}

// goldenCall is one in-flight golden reference run others may join.
type goldenCall struct {
	done chan struct{}
	g    *finject.Golden
	err  error
}

// NewLocalExecutor builds a LocalExecutor with an empty golden cache.
func NewLocalExecutor() *LocalExecutor {
	e := &LocalExecutor{}
	e.publishGolden(make(map[string]*goldenCall))
	return e
}

// goldenMap returns the current immutable golden map.
func (e *LocalExecutor) goldenMap() map[string]*goldenCall { return *e.golden.Load() }

// publishGolden installs next as the current golden map. Callers hold
// e.gmu (except the constructor) and must treat prior maps as frozen.
func (e *LocalExecutor) publishGolden(next map[string]*goldenCall) { e.golden.Store(&next) }

// withGolden clones a frozen golden map with one entry set (or deleted
// when gc is nil).
func withGolden(m map[string]*goldenCall, key string, gc *goldenCall) map[string]*goldenCall {
	next := make(map[string]*goldenCall, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	if gc == nil {
		delete(next, key)
	} else {
		next[key] = gc
	}
	return next
}

// GoldenRuns reports the number of golden reference simulations executed;
// one per (chip, benchmark) pair regardless of structure or campaign
// count.
func (e *LocalExecutor) GoldenRuns() int64 { return e.goldenRuns.Load() }

// Execute implements Executor in-process.
func (e *LocalExecutor) Execute(ctx context.Context, req Request) (*finject.Result, error) {
	c, err := req.campaign()
	if err != nil {
		return nil, err
	}
	g, err := e.goldenFor(ctx, c.Chip, c.Benchmark)
	if err != nil {
		return nil, err
	}
	c.Golden = g
	return finject.RunContext(ctx, c)
}

// goldenFor returns the shared golden reference run for (chip, benchmark),
// executing it at most once across all concurrent campaigns. Failed runs
// are not cached; a later request retries.
func (e *LocalExecutor) goldenFor(ctx context.Context, chip *chips.Chip, bench *workloads.Benchmark) (*finject.Golden, error) {
	gkey := chip.Name + "\x00" + bench.Name
	for {
		gc, ok := e.goldenMap()[gkey]
		if !ok {
			e.gmu.Lock()
			gc, ok = e.goldenMap()[gkey]
			if !ok {
				gc = &goldenCall{done: make(chan struct{})}
				e.publishGolden(withGolden(e.goldenMap(), gkey, gc))
			}
			e.gmu.Unlock()
		}
		if ok {
			telemetry.GoldenCacheHits.Inc()
			select {
			case <-gc.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if gc.err == nil {
				return gc.g, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}

		telemetry.GoldenCacheMisses.Inc()
		gc.g, gc.err = finject.NewGolden(chip, bench)
		if gc.err == nil {
			e.goldenRuns.Add(1)
			close(gc.done)
			return gc.g, nil
		}
		// Drop the failed entry so the next request retries.
		e.gmu.Lock()
		e.publishGolden(withGolden(e.goldenMap(), gkey, nil))
		e.gmu.Unlock()
		close(gc.done)
		return nil, gc.err
	}
}

// RemoteExecutor satisfies Executor by publishing cells onto a LeaseQueue
// that pull-based workers drain: Execute blocks until some worker leases
// the cell, runs it and reports back (or the context ends). Determinism
// makes the answer byte-identical to a local execution, so the scheduler's
// cache, singleflight and policy-upgrade semantics are untouched by the
// change of tier.
type RemoteExecutor struct {
	queue *LeaseQueue
}

// NewRemoteExecutor builds a RemoteExecutor over the queue the worker
// endpoints serve.
func NewRemoteExecutor(q *LeaseQueue) *RemoteExecutor {
	return &RemoteExecutor{queue: q}
}

// Queue returns the underlying lease queue.
func (e *RemoteExecutor) Queue() *LeaseQueue { return e.queue }

// Execute implements Executor by delegating to the worker fleet. Only
// the spec, the stopping rule and the checkpoint knob travel: worker
// counts are each worker's own business and never change results (nor
// does checkpointing — it only decides how much fault-free prefix each
// worker re-simulates).
func (e *RemoteExecutor) Execute(ctx context.Context, req Request) (*finject.Result, error) {
	ck := req.Policy.Checkpoint
	cfg := finject.Config{
		Version:    finject.ConfigVersion,
		Margin:     req.Policy.Margin,
		Confidence: req.Policy.Confidence,
		Checkpoint: &ck,
	}
	// The job correlation id and tenant ride along for observability and
	// fair-share accounting only; task identity and queue joining ignore
	// them (see sameWork).
	corr := telemetry.CorrFrom(ctx)
	return e.queue.Do(ctx, Task{Spec: req.Spec, Policy: cfg, Corr: corr.Job, Tenant: corr.Tenant})
}
