package campaign

import (
	"context"
	"testing"

	"repro/internal/finject"
)

// TestSchedulerAdaptivePolicyReuse covers the cache-sufficiency rules:
// an adaptive cell that stopped early serves equal-or-looser requests, a
// fixed-size (or tighter) request upgrades it in place, and the upgraded
// full-cap cell then serves everything.
func TestSchedulerAdaptivePolicyReuse(t *testing.T) {
	s := New(Config{Workers: 1, CampaignWorkers: 2})
	ctx := context.Background()
	const cap = 400

	c := testCampaign(t, "vectoradd")
	c.Injections = cap
	c.Policy = finject.Policy{Margin: 0.1, Confidence: 0.99}

	first, err := s.Run(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if first.Injections >= cap {
		t.Fatalf("adaptive cell ran %d injections, want early stop below %d", first.Injections, cap)
	}
	if st := s.Stats(); st.Runs != 1 || st.Injections != int64(first.Injections) {
		t.Fatalf("stats %+v after one adaptive run", st)
	}

	// A looser margin is answered straight from the store.
	loose := c
	loose.Policy.Margin = 0.2
	res, err := s.Run(ctx, loose)
	if err != nil {
		t.Fatal(err)
	}
	if res != first {
		t.Fatal("looser request did not reuse the cached cell")
	}
	if st := s.Stats(); st.Hits != 1 || st.Upgrades != 0 {
		t.Fatalf("stats %+v, want a pure hit", st)
	}

	// A fixed-size request for the same cap needs the full sample: the
	// cell is re-run with the tighter policy and overwritten.
	fixed := c
	fixed.Policy = finject.Policy{}
	res, err = s.Run(ctx, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != cap {
		t.Fatalf("upgraded cell has %d injections, want %d", res.Injections, cap)
	}
	st := s.Stats()
	if st.Upgrades != 1 || st.Runs != 2 {
		t.Fatalf("stats %+v, want the fixed request to upgrade the cell", st)
	}

	// The full-cap cell now satisfies any policy for this cap.
	res2, err := s.Run(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Fatal("adaptive request did not reuse the upgraded cell")
	}
	if st := s.Stats(); st.Hits != 2 || st.Runs != 2 {
		t.Fatalf("stats %+v after reuse of the upgraded cell", st)
	}
}

// TestSpecOfResolvesPolicyCap: MaxInjections is part of the cell identity
// (it changes the fault sample's bound) while Margin and Confidence are
// not (they only decide when to stop).
func TestSpecOfResolvesPolicyCap(t *testing.T) {
	c := testCampaign(t, "vectoradd")
	c.Injections = 500

	base := SpecOf(c)
	if base.Injections != 500 {
		t.Fatalf("spec injections %d, want 500", base.Injections)
	}

	withMax := c
	withMax.Policy.MaxInjections = 120
	if got := SpecOf(withMax).Injections; got != 120 {
		t.Fatalf("spec injections %d, want MaxInjections 120", got)
	}

	adaptive := c
	adaptive.Policy.Margin = 0.05
	adaptive.Policy.Confidence = 0.95
	if SpecOf(adaptive).Key() != base.Key() {
		t.Fatal("margin/confidence leaked into the cell identity")
	}
	if SpecOf(withMax).Key() == base.Key() {
		t.Fatal("cap change did not change the cell identity")
	}
}
