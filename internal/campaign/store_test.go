package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/finject"
	"repro/internal/gpu"
)

func fakeResult(n int) *finject.Result {
	res := &finject.Result{Injections: n, Occupancy: 0.5}
	res.Outcomes[gpu.OutcomeMasked] = n - 3
	res.Outcomes[gpu.OutcomeSDC] = 2
	res.Outcomes[gpu.OutcomeDUE] = 1
	res.GoldenStats = gpu.RunStats{Cycles: 1234, Instructions: 99, Launches: 1}
	return res
}

func TestMemoryStoreLRU(t *testing.T) {
	m := NewMemoryStore(2)
	k := func(i uint64) CellKey {
		return CellSpec{Chip: "c", Benchmark: "b", Seed: i}.Key()
	}
	for i := uint64(0); i < 3; i++ {
		if err := m.Put(k(i), fakeResult(int(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("capacity 2 store holds %d", m.Len())
	}
	if _, ok, _ := m.Get(k(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	// Touch k(1) so k(2) becomes the eviction candidate.
	if _, ok, _ := m.Get(k(1)); !ok {
		t.Fatal("k1 missing")
	}
	if err := m.Put(k(3), fakeResult(13)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get(k(1)); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	if _, ok, _ := m.Get(k(2)); ok {
		t.Fatal("least recently used k2 survived")
	}
}

func TestMemoryStoreOverwrite(t *testing.T) {
	m := NewMemoryStore(0)
	key := CellSpec{Chip: "c", Benchmark: "b"}.Key()
	if err := m.Put(key, fakeResult(10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(key, fakeResult(20)); err != nil {
		t.Fatal(err)
	}
	res, ok, err := m.Get(key)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if res.Injections != 20 {
		t.Fatalf("overwrite lost: %d", res.Injections)
	}
	if m.Len() != 1 {
		t.Fatalf("len %d after overwrite", m.Len())
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	d, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellSpec{Chip: "c", Benchmark: "b", Seed: 1}.Key()
	k2 := CellSpec{Chip: "c", Benchmark: "b", Seed: 2}.Key()
	want1, want2 := fakeResult(50), fakeResult(60)
	if err := d.Put(k1, want1); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(k2, want2); err != nil {
		t.Fatal(err)
	}
	// Overwrite k1; the newest record must win after reopen.
	want1b := fakeResult(70)
	if err := d.Put(k1, want1b); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 2 {
		t.Fatalf("reopened store holds %d cells, want 2", d2.Len())
	}
	got, ok, err := d2.Get(k1)
	if err != nil || !ok {
		t.Fatalf("k1 after reopen: %v %v", ok, err)
	}
	if got.Injections != want1b.Injections || got.Outcomes != want1b.Outcomes ||
		got.GoldenStats != want1b.GoldenStats || got.Occupancy != want1b.Occupancy {
		t.Fatalf("k1 round trip: got %+v want %+v", got, want1b)
	}
	if got, ok, _ := d2.Get(k2); !ok || got.Injections != 60 {
		t.Fatalf("k2 round trip: %v %+v", ok, got)
	}
}

func TestDiskStoreRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(path); err == nil {
		t.Fatal("corrupt store opened cleanly")
	}
}
