package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/finject"
	"repro/internal/gpu"
)

func fakeResult(n int) *finject.Result {
	res := &finject.Result{Injections: n, Occupancy: 0.5}
	res.Outcomes[gpu.OutcomeMasked] = n - 3
	res.Outcomes[gpu.OutcomeSDC] = 2
	res.Outcomes[gpu.OutcomeDUE] = 1
	res.GoldenStats = gpu.RunStats{Cycles: 1234, Instructions: 99, Launches: 1}
	return res
}

func TestMemoryStoreLRU(t *testing.T) {
	m := NewMemoryStore(2)
	k := func(i uint64) CellKey {
		return CellSpec{Chip: "c", Benchmark: "b", Seed: i}.Key()
	}
	for i := uint64(0); i < 3; i++ {
		if err := m.Put(k(i), fakeResult(int(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("capacity 2 store holds %d", m.Len())
	}
	if _, ok, _ := m.Get(k(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	// Touch k(1) so k(2) becomes the eviction candidate.
	if _, ok, _ := m.Get(k(1)); !ok {
		t.Fatal("k1 missing")
	}
	if err := m.Put(k(3), fakeResult(13)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get(k(1)); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	if _, ok, _ := m.Get(k(2)); ok {
		t.Fatal("least recently used k2 survived")
	}
}

func TestMemoryStoreOverwrite(t *testing.T) {
	m := NewMemoryStore(0)
	key := CellSpec{Chip: "c", Benchmark: "b"}.Key()
	if err := m.Put(key, fakeResult(10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(key, fakeResult(20)); err != nil {
		t.Fatal(err)
	}
	res, ok, err := m.Get(key)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if res.Injections != 20 {
		t.Fatalf("overwrite lost: %d", res.Injections)
	}
	if m.Len() != 1 {
		t.Fatalf("len %d after overwrite", m.Len())
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	d, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellSpec{Chip: "c", Benchmark: "b", Seed: 1}.Key()
	k2 := CellSpec{Chip: "c", Benchmark: "b", Seed: 2}.Key()
	want1, want2 := fakeResult(50), fakeResult(60)
	if err := d.Put(k1, want1); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(k2, want2); err != nil {
		t.Fatal(err)
	}
	// Overwrite k1; the newest record must win after reopen.
	want1b := fakeResult(70)
	if err := d.Put(k1, want1b); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 2 {
		t.Fatalf("reopened store holds %d cells, want 2", d2.Len())
	}
	got, ok, err := d2.Get(k1)
	if err != nil || !ok {
		t.Fatalf("k1 after reopen: %v %v", ok, err)
	}
	if got.Injections != want1b.Injections || got.Outcomes != want1b.Outcomes ||
		got.GoldenStats != want1b.GoldenStats || got.Occupancy != want1b.Occupancy {
		t.Fatalf("k1 round trip: got %+v want %+v", got, want1b)
	}
	if got, ok, _ := d2.Get(k2); !ok || got.Injections != 60 {
		t.Fatalf("k2 round trip: %v %+v", ok, got)
	}
}

func TestDiskStoreRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(path); err == nil {
		t.Fatal("corrupt store opened cleanly")
	}
}

// countLines reports the physical record lines of a store file.
func countLines(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}

func TestDiskStoreCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	d, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellSpec{Chip: "c", Benchmark: "b", Seed: 1}.Key()
	k2 := CellSpec{Chip: "c", Benchmark: "b", Seed: 2}.Key()
	// Overwrites are appends: 10 puts over 2 keys leave 8 dead records.
	for i := 0; i < 5; i++ {
		if err := d.Put(k1, fakeResult(10+i)); err != nil {
			t.Fatal(err)
		}
		if err := d.Put(k2, fakeResult(20+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := countLines(t, path); got != 10 {
		t.Fatalf("file has %d records before compaction, want 10", got)
	}
	if d.Records() != 10 || d.Len() != 2 {
		t.Fatalf("records=%d len=%d", d.Records(), d.Len())
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := countLines(t, path); got != 2 {
		t.Fatalf("file has %d records after compaction, want 2", got)
	}
	if d.Records() != 2 || d.Len() != 2 {
		t.Fatalf("after compact: records=%d len=%d", d.Records(), d.Len())
	}
	// The store stays fully usable: reads see the latest values and
	// appends land in the renamed file.
	if res, ok, _ := d.Get(k1); !ok || res.Injections != 14 {
		t.Fatalf("k1 after compact: ok=%v res=%+v", ok, res)
	}
	k3 := CellSpec{Chip: "c", Benchmark: "b", Seed: 3}.Key()
	if err := d.Put(k3, fakeResult(30)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: all three cells must be there.
	d2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, k := range []CellKey{k1, k2, k3} {
		if _, ok, _ := d2.Get(k); !ok {
			t.Fatalf("cell %s lost across compact+reopen", k)
		}
	}
	if res, ok, _ := d2.Get(k2); !ok || res.Injections != 24 {
		t.Fatalf("k2 value wrong after reopen: %+v", res)
	}
}

func TestDiskStoreAutoCompactOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	d, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	key := CellSpec{Chip: "c", Benchmark: "b"}.Key()
	for i := 0; i <= CompactDeadThreshold+1; i++ {
		if err := d.Put(key, fakeResult(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	before := countLines(t, path)
	if before != CompactDeadThreshold+2 {
		t.Fatalf("setup wrote %d records", before)
	}
	// Open crosses the dead-record threshold and must compact.
	d2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := countLines(t, path); got != 1 {
		t.Fatalf("auto-compaction left %d records, want 1", got)
	}
	if res, ok, _ := d2.Get(key); !ok || res.Injections != CompactDeadThreshold+2 {
		t.Fatalf("latest value lost: ok=%v res=%+v", ok, res)
	}
	// Below the threshold, open must not rewrite the file.
	for i := 0; i < 3; i++ {
		if err := d2.Put(key, fakeResult(50+i)); err != nil {
			t.Fatal(err)
		}
	}
	d2.Close()
	before = countLines(t, path)
	d3, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if got := countLines(t, path); got != before {
		t.Fatalf("open below threshold rewrote the file: %d -> %d records", before, got)
	}
}
