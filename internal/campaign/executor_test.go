package campaign

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/finject"
	"repro/internal/gpu"
)

// countingExecutor returns canned results and records how often and with
// what it was called.
type countingExecutor struct {
	calls atomic.Int64
	last  atomic.Value // Request
}

func (e *countingExecutor) Execute(ctx context.Context, req Request) (*finject.Result, error) {
	e.calls.Add(1)
	e.last.Store(req)
	res := &finject.Result{Injections: req.Spec.Injections}
	res.Outcomes[gpu.OutcomeMasked] = req.Spec.Injections
	return res, nil
}

func TestSchedulerDelegatesToExecutor(t *testing.T) {
	exec := &countingExecutor{}
	s := New(Config{Executor: exec})
	c := testCampaign(t, "vectoradd")
	if _, err := s.Run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if got := exec.calls.Load(); got != 1 {
		t.Fatalf("executor ran %d times, want 1 (second request served by the store)", got)
	}
	req := exec.last.Load().(Request)
	if req.Spec != SpecOf(c) || req.Key != SpecOf(c).Key() {
		t.Fatalf("request spec %+v does not match the campaign's cell", req.Spec)
	}
	if req.Policy.MaxInjections != 0 {
		t.Fatal("cap not resolved into the spec before dispatch")
	}
	if req.Campaign.Chip == nil || req.Campaign.Injections != req.Spec.Injections {
		t.Fatalf("request campaign not pinned to the spec: %+v", req.Campaign)
	}
}

func TestRequestResolvesSpecWithoutCampaign(t *testing.T) {
	spec := CellSpec{Chip: "Mini NVIDIA", Benchmark: "vectoradd", Injections: 10, Seed: 7}.Normalize()
	c, err := Request{Spec: spec}.campaign()
	if err != nil {
		t.Fatal(err)
	}
	if c.Chip == nil || c.Chip.Name != "Mini NVIDIA" || c.Injections != 10 {
		t.Fatalf("resolved campaign %+v", c)
	}
	if _, err := (Request{Spec: CellSpec{Chip: "no such chip", Benchmark: "vectoradd"}}).campaign(); err == nil {
		t.Fatal("unknown chip resolved")
	}
}

// drainQueue runs an in-process worker loop against the queue until stop
// is closed — the same protocol a remote fiworker speaks, minus HTTP.
func drainQueue(q *LeaseQueue, stop chan struct{}) {
	exec := NewLocalExecutor()
	for {
		select {
		case <-stop:
			return
		default:
		}
		leases := q.Lease("test-worker", 1)
		if len(leases) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		for _, l := range leases {
			res, err := exec.Execute(context.Background(), Request{
				Spec: l.Task.Spec, Key: l.Task.Spec.Key(),
				Policy: l.Task.Policy.Policy(l.Task.Spec.CheckpointPolicy()),
			})
			msg := ""
			if err != nil {
				msg, res = err.Error(), nil
			}
			q.Complete(l.ID, res, msg)
		}
	}
}

func TestRemoteExecutionBitIdenticalToLocal(t *testing.T) {
	c := testCampaign(t, "transpose")

	local := New(Config{})
	want, err := local.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}

	q := NewLeaseQueue(time.Minute)
	stop := make(chan struct{})
	defer close(stop)
	go drainQueue(q, stop)

	remote := New(Config{Executor: NewRemoteExecutor(q)})
	got, err := remote.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("remote result differs from local:\nlocal:  %s\nremote: %s", wantJSON, gotJSON)
	}
	if remote.Stats().Runs != 1 {
		t.Fatalf("stats %+v", remote.Stats())
	}
}

func TestRemoteExecutorPropagatesWorkerError(t *testing.T) {
	q := NewLeaseQueue(time.Minute)
	stop := make(chan struct{})
	defer close(stop)
	go drainQueue(q, stop)

	s := New(Config{Executor: NewRemoteExecutor(q)})
	c := testCampaign(t, "vectoradd")
	c.Chip = nil
	if _, err := s.Run(context.Background(), c); err == nil {
		t.Fatal("campaign without chip accepted")
	}
	// A registry-resolvable chip is required across the wire; a campaign
	// carrying pointers still works locally but its spec must resolve.
	spec := SpecOf(testCampaign(t, "vectoradd"))
	spec.Chip = "no such chip"
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := q.Do(ctx, Task{Spec: spec}); err == nil {
		t.Fatal("worker accepted a spec naming an unknown chip")
	}
}
