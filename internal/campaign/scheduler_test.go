package campaign

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/finject"
	"repro/internal/gpu"
)

func TestSchedulerDeterministicAcrossWorkerCounts(t *testing.T) {
	c := testCampaign(t, "vectoradd")
	var outcomes [][gpu.NumOutcomes]int
	for _, workers := range []int{1, 4} {
		s := New(Config{Workers: workers, CampaignWorkers: workers})
		res, err := s.Run(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		outcomes = append(outcomes, res.Outcomes)
	}
	if outcomes[0] != outcomes[1] {
		t.Fatalf("worker count changed outcomes: %v vs %v", outcomes[0], outcomes[1])
	}
}

func TestSchedulerStoreHit(t *testing.T) {
	s := New(Config{})
	c := testCampaign(t, "vectoradd")
	first, err := s.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("second run did not return the stored result")
	}
	st := s.Stats()
	if st.Runs != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 run and 1 hit", st)
	}
}

func TestSchedulerCoalescesConcurrentDuplicates(t *testing.T) {
	s := New(Config{})
	c := testCampaign(t, "vectoradd")
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Run(context.Background(), c)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Runs != 1 {
		t.Fatalf("%d duplicate clients caused %d executions, want 1", clients, st.Runs)
	}
	if st.Hits+st.Joins != clients-1 {
		t.Fatalf("stats %+v: hits+joins should cover the other %d clients", st, clients-1)
	}
}

func TestSchedulerSharesGoldenAcrossStructures(t *testing.T) {
	s := New(Config{})
	reg := testCampaign(t, "reduction")
	local := reg
	local.Structure = gpu.LocalMemory
	batch := []finject.Campaign{reg, local}
	if _, err := s.RunBatch(context.Background(), batch, nil); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Runs != 2 {
		t.Fatalf("want 2 campaign executions, got %+v", st)
	}
	if st.GoldenRuns != 1 {
		t.Fatalf("want one shared golden run for both structures, got %d", st.GoldenRuns)
	}
}

func TestSchedulerBatchOrderAndProgress(t *testing.T) {
	s := New(Config{})
	a := testCampaign(t, "vectoradd")
	b := testCampaign(t, "transpose")
	var mu sync.Mutex
	calls := 0
	results, err := s.RunBatch(context.Background(), []finject.Campaign{a, b, a},
		func(i int, res *finject.Result, cached bool, err error) {
			mu.Lock()
			calls++
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("onCell ran %d times, want 3", calls)
	}
	if len(results) != 3 || results[0] == nil || results[1] == nil || results[2] == nil {
		t.Fatalf("missing results: %v", results)
	}
	if results[0].Outcomes != results[2].Outcomes {
		t.Fatal("duplicate cells disagree")
	}
	if s.Stats().Runs != 2 {
		t.Fatalf("duplicate within batch re-executed: %+v", s.Stats())
	}
}

func TestSchedulerCancellationMidBatch(t *testing.T) {
	s := New(Config{Workers: 1, CampaignWorkers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	batch := make([]finject.Campaign, 6)
	for i := range batch {
		c := testCampaign(t, "vectoradd")
		c.Seed = uint64(100 + i) // distinct cells, no dedup
		batch[i] = c
	}
	done := 0
	_, err := s.RunBatch(ctx, batch, func(i int, res *finject.Result, cached bool, err error) {
		if err == nil {
			done++
			once.Do(cancel) // cancel as soon as the first cell lands
		}
	})
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if done == 0 || done == len(batch) {
		t.Fatalf("done=%d cells, want a strict partial batch", done)
	}
	if got := int(s.Stats().Runs); got >= len(batch) {
		t.Fatalf("all %d cells ran despite cancellation", got)
	}
}

func TestSchedulerSubscribe(t *testing.T) {
	s := New(Config{})
	c := testCampaign(t, "vectoradd")
	var mu sync.Mutex
	var events []Progress
	cancel := s.Subscribe(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	if _, err := s.Run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := s.Run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (subscription canceled before third)", len(events))
	}
	if events[0].Cached || !events[1].Cached {
		t.Fatalf("cached flags: %+v", events)
	}
	if events[0].Key != SpecOf(c).Key() {
		t.Fatal("event key mismatch")
	}
}

func TestSchedulerRejectsIncompleteCampaign(t *testing.T) {
	s := New(Config{})
	if _, err := s.Run(context.Background(), finject.Campaign{}); err == nil {
		t.Fatal("campaign without chip/benchmark accepted")
	}
}
