package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/internal/finject"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// BinaryDiskStore is the wire-format sibling of DiskStore: the same
// append-only shadowing model (later records for a key supersede earlier
// ones, Compact garbage-collects), the same torn-tail truncation rule on
// open and the same tmp+fsync+atomic-rename compaction — but each record
// is a length-prefixed, CRC-protected binary frame instead of a JSON
// line, which opens and appends several times faster and takes a
// fraction of the bytes. Files carry the wire magic, so OpenStore can
// route between the formats by sniffing.
type BinaryDiskStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	idx  map[CellKey]*finject.Result
	// records counts the frames physically in the file; records - len(idx)
	// are dead (shadowed by a later frame for the same key).
	records int
	gauges  storeGauges
}

// appendCellRecord frames one (key, result) pair onto buf.
func appendCellRecord(buf []byte, key CellKey, res *finject.Result) []byte {
	var w wire.Writer
	w.String(string(key))
	finject.EncodeResult(&w, res)
	return wire.AppendRecord(buf, wire.RecCell, w.Bytes())
}

// decodeCellRecord decodes a RecCell payload.
func decodeCellRecord(payload []byte) (CellKey, *finject.Result, error) {
	r := wire.NewReader(payload)
	key := CellKey(r.String())
	if err := r.Err(); err != nil {
		return "", nil, err
	}
	if key == "" {
		return "", nil, fmt.Errorf("%w: cell record with empty key", wire.ErrCorrupt)
	}
	res, err := finject.DecodeResult(r)
	if err != nil {
		return "", nil, err
	}
	return key, res, nil
}

// OpenBinaryDiskStore opens (creating if absent) the wire-format store
// at path and loads its index. The crash-recovery contract matches
// OpenDiskStore's: each Put is a single write of one complete frame, so
// a frame whose declared extent runs past the end of the file is a torn
// append and is truncated away, while a complete frame failing its CRC
// or decode is corruption and stays an error.
func OpenBinaryDiskStore(path string) (*BinaryDiskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	b := &BinaryDiskStore{path: path, f: f, idx: make(map[CellKey]*finject.Result)}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: store %s: %w", path, err)
	}
	if len(data) == 0 {
		hdr := wire.AppendHeader(nil, wire.FileStore)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: store %s: %w", path, err)
		}
		telemetry.WireBytesWritten.Add(int64(len(hdr)))
	} else {
		kind, _, err := wire.ParseHeader(data)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: store %s: %w", path, err)
		}
		if kind != wire.FileStore {
			f.Close()
			return nil, fmt.Errorf("campaign: store %s is a wire %s file, not a store", path, kind)
		}
		good, err := wire.ScanRecords(data, func(rec wire.Record) error {
			if rec.Kind != wire.RecCell {
				return nil // forward-compatible additions: skip
			}
			key, res, err := decodeCellRecord(rec.Payload)
			if err != nil {
				return fmt.Errorf("record at offset %d: %w", rec.Off, err)
			}
			b.idx[key] = res
			b.records++
			return nil
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: store %s: %w", path, err)
		}
		if good < len(data) {
			if err := f.Truncate(int64(good)); err != nil {
				f.Close()
				return nil, fmt.Errorf("campaign: store %s: truncate torn tail: %w", path, err)
			}
		}
		if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: store %s: %w", path, err)
		}
	}
	if b.records-len(b.idx) > CompactDeadThreshold {
		if err := b.Compact(); err != nil {
			f.Close()
			return nil, err
		}
	}
	b.mu.Lock()
	b.gauges.sync(len(b.idx), b.records-len(b.idx))
	b.mu.Unlock()
	return b, nil
}

// Compact rewrites the file down to one frame per live cell, in sorted
// key order for byte-stable output, through the same atomic-replace
// helper as the JSON store.
func (b *BinaryDiskStore) Compact() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	defer telemetry.StartSpan(context.Background(), "store_compact")()
	var written int64
	err := atomicReplaceFile(b.path, func(w io.Writer) error {
		buf := wire.AppendHeader(nil, wire.FileStore)
		for _, k := range sortedKeys(b.idx) {
			buf = appendCellRecord(buf, k, b.idx[k])
		}
		written = int64(len(buf))
		_, err := w.Write(buf)
		return err
	})
	if err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	f, err := os.OpenFile(b.path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: compact store: reopen: %w", err)
	}
	b.f.Close()
	b.f = f
	b.records = len(b.idx)
	telemetry.WireBytesWritten.Add(written)
	telemetry.StoreCompactions.Inc()
	b.gauges.sync(len(b.idx), 0)
	return nil
}

// Records reports the physical frame count of the backing file;
// Records() - Len() of them are dead.
func (b *BinaryDiskStore) Records() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.records
}

// Get implements Store from the in-memory index.
func (b *BinaryDiskStore) Get(key CellKey) (*finject.Result, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	res, ok := b.idx[key]
	return res, ok, nil
}

// Put implements Store, appending one frame with a single write so the
// record is either wholly present or wholly absent after any crash.
func (b *BinaryDiskStore) Put(key CellKey, res *finject.Result) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec := appendCellRecord(nil, key, res)
	if _, err := b.f.Write(rec); err != nil {
		return fmt.Errorf("campaign: store append: %w", err)
	}
	b.idx[key] = res
	b.records++
	telemetry.WireBytesWritten.Add(int64(len(rec)))
	telemetry.StorePuts.Inc()
	b.gauges.sync(len(b.idx), b.records-len(b.idx))
	return nil
}

// Len implements Store.
func (b *BinaryDiskStore) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.idx)
}

// Keys returns the live cell keys in ascending order.
func (b *BinaryDiskStore) Keys() []CellKey {
	b.mu.Lock()
	defer b.mu.Unlock()
	return sortedKeys(b.idx)
}

// Path returns the backing file's path.
func (b *BinaryDiskStore) Path() string { return b.path }

// Close flushes and closes the backing file. The store must not be used
// afterwards.
func (b *BinaryDiskStore) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gauges.withdraw()
	return b.f.Close()
}

// PersistentStore is the disk-backed Store surface shared by both
// on-disk formats; everything that opens stores through OpenStore
// programs against it.
type PersistentStore interface {
	Store
	// Records reports the physical record count (Records()-Len() dead).
	Records() int
	// Keys returns the live cell keys in ascending order.
	Keys() []CellKey
	// Path returns the backing file's path.
	Path() string
	// Compact garbage-collects dead records.
	Compact() error
	// Close releases the backing file.
	Close() error
}

// The store format names accepted by OpenStore and the -store-format
// flag.
const (
	FormatAuto   = "auto"
	FormatJSON   = "json"
	FormatBinary = "binary"
)

// sniffStoreFormat reports the format of an existing store file by its
// leading bytes; exists is false for absent or empty files (which are
// free to take any format).
func sniffStoreFormat(path string) (format string, exists bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return "", false, nil
	}
	if err != nil {
		return "", false, fmt.Errorf("campaign: open store: %w", err)
	}
	defer f.Close()
	head := make([]byte, len(wire.Magic))
	n, err := io.ReadFull(f, head)
	if n == 0 {
		return "", false, nil
	}
	_ = err // a short file is simply not a wire file
	if wire.IsWireFile(head[:n]) {
		return FormatBinary, true, nil
	}
	return FormatJSON, true, nil
}

// OpenStore opens the disk store at path in the requested format
// ("json", "binary", or "auto"/""). Existing files are routed by
// sniffing the wire magic, so stores written in either format keep
// opening no matter the flag default; requesting a format that
// contradicts an existing file's actual format is an error (convert
// with fistore instead). New files are created in the requested format,
// defaulting to JSON lines under "auto".
func OpenStore(path, format string) (PersistentStore, error) {
	format = strings.ToLower(strings.TrimSpace(format))
	sniffed, exists, err := sniffStoreFormat(path)
	if err != nil {
		return nil, err
	}
	switch format {
	case FormatAuto, "":
		if exists && sniffed == FormatBinary {
			return OpenBinaryDiskStore(path)
		}
		return OpenDiskStore(path)
	case FormatJSON, FormatBinary:
		if exists && sniffed != format {
			return nil, fmt.Errorf("campaign: store %s is %s-format, but -store-format=%s was requested (convert it with fistore)", path, sniffed, format)
		}
		if format == FormatBinary {
			return OpenBinaryDiskStore(path)
		}
		return OpenDiskStore(path)
	default:
		return nil, fmt.Errorf("campaign: unknown store format %q (want %s, %s or %s)", format, FormatAuto, FormatJSON, FormatBinary)
	}
}
