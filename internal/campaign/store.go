package campaign

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/finject"
	"repro/internal/telemetry"
)

// Store is a campaign-result cache keyed by cell identity. Implementations
// must be safe for concurrent use. Results are shared by pointer: callers
// must treat results obtained from a store as immutable.
type Store interface {
	// Get returns the stored result for key, if any.
	Get(key CellKey) (*finject.Result, bool, error)
	// Put records the result for key, replacing any previous value.
	Put(key CellKey, res *finject.Result) error
	// Len reports the number of cells currently stored.
	Len() int
}

// MemoryStore is an in-memory LRU Store.
type MemoryStore struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	idx map[CellKey]*list.Element
}

type memEntry struct {
	key CellKey
	res *finject.Result
}

// NewMemoryStore builds an LRU store holding at most capacity cells;
// capacity <= 0 means unbounded.
func NewMemoryStore(capacity int) *MemoryStore {
	return &MemoryStore{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[CellKey]*list.Element),
	}
}

// Get implements Store, refreshing the entry's recency.
func (m *MemoryStore) Get(key CellKey) (*finject.Result, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.idx[key]
	if !ok {
		return nil, false, nil
	}
	m.ll.MoveToFront(el)
	return el.Value.(*memEntry).res, true, nil
}

// Put implements Store, evicting the least recently used cell when over
// capacity.
func (m *MemoryStore) Put(key CellKey, res *finject.Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.idx[key]; ok {
		el.Value.(*memEntry).res = res
		m.ll.MoveToFront(el)
		return nil
	}
	m.idx[key] = m.ll.PushFront(&memEntry{key: key, res: res})
	if m.cap > 0 && m.ll.Len() > m.cap {
		last := m.ll.Back()
		m.ll.Remove(last)
		delete(m.idx, last.Value.(*memEntry).key)
	}
	return nil
}

// Len implements Store.
func (m *MemoryStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// DiskStore is a persistent Store: one JSON record per line, appended on
// Put, with the whole file indexed in memory on open. Later records for
// the same key shadow earlier ones, so overwrites are appends too — the
// file is only rewritten by Compact, which OpenDiskStore invokes
// automatically once the dead records pass CompactDeadThreshold.
type DiskStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	enc  *json.Encoder
	idx  map[CellKey]*finject.Result
	// records counts the rows physically in the file; records - len(idx)
	// are dead (shadowed by a later row for the same key).
	records int
	// lastLive/lastDead remember this store's previous contribution to the
	// fleet record gauges so several open stores aggregate additively;
	// Close withdraws the contribution.
	lastLive, lastDead int
}

// syncGaugesLocked publishes the store's live/dead record counts to the
// fleet gauges as deltas against its previous contribution. Callers
// hold d.mu.
func (d *DiskStore) syncGaugesLocked() {
	live := len(d.idx)
	dead := d.records - live
	telemetry.StoreRecordsLive.Add(int64(live - d.lastLive))
	telemetry.StoreRecordsDead.Add(int64(dead - d.lastDead))
	d.lastLive, d.lastDead = live, dead
}

// CompactDeadThreshold is the number of dead (shadowed) records past
// which OpenDiskStore compacts the file before serving from it. Policy
// upgrades overwrite cells by appending, so a long-lived store otherwise
// grows without bound.
const CompactDeadThreshold = 64

// diskRecord is the JSON-lines row format.
type diskRecord struct {
	Key    CellKey         `json:"key"`
	Result *finject.Result `json:"result"`
}

// OpenDiskStore opens (creating if absent) the JSON-lines store at path
// and loads its index. A torn final record — the signature of a process
// killed mid-append — is truncated away so the next append lands on a
// clean line boundary; a malformed record anywhere else is corruption
// and stays an error. Complete records survive any crash: each Put is
// one write of record+newline, so a record is either wholly present or
// wholly absent.
func OpenDiskStore(path string) (*DiskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	d := &DiskStore{path: path, f: f, idx: make(map[CellKey]*finject.Result)}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: store %s: %w", path, err)
	}
	good, line := 0, 0 // good = byte offset just past the last applied record
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // unterminated tail: torn final write
		}
		line++
		if raw := bytes.TrimSpace(rest[:nl]); len(raw) > 0 {
			// A newline-terminated line was fully written (the newline is
			// the record's last byte), so a parse failure here is real
			// corruption, not a torn write.
			var rec diskRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				f.Close()
				return nil, fmt.Errorf("campaign: store %s line %d: %w", path, line, err)
			}
			if rec.Key == "" || rec.Result == nil {
				f.Close()
				return nil, fmt.Errorf("campaign: store %s line %d: incomplete record", path, line)
			}
			d.idx[rec.Key] = rec.Result
			d.records++
		}
		good += nl + 1
		rest = rest[nl+1:]
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: store %s: truncate torn tail: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: store %s: %w", path, err)
	}
	d.enc = json.NewEncoder(f)
	if d.records-len(d.idx) > CompactDeadThreshold {
		if err := d.Compact(); err != nil {
			f.Close()
			return nil, err
		}
	}
	d.mu.Lock()
	d.syncGaugesLocked()
	d.mu.Unlock()
	return d, nil
}

// Compact rewrites the file down to one record per live cell: the live
// records stream to a temporary sibling file, which is fsynced and
// atomically renamed over the store, so a crash at any point leaves
// either the old complete file or the new complete file. The in-memory
// index and the results it shares by pointer are untouched.
func (d *DiskStore) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer telemetry.StartSpan(context.Background(), "store_compact")()
	tmpPath := d.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	// Stable record order keeps equal stores byte-identical on disk.
	keys := make([]CellKey, 0, len(d.idx))
	for k := range d.idx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := enc.Encode(diskRecord{Key: k, Result: d.idx[k]}); err != nil {
			tmp.Close()
			return fmt.Errorf("campaign: compact store: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	if err := os.Rename(tmpPath, d.path); err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	// Reopen the renamed file for appends; the old handle now points at
	// an unlinked inode.
	f, err := os.OpenFile(d.path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: compact store: reopen: %w", err)
	}
	d.f.Close()
	d.f = f
	d.enc = json.NewEncoder(f)
	d.records = len(d.idx)
	telemetry.StoreCompactions.Inc()
	d.syncGaugesLocked()
	return nil
}

// Records reports the physical record count of the backing file;
// Records() - Len() of them are dead.
func (d *DiskStore) Records() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.records
}

// Get implements Store from the in-memory index.
func (d *DiskStore) Get(key CellKey) (*finject.Result, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	res, ok := d.idx[key]
	return res, ok, nil
}

// Put implements Store, appending one JSON line.
func (d *DiskStore) Put(key CellKey, res *finject.Result) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.enc.Encode(diskRecord{Key: key, Result: res}); err != nil {
		return fmt.Errorf("campaign: store append: %w", err)
	}
	d.idx[key] = res
	d.records++
	telemetry.StorePuts.Inc()
	d.syncGaugesLocked()
	return nil
}

// Len implements Store.
func (d *DiskStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.idx)
}

// Path returns the backing file's path.
func (d *DiskStore) Path() string { return d.path }

// Close flushes and closes the backing file. The store must not be used
// afterwards.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Withdraw this store's contribution from the fleet record gauges.
	telemetry.StoreRecordsLive.Add(int64(-d.lastLive))
	telemetry.StoreRecordsDead.Add(int64(-d.lastDead))
	d.lastLive, d.lastDead = 0, 0
	return d.f.Close()
}
