package campaign

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/finject"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Store is a campaign-result cache keyed by cell identity. Implementations
// must be safe for concurrent use. Results are shared by pointer: callers
// must treat results obtained from a store as immutable.
type Store interface {
	// Get returns the stored result for key, if any.
	Get(key CellKey) (*finject.Result, bool, error)
	// Put records the result for key, replacing any previous value.
	Put(key CellKey, res *finject.Result) error
	// Len reports the number of cells currently stored.
	Len() int
}

// MemoryStore is an in-memory LRU Store.
type MemoryStore struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	idx map[CellKey]*list.Element
}

type memEntry struct {
	key CellKey
	res *finject.Result
}

// NewMemoryStore builds an LRU store holding at most capacity cells;
// capacity <= 0 means unbounded.
func NewMemoryStore(capacity int) *MemoryStore {
	return &MemoryStore{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[CellKey]*list.Element),
	}
}

// Get implements Store, refreshing the entry's recency.
func (m *MemoryStore) Get(key CellKey) (*finject.Result, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.idx[key]
	if !ok {
		return nil, false, nil
	}
	m.ll.MoveToFront(el)
	return el.Value.(*memEntry).res, true, nil
}

// Put implements Store, evicting the least recently used cell when over
// capacity.
func (m *MemoryStore) Put(key CellKey, res *finject.Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.idx[key]; ok {
		el.Value.(*memEntry).res = res
		m.ll.MoveToFront(el)
		return nil
	}
	m.idx[key] = m.ll.PushFront(&memEntry{key: key, res: res})
	if m.cap > 0 && m.ll.Len() > m.cap {
		last := m.ll.Back()
		m.ll.Remove(last)
		delete(m.idx, last.Value.(*memEntry).key)
	}
	return nil
}

// Len implements Store.
func (m *MemoryStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// DiskStore is a persistent Store: one JSON record per line, appended on
// Put, with the whole file indexed in memory on open. Later records for
// the same key shadow earlier ones, so overwrites are appends too — the
// file is only rewritten by Compact, which OpenDiskStore invokes
// automatically once the dead records pass CompactDeadThreshold.
type DiskStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	enc  *json.Encoder
	idx  map[CellKey]*finject.Result
	// records counts the rows physically in the file; records - len(idx)
	// are dead (shadowed by a later row for the same key).
	records int
	gauges  storeGauges
}

// storeGauges tracks one store's contribution to the fleet-wide
// fi_store_disk_records_live/_dead gauges. Both disk store formats
// publish through this one helper, so their accounting cannot drift:
// contributions are deltas against the store's previous sync (several
// open stores aggregate additively) and Close withdraws them.
type storeGauges struct {
	lastLive, lastDead int
}

// sync publishes the store's current live/dead record counts. Callers
// hold their store's mutex.
func (g *storeGauges) sync(live, dead int) {
	telemetry.StoreRecordsLive.Add(int64(live - g.lastLive))
	telemetry.StoreRecordsDead.Add(int64(dead - g.lastDead))
	g.lastLive, g.lastDead = live, dead
}

// withdraw removes the store's contribution entirely (Close).
func (g *storeGauges) withdraw() { g.sync(0, 0) }

// syncGaugesLocked publishes the store's live/dead record counts.
// Callers hold d.mu.
func (d *DiskStore) syncGaugesLocked() {
	d.gauges.sync(len(d.idx), d.records-len(d.idx))
}

// CompactDeadThreshold is the number of dead (shadowed) records past
// which OpenDiskStore compacts the file before serving from it. Policy
// upgrades overwrite cells by appending, so a long-lived store otherwise
// grows without bound.
const CompactDeadThreshold = 64

// diskRecord is the JSON-lines row format.
type diskRecord struct {
	Key    CellKey         `json:"key"`
	Result *finject.Result `json:"result"`
}

// DecodeJSONRecord decodes one JSON-lines store row. It is the single
// row decoder, shared by OpenDiskStore and fistore's read-only
// inspection.
func DecodeJSONRecord(raw []byte) (CellKey, *finject.Result, error) {
	var rec diskRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return "", nil, err
	}
	if rec.Key == "" || rec.Result == nil {
		return "", nil, errors.New("incomplete record")
	}
	return rec.Key, rec.Result, nil
}

// OpenDiskStore opens (creating if absent) the JSON-lines store at path
// and loads its index. A torn final record — the signature of a process
// killed mid-append — is truncated away so the next append lands on a
// clean line boundary; a malformed record anywhere else is corruption
// and stays an error. Complete records survive any crash: each Put is
// one write of record+newline, so a record is either wholly present or
// wholly absent.
func OpenDiskStore(path string) (*DiskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	d := &DiskStore{path: path, f: f, idx: make(map[CellKey]*finject.Result)}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: store %s: %w", path, err)
	}
	if wire.IsWireFile(data) {
		f.Close()
		return nil, fmt.Errorf("campaign: store %s is a binary wire-format store; open it with OpenStore or OpenBinaryDiskStore", path)
	}
	good, line := 0, 0 // good = byte offset just past the last applied record
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // unterminated tail: torn final write
		}
		line++
		if raw := bytes.TrimSpace(rest[:nl]); len(raw) > 0 {
			// A newline-terminated line was fully written (the newline is
			// the record's last byte), so a parse failure here is real
			// corruption, not a torn write.
			key, res, err := DecodeJSONRecord(raw)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("campaign: store %s line %d: %w", path, line, err)
			}
			d.idx[key] = res
			d.records++
		}
		good += nl + 1
		rest = rest[nl+1:]
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: store %s: truncate torn tail: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: store %s: %w", path, err)
	}
	d.enc = json.NewEncoder(f)
	if d.records-len(d.idx) > CompactDeadThreshold {
		if err := d.Compact(); err != nil {
			f.Close()
			return nil, err
		}
	}
	d.mu.Lock()
	d.syncGaugesLocked()
	d.mu.Unlock()
	return d, nil
}

// Compact rewrites the file down to one record per live cell: the live
// records stream to a temporary sibling file, which is fsynced and
// atomically renamed over the store, so a crash at any point leaves
// either the old complete file or the new complete file. The in-memory
// index and the results it shares by pointer are untouched.
func (d *DiskStore) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer telemetry.StartSpan(context.Background(), "store_compact")()
	err := atomicReplaceFile(d.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for _, k := range sortedKeys(d.idx) {
			if err := enc.Encode(diskRecord{Key: k, Result: d.idx[k]}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	// Reopen the renamed file for appends; the old handle now points at
	// an unlinked inode.
	f, err := os.OpenFile(d.path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: compact store: reopen: %w", err)
	}
	d.f.Close()
	d.f = f
	d.enc = json.NewEncoder(f)
	d.records = len(d.idx)
	telemetry.StoreCompactions.Inc()
	d.syncGaugesLocked()
	return nil
}

// sortedKeys returns the index's keys in ascending order: stable record
// order keeps equal stores byte-identical on disk.
func sortedKeys(idx map[CellKey]*finject.Result) []CellKey {
	keys := make([]CellKey, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// atomicReplaceFile writes a complete replacement for path to a
// temporary sibling (buffered), fsyncs it and renames it into place, so
// a crash at any point leaves either the old or the new complete file.
// Both disk store formats compact through this helper.
func atomicReplaceFile(path string, write func(w io.Writer) error) error {
	tmpPath := path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	if err := write(w); err != nil {
		tmp.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpPath, path)
}

// Records reports the physical record count of the backing file;
// Records() - Len() of them are dead.
func (d *DiskStore) Records() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.records
}

// Get implements Store from the in-memory index.
func (d *DiskStore) Get(key CellKey) (*finject.Result, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	res, ok := d.idx[key]
	return res, ok, nil
}

// Put implements Store, appending one JSON line.
func (d *DiskStore) Put(key CellKey, res *finject.Result) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.enc.Encode(diskRecord{Key: key, Result: res}); err != nil {
		return fmt.Errorf("campaign: store append: %w", err)
	}
	d.idx[key] = res
	d.records++
	telemetry.StorePuts.Inc()
	d.syncGaugesLocked()
	return nil
}

// Len implements Store.
func (d *DiskStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.idx)
}

// Keys returns the live cell keys in ascending order.
func (d *DiskStore) Keys() []CellKey {
	d.mu.Lock()
	defer d.mu.Unlock()
	return sortedKeys(d.idx)
}

// Path returns the backing file's path.
func (d *DiskStore) Path() string { return d.path }

// Close flushes and closes the backing file. The store must not be used
// afterwards.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Withdraw this store's contribution from the fleet record gauges.
	d.gauges.withdraw()
	return d.f.Close()
}
