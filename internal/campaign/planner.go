package campaign

import "sort"

// shardCost estimates a cell's relative execution cost. The injection cap
// dominates wall-clock (each injection is one full simulation), so it is
// the planning weight; adaptive cells may stop early, which only makes
// the plan conservative.
func shardCost(s CellSpec) int64 { return int64(s.Normalize().Injections) }

// sortLPT orders entries largest-first (longest processing time), with
// enqueue order breaking ties so the schedule is deterministic. Handing
// idle workers the largest remaining cell is the classic greedy bound on
// makespan for pull-based fleets.
func sortLPT(entries []*leaseEntry) {
	sort.Slice(entries, func(i, j int) bool {
		ci, cj := shardCost(entries[i].task.Spec), shardCost(entries[j].task.Spec)
		if ci != cj {
			return ci > cj
		}
		return entries[i].seq < entries[j].seq
	})
}

// PlanShards partitions cells into n shards of near-equal total cost
// (greedy LPT: place each cell, largest first, onto the currently
// lightest shard). The plan is deterministic: equal inputs produce equal
// shards, with input order breaking cost ties. Shards are ordered
// heaviest-first; with fewer cells than shards the tail shards are empty
// but present, so a static fleet can index shards by worker rank.
func PlanShards(specs []CellSpec, n int) [][]CellSpec {
	if n < 1 {
		n = 1
	}
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return shardCost(specs[order[a]]) > shardCost(specs[order[b]])
	})
	shards := make([][]CellSpec, n)
	load := make([]int64, n)
	for _, idx := range order {
		lightest := 0
		for s := 1; s < n; s++ {
			if load[s] < load[lightest] {
				lightest = s
			}
		}
		shards[lightest] = append(shards[lightest], specs[idx])
		load[lightest] += shardCost(specs[idx])
	}
	sort.SliceStable(shards, func(a, b int) bool {
		var la, lb int64
		for _, s := range shards[a] {
			la += shardCost(s)
		}
		for _, s := range shards[b] {
			lb += shardCost(s)
		}
		return la > lb
	})
	return shards
}
