package campaign

import (
	"context"
	"reflect"
	"testing"
	"time"
)

func specsWithCosts(costs ...int) []CellSpec {
	specs := make([]CellSpec, len(costs))
	for i, c := range costs {
		specs[i] = testSpec(uint64(100+i), c)
	}
	return specs
}

func shardCostSum(shard []CellSpec) int64 {
	var total int64
	for _, s := range shard {
		total += shardCost(s)
	}
	return total
}

func TestPlanShardsBalancesCost(t *testing.T) {
	specs := specsWithCosts(500, 300, 300, 200, 100, 100)
	shards := PlanShards(specs, 2)
	if len(shards) != 2 {
		t.Fatalf("%d shards, want 2", len(shards))
	}
	a, b := shardCostSum(shards[0]), shardCostSum(shards[1])
	if a+b != 1500 {
		t.Fatalf("cells lost: %d + %d != 1500", a, b)
	}
	// Greedy LPT is near-optimal, not perfect: the gap between shards is
	// at most one small cell, never a large one.
	if a < b {
		t.Fatalf("shards not ordered heaviest-first: %d vs %d", a, b)
	}
	if a-b > 200 {
		t.Fatalf("imbalance %d too large: %d vs %d", a-b, a, b)
	}
	if total := len(shards[0]) + len(shards[1]); total != len(specs) {
		t.Fatalf("%d cells planned, want %d", total, len(specs))
	}
}

func TestPlanShardsDeterministic(t *testing.T) {
	specs := specsWithCosts(7, 3, 9, 3, 5, 1, 8)
	if !reflect.DeepEqual(PlanShards(specs, 3), PlanShards(specs, 3)) {
		t.Fatal("equal inputs produced different plans")
	}
}

func TestPlanShardsEdgeCases(t *testing.T) {
	specs := specsWithCosts(10, 20)
	if got := PlanShards(specs, 0); len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("n=0: %+v", got)
	}
	got := PlanShards(specs, 5)
	if len(got) != 5 {
		t.Fatalf("n=5 returned %d shards", len(got))
	}
	filled := 0
	for _, s := range got {
		if len(s) > 0 {
			filled++
		}
	}
	if filled != 2 {
		t.Fatalf("2 cells spread over %d shards", filled)
	}
	if empty := PlanShards(nil, 3); len(empty) != 3 {
		t.Fatalf("empty input: %+v", empty)
	}
}

func TestLeaseOrderIsLargestFirst(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	for _, n := range []int{100, 900, 400} {
		go q.Do(context.Background(), Task{Spec: testSpec(uint64(n), n)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Pending < 3 {
		if time.Now().After(deadline) {
			t.Fatal("cells never queued")
		}
		time.Sleep(time.Millisecond)
	}
	var got []int
	for i := 0; i < 3; i++ {
		leases := q.Lease("w", 1)
		if len(leases) != 1 {
			t.Fatalf("lease %d: %+v", i, leases)
		}
		got = append(got, leases[0].Task.Spec.Injections)
	}
	if !reflect.DeepEqual(got, []int{900, 400, 100}) {
		t.Fatalf("lease order %v, want largest first", got)
	}
}

func TestLeaseBatchGrantsBalancedShard(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	for _, n := range []int{800, 700, 200, 150, 100, 50} {
		go q.Do(context.Background(), Task{Spec: testSpec(uint64(n), n)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Pending < 6 {
		if time.Now().After(deadline) {
			t.Fatal("cells never queued")
		}
		time.Sleep(time.Millisecond)
	}
	leases := q.Lease("w", 3)
	if len(leases) == 0 || len(leases) > 3 {
		t.Fatalf("batch lease granted %d cells, want 1..3", len(leases))
	}
	// A cost-balanced shard must not be simply the 3 largest cells.
	var total int
	for _, l := range leases {
		total += l.Task.Spec.Injections
	}
	if total == 800+700+200 {
		t.Fatalf("batch lease took the %d largest cells, starving the fleet", len(leases))
	}
}
