package campaign

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/finject"
	"repro/internal/telemetry"
)

// Config configures a Scheduler.
type Config struct {
	// Store caches finished cells; an unbounded MemoryStore when nil.
	Store Store
	// Workers bounds concurrently executing cells (GOMAXPROCS when 0).
	Workers int
	// CampaignWorkers bounds the parallel simulations inside one
	// campaign. When 0, each campaign adaptively gets GOMAXPROCS divided
	// by the number of concurrently executing cells, so cell-level and
	// campaign-level parallelism never multiply beyond the machine.
	CampaignWorkers int
	// Executor runs the cells the scheduler cannot answer from its store:
	// a fresh LocalExecutor when nil, or e.g. a RemoteExecutor to shard
	// execution across a worker fleet. Caching, deduplication and policy
	// upgrade semantics are identical either way.
	Executor Executor
}

// Stats counts scheduler activity since construction.
type Stats struct {
	// Hits is the number of cells served straight from the store.
	Hits int64
	// Runs is the number of campaigns actually executed to completion.
	Runs int64
	// Joins is the number of requests that coalesced onto an in-flight
	// execution of the same cell instead of starting their own.
	Joins int64
	// GoldenRuns is the number of golden reference simulations executed;
	// one per (chip, benchmark) pair regardless of structure or campaign
	// count.
	GoldenRuns int64
	// Injections is the total number of injections actually executed
	// across all campaign runs (adaptive campaigns stop below the cap, so
	// this is usually less than Runs x the cap).
	Injections int64
	// Upgrades is the number of campaigns re-executed because the cached
	// cell had stopped at a looser margin than the request demanded.
	Upgrades int64
}

// Progress reports one cell served by the scheduler — computed, joined or
// answered from the store.
type Progress struct {
	Spec CellSpec
	Key  CellKey
	// Cached is true when the cell was served without running a campaign.
	Cached bool
}

// Scheduler is a deduplicating, cancelable campaign executor: it answers
// from its Store when possible, coalesces concurrent requests for the
// same cell onto one execution (singleflight), bounds concurrency with a
// worker pool, and shares one golden reference run per (chip, benchmark)
// across all structures and campaigns.
type Scheduler struct {
	store           Store
	exec            Executor
	sem             chan struct{}
	campaignWorkers int

	mu       sync.Mutex
	inflight map[CellKey]*call

	subMu sync.Mutex
	subID int
	subs  map[int]func(Progress)

	hits, runs, joins    atomic.Int64
	injections, upgrades atomic.Int64
}

// call is one in-flight cell execution others may join.
type call struct {
	done chan struct{}
	res  *finject.Result
	err  error
}

// New builds a Scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Store == nil {
		cfg.Store = NewMemoryStore(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Executor == nil {
		cfg.Executor = NewLocalExecutor()
	}
	return &Scheduler{
		store:           cfg.Store,
		exec:            cfg.Executor,
		sem:             make(chan struct{}, cfg.Workers),
		campaignWorkers: cfg.CampaignWorkers,
		inflight:        make(map[CellKey]*call),
		subs:            make(map[int]func(Progress)),
	}
}

// Store returns the scheduler's result store.
func (s *Scheduler) Store() Store { return s.store }

// Executor returns the scheduler's cell executor.
func (s *Scheduler) Executor() Executor { return s.exec }

// Stats returns a snapshot of the activity counters.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Hits:       s.hits.Load(),
		Runs:       s.runs.Load(),
		Joins:      s.joins.Load(),
		Injections: s.injections.Load(),
		Upgrades:   s.upgrades.Load(),
	}
	// Golden sharing lives in the executor; remote tiers count theirs on
	// the worker side.
	if g, ok := s.exec.(interface{ GoldenRuns() int64 }); ok {
		st.GoldenRuns = g.GoldenRuns()
	}
	return st
}

// Subscribe registers fn to receive a Progress event for every cell the
// scheduler serves — computed, joined or answered from the store. The
// returned cancel removes the subscription. fn is called synchronously on
// the serving goroutine; keep it fast.
func (s *Scheduler) Subscribe(fn func(Progress)) (cancel func()) {
	s.subMu.Lock()
	id := s.subID
	s.subID++
	s.subs[id] = fn
	s.subMu.Unlock()
	return func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}
}

// notify fans one progress event out to the subscribers.
func (s *Scheduler) notify(p Progress) {
	s.subMu.Lock()
	fns := make([]func(Progress), 0, len(s.subs))
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	s.subMu.Unlock()
	for _, fn := range fns {
		fn(p)
	}
}

// Run serves one campaign cell: from the store if present, by joining an
// in-flight execution of the same cell if one exists, and by executing
// the campaign otherwise. Scheduling parameters that don't affect results
// (Workers, Detail, Golden) are owned by the scheduler: Workers follows
// Config.CampaignWorkers, Detail records are never stored, and the golden
// reference comes from the shared per-(chip, benchmark) cache.
func (s *Scheduler) Run(ctx context.Context, c finject.Campaign) (*finject.Result, error) {
	res, _, err := s.run(ctx, c)
	return res, err
}

// run is Run plus a cached flag (true when no campaign was executed for
// this request).
func (s *Scheduler) run(ctx context.Context, c finject.Campaign) (*finject.Result, bool, error) {
	if c.Chip == nil || c.Benchmark == nil {
		return nil, false, errors.New("campaign: cell needs a chip and a benchmark")
	}
	spec := SpecOf(c)
	key := spec.Key()
	for {
		// A cached cell answers the request only if it satisfies the
		// request's policy: an adaptive cell that stopped early cannot
		// serve a fixed-size request (or a tighter margin) for the same
		// cap — the campaign re-runs with the tighter policy and the Put
		// overwrites the looser result.
		stale := false
		if res, ok, err := s.store.Get(key); err != nil {
			return nil, false, err
		} else if ok {
			if c.Policy.SatisfiedBy(res, spec.Injections) {
				s.hits.Add(1)
				telemetry.SchedCacheHits.Inc()
				s.notify(Progress{Spec: spec, Key: key, Cached: true})
				return res, true, nil
			}
			stale = true
		}
		s.mu.Lock()
		if cl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if cl.err == nil {
				if !c.Policy.SatisfiedBy(cl.res, spec.Injections) {
					// The leader ran a looser policy; try again as leader.
					continue
				}
				s.joins.Add(1)
				telemetry.SchedJoins.Inc()
				s.notify(Progress{Spec: spec, Key: key, Cached: true})
				return cl.res, true, nil
			}
			// The leader failed. If it was canceled while we are still
			// live, loop and try to become the leader ourselves.
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			if !errors.Is(cl.err, context.Canceled) && !errors.Is(cl.err, context.DeadlineExceeded) {
				return nil, false, cl.err
			}
			continue
		}
		cl := &call{done: make(chan struct{})}
		s.inflight[key] = cl
		s.mu.Unlock()

		cl.res, cl.err = s.execute(ctx, c, spec, key)
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(cl.done)
		if cl.err != nil {
			return nil, false, cl.err
		}
		if stale {
			s.upgrades.Add(1)
			telemetry.SchedCacheUpgrades.Inc()
		}
		s.notify(Progress{Spec: spec, Key: key})
		return cl.res, false, nil
	}
}

// execute runs one campaign through the executor under the worker pool.
func (s *Scheduler) execute(ctx context.Context, c finject.Campaign, spec CellSpec, key CellKey) (*finject.Result, error) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	ctx = telemetry.WithCell(ctx, spec.String())
	telemetry.SchedInflight.Inc()
	defer telemetry.SchedInflight.Dec()
	defer telemetry.StartSpan(ctx, "cell_execute")()
	// Pin the result-determining fields to the normalized spec so the
	// stored value always matches its key, and strip what must not vary.
	// The policy's Margin and Confidence ride along untouched (they are
	// the request's stopping rule); the cap moves into Injections and the
	// worker count is scheduler-owned.
	c.Injections = spec.Injections
	c.Policy.MaxInjections = 0
	c.FaultWidth = spec.FaultWidth
	c.WatchdogFactor = spec.WatchdogFactor
	c.Policy.Workers = s.campaignWorkers
	if c.Policy.Workers <= 0 {
		// Split the machine across the currently executing cells so the
		// two parallelism levels don't multiply: a lone cell gets every
		// core, a full grid runs one simulation per cell at a time. A
		// remote executor ignores the hint — each worker divides its own
		// machine instead.
		c.Policy.Workers = runtime.GOMAXPROCS(0) / len(s.sem)
		if c.Policy.Workers < 1 {
			c.Policy.Workers = 1
		}
	}
	res, err := s.exec.Execute(ctx, Request{Spec: spec, Key: key, Policy: c.Policy, Campaign: c})
	if err != nil {
		return nil, err
	}
	s.runs.Add(1)
	s.injections.Add(int64(res.Injections))
	telemetry.SchedCellRuns.Inc()
	if err := s.store.Put(key, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunBatch schedules every campaign of the batch across the worker pool
// and returns the results in input order. onCell, when non-nil, is called
// once per cell as it completes (from any goroutine, one call at a time).
// The first failure cancels the remaining cells and is returned; cells
// already finished keep their results in the slice.
func (s *Scheduler) RunBatch(ctx context.Context, batch []finject.Campaign, onCell func(i int, res *finject.Result, cached bool, err error)) ([]*finject.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*finject.Result, len(batch))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, c := range batch {
		wg.Add(1)
		go func(i int, c finject.Campaign) {
			defer wg.Done()
			res, cached, err := s.run(ctx, c)
			mu.Lock()
			defer mu.Unlock()
			results[i] = res
			if err != nil && firstErr == nil {
				firstErr = err
				cancel()
			}
			if onCell != nil {
				onCell(i, res, cached, err)
			}
		}(i, c)
	}
	wg.Wait()
	return results, firstErr
}
