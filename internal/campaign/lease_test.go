package campaign

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/finject"
)

// fakeClock drives a LeaseQueue's notion of time from the test.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQueue(ttl time.Duration) (*LeaseQueue, *fakeClock) {
	q := NewLeaseQueue(ttl)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q.now = clk.now
	return q, clk
}

func testSpec(seed uint64, injections int) CellSpec {
	return CellSpec{
		Chip: "Mini NVIDIA", Benchmark: "vectoradd",
		Injections: injections, Seed: seed,
	}.Normalize()
}

// doAsync starts Do in a goroutine and returns channels with its answer.
func doAsync(q *LeaseQueue, t Task) (<-chan *finject.Result, <-chan error) {
	resCh := make(chan *finject.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := q.Do(context.Background(), t)
		resCh <- res
		errCh <- err
	}()
	return resCh, errCh
}

// waitLease polls until the producer's Do call has made the cell visible.
func waitLease(t *testing.T, q *LeaseQueue, worker string, max int) []Lease {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if leases := q.Lease(worker, max); len(leases) > 0 {
			return leases
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("cell never became leasable")
	return nil
}

func TestLeaseQueueDeliversResult(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	spec := testSpec(1, 50)
	resCh, errCh := doAsync(q, Task{Spec: spec})

	leases := waitLease(t, q, "w1", 1)
	if len(leases) != 1 || leases[0].Task.Spec != spec {
		t.Fatalf("leases %+v", leases)
	}
	if leases[0].TTLMillis != time.Minute.Milliseconds() {
		t.Fatalf("ttl_ms %d", leases[0].TTLMillis)
	}
	if err := q.Complete(leases[0].ID, fakeResult(50), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if res := <-resCh; res.Injections != 50 {
		t.Fatalf("result %+v", res)
	}
	st := q.Stats()
	if st.Completed != 1 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLeaseQueueCoalescesIdenticalCells(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	task := Task{Spec: testSpec(2, 30)}
	res1, err1 := doAsync(q, task)
	res2, err2 := doAsync(q, task)

	leases := waitLease(t, q, "w1", 8)
	if len(leases) != 1 {
		t.Fatalf("identical cells leased separately: %+v", leases)
	}
	if q.Lease("w2", 8) != nil {
		t.Fatal("second worker got the already-leased cell")
	}
	if err := q.Complete(leases[0].ID, fakeResult(30), ""); err != nil {
		t.Fatal(err)
	}
	if e := <-err1; e != nil {
		t.Fatal(e)
	}
	if e := <-err2; e != nil {
		t.Fatal(e)
	}
	if a, b := <-res1, <-res2; a != b {
		t.Fatal("waiters got different result pointers")
	}
}

func TestLeaseExpiryRequeuesCell(t *testing.T) {
	q, clk := newTestQueue(time.Minute)
	spec := testSpec(3, 40)
	resCh, errCh := doAsync(q, Task{Spec: spec})

	first := waitLease(t, q, "dead-worker", 1)
	// The worker dies: no heartbeat, no completion. One TTL later another
	// worker inherits the cell.
	clk.advance(time.Minute + time.Second)
	second := q.Lease("live-worker", 1)
	if len(second) != 1 || second[0].Task.Spec != spec {
		t.Fatalf("expired cell not re-leased: %+v", second)
	}
	if second[0].ID == first[0].ID {
		t.Fatal("re-lease reused the lease id")
	}
	if st := q.Stats(); st.Expired != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := q.Complete(second[0].ID, fakeResult(40), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if res := <-resCh; res.Injections != 40 {
		t.Fatalf("result %+v", res)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	q, clk := newTestQueue(time.Minute)
	go q.Do(context.Background(), Task{Spec: testSpec(4, 20)})
	leases := waitLease(t, q, "w1", 1)

	clk.advance(45 * time.Second)
	if !q.Heartbeat(leases[0].ID) {
		t.Fatal("live lease reported dead")
	}
	clk.advance(45 * time.Second) // 90s total, but renewed at 45s
	if q.Lease("w2", 1) != nil {
		t.Fatal("heartbeated lease expired")
	}
	clk.advance(time.Minute)
	if q.Heartbeat(leases[0].ID) {
		t.Fatal("expired lease heartbeat succeeded")
	}
}

func TestDuplicateCompleteIsIdempotent(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	go q.Do(context.Background(), Task{Spec: testSpec(5, 25)})
	leases := waitLease(t, q, "w1", 1)

	if err := q.Complete(leases[0].ID, fakeResult(25), ""); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(leases[0].ID, fakeResult(25), ""); err != nil {
		t.Fatalf("duplicate complete: %v", err)
	}
	if st := q.Stats(); st.Completed != 1 {
		t.Fatalf("duplicate complete double-counted: %+v", st)
	}
}

func TestLateCompleteFromExpiredLeaseStillLands(t *testing.T) {
	q, clk := newTestQueue(time.Minute)
	spec := testSpec(6, 35)
	resCh, errCh := doAsync(q, Task{Spec: spec})

	slow := waitLease(t, q, "slow-worker", 1)
	clk.advance(2 * time.Minute)
	fast := q.Lease("fast-worker", 1)
	if len(fast) != 1 {
		t.Fatal("expired cell not re-leased")
	}
	// The presumed-dead worker finishes after all: determinism makes its
	// answer identical, so it is accepted and the redo retired.
	if err := q.Complete(slow[0].ID, fakeResult(35), ""); err != nil {
		t.Fatalf("late complete rejected: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if res := <-resCh; res.Injections != 35 {
		t.Fatalf("result %+v", res)
	}
	// The second worker's completion is now a duplicate: accepted, no-op.
	if err := q.Complete(fast[0].ID, fakeResult(35), ""); err != nil {
		t.Fatalf("redo complete after late landing: %v", err)
	}
	if st := q.Stats(); st.Completed != 1 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLateCompleteUnderStalePolicyDoesNotLand(t *testing.T) {
	q, clk := newTestQueue(time.Minute)
	spec := testSpec(16, 2000)
	loose := Task{Spec: spec, Policy: finject.Config{Margin: 0.10}}
	tight := Task{Spec: spec, Policy: finject.Config{Margin: 0.01}}

	// The loose request is leased, presumed dead, redone and completed.
	_, looseErr := doAsync(q, loose)
	slow := waitLease(t, q, "slow-worker", 1)
	clk.advance(2 * time.Minute)
	fast := q.Lease("fast-worker", 1)
	if len(fast) != 1 {
		t.Fatal("expired cell not re-leased")
	}
	if err := q.Complete(fast[0].ID, fakeResult(300), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-looseErr; err != nil {
		t.Fatal(err)
	}

	// A tighter request for the same cell queues next. The slow worker's
	// late completion carries a result computed under the loose rule: it
	// must NOT fulfill the tighter task.
	tightRes, _ := doAsync(q, tight)
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Pending == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tight request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Complete(slow[0].ID, fakeResult(300), ""); err != nil {
		t.Fatalf("late complete errored instead of no-op: %v", err)
	}
	select {
	case res := <-tightRes:
		t.Fatalf("stale loose-policy result fulfilled the tighter request: %+v", res)
	default:
	}
	// The tighter task is still pending and completable on its own terms.
	redo := q.Lease("w3", 1)
	if len(redo) != 1 || redo[0].Task != tight {
		t.Fatalf("tight task not leasable: %+v", redo)
	}
}

func TestAbandonedLeasedCellDroppedOnExpiry(t *testing.T) {
	q, clk := newTestQueue(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := q.Do(ctx, Task{Spec: testSpec(17, 10)})
		errCh <- err
	}()
	waitLease(t, q, "doomed", 1)
	cancel() // the only producer walks away while the cell is leased
	<-errCh
	clk.advance(2 * time.Minute)
	if leases := q.Lease("w2", 1); leases != nil {
		t.Fatalf("abandoned cell re-leased after expiry: %+v", leases)
	}
	if st := q.Stats(); st.Pending != 0 || st.Leased != 0 || st.Expired != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCompleteUnknownLease(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	if err := q.Complete("lease-999999", fakeResult(1), ""); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("err %v, want ErrUnknownLease", err)
	}
}

func TestWorkerFailurePropagates(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	_, errCh := doAsync(q, Task{Spec: testSpec(7, 15)})
	leases := waitLease(t, q, "w1", 1)
	if err := q.Complete(leases[0].ID, nil, "simulator exploded"); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	if err == nil || !contains(err.Error(), "simulator exploded") {
		t.Fatalf("err %v", err)
	}
	if st := q.Stats(); st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAbandonedPendingCellLeavesQueue(t *testing.T) {
	q, _ := newTestQueue(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := q.Do(ctx, Task{Spec: testSpec(8, 10)})
		errCh <- err
	}()
	// Wait until the cell is visible, then abandon it before any lease.
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Pending == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cell never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v", err)
	}
	if leases := q.Lease("w1", 1); leases != nil {
		t.Fatalf("abandoned cell leased: %+v", leases)
	}
	if st := q.Stats(); st.Pending != 0 {
		t.Fatalf("stats %+v", st)
	}
}
