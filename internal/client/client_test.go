package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
)

// TestRunExperimentStream walks the happy path: events stream in order,
// the callback sees every one, and the final result comes back decoded.
func TestRunExperimentStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/experiments" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var spec experiment.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			t.Errorf("undecodable spec: %v", err)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"event":"start","id":"job-000042","total":2}`)
		fmt.Fprintln(w, `{"event":"cell","done":1,"total":2,"cached":true}`)
		fmt.Fprintln(w, `{"event":"result","result":{"chips":["Mini NVIDIA"]}}`)
	}))
	defer ts.Close()

	var events []string
	c := &Client{Base: ts.URL}
	res, err := c.RunExperiment(context.Background(), experiment.Spec{Version: 1}, func(ev Event) {
		events = append(events, ev.Event)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chips) != 1 || res.Chips[0] != "Mini NVIDIA" {
		t.Fatalf("result %+v", res)
	}
	if strings.Join(events, ",") != "start,cell,result" {
		t.Fatalf("event order %v", events)
	}
}

// TestRunExperimentStreamInterrupted kills the stream mid-flight — the
// server dies after a progress event, before the result — and the
// client must report the truncation, not fabricate a result.
func TestRunExperimentStreamInterrupted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"event":"start","id":"job-000001","total":3}`)
		fmt.Fprintln(w, `{"event":"cell","done":1,"total":3}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Connection drops here: no result event ever arrives.
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	res, err := c.RunExperiment(context.Background(), experiment.Spec{}, nil)
	if res != nil {
		t.Fatalf("truncated stream produced a result: %+v", res)
	}
	if err == nil || !strings.Contains(err.Error(), "stream ended without a result event") {
		t.Fatalf("err = %v, want the truncation error", err)
	}
}

// TestRunExperimentServerError maps a streamed error event to a client
// error carrying the server's message.
func TestRunExperimentServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"event":"start","id":"job-000001"}`)
		fmt.Fprintln(w, `{"event":"error","error":"chip exploded"}`)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	if _, err := c.RunExperiment(context.Background(), experiment.Spec{}, nil); err == nil || !strings.Contains(err.Error(), "chip exploded") {
		t.Fatalf("err = %v, want the server's message", err)
	}
}

// TestStatusCodeExtraction pins the non-2xx contract: every API call
// surfaces the server's status through StatusCode and its JSON error
// body through Error, and transport failures answer 0.
func TestStatusCodeExtraction(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/jobs/job-000404":
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error":"no such job"}`)
		case "/v1/jobs/job-000409/result":
			w.WriteHeader(http.StatusConflict)
			fmt.Fprintln(w, `{"error":"job still running"}`)
		case "/v1/experiments":
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintln(w, `{"error":"bad spec"}`)
		}
	}))
	defer ts.Close()
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	_, err := c.Status(ctx, "job-000404")
	if StatusCode(err) != http.StatusNotFound || !strings.Contains(err.Error(), "no such job") {
		t.Fatalf("status err = %v (code %d)", err, StatusCode(err))
	}
	_, err = c.ExperimentResult(ctx, "job-000409")
	if StatusCode(err) != http.StatusConflict || !strings.Contains(err.Error(), "job still running") {
		t.Fatalf("result err = %v (code %d)", err, StatusCode(err))
	}
	_, err = c.RunExperiment(ctx, experiment.Spec{}, nil)
	if StatusCode(err) != http.StatusBadRequest || !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("experiment err = %v (code %d)", err, StatusCode(err))
	}

	// A server that is simply gone is a transport error: code 0, so
	// callers (WaitDone) can tell "away" from "authoritative no".
	dead := &Client{Base: "http://127.0.0.1:1"}
	_, err = dead.Status(ctx, "job-000001")
	if err == nil || StatusCode(err) != 0 {
		t.Fatalf("dead server err = %v (code %d), want transport error with code 0", err, StatusCode(err))
	}
}

// TestWaitDoneRidesOutRestart aims WaitDone at a server that answers
// with transport-level failures (connection drops) for a while — a
// restarting fiserver — and then comes back with a finished job. The
// wait must survive the outage and return the final status.
func TestWaitDoneRidesOutRestart(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			fmt.Fprintln(w, `{"id":"job-000001","state":"running","done":1,"total":3}`)
		case 2, 3:
			// Drop the connection without a response: what a client sees
			// while the server is being restarted.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder cannot hijack")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
		default:
			fmt.Fprintln(w, `{"id":"job-000001","state":"done","done":3,"total":3}`)
		}
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.WaitDone(ctx, "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Done != 3 {
		t.Fatalf("final status %+v", st)
	}
	if n := calls.Load(); n < 4 {
		t.Fatalf("server saw %d polls, want the client to poll through the outage", n)
	}
}

// TestWaitDoneAuthoritativeError: a real server-side answer (404) ends
// the wait immediately — only transport errors are retried.
func TestWaitDoneAuthoritativeError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"no such job"}`)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	_, err := c.WaitDone(context.Background(), "job-000009")
	if StatusCode(err) != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 passed through", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried an authoritative 404 (%d calls)", calls.Load())
	}
}

// TestWaitDoneContextCancel: with the server away for good, the wait
// ends when (and only when) the context does.
func TestWaitDoneContextCancel(t *testing.T) {
	c := &Client{Base: "http://127.0.0.1:1"}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := c.WaitDone(ctx, "job-000001")
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestWaitDoneRetries503 aims WaitDone at a cluster standby: 503 is a
// "not me, try again" answer, not an authoritative failure, so the wait
// must ride it out until the (new) owner starts answering.
func TestWaitDoneRetries503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":{"code":"unavailable","message":"server b is standby: it does not own the job store"}}`)
			return
		}
		fmt.Fprintln(w, `{"id":"job-000001","state":"done","done":3,"total":3}`)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.WaitDone(ctx, "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("final status %+v", st)
	}
	if calls.Load() < 4 {
		t.Fatalf("server saw %d polls, want the 503s retried", calls.Load())
	}
}

// TestWaitDoneBacksOffDuringOutage pins the backoff: against a server
// that drops every connection, the retry interval must grow, so a fixed
// observation window sees far fewer polls than the 50ms cadence would
// produce (~18 in 900ms), and the wait still ends exactly at the
// context deadline.
func TestWaitDoneBacksOffDuringOutage(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("recorder cannot hijack")
			return
		}
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 900*time.Millisecond)
	defer cancel()
	_, err := c.WaitDone(ctx, "job-000001")
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Exponential growth from 50ms with jitter in [d/2, d) fits at most
	// ~7 attempts into 900ms; leave slack for scheduler noise.
	if n := calls.Load(); n < 2 || n > 10 {
		t.Fatalf("server saw %d polls in 900ms, want backed-off retries (2..10)", n)
	}
}

// TestAPIKeyHeader: a configured key rides every request as a Bearer
// token; without one the header stays absent.
func TestAPIKeyHeader(t *testing.T) {
	var lastAuth atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastAuth.Store(r.Header.Get("Authorization"))
		switch r.URL.Path {
		case "/v1/experiments":
			fmt.Fprintln(w, `{"event":"result","result":{"chips":["Mini NVIDIA"]}}`)
		default:
			fmt.Fprintln(w, `{"id":"job-000001","state":"done"}`)
		}
	}))
	defer ts.Close()

	ctx := context.Background()
	c := &Client{Base: ts.URL, APIKey: "key-acme"}
	if _, err := c.Status(ctx, "job-000001"); err != nil {
		t.Fatal(err)
	}
	if got := lastAuth.Load(); got != "Bearer key-acme" {
		t.Fatalf("Status sent Authorization %q", got)
	}
	if _, err := c.RunExperiment(ctx, experiment.Spec{}, nil); err != nil {
		t.Fatal(err)
	}
	if got := lastAuth.Load(); got != "Bearer key-acme" {
		t.Fatalf("RunExperiment sent Authorization %q", got)
	}

	bare := &Client{Base: ts.URL}
	if _, err := bare.Status(ctx, "job-000001"); err != nil {
		t.Fatal(err)
	}
	if got := lastAuth.Load(); got != "" {
		t.Fatalf("keyless client sent Authorization %q", got)
	}
}

// TestJobsListing decodes the GET /v1/jobs rows in listing order.
func TestJobsListing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs" || r.Method != http.MethodGet {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		fmt.Fprintln(w, `{"jobs":[
			{"id":"job-000001","kind":"batch","state":"done","done":3,"total":3},
			{"id":"job-000002","kind":"experiment","state":"running","done":1,"total":8}]}`)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	jobs, err := c.Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != "job-000001" || jobs[1].Kind != "experiment" || jobs[1].Done != 1 {
		t.Fatalf("jobs %+v", jobs)
	}
}

// TestCancelAndHealthy covers the two bodyless calls.
func TestCancelAndHealthy(t *testing.T) {
	var gotCancel atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodDelete && r.URL.Path == "/v1/jobs/job-000001":
			gotCancel.Store(true)
			fmt.Fprintln(w, `{"id":"job-000001","state":"canceling"}`)
		case r.URL.Path == "/healthz":
			fmt.Fprintln(w, `{"status":"ok"}`)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	if err := c.Cancel(context.Background(), "job-000001"); err != nil || !gotCancel.Load() {
		t.Fatalf("cancel: %v (delivered %v)", err, gotCancel.Load())
	}
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatalf("healthy: %v", err)
	}
}

// TestFigureStream covers the deprecated figure shim: raw document on
// success, stream error mapped to a client error.
func TestFigureStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fig") != "1" {
			t.Errorf("fig param %q", r.URL.Query().Get("fig"))
		}
		fmt.Fprintln(w, `{"event":"cell","done":1,"total":1}`)
		fmt.Fprintln(w, `{"event":"result","fig":"1","figure":{"rows":[1,2,3]}}`)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	fig, err := c.Figure(context.Background(), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []int `json:"rows"`
	}
	if err := json.Unmarshal(fig, &doc); err != nil || len(doc.Rows) != 3 {
		t.Fatalf("figure doc %s: %v", fig, err)
	}
}
