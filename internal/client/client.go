// Package client is the Go client of the fiserver HTTP API, shared by
// the CLI tools and the end-to-end tests: declarative experiment runs
// (streamed NDJSON progress + result), batch jobs, the deprecated
// figure endpoint, and scheduler statistics. It speaks exactly the wire
// forms of internal/service, so anything the server can compute a CLI
// can request with one call.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"time"

	"repro/internal/experiment"
)

// Client calls one fiserver.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// APIKey, when non-empty, is sent as "Authorization: Bearer <key>"
	// on every request — required against a server started with
	// -api-keys, ignored by one without.
	APIKey string
	// HTTPClient defaults to http.DefaultClient. Experiment and figure
	// streams can outlive any client timeout: prefer a context deadline.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// authorize stamps the API key onto req when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
}

// apiError is a non-2xx JSON error answer.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server status %d: %s", e.code, e.msg)
}

// StatusCode extracts the HTTP status behind err, or 0.
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.code
	}
	return 0
}

// errorFrom turns a non-2xx response into an error carrying the
// server's JSON error body. It understands both the unified envelope
// {"error":{"code","message","job_id"}} and the legacy flat
// {"error":"..."} shape, so one client binary works across server
// versions.
func errorFrom(resp *http.Response) error {
	var e struct {
		Error json.RawMessage `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	return &apiError{code: resp.StatusCode, msg: decodeErrorMessage(e.Error)}
}

// decodeErrorMessage extracts the human-readable message from either
// error-body shape.
func decodeErrorMessage(raw json.RawMessage) string {
	var msg string
	if json.Unmarshal(raw, &msg) == nil {
		return msg
	}
	var env struct {
		Message string `json:"message"`
	}
	if json.Unmarshal(raw, &env) == nil {
		return env.Message
	}
	return ""
}

// do sends one request with a JSON body (nil for none) and decodes the
// JSON answer into out (ignored when nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errorFrom(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Event is one NDJSON line of an experiment or figure stream.
type Event struct {
	Event     string `json:"event"`
	ID        string `json:"id,omitempty"`
	Name      string `json:"name,omitempty"`
	Chip      string `json:"chip,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Structure string `json:"structure,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Fig       string `json:"fig,omitempty"`
	Error     string `json:"error,omitempty"`
	// Result is the final experiment result ("result" events of an
	// experiment stream).
	Result *experiment.Result `json:"result,omitempty"`
	// Figure is the final figure document of the deprecated figure
	// stream, left raw so callers pick the shape.
	Figure json.RawMessage `json:"figure,omitempty"`
}

// RunExperiment POSTs the spec to /v1/experiments and consumes the
// NDJSON stream: onEvent (when non-nil) sees every event including the
// final one, and the experiment result is returned. The server
// registers the run as a job; its id arrives in the first event.
func (c *Client) RunExperiment(ctx context.Context, spec experiment.Spec, onEvent func(Event)) (*experiment.Result, error) {
	buf, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/experiments", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, errorFrom(resp)
	}
	var result *experiment.Result
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("client: bad stream line %q: %w", sc.Text(), err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Event {
		case "error":
			return nil, fmt.Errorf("client: experiment failed: %s", ev.Error)
		case "result":
			result = ev.Result
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if result == nil {
		return nil, errors.New("client: stream ended without a result event")
	}
	return result, nil
}

// Figure runs the deprecated GET /v1/figure shim, returning the raw
// figure document. Query carries the endpoint's legacy parameters (n,
// seed, chips, bench, margin, confidence).
func (c *Client) Figure(ctx context.Context, fig int, query url.Values, onEvent func(Event)) (json.RawMessage, error) {
	q := url.Values{}
	for k, vs := range query {
		q[k] = vs
	}
	q.Set("fig", fmt.Sprint(fig))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/figure?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, errorFrom(resp)
	}
	var figure json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("client: bad stream line %q: %w", sc.Text(), err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Event {
		case "error":
			return nil, fmt.Errorf("client: figure failed: %s", ev.Error)
		case "result":
			figure = ev.Figure
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if figure == nil {
		return nil, errors.New("client: stream ended without a result event")
	}
	return figure, nil
}

// JobStatus is the GET /v1/jobs/{id} answer.
type JobStatus struct {
	ID    string          `json:"id"`
	Kind  string          `json:"kind"`
	State string          `json:"state"`
	Done  int             `json:"done"`
	Total int             `json:"total"`
	Error string          `json:"error"`
	Cells json.RawMessage `json:"cells"`
}

// Status fetches one job's progress.
func (c *Client) Status(ctx context.Context, jobID string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ExperimentResult fetches a finished experiment job's result from the
// job store (the stream already carried it; this retrieves it again
// after the fact).
func (c *Client) ExperimentResult(ctx context.Context, jobID string) (*experiment.Result, error) {
	var out struct {
		ID     string             `json:"id"`
		Result *experiment.Result `json:"result"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID+"/result", nil, &out); err != nil {
		return nil, err
	}
	if out.Result == nil {
		return nil, fmt.Errorf("client: job %s carries no experiment result", jobID)
	}
	return out.Result, nil
}

// Cancel cancels a running job (or deletes a finished one from the
// server's retained set — DELETE is state-dependent on the server).
func (c *Client) Cancel(ctx context.Context, jobID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, nil)
}

// JobSummary is one row of the GET /v1/jobs listing.
type JobSummary struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// Jobs lists the server's retained jobs, oldest first — how a client
// finds its jobs again after a server restart severed its streams.
func (c *Client) Jobs(ctx context.Context) ([]JobSummary, error) {
	var out struct {
		Jobs []JobSummary `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

const (
	// waitBaseDelay is WaitDone's polling cadence against a healthy
	// server, and the floor of its error backoff.
	waitBaseDelay = 50 * time.Millisecond
	// waitMaxDelay caps the error backoff so a long outage is probed a
	// few times a second at worst, not hammered at the poll cadence.
	waitMaxDelay = 2 * time.Second
)

// WaitDone polls a job until it leaves the running state, retrying
// transient failures until ctx ends: the reconnect half of
// restart-proof jobs. With a journaled server, a job whose stream died
// with one process can be awaited against the next; with a clustered
// server, a standby's 503 is retried until a peer takes ownership.
// While the server is away the poll interval backs off exponentially
// with jitter (so a reconnecting fleet of clients does not stampede the
// reborn server) and resets once an answer gets through.
func (c *Client) WaitDone(ctx context.Context, jobID string) (*JobStatus, error) {
	delay := waitBaseDelay
	for {
		st, err := c.Status(ctx, jobID)
		if err != nil {
			// Server-side answers (404, 409, ...) are authoritative —
			// except 503, which a cluster standby returns while a peer
			// holds (or is inheriting) the job store. Transport errors
			// mean the server is away. Both heal with time.
			if code := StatusCode(err); code != 0 && code != http.StatusServiceUnavailable {
				return nil, err
			}
			// Full jitter over [delay/2, delay): desynchronizes clients
			// that all lost the same server at the same instant.
			wait := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
			if err := sleepCtx(ctx, wait); err != nil {
				return nil, err
			}
			if delay *= 2; delay > waitMaxDelay {
				delay = waitMaxDelay
			}
			continue
		}
		delay = waitBaseDelay
		if st.State != "running" {
			return st, nil
		}
		if err := sleepCtx(ctx, waitBaseDelay); err != nil {
			return nil, err
		}
	}
}

// sleepCtx waits d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats fetches the scheduler counters.
func (c *Client) Stats(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy probes /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
