// Package protect models hardware error-protection techniques applied to
// the two analyzed structures and quantifies their effect on the paper's
// metrics. The paper's conclusion motivates exactly this use of EPF:
// "architects can quantify the effectiveness of a hardware based error
// protection technique, which can be applied to their designs (if
// needed) along with a performance cost … different protection
// mechanisms can deliver different improvements in the FIT rates and can
// also have different impact on performance."
//
// Three classic SRAM protection schemes are modelled:
//
//   - None: the measured AVF stands.
//   - Parity: single-bit flips are detected but not corrected. Every
//     fault that would have manifested becomes a detected unrecoverable
//     error (DUE); with checkpoint-free execution the failure *rate* is
//     unchanged but all SDCs convert to DUEs — valuable when silent
//     corruption is costlier than termination. A small performance
//     overhead applies.
//   - SECDED: single-bit errors are corrected in place, eliminating
//     single-bit failures entirely at a larger performance and storage
//     overhead.
package protect

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/metrics"
)

// Scheme is a protection technique.
type Scheme int

// Supported schemes.
const (
	None Scheme = iota
	Parity
	SECDED
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case Parity:
		return "parity"
	case SECDED:
		return "secded"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Default per-scheme performance overheads (fraction of execution time)
// and storage overheads (fraction of protected bits), typical textbook
// figures: parity adds 1 bit per 32-bit word and negligible latency;
// SECDED adds 7 bits per 32-bit word and a correction stage.
const (
	ParityPerfOverhead  = 0.01
	ParityStoreOverhead = 1.0 / 32
	SECDEDPerfOverhead  = 0.05
	SECDEDStoreOverhead = 7.0 / 32
)

// Config applies one scheme to one structure.
type Config struct {
	Structure gpu.Structure
	Scheme    Scheme
	// PerfOverhead overrides the default fractional slowdown when >= 0;
	// pass a negative value to use the scheme default.
	PerfOverhead float64
}

// perfOverhead resolves the configured or default slowdown.
func (c Config) perfOverhead() float64 {
	if c.PerfOverhead >= 0 {
		return c.PerfOverhead
	}
	switch c.Scheme {
	case Parity:
		return ParityPerfOverhead
	case SECDED:
		return SECDEDPerfOverhead
	default:
		return 0
	}
}

// StoreOverhead returns the fractional extra storage of a scheme.
func (c Config) StoreOverhead() float64 {
	switch c.Scheme {
	case Parity:
		return ParityStoreOverhead
	case SECDED:
		return SECDEDStoreOverhead
	default:
		return 0
	}
}

// Study is the input to an evaluation: the measured (unprotected) cell.
type Study struct {
	// Cycles and ClockGHz describe the unprotected execution.
	Cycles   int64
	ClockGHz float64
	// RawFITPerMbit is the raw soft-error rate.
	RawFITPerMbit float64
	// Structures carries the measured per-structure AVFs (SDC and DUE
	// components separately, from the FI outcome breakdown) and sizes.
	Structures []StructureMeasurement
}

// StructureMeasurement is one structure's measured vulnerability.
type StructureMeasurement struct {
	Structure gpu.Structure
	// SDCAVF and DUEAVF split the measured AVF by outcome class (from
	// finject.Result.Outcomes).
	SDCAVF float64
	DUEAVF float64
	Bits   int64
}

// Result quantifies one protection configuration.
type Result struct {
	Schemes map[gpu.Structure]Scheme
	// EPF after protection (failure = SDC + DUE, as the paper).
	EPF float64
	// SDCFIT and DUEFIT are the post-protection failure-rate components.
	SDCFIT float64
	DUEFIT float64
	// Slowdown is the total fractional performance cost.
	Slowdown float64
	// ExtraBits is the added storage in bits.
	ExtraBits int64
}

// Evaluate applies the per-structure schemes to the study.
func Evaluate(s Study, cfgs []Config) (*Result, error) {
	if s.Cycles <= 0 || s.ClockGHz <= 0 {
		return nil, fmt.Errorf("protect: invalid execution (%d cycles at %v GHz)", s.Cycles, s.ClockGHz)
	}
	if s.RawFITPerMbit <= 0 {
		return nil, fmt.Errorf("protect: non-positive raw FIT rate %v", s.RawFITPerMbit)
	}
	scheme := make(map[gpu.Structure]Scheme, len(cfgs))
	slow := 0.0
	var extra int64
	for _, c := range cfgs {
		if _, dup := scheme[c.Structure]; dup {
			return nil, fmt.Errorf("protect: duplicate config for %s", c.Structure)
		}
		scheme[c.Structure] = c.Scheme
		slow += c.perfOverhead()
	}

	var sdcFIT, dueFIT float64
	for _, m := range s.Structures {
		if m.SDCAVF < 0 || m.DUEAVF < 0 || m.SDCAVF+m.DUEAVF > 1 {
			return nil, fmt.Errorf("protect: invalid AVF split %v+%v for %s", m.SDCAVF, m.DUEAVF, m.Structure)
		}
		sc := scheme[m.Structure]
		switch sc {
		case None:
			sdcFIT += metrics.FIT(m.SDCAVF, m.Bits, s.RawFITPerMbit)
			dueFIT += metrics.FIT(m.DUEAVF, m.Bits, s.RawFITPerMbit)
		case Parity:
			// All manifestations become detected errors.
			dueFIT += metrics.FIT(m.SDCAVF+m.DUEAVF, m.Bits, s.RawFITPerMbit)
		case SECDED:
			// Single-bit faults corrected: no contribution.
		}
		for _, c := range cfgs {
			if c.Structure == m.Structure {
				extra += int64(float64(m.Bits) * c.StoreOverhead())
			}
		}
	}

	protCycles := int64(float64(s.Cycles) * (1 + slow))
	secs, err := metrics.ExecSeconds(protCycles, s.ClockGHz)
	if err != nil {
		return nil, err
	}
	eit, err := metrics.EIT(secs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schemes:   scheme,
		SDCFIT:    sdcFIT,
		DUEFIT:    dueFIT,
		Slowdown:  slow,
		ExtraBits: extra,
	}
	if fit := sdcFIT + dueFIT; fit > 0 {
		res.EPF = eit / fit
	}
	return res, nil
}
