package protect

import (
	"math"
	"testing"

	"repro/internal/gpu"
)

func baseStudy() Study {
	return Study{
		Cycles:        1_000_000,
		ClockGHz:      1.0,
		RawFITPerMbit: 1000,
		Structures: []StructureMeasurement{
			{Structure: gpu.RegisterFile, SDCAVF: 0.04, DUEAVF: 0.01, Bits: 8 << 20},
			{Structure: gpu.LocalMemory, SDCAVF: 0.02, DUEAVF: 0.00, Bits: 2 << 20},
		},
	}
}

func TestUnprotectedBaseline(t *testing.T) {
	res, err := Evaluate(baseStudy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown != 0 || res.ExtraBits != 0 {
		t.Fatalf("baseline has overheads: %+v", res)
	}
	// FIT: RF (0.05 * 8Mbit/1e6 * 1000) = 419.43..; LM 0.02*2M*... compute:
	wantSDC := 0.04*float64(8<<20)/1e6*1000 + 0.02*float64(2<<20)/1e6*1000
	wantDUE := 0.01 * float64(8<<20) / 1e6 * 1000
	if math.Abs(res.SDCFIT-wantSDC) > 1e-9 || math.Abs(res.DUEFIT-wantDUE) > 1e-9 {
		t.Fatalf("FIT split: %v/%v, want %v/%v", res.SDCFIT, res.DUEFIT, wantSDC, wantDUE)
	}
	if res.EPF <= 0 {
		t.Fatal("baseline EPF must be finite")
	}
}

func TestParityConvertsSDCToDUE(t *testing.T) {
	res, err := Evaluate(baseStudy(), []Config{
		{Structure: gpu.RegisterFile, Scheme: Parity, PerfOverhead: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Register-file SDC disappears; its whole AVF shows up as DUE.
	wantSDC := 0.02 * float64(2<<20) / 1e6 * 1000 // local memory only
	wantDUE := 0.05 * float64(8<<20) / 1e6 * 1000
	if math.Abs(res.SDCFIT-wantSDC) > 1e-9 || math.Abs(res.DUEFIT-wantDUE) > 1e-9 {
		t.Fatalf("FIT split: %v/%v, want %v/%v", res.SDCFIT, res.DUEFIT, wantSDC, wantDUE)
	}
	if res.Slowdown != ParityPerfOverhead {
		t.Fatalf("slowdown %v", res.Slowdown)
	}
	if res.ExtraBits != int64(float64(8<<20)/32) {
		t.Fatalf("extra bits %d", res.ExtraBits)
	}
}

func TestSECDEDEliminatesStructureFIT(t *testing.T) {
	res, err := Evaluate(baseStudy(), []Config{
		{Structure: gpu.RegisterFile, Scheme: SECDED, PerfOverhead: -1},
		{Structure: gpu.LocalMemory, Scheme: SECDED, PerfOverhead: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SDCFIT != 0 || res.DUEFIT != 0 {
		t.Fatalf("SECDED left FIT: %+v", res)
	}
	if res.EPF != 0 {
		t.Fatalf("EPF should be reported as 0 (infinite) when FIT is 0, got %v", res.EPF)
	}
	if res.Slowdown != 2*SECDEDPerfOverhead {
		t.Fatalf("slowdown %v", res.Slowdown)
	}
}

func TestProtectionImprovesEPFDespiteSlowdown(t *testing.T) {
	base, err := Evaluate(baseStudy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := Evaluate(baseStudy(), []Config{
		{Structure: gpu.RegisterFile, Scheme: SECDED, PerfOverhead: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prot.EPF <= base.EPF {
		t.Fatalf("protecting the dominant structure must raise EPF: %v -> %v", base.EPF, prot.EPF)
	}
}

func TestEvaluateValidation(t *testing.T) {
	s := baseStudy()
	s.Cycles = 0
	if _, err := Evaluate(s, nil); err == nil {
		t.Fatal("zero cycles accepted")
	}
	s = baseStudy()
	s.Structures[0].SDCAVF = 1.2
	if _, err := Evaluate(s, nil); err == nil {
		t.Fatal("invalid AVF accepted")
	}
	if _, err := Evaluate(baseStudy(), []Config{
		{Structure: gpu.RegisterFile, Scheme: Parity},
		{Structure: gpu.RegisterFile, Scheme: SECDED},
	}); err == nil {
		t.Fatal("duplicate structure config accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if None.String() != "none" || Parity.String() != "parity" || SECDED.String() != "secded" {
		t.Fatal("scheme names wrong")
	}
}
