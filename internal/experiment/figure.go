package experiment

import (
	"fmt"

	"repro/internal/gpu"
)

// Figure returns the canned spec of one of the paper's figures:
//
//	1 — register-file AVF, FI + ACE, all 10 benchmarks x 4 chips
//	2 — local-memory AVF, FI + ACE, the 7 shared-memory benchmarks
//	3 — EPF over both structures, FI only, all 10 benchmarks
//
// The returned spec is normalized; running it through a Runner produces
// exactly the cells (and, via internal/core's shims, exactly the bytes)
// of the corresponding figure driver.
func Figure(fig int) (Spec, error) {
	var s Spec
	switch fig {
	case 1:
		s = Spec{
			Name:       "fig1-register-file-avf",
			Structures: []gpu.Structure{gpu.RegisterFile},
			Estimator:  EstimatorBoth,
		}
	case 2:
		s = Spec{
			Name:       "fig2-local-memory-avf",
			Structures: []gpu.Structure{gpu.LocalMemory},
			Estimator:  EstimatorBoth,
		}
	case 3:
		s = Spec{
			Name:       "fig3-epf",
			Structures: []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory},
			Estimator:  EstimatorFI,
			Metrics:    Metrics{EPF: true},
		}
	default:
		return Spec{}, fmt.Errorf("experiment: unknown figure %d (want 1, 2 or 3)", fig)
	}
	return s.Normalize(), nil
}
