package experiment

import (
	"context"
	"fmt"

	"repro/internal/ace"
	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/protect"
	"repro/internal/workloads"
)

// defaultRawFIT is the raw soft-error rate a spec's metrics block
// normalizes to when unset.
const defaultRawFIT = metrics.DefaultRawFITPerMbit

// Progress reports one grid cell the runner finished, in completion
// order (the scheduler executes cells concurrently).
type Progress struct {
	// Cell is the planned cell that completed.
	Cell PlannedCell
	// Spec is its normalized campaign identity.
	Spec campaign.CellSpec
	// Cached is true when the cell was served without running a
	// campaign (store hit, join, or the ACE-only estimator).
	Cached bool
	// Done and Total count completed grid cells.
	Done, Total int
	// Err is the cell's failure, if any (the run is being canceled).
	Err error
}

// Runner executes compiled experiment plans over a campaign.Scheduler.
// Any executor tier behind the scheduler works — in-process, a shared
// disk store, or a remote fiworker fleet — and produces byte-identical
// results, by the determinism contract of the injection engine.
type Runner struct {
	// Scheduler executes and caches the FI campaigns; a private
	// in-process scheduler is created per run when nil.
	Scheduler *campaign.Scheduler
	// OnCell, when non-nil, receives per-cell progress as the run
	// streams. It is called from scheduler goroutines, one call at a
	// time.
	OnCell func(Progress)
}

// Run compiles and executes one spec.
func (r *Runner) Run(ctx context.Context, s Spec) (*Result, error) {
	p, err := s.Compile()
	if err != nil {
		return nil, err
	}
	return r.RunPlan(ctx, p)
}

// RunPlan executes a compiled plan: the FI campaigns of every cell run
// as one scheduler batch (deduplicated, cached, concurrency-bounded),
// then the grid tables, averages and derived metrics assemble from the
// warm store with exactly the figure drivers' arithmetic.
func (r *Runner) RunPlan(ctx context.Context, p *Plan) (*Result, error) {
	sched := r.Scheduler
	if sched == nil {
		sched = campaign.New(campaign.Config{})
	}
	spec := p.Spec

	res := &Result{
		Spec:       spec,
		Chips:      append([]string(nil), spec.Chips...),
		Benchmarks: append([]string(nil), spec.Benchmarks...),
	}

	// Phase 1: the statistical campaigns, as one batch (deduplicated,
	// cached and concurrency-bounded by the scheduler).
	var fiResults []*finject.Result
	if spec.Estimator.fi() {
		batch := make([]finject.Campaign, len(p.Cells))
		for i, c := range p.Cells {
			batch[i] = c.Campaign
		}
		var done int
		onCell := func(i int, fres *finject.Result, cached bool, cellErr error) {
			if r.OnCell == nil {
				return
			}
			done++
			r.OnCell(Progress{
				Cell:   p.Cells[i],
				Spec:   campaign.SpecOf(p.Cells[i].Campaign),
				Cached: cached,
				Done:   done,
				Total:  len(p.Cells),
				Err:    cellErr,
			})
		}
		var err error
		fiResults, err = sched.RunBatch(ctx, batch, onCell)
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: assemble the per-structure tables from the batch results.
	// The ACE analysis is one traced run per (chip, benchmark) that
	// yields both structures' AVFs at once; memoize it so a
	// two-structure grid doesn't simulate every pair twice.
	type aceRun struct {
		reg, local float64
		stats      gpu.RunStats
	}
	aceCache := make(map[[2]int]*aceRun)
	aceOf := func(pc PlannedCell) (*aceRun, error) {
		key := [2]int{pc.BenchIndex, pc.ChipIndex}
		if run, ok := aceCache[key]; ok {
			return run, nil
		}
		reg, local, st, err := measureACE(pc.Chip, pc.Benchmark)
		if err != nil {
			return nil, fmt.Errorf("experiment: ACE run %s/%s: %w", pc.Chip.Name, pc.Benchmark.Name, err)
		}
		run := &aceRun{reg: reg, local: local, stats: st}
		aceCache[key] = run
		return run, nil
	}
	cells := make(map[[3]int]*Cell, len(p.Cells))
	aceDone := 0
	for i, pc := range p.Cells {
		var fres *finject.Result
		if fiResults != nil {
			fres = fiResults[i]
		}
		cell, err := r.measureCell(spec, pc, fres, func() (float64, float64, gpu.RunStats, error) {
			run, err := aceOf(pc)
			if err != nil {
				return 0, 0, gpu.RunStats{}, err
			}
			return run.reg, run.local, run.stats, nil
		})
		if err != nil {
			return nil, err
		}
		cells[[3]int{pc.BenchIndex, pc.ChipIndex, pc.StructIndex}] = cell
		if !spec.Estimator.fi() && r.OnCell != nil {
			aceDone++
			r.OnCell(Progress{
				Cell: pc, Spec: campaign.SpecOf(pc.Campaign), Cached: true,
				Done: aceDone, Total: len(p.Cells),
			})
		}
	}
	for si, st := range spec.Structures {
		tbl := &Table{Structure: st}
		tbl.Cells = make([][]*Cell, len(p.Benchmarks))
		for bi := range p.Benchmarks {
			tbl.Cells[bi] = make([]*Cell, len(p.Chips))
			for ci := range p.Chips {
				tbl.Cells[bi][ci] = cells[[3]int{bi, ci, si}]
			}
		}
		// Across-benchmark averages per chip ("average" group of the
		// figures), with the figure drivers' exact summation order.
		for ci, c := range p.Chips {
			avg := &Cell{Chip: c.Name, Benchmark: "average", Structure: st}
			for bi := range p.Benchmarks {
				cell := tbl.Cells[bi][ci]
				avg.AVFFI += cell.AVFFI
				avg.AVFACE += cell.AVFACE
				avg.Occupancy += cell.Occupancy
			}
			n := float64(len(p.Benchmarks))
			avg.AVFFI /= n
			avg.AVFACE /= n
			avg.Occupancy /= n
			tbl.Averages = append(tbl.Averages, avg)
		}
		res.Tables = append(res.Tables, tbl)
	}

	// Phase 3: derived metrics.
	if spec.Metrics.EPF {
		epf, err := assembleEPF(spec, p, fiResults)
		if err != nil {
			return nil, err
		}
		res.EPF = epf
	}
	if len(spec.Metrics.Protection) > 0 {
		rows, err := assembleProtection(spec, p, cells)
		if err != nil {
			return nil, err
		}
		res.Protection = rows
	}
	return res, nil
}

// measureCell measures one grid cell under the spec's estimator: the FI
// result comes from the phase-1 batch and the ACE measurements from the
// memoized per-(chip, benchmark) traced run.
func (r *Runner) measureCell(spec Spec, pc PlannedCell, fres *finject.Result, aceOf func() (regAVF, localAVF float64, st gpu.RunStats, err error)) (*Cell, error) {
	cell := &Cell{
		Chip:      pc.Chip.Name,
		Benchmark: pc.Benchmark.Name,
		Structure: pc.Structure,
	}
	if spec.Estimator.fi() {
		lo, hi, err := fres.AVFInterval(spec.Policy.Confidence)
		if err != nil {
			return nil, err
		}
		cell.AVFFI = fres.AVF()
		cell.AVFFILo = lo
		cell.AVFFIHi = hi
		cell.Occupancy = fres.Occupancy
		cell.Cycles = fres.GoldenStats.Cycles
		cell.Injections = fres.Injections
		cell.Outcomes = fres.Outcomes
	}
	if spec.Estimator.ace() {
		regACE, localACE, runStats, err := aceOf()
		if err != nil {
			return nil, err
		}
		cell.AVFACE = regACE
		if pc.Structure == gpu.LocalMemory {
			cell.AVFACE = localACE
		}
		cell.Cycles = runStats.Cycles
		if !spec.Estimator.fi() {
			total := int64(pc.Chip.Units) * int64(pc.Chip.StructSize(pc.Structure))
			cell.Occupancy = runStats.Occupancy(pc.Structure, total)
		}
	}
	if spec.Metrics.FIT {
		cell.FIT = metrics.FIT(cellAVF(spec, cell), pc.Chip.StructBits(pc.Structure), spec.Metrics.RawFITPerMbit)
	}
	return cell, nil
}

// cellAVF picks the AVF entering derived metrics: FI when measured (the
// paper's FIT_GPU uses the injection AVFs), ACE otherwise.
func cellAVF(spec Spec, c *Cell) float64 {
	if spec.Estimator.fi() {
		return c.AVFFI
	}
	return c.AVFACE
}

// measureACE runs the single-pass lifetime analysis of one (chip,
// benchmark) pair.
func measureACE(chip *chips.Chip, bench *workloads.Benchmark) (regAVF, localAVF float64, st gpu.RunStats, err error) {
	d, err := devices.New(chip)
	if err != nil {
		return 0, 0, gpu.RunStats{}, err
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		return 0, 0, gpu.RunStats{}, err
	}
	return ace.Measure(d, hp)
}

// assembleEPF combines every structure's FI campaign of each (chip,
// benchmark) into the EPF table, with the Fig. 3 driver's exact
// arithmetic: cycles from the first structure's golden run, FIT summed
// in structure-axis order.
func assembleEPF(spec Spec, p *Plan, fiResults []*finject.Result) (*EPFTable, error) {
	nChips, nStructs := len(p.Chips), len(spec.Structures)
	tbl := &EPFTable{}
	tbl.Rows = make([][]*EPFRow, len(p.Benchmarks))
	for bi, b := range p.Benchmarks {
		tbl.Rows[bi] = make([]*EPFRow, len(p.Chips))
		for ci, c := range p.Chips {
			avfs := make(map[gpu.Structure]*finject.Result, nStructs)
			for si, st := range spec.Structures {
				avfs[st] = fiResults[(bi*nChips+ci)*nStructs+si]
			}
			cycles := avfs[spec.Structures[0]].GoldenStats.Cycles
			secs, err := metrics.ExecSeconds(cycles, c.ClockGHz)
			if err != nil {
				return nil, err
			}
			var structAVFs []metrics.StructureAVF
			for _, st := range spec.Structures {
				structAVFs = append(structAVFs, metrics.StructureAVF{
					Structure: st, AVF: avfs[st].AVF(), Bits: c.StructBits(st),
				})
			}
			epf, err := metrics.EPF(cycles, c.ClockGHz, spec.Metrics.RawFITPerMbit, structAVFs)
			if err != nil {
				// All-zero AVFs with small samples: report infinite EPF
				// as 0 with the condition preserved in the row for the
				// renderer.
				epf = 0
			}
			row := &EPFRow{
				Chip:      c.Name,
				Benchmark: b.Name,
				EPF:       epf,
				Seconds:   secs,
				Cycles:    cycles,
			}
			for _, st := range spec.Structures {
				switch st {
				case gpu.RegisterFile:
					row.RegAVF = avfs[st].AVF()
				case gpu.LocalMemory:
					row.LocalAVF = avfs[st].AVF()
				}
			}
			tbl.Rows[bi][ci] = row
		}
	}
	return tbl, nil
}

// schemeByName resolves a protection scheme name.
func schemeByName(name string) (protect.Scheme, error) {
	switch name {
	case "", "none":
		return protect.None, nil
	case "parity":
		return protect.Parity, nil
	case "secded":
		return protect.SECDED, nil
	default:
		return 0, fmt.Errorf("experiment: unknown protection scheme %q (want none, parity or secded)", name)
	}
}

// assembleProtection evaluates every protection what-if of the spec
// against every (benchmark, chip) of the grid, splitting the measured
// outcomes into SDC and DUE components per structure.
func assembleProtection(spec Spec, p *Plan, cells map[[3]int]*Cell) ([]*ProtectionRow, error) {
	var rows []*ProtectionRow
	for _, cfg := range spec.Metrics.Protection {
		var pcfgs []protect.Config
		for _, sc := range cfg.Schemes {
			scheme, err := schemeByName(sc.Scheme)
			if err != nil {
				return nil, err
			}
			perf := -1.0
			if sc.PerfOverhead != nil {
				perf = *sc.PerfOverhead
			}
			pcfgs = append(pcfgs, protect.Config{Structure: sc.Structure, Scheme: scheme, PerfOverhead: perf})
		}
		for bi, b := range p.Benchmarks {
			for ci, c := range p.Chips {
				study := protect.Study{
					ClockGHz:      c.ClockGHz,
					RawFITPerMbit: spec.Metrics.RawFITPerMbit,
				}
				for si := range spec.Structures {
					cell := cells[[3]int{bi, ci, si}]
					n := float64(cell.Injections)
					if n == 0 {
						return nil, fmt.Errorf("experiment: protection %q needs FI outcomes for %s/%s/%s", cfg.Name, c.Name, b.Name, cell.Structure)
					}
					study.Cycles = cell.Cycles
					study.Structures = append(study.Structures, protect.StructureMeasurement{
						Structure: cell.Structure,
						SDCAVF:    float64(cell.Outcomes[gpu.OutcomeSDC]) / n,
						DUEAVF:    float64(cell.Outcomes[gpu.OutcomeDUE]+cell.Outcomes[gpu.OutcomeTimeout]) / n,
						Bits:      c.StructBits(cell.Structure),
					})
				}
				pres, err := protect.Evaluate(study, pcfgs)
				if err != nil {
					return nil, fmt.Errorf("experiment: protection %q on %s/%s: %w", cfg.Name, c.Name, b.Name, err)
				}
				rows = append(rows, &ProtectionRow{
					Config:    cfg.Name,
					Chip:      c.Name,
					Benchmark: b.Name,
					EPF:       pres.EPF,
					SDCFIT:    pres.SDCFIT,
					DUEFIT:    pres.DUEFIT,
					Slowdown:  pres.Slowdown,
					ExtraBits: pres.ExtraBits,
				})
			}
		}
	}
	return rows, nil
}
