package experiment

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/gpu"
)

// miniSpec is a fast two-chip grid over the mini devices.
func miniSpec() Spec {
	return Spec{
		Chips:      []string{"Mini NVIDIA", "Mini AMD"},
		Benchmarks: []string{"vectoradd", "transpose"},
		Structures: []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory},
		Estimator:  EstimatorFI,
		Injections: 40,
		Seed:       11,
	}
}

func TestRunnerGrid(t *testing.T) {
	sched := campaign.New(campaign.Config{})
	var (
		mu     sync.Mutex
		events []Progress
	)
	r := &Runner{Scheduler: sched, OnCell: func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}}
	res, err := r.Run(context.Background(), miniSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables: %d, want 2", len(res.Tables))
	}
	for _, tbl := range res.Tables {
		if len(tbl.Cells) != 2 || len(tbl.Cells[0]) != 2 || len(tbl.Averages) != 2 {
			t.Fatalf("table %s shape: %dx%d avgs %d", tbl.Structure, len(tbl.Cells), len(tbl.Cells[0]), len(tbl.Averages))
		}
		for _, row := range tbl.Cells {
			for _, c := range row {
				if c.Injections != 40 || c.Cycles <= 0 {
					t.Fatalf("cell %+v", c)
				}
				if c.AVFACE != 0 {
					t.Fatalf("fi estimator produced an ACE AVF: %+v", c)
				}
			}
		}
	}
	if len(events) != 8 {
		t.Fatalf("progress events: %d, want 8", len(events))
	}
	last := events[len(events)-1]
	if last.Done != 8 || last.Total != 8 {
		t.Fatalf("final progress %d/%d", last.Done, last.Total)
	}

	// A second run over the same scheduler re-executes nothing.
	runs := sched.Stats().Runs
	if _, err := (&Runner{Scheduler: sched}).Run(context.Background(), miniSpec()); err != nil {
		t.Fatal(err)
	}
	if got := sched.Stats().Runs; got != runs {
		t.Fatalf("warm rerun executed %d campaigns", got-runs)
	}
}

func TestRunnerEstimators(t *testing.T) {
	s := miniSpec()
	s.Chips = s.Chips[:1]
	s.Benchmarks = s.Benchmarks[:1]
	s.Structures = []gpu.Structure{gpu.RegisterFile}

	s.Estimator = EstimatorACE
	res, err := (&Runner{}).Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Tables[0].Cells[0][0]
	if c.Injections != 0 || c.AVFFI != 0 {
		t.Fatalf("ace estimator ran injections: %+v", c)
	}
	if c.AVFACE <= 0 || c.Cycles <= 0 || c.Occupancy <= 0 {
		t.Fatalf("ace estimator missing measurements: %+v", c)
	}

	s.Estimator = EstimatorBoth
	res, err = (&Runner{}).Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	c = res.Tables[0].Cells[0][0]
	if c.Injections != 40 || c.AVFACE <= 0 {
		t.Fatalf("both estimator: %+v", c)
	}
}

// TestRunnerProtectionSweep runs the new scenario the redesign exists
// for: a protection what-if sweep, straight from a JSON spec, producing
// post-protection EPF/FIT rows for every (config, benchmark, chip).
func TestRunnerProtectionSweep(t *testing.T) {
	specJSON := `{
		"version": 1,
		"name": "mini-protection-sweep",
		"chips": ["Mini NVIDIA", "Mini AMD"],
		"benchmarks": ["matrixMul"],
		"structures": ["register-file", "local-memory"],
		"estimator": "fi",
		"injections": 60,
		"seed": 31,
		"metrics": {
			"fit": true,
			"epf": true,
			"protection": [
				{"name": "unprotected"},
				{"name": "parity-rf", "schemes": [{"structure": "register-file", "scheme": "parity"}]},
				{"name": "secded-all", "schemes": [
					{"structure": "register-file", "scheme": "secded"},
					{"structure": "local-memory", "scheme": "secded"}
				]}
			]
		}
	}`
	spec, err := ParseBytes([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.EPF == nil || len(res.EPF.Rows) != 1 || len(res.EPF.Rows[0]) != 2 {
		t.Fatalf("EPF table shape wrong: %+v", res.EPF)
	}
	if len(res.Protection) != 3*1*2 {
		t.Fatalf("protection rows: %d, want 6", len(res.Protection))
	}
	byConfig := map[string][]*ProtectionRow{}
	for _, row := range res.Protection {
		byConfig[row.Config] = append(byConfig[row.Config], row)
	}
	for _, name := range []string{"unprotected", "parity-rf", "secded-all"} {
		if len(byConfig[name]) != 2 {
			t.Fatalf("config %q has %d rows", name, len(byConfig[name]))
		}
	}
	for i := range byConfig["unprotected"] {
		base := byConfig["unprotected"][i]
		par := byConfig["parity-rf"][i]
		sec := byConfig["secded-all"][i]
		// Parity converts RF SDCs to DUEs; it can never increase SDC FIT.
		if par.SDCFIT > base.SDCFIT {
			t.Fatalf("parity raised SDC FIT: %+v vs %+v", par, base)
		}
		if par.Slowdown <= 0 || par.ExtraBits <= 0 {
			t.Fatalf("parity is free? %+v", par)
		}
		// Full SECDED removes all single-bit failures.
		if sec.SDCFIT != 0 || sec.DUEFIT != 0 || sec.EPF != 0 {
			t.Fatalf("secded-all left failures: %+v", sec)
		}
	}
	// FIT was requested: measured cells must carry it whenever faults
	// manifested.
	for _, tbl := range res.Tables {
		for _, row := range tbl.Cells {
			for _, c := range row {
				if c.AVFFI > 0 && c.FIT <= 0 {
					t.Fatalf("cell with AVF %v has no FIT: %+v", c.AVFFI, c)
				}
			}
		}
	}
	// The whole result must be JSON-serializable (it is the wire format
	// of POST /v1/experiments).
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}
