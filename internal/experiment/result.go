package experiment

import "repro/internal/gpu"

// Cell is one measured (chip, benchmark, structure) grid cell: the
// per-methodology AVFs, occupancy, golden execution length and the FI
// outcome breakdown — one bar group of Fig. 1 or Fig. 2.
type Cell struct {
	Chip      string        `json:"chip"`
	Benchmark string        `json:"benchmark"`
	Structure gpu.Structure `json:"structure"`
	// AVFFI is the fault-injection AVF with its confidence interval
	// (zero under the ACE-only estimator).
	AVFFI   float64 `json:"avf_fi"`
	AVFFILo float64 `json:"avf_fi_lo"`
	AVFFIHi float64 `json:"avf_fi_hi"`
	// AVFACE is the lifetime-analysis AVF (zero under the FI-only
	// estimator).
	AVFACE float64 `json:"avf_ace"`
	// Occupancy is the time-weighted structure occupancy.
	Occupancy float64 `json:"occupancy"`
	// Cycles is the golden execution length.
	Cycles int64 `json:"cycles"`
	// Injections is the realized FI sample size (an adaptive campaign
	// stops below the cap once its interval is tight enough).
	Injections int `json:"injections,omitempty"`
	// Outcomes breaks the injections down by class.
	Outcomes [gpu.NumOutcomes]int `json:"outcomes"`
	// FIT is the cell's failure rate, present when Metrics.FIT is set.
	FIT float64 `json:"fit,omitempty"`
}

// Table is one structure's AVF grid — the content of Fig. 1 or Fig. 2
// when the spec matches the paper's.
type Table struct {
	Structure gpu.Structure `json:"structure"`
	// Cells[b][c] corresponds to Benchmarks[b] on Chips[c] of the
	// enclosing Result.
	Cells [][]*Cell `json:"cells"`
	// Averages[c] holds the across-benchmark mean cell per chip (the
	// figures' "average" column group).
	Averages []*Cell `json:"averages"`
}

// EPFRow is one bar of the EPF table (Fig. 3 when the spec matches).
type EPFRow struct {
	Chip      string `json:"chip"`
	Benchmark string `json:"benchmark"`
	// EPF is executions per failure; 0 encodes +Inf (all-zero AVFs).
	EPF float64 `json:"epf"`
	// Seconds is one execution's wall-clock time; Cycles its length.
	Seconds float64 `json:"seconds"`
	Cycles  int64   `json:"cycles"`
	// RegAVF and LocalAVF are the FI AVFs entering FIT_GPU.
	RegAVF   float64 `json:"reg_avf"`
	LocalAVF float64 `json:"local_avf"`
}

// EPFTable is the executions-per-failure dataset.
type EPFTable struct {
	// Rows[b][c] corresponds to Benchmarks[b] on Chips[c].
	Rows [][]*EPFRow `json:"rows"`
}

// ProtectionRow is one protection what-if evaluated on one (benchmark,
// chip): the post-protection EPF and FIT split, with its costs.
type ProtectionRow struct {
	// Config names the protection configuration from the spec.
	Config    string `json:"config"`
	Chip      string `json:"chip"`
	Benchmark string `json:"benchmark"`
	// EPF after protection (0 encodes +Inf).
	EPF float64 `json:"epf"`
	// SDCFIT and DUEFIT are the post-protection failure-rate components.
	SDCFIT float64 `json:"sdc_fit"`
	DUEFIT float64 `json:"due_fit"`
	// Slowdown is the total fractional performance cost.
	Slowdown float64 `json:"slowdown"`
	// ExtraBits is the added storage in bits.
	ExtraBits int64 `json:"extra_bits"`
}

// Result is one executed experiment: the normalized spec it ran, the
// resolved axes, one AVF table per structure and the requested derived
// metrics.
type Result struct {
	Spec       Spec     `json:"spec"`
	Chips      []string `json:"chips"`
	Benchmarks []string `json:"benchmarks"`
	// Tables holds one AVF grid per structure, in spec axis order.
	Tables []*Table `json:"tables"`
	// EPF is present when Metrics.EPF was requested.
	EPF *EPFTable `json:"epf,omitempty"`
	// Protection holds the what-if rows, config-major then
	// benchmark-major, when Metrics.Protection was requested.
	Protection []*ProtectionRow `json:"protection,omitempty"`
}

// Table returns the AVF table of one structure, or nil.
func (r *Result) Table(st gpu.Structure) *Table {
	for _, t := range r.Tables {
		if t.Structure == st {
			return t
		}
	}
	return nil
}
