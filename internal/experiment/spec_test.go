package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gpu"
)

// TestFigureSpecGoldens pins the canonical JSON of the three figure
// specs: the canned specs must marshal byte-identically to the committed
// testdata files, and those files must parse back into the same spec
// (full round-trip). A diff here means the spec schema or the figure
// grids changed — both are compatibility events.
func TestFigureSpecGoldens(t *testing.T) {
	for fig := 1; fig <= 3; fig++ {
		t.Run(fmt.Sprintf("fig%d", fig), func(t *testing.T) {
			spec, err := Figure(fig)
			if err != nil {
				t.Fatal(err)
			}
			got, err := spec.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", fmt.Sprintf("fig%d.json", fig))
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fig %d spec drifted from %s:\n%s\nwant:\n%s", fig, path, got, want)
			}
			// Round-trip: the golden file parses into the same spec.
			parsed, err := ParseBytes(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(parsed.Normalize(), spec) {
				t.Errorf("fig %d: parsed spec differs:\n%+v\nwant:\n%+v", fig, parsed.Normalize(), spec)
			}
		})
	}
}

// TestParseRejectsUnknownFields: a typo must not silently change an
// experiment's meaning.
func TestParseRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"version": 1, "injctions": 500}`,
		`{"version": 1, "metrics": {"epff": true}}`,
		`{"version": 1, "policy": {"margn": 0.05}}`,
	}
	for _, c := range cases {
		if _, err := ParseBytes([]byte(c)); err == nil {
			t.Errorf("spec %s parsed despite unknown field", c)
		}
	}
}

// TestNormalizeIdempotent: Normalize must be a projection, and equal
// specs must compile to equal cell keys however they were written.
func TestNormalizeIdempotent(t *testing.T) {
	specs := []Spec{
		{},
		{Structures: []gpu.Structure{gpu.LocalMemory}},
		{Estimator: EstimatorFI, Injections: 123, Seed: 42, Policy: Policy{Margin: 0.05}},
		mustFigure(t, 3),
	}
	for i, s := range specs {
		n1 := s.Normalize()
		n2 := n1.Normalize()
		if !reflect.DeepEqual(n1, n2) {
			t.Errorf("spec %d: Normalize not idempotent:\n%+v\nvs\n%+v", i, n1, n2)
		}
	}
}

func mustFigure(t *testing.T, fig int) Spec {
	t.Helper()
	s, err := Figure(fig)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEqualSpecsEqualKeys: a sparse spec and its normalized form, or a
// spec round-tripped through JSON, must compile to the same cell keys —
// the property that lets every surface share one store.
func TestEqualSpecsEqualKeys(t *testing.T) {
	sparse := Spec{Seed: 7, Injections: 60}
	full := sparse.Normalize()

	keysOf := func(s Spec) []string {
		t.Helper()
		p, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, k := range p.Keys() {
			out = append(out, string(k))
		}
		return out
	}

	want := keysOf(sparse)
	if got := keysOf(full); !reflect.DeepEqual(got, want) {
		t.Fatalf("normalized spec compiled to different keys")
	}
	b, err := sparse.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	roundTripped, err := ParseBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := keysOf(roundTripped); !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON round-trip compiled to different keys")
	}
}

// TestValidate covers the rejection paths.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bad version", Spec{Version: 2}, "unsupported spec version"},
		{"bad estimator", Spec{Estimator: "magic"}, "unknown estimator"},
		{"bad chip", Spec{Chips: []string{"GeForce 9999"}}, "unknown"},
		{"bad bench", Spec{Benchmarks: []string{"nope"}}, "unknown"},
		{"dup chip", Spec{Chips: []string{"GeForce GTX 480", "GeForce GTX 480"}}, "duplicate chip"},
		{"dup structure", Spec{Structures: []gpu.Structure{gpu.RegisterFile, gpu.RegisterFile}}, "duplicate structure"},
		{"bad margin", Spec{Policy: Policy{Margin: 1.5}}, "margin"},
		{"confidence typo", Spec{Policy: Policy{Confidence: 95}}, "confidence"},
		{"negative confidence", Spec{Policy: Policy{Confidence: -0.5}}, "confidence"},
		{"negative injections", Spec{Injections: -3}, "negative injections"},
		{"epf without fi", Spec{Estimator: EstimatorACE, Metrics: Metrics{EPF: true}}, "need the fi estimator"},
		{"unnamed protection", Spec{Metrics: Metrics{Protection: []Protection{{}}}}, "without a name"},
		{"bad scheme", Spec{Metrics: Metrics{Protection: []Protection{{Name: "x", Schemes: []ProtectionScheme{{Scheme: "hamming"}}}}}}, "unknown protection scheme"},
		{"off-axis protection", Spec{Structures: []gpu.Structure{gpu.RegisterFile}, Metrics: Metrics{Protection: []Protection{{Name: "x", Schemes: []ProtectionScheme{{Structure: gpu.LocalMemory, Scheme: "parity"}}}}}}, "not on the structure axis"},
		{"dup protection structure", Spec{Metrics: Metrics{Protection: []Protection{{Name: "x", Schemes: []ProtectionScheme{
			{Structure: gpu.RegisterFile, Scheme: "parity"}, {Structure: gpu.RegisterFile, Scheme: "secded"}}}}}}, "twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
	if _, err := mustFigure(t, 3).Validate(); err != nil {
		t.Fatalf("fig 3 spec invalid: %v", err)
	}
	// FIT rides on any estimator — it only needs an AVF, which the
	// ACE analysis also measures.
	if _, err := (Spec{Estimator: EstimatorACE, Metrics: Metrics{FIT: true}}).Validate(); err != nil {
		t.Fatalf("fit under ace rejected: %v", err)
	}
}

// TestFigureDefaults: the Fig. 2 spec must default to the shared-memory
// benchmark subset, and Fig. 1/3 to the full suite.
func TestFigureDefaults(t *testing.T) {
	f1 := mustFigure(t, 1)
	f2 := mustFigure(t, 2)
	f3 := mustFigure(t, 3)
	if len(f1.Benchmarks) != 10 || len(f3.Benchmarks) != 10 {
		t.Fatalf("fig 1/3 benchmarks: %d/%d, want 10/10", len(f1.Benchmarks), len(f3.Benchmarks))
	}
	if len(f2.Benchmarks) != 7 {
		t.Fatalf("fig 2 benchmarks: %d, want 7", len(f2.Benchmarks))
	}
	if _, err := Figure(4); err == nil {
		t.Fatal("Figure(4) accepted")
	}
}

// TestPlanShape: the compiled grid must be benchmark-major, then chip,
// then structure — the figure drivers' batch order.
func TestPlanShape(t *testing.T) {
	s := Spec{
		Chips:      []string{"Mini NVIDIA", "Mini AMD"},
		Benchmarks: []string{"vectoradd", "transpose"},
		Structures: []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory},
		Seed:       3,
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != 8 {
		t.Fatalf("cells: %d, want 8", len(p.Cells))
	}
	first := p.Cells[0]
	if first.Benchmark.Name != "vectoradd" || first.Chip.Name != "Mini NVIDIA" || first.Structure != gpu.RegisterFile {
		t.Fatalf("first cell %s/%s/%s", first.Chip.Name, first.Benchmark.Name, first.Structure)
	}
	second := p.Cells[1]
	if second.Structure != gpu.LocalMemory {
		t.Fatalf("structure must be the innermost axis, got %s", second.Structure)
	}
	if got := len(p.CellSpecs()); got != 8 {
		t.Fatalf("CellSpecs: %d", got)
	}
	if got := len(p.Keys()); got != 8 {
		t.Fatalf("Keys: %d unique, want 8", got)
	}
	// Every cell draws a distinct seed.
	seen := map[uint64]bool{}
	for _, c := range p.Cells {
		if seen[c.Campaign.Seed] {
			t.Fatalf("seed %d reused", c.Campaign.Seed)
		}
		seen[c.Campaign.Seed] = true
	}
}
