package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/finject"
)

// readCompatKeys loads the pinned pre-checkpoint cell keys (generated
// from the repository state before the checkpoint knob existed; see
// testdata/compat_v1.keys).
func readCompatKeys(t *testing.T) []string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "compat_v1.keys"))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Fields(string(b))
}

func compileKeys(t *testing.T, path string) (Spec, []string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := Parse(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	p, err := spec.Compile()
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var keys []string
	for _, k := range p.Keys() {
		keys = append(keys, string(k))
	}
	return spec, keys
}

// TestSpecCompatNoCheckpoint is the backward-compatibility regression:
// a v1 spec written before the checkpoint knob existed must still parse
// under strict decoding, normalize without growing a checkpoint block
// (so its canonical serialization is unchanged), and compile to exactly
// the cell keys it compiled to before — meaning every store warmed by
// the old binary stays warm, with zero cold cells.
func TestSpecCompatNoCheckpoint(t *testing.T) {
	path := filepath.Join("testdata", "compat_v1_nocheckpoint.json")
	spec, keys := compileKeys(t, path)

	if spec.Policy.Checkpoint != nil {
		t.Fatalf("parsing added a checkpoint block: %+v", spec.Policy.Checkpoint)
	}
	norm := spec.Normalize()
	if norm.Policy.Checkpoint != nil {
		t.Fatalf("normalize added a checkpoint block: %+v", norm.Policy.Checkpoint)
	}
	out, err := norm.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out, []byte(`"checkpoint":`)) {
		t.Fatalf("canonical serialization grew a checkpoint field:\n%s", out)
	}

	want := readCompatKeys(t)
	if len(keys) != len(want) {
		t.Fatalf("compiled to %d keys, pinned %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("cell key %d changed: got %s, pinned %s — old stores would go cold", i, keys[i], want[i])
		}
	}
}

// TestSpecCompatWithCheckpoint pins the other direction: a spec that
// does set the checkpoint block parses strictly, carries the knob into
// every compiled campaign — and still compiles to the identical cell
// keys, because checkpointing can never change a result.
func TestSpecCompatWithCheckpoint(t *testing.T) {
	path := filepath.Join("testdata", "compat_v1_checkpoint.json")
	spec, keys := compileKeys(t, path)

	if spec.Policy.Checkpoint == nil || spec.Policy.Checkpoint.Interval != 4096 {
		t.Fatalf("checkpoint block not preserved: %+v", spec.Policy.Checkpoint)
	}
	p, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		if c.Campaign.Policy.Checkpoint != (finject.Checkpoint{Interval: 4096}) {
			t.Fatalf("cell %s/%s/%s lost the checkpoint knob: %+v",
				c.Chip.Name, c.Benchmark.Name, c.Structure, c.Campaign.Policy.Checkpoint)
		}
	}

	want := readCompatKeys(t)
	if len(keys) != len(want) {
		t.Fatalf("compiled to %d keys, pinned %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("cell key %d differs from the checkpoint-free spec: got %s, want %s — the knob must stay out of cell identity", i, keys[i], want[i])
		}
	}

	// Round-trip: the canonical form keeps the block and reparses to the
	// same spec under strict decoding.
	out, err := spec.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	re, err := ParseBytes(out)
	if err != nil {
		t.Fatalf("canonical form does not reparse strictly: %v\n%s", err, out)
	}
	if re.Policy.Checkpoint == nil || *re.Policy.Checkpoint != *spec.Policy.Checkpoint {
		t.Fatalf("checkpoint block lost in round-trip:\n%s", out)
	}
}
