// Package experiment turns the paper's evaluation into data: a
// versioned, JSON-serializable Spec describes a whole experiment — the
// grid of chips x benchmarks x structures, the estimator (fault
// injection, ACE analysis or both), the injection policy and the derived
// metrics (AVF always; FIT, EPF and protection what-ifs on request) —
// and a Runner compiles it into campaign cells and executes it over any
// campaign.Scheduler tier (in-process, disk-backed or a remote worker
// fleet).
//
// The three paper figures are canned specs (Figure); every other
// scenario — occupancy sweeps, protection what-ifs, cross-estimator
// comparisons — is a JSON file, not new Go code. Cell identity is shared
// with the figure drivers in internal/core (which are shims over this
// package), so a store warmed by any spec serves every other spec that
// touches the same cells.
package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// Version is the current spec schema version. Specs with version 0 are
// normalized to it; any other version is rejected, so a future v2 can
// change field semantics without silently misreading v1 files.
const Version = 1

// Estimator selects the reliability methodology a spec runs.
type Estimator string

// The supported estimators.
const (
	// EstimatorFI runs statistical fault-injection campaigns only.
	EstimatorFI Estimator = "fi"
	// EstimatorACE runs the single-pass ACE lifetime analysis only.
	EstimatorACE Estimator = "ace"
	// EstimatorBoth runs both methodologies per cell (the figures'
	// configuration).
	EstimatorBoth Estimator = "both"
)

// fi and ace report whether the estimator includes each methodology.
func (e Estimator) fi() bool  { return e == EstimatorFI || e == EstimatorBoth }
func (e Estimator) ace() bool { return e == EstimatorACE || e == EstimatorBoth }

// Policy is the spec's injection policy: the result-affecting knobs of
// finject.Policy. Worker counts are deliberately absent — they belong to
// the executing tier, never to the experiment's identity.
type Policy struct {
	// Margin > 0 runs every campaign adaptively: injections stop once
	// the AVF Wilson-interval half-width reaches Margin at Confidence,
	// capped at the spec's injection count.
	Margin float64 `json:"margin,omitempty"`
	// Confidence is the level for AVF intervals and the adaptive
	// stopping rule (0.99 when 0).
	Confidence float64 `json:"confidence,omitempty"`
	// Checkpoint, when present, sets the checkpointed fast-forward knob
	// for every campaign of the grid: {"off": true} forces full replay
	// per injection, {"interval": N} fixes the golden snapshot spacing
	// in cycles. Omitted (the v1 default, and the only option in specs
	// written before the knob existed) means on with an auto-sized
	// interval. The knob never affects results, so it stays out of cell
	// identity: specs that differ only here compile to the same cell
	// keys and share warm stores.
	Checkpoint *finject.Checkpoint `json:"checkpoint,omitempty"`
}

// Config lowers the spec policy block into the engine's versioned
// execution configuration. The seed is per-cell (CellSeed), so callers
// stamp it before applying.
func (p Policy) Config() finject.Config {
	return finject.Config{
		Version:    finject.ConfigVersion,
		Margin:     p.Margin,
		Confidence: p.Confidence,
		Checkpoint: p.Checkpoint,
	}
}

// Protection is one what-if configuration of the protection sweep: a
// named set of per-structure schemes evaluated against the measured
// cells. An empty scheme list is the unprotected baseline.
type Protection struct {
	Name    string             `json:"name"`
	Schemes []ProtectionScheme `json:"schemes,omitempty"`
}

// ProtectionScheme applies one protection scheme to one structure.
type ProtectionScheme struct {
	Structure gpu.Structure `json:"structure"`
	// Scheme is "none", "parity" or "secded".
	Scheme string `json:"scheme"`
	// PerfOverhead overrides the scheme's default fractional slowdown
	// when non-nil.
	PerfOverhead *float64 `json:"perf_overhead,omitempty"`
}

// Metrics selects the derived metrics beyond the always-produced AVF
// tables.
type Metrics struct {
	// FIT adds per-cell FIT rates (AVF x structure size x raw rate).
	FIT bool `json:"fit,omitempty"`
	// EPF adds the executions-per-failure table (Fig. 3's metric),
	// combining every structure of the grid into FIT_GPU.
	EPF bool `json:"epf,omitempty"`
	// RawFITPerMbit is the raw soft-error rate entering FIT and EPF
	// (metrics.DefaultRawFITPerMbit when 0).
	RawFITPerMbit float64 `json:"raw_fit_per_mbit,omitempty"`
	// Protection evaluates EPF/FIT what-ifs under the named protection
	// configurations (requires the FI estimator for the SDC/DUE split).
	Protection []Protection `json:"protection,omitempty"`
}

// Spec is one versioned, declarative experiment: everything that
// determines its results and nothing that does not. The zero Spec
// normalizes to the paper's Fig. 1 grid.
type Spec struct {
	// Version is the schema version (0 normalizes to Version).
	Version int `json:"version"`
	// Name labels the experiment in reports and logs.
	Name string `json:"name,omitempty"`
	// Chips is the chip axis (the paper's four evaluated GPUs when
	// empty).
	Chips []string `json:"chips,omitempty"`
	// Benchmarks is the benchmark axis. Empty means the full suite —
	// or, when the structure axis is exactly the local memory, the
	// 7-benchmark shared-memory subset (the paper's Fig. 2 grid).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Structures is the structure axis (register file when empty).
	Structures []gpu.Structure `json:"structures,omitempty"`
	// Estimator selects the methodology ("both" when empty).
	Estimator Estimator `json:"estimator,omitempty"`
	// Injections is the per-cell fault budget (the adaptive cap when
	// Policy.Margin is set; finject.DefaultInjections when 0).
	Injections int `json:"injections,omitempty"`
	// Seed derives every cell's campaign seed; equal specs draw equal
	// fault samples.
	Seed uint64 `json:"seed,omitempty"`
	// Policy is the injection policy.
	Policy Policy `json:"policy,omitempty"`
	// Metrics selects the derived metrics.
	Metrics Metrics `json:"metrics,omitempty"`
}

// Parse strictly decodes one JSON spec: unknown fields are rejected so a
// typo (or a v2 field) cannot silently change an experiment's meaning.
func Parse(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("experiment: parse spec: %w", err)
	}
	return s, nil
}

// ParseBytes is Parse over a byte slice.
func ParseBytes(b []byte) (Spec, error) { return Parse(bytes.NewReader(b)) }

// Normalize resolves every defaulted field, so that specs describing the
// same experiment compare equal and compile to equal cell keys no matter
// how they were written. Normalize is idempotent.
func (s Spec) Normalize() Spec {
	if s.Version == 0 {
		s.Version = Version
	}
	if s.Estimator == "" {
		s.Estimator = EstimatorBoth
	}
	if len(s.Structures) == 0 {
		s.Structures = []gpu.Structure{gpu.RegisterFile}
	}
	if len(s.Chips) == 0 {
		for _, c := range chips.Evaluated() {
			s.Chips = append(s.Chips, c.Name)
		}
	}
	if len(s.Benchmarks) == 0 {
		benches := workloads.All()
		if localOnly(s.Structures) {
			benches = workloads.LocalMemorySubset()
		}
		for _, b := range benches {
			s.Benchmarks = append(s.Benchmarks, b.Name)
		}
	}
	if s.Injections <= 0 {
		s.Injections = finject.DefaultInjections
	}
	if s.Policy.Confidence <= 0 || s.Policy.Confidence >= 1 {
		s.Policy.Confidence = finject.DefaultConfidence
	}
	if (s.Metrics.EPF || s.Metrics.FIT || len(s.Metrics.Protection) > 0) && s.Metrics.RawFITPerMbit <= 0 {
		s.Metrics.RawFITPerMbit = defaultRawFIT
	}
	return s
}

// localOnly reports whether the structure axis is exactly {LocalMemory}.
func localOnly(sts []gpu.Structure) bool {
	for _, st := range sts {
		if st != gpu.LocalMemory {
			return false
		}
	}
	return len(sts) > 0
}

// Validate normalizes the spec and checks it is runnable: a supported
// version and estimator, resolvable axes without duplicates, a legal
// policy and metric selections the estimator can serve. It returns the
// normalized spec so callers validate and resolve in one step.
func (s Spec) Validate() (Spec, error) {
	// Range checks run on the raw values: Normalize would silently
	// rewrite an out-of-range confidence (a likely "95 instead of
	// 0.95" typo) or a negative budget to the defaults, which is
	// exactly the silent meaning change strict parsing exists to stop.
	if c := s.Policy.Confidence; c < 0 || c >= 1 {
		return s, fmt.Errorf("experiment: policy confidence %v outside [0,1) (0 means the default %v)", c, finject.DefaultConfidence)
	}
	if s.Injections < 0 {
		return s, fmt.Errorf("experiment: negative injections %d", s.Injections)
	}
	s = s.Normalize()
	if s.Version != Version {
		return s, fmt.Errorf("experiment: unsupported spec version %d (this build speaks v%d)", s.Version, Version)
	}
	switch s.Estimator {
	case EstimatorFI, EstimatorACE, EstimatorBoth:
	default:
		return s, fmt.Errorf("experiment: unknown estimator %q (want fi, ace or both)", s.Estimator)
	}
	if err := noDuplicates("chip", s.Chips); err != nil {
		return s, err
	}
	if err := noDuplicates("benchmark", s.Benchmarks); err != nil {
		return s, err
	}
	seenSt := make(map[gpu.Structure]bool, len(s.Structures))
	for _, st := range s.Structures {
		switch st {
		case gpu.RegisterFile, gpu.LocalMemory:
		default:
			return s, fmt.Errorf("experiment: unknown structure %v", st)
		}
		if seenSt[st] {
			return s, fmt.Errorf("experiment: duplicate structure %s", st)
		}
		seenSt[st] = true
	}
	for _, name := range s.Chips {
		if _, err := chips.ByName(name); err != nil {
			return s, fmt.Errorf("experiment: %w", err)
		}
	}
	for _, name := range s.Benchmarks {
		if _, err := workloads.ByName(name); err != nil {
			return s, fmt.Errorf("experiment: %w", err)
		}
	}
	if m := s.Policy.Margin; m < 0 || m >= 1 {
		return s, fmt.Errorf("experiment: policy margin %v outside [0,1)", m)
	}
	if ck := s.Policy.Checkpoint; ck != nil && ck.Interval < 0 {
		return s, fmt.Errorf("experiment: negative checkpoint interval %d", ck.Interval)
	}
	// FIT works under any estimator (cellAVF picks the measured AVF);
	// EPF and protection consume the FI outcome splits, so they need
	// the injection campaigns.
	if s.Metrics.EPF || len(s.Metrics.Protection) > 0 {
		if !s.Estimator.fi() {
			return s, fmt.Errorf("experiment: metrics epf/protection need the fi estimator (got %q)", s.Estimator)
		}
	}
	for _, p := range s.Metrics.Protection {
		if p.Name == "" {
			return s, fmt.Errorf("experiment: protection config without a name")
		}
		seen := make(map[gpu.Structure]bool, len(p.Schemes))
		for _, sc := range p.Schemes {
			if _, err := schemeByName(sc.Scheme); err != nil {
				return s, err
			}
			if !seenSt[sc.Structure] {
				return s, fmt.Errorf("experiment: protection %q covers %s, which is not on the structure axis", p.Name, sc.Structure)
			}
			if seen[sc.Structure] {
				return s, fmt.Errorf("experiment: protection %q configures %s twice", p.Name, sc.Structure)
			}
			seen[sc.Structure] = true
		}
	}
	return s, nil
}

// noDuplicates rejects repeated axis entries, which would double-count
// cells in averages.
func noDuplicates(kind string, names []string) error {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return fmt.Errorf("experiment: duplicate %s %q", kind, n)
		}
		seen[n] = true
	}
	return nil
}

// MarshalIndent renders the normalized spec as stable, indented JSON —
// the canonical on-disk form.
func (s Spec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s.Normalize(), "", "  ")
}

// Compile validates the spec and lowers its grid into the executable
// plan, resolving chip and benchmark names through the registries.
func (s Spec) Compile() (*Plan, error) {
	s, err := s.Validate()
	if err != nil {
		return nil, err
	}
	cs := make([]*chips.Chip, len(s.Chips))
	for i, name := range s.Chips {
		if cs[i], err = chips.ByName(name); err != nil {
			return nil, err
		}
	}
	bs := make([]*workloads.Benchmark, len(s.Benchmarks))
	for i, name := range s.Benchmarks {
		if bs[i], err = workloads.ByName(name); err != nil {
			return nil, err
		}
	}
	return s.compileWith(cs, bs)
}

// CompileWith lowers the spec over explicit chip and benchmark sets,
// bypassing the name registries; the spec's own axes are replaced by the
// given sets. It exists for internal/core's legacy Options shims, whose
// callers pass chip and benchmark pointers (possibly unregistered ones).
func (s Spec) CompileWith(cs []*chips.Chip, bs []*workloads.Benchmark) (*Plan, error) {
	s.Chips = s.Chips[:0:0]
	for _, c := range cs {
		s.Chips = append(s.Chips, c.Name)
	}
	s.Benchmarks = s.Benchmarks[:0:0]
	for _, b := range bs {
		s.Benchmarks = append(s.Benchmarks, b.Name)
	}
	s = s.Normalize()
	if len(cs) == 0 || len(bs) == 0 {
		return nil, fmt.Errorf("experiment: empty chip or benchmark set")
	}
	return s.compileWith(cs, bs)
}

// compileWith builds the plan. The cell order is the figure drivers'
// batch order — benchmark-major, then chip, then structure — so shared
// schedulers interleave identically either way.
func (s Spec) compileWith(cs []*chips.Chip, bs []*workloads.Benchmark) (*Plan, error) {
	p := &Plan{Spec: s, Chips: cs, Benchmarks: bs}
	for bi, b := range bs {
		for ci, c := range cs {
			for si, st := range s.Structures {
				p.Cells = append(p.Cells, PlannedCell{
					Chip: c, Benchmark: b, Structure: st,
					BenchIndex: bi, ChipIndex: ci, StructIndex: si,
					Campaign: s.campaignFor(c, b, st),
				})
			}
		}
	}
	return p, nil
}

// campaignFor builds the canonical campaign of one cell. This is the
// single place cell identity is minted: equal (seed, chip, benchmark,
// structure, injections) always produce equal campaign.CellKeys, whether
// the cell came from a spec, a figure driver or a CLI flag set.
func (s Spec) campaignFor(chip *chips.Chip, bench *workloads.Benchmark, st gpu.Structure) finject.Campaign {
	c := finject.Campaign{
		Chip:       chip,
		Benchmark:  bench,
		Structure:  st,
		Injections: s.Injections,
	}
	cfg := s.Policy.Config()
	cfg.Seed = CellSeed(s.Seed, chip.Name, bench.Name, st)
	cfg.ApplyTo(&c)
	return c
}

// CellSeed derives a distinct campaign seed per cell (FNV-style mixing)
// so that cells never share fault samples. It is the seed derivation the
// figure drivers have always used; stores written by them stay warm for
// spec runs and vice versa.
func CellSeed(base uint64, chip, bench string, st gpu.Structure) uint64 {
	h := base ^ 0xcbf29ce484222325
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	mix(chip)
	mix(bench)
	h = (h ^ uint64(st)) * 0x100000001b3
	return h
}

// PlannedCell is one compiled grid cell: the resolved chip and
// benchmark, its grid coordinates and its canonical campaign.
type PlannedCell struct {
	Chip        *chips.Chip
	Benchmark   *workloads.Benchmark
	Structure   gpu.Structure
	BenchIndex  int
	ChipIndex   int
	StructIndex int
	Campaign    finject.Campaign
}

// Plan is a compiled spec: the resolved grid and its campaign cells in
// scheduling order.
type Plan struct {
	// Spec is the normalized spec the plan was compiled from.
	Spec Spec
	// Chips and Benchmarks are the resolved axes.
	Chips      []*chips.Chip
	Benchmarks []*workloads.Benchmark
	// Cells is the grid, benchmark-major, then chip, then structure.
	Cells []PlannedCell
}

// CellSpecs returns the normalized campaign.CellSpec of every planned
// cell — the exact work list, usable for progress accounting before or
// during a run.
func (p *Plan) CellSpecs() []campaign.CellSpec {
	specs := make([]campaign.CellSpec, len(p.Cells))
	for i, c := range p.Cells {
		specs[i] = campaign.SpecOf(c.Campaign)
	}
	return specs
}

// Keys returns the deduplicated cell keys of the plan, sorted — the
// spec's content-addressed footprint in any store.
func (p *Plan) Keys() []campaign.CellKey {
	seen := make(map[campaign.CellKey]bool, len(p.Cells))
	var keys []campaign.CellKey
	for _, c := range p.Cells {
		k := campaign.SpecOf(c.Campaign).Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
