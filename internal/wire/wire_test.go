package wire

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpu"
	"repro/internal/telemetry"
)

func TestHeaderRoundTrip(t *testing.T) {
	for _, kind := range []FileKind{FileStore, FileLadder} {
		b := AppendHeader(nil, kind)
		if len(b) != HeaderSize {
			t.Fatalf("header is %d bytes, want %d", len(b), HeaderSize)
		}
		got, off, err := ParseHeader(b)
		if err != nil || got != kind || off != HeaderSize {
			t.Fatalf("ParseHeader(%s) = %v, %d, %v", kind, got, off, err)
		}
	}
}

func TestParseHeaderRejects(t *testing.T) {
	good := AppendHeader(nil, FileStore)

	if _, _, err := ParseHeader([]byte("JSON")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("non-magic bytes: err = %v, want ErrBadMagic", err)
	}
	if _, _, err := ParseHeader(good[:HeaderSize-1]); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short header: err = %v, want ErrBadMagic", err)
	}

	future := append([]byte(nil), good...)
	future[4] = Version + 1
	if _, _, err := ParseHeader(future); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}

	alien := append([]byte(nil), good...)
	alien[5] = 99
	if _, _, err := ParseHeader(alien); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown file kind: err = %v, want ErrCorrupt", err)
	}

	if IsWireFile([]byte(`{"key":"x"}`)) || !IsWireFile(good) {
		t.Fatal("IsWireFile misroutes")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-payload")}
	b := AppendHeader(nil, FileStore)
	for i, p := range payloads {
		b = AppendRecord(b, RecordKind(i+1), p)
	}

	off := HeaderSize
	for i, p := range payloads {
		rec, next, err := NextRecord(b, off)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Kind != RecordKind(i+1) || !bytes.Equal(rec.Payload, p) || rec.Off != off {
			t.Fatalf("record %d decoded as %+v", i, rec)
		}
		off = next
	}
	rec, next, err := NextRecord(b, off)
	if err != nil || rec.Kind != 0 || next != off {
		t.Fatalf("end of buffer: rec=%+v next=%d err=%v", rec, next, err)
	}
}

// TestTornVersusCorrupt pins the crash-recovery contract: any truncation
// of the final record is a torn append (healable), while a bit flip in a
// complete record is corruption (hard error).
func TestTornVersusCorrupt(t *testing.T) {
	b := AppendHeader(nil, FileStore)
	b = AppendRecord(b, RecCell, []byte("first"))
	goodEnd := len(b)
	b = AppendRecord(b, RecCell, []byte("second-record"))

	// Every possible torn tail of the second record scans back to the
	// end of the first.
	for cut := goodEnd + 1; cut < len(b); cut++ {
		var n int
		good, err := ScanRecords(b[:cut], func(Record) error { n++; return nil })
		if err != nil || good != goodEnd || n != 1 {
			t.Fatalf("cut at %d: good=%d n=%d err=%v, want good=%d n=1", cut, good, n, err, goodEnd)
		}
		if _, _, err := NextRecord(b[:cut], goodEnd); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut at %d: NextRecord err = %v, want ErrTorn", cut, err)
		}
	}

	// A flipped payload byte in a fully present record is corruption.
	corrupt := append([]byte(nil), b...)
	corrupt[goodEnd+6] ^= 0x01
	if _, err := ScanRecords(corrupt, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}
}

func TestScanRecordsStopsOnCallbackError(t *testing.T) {
	b := AppendHeader(nil, FileStore)
	b = AppendRecord(b, RecCell, []byte("x"))
	b = AppendRecord(b, RecCell, []byte("y"))
	boom := errors.New("boom")
	n := 0
	if _, err := ScanRecords(b, func(Record) error { n++; return boom }); !errors.Is(err, boom) || n != 1 {
		t.Fatalf("callback error: n=%d err=%v", n, err)
	}
}

func TestCodecPrimitivesRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(-7)
	w.F64(math.Pi)
	w.F64(math.NaN())
	w.Blob([]byte{1, 2, 3})
	w.Blob(nil)
	w.String("chip/bench")
	w.String("")
	w.U32s([]uint32{9, 8, 7})
	w.U32s(nil)
	w.I64s([]int64{-1, 0, 1})
	w.Bools([]bool{true, false, true})

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 0xab {
		t.Fatalf("U8 = %x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip")
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Fatalf("U64 = %x", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if v := r.F64(); !math.IsNaN(v) {
		t.Fatalf("F64 NaN = %v", v)
	}
	if v := r.Blob(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", v)
	}
	if v := r.Blob(); v != nil {
		t.Fatalf("empty Blob = %v, want nil", v)
	}
	if v := r.String(); v != "chip/bench" {
		t.Fatalf("String = %q", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty String = %q", v)
	}
	if v := r.U32s(); len(v) != 3 || v[0] != 9 {
		t.Fatalf("U32s = %v", v)
	}
	if v := r.U32s(); v != nil {
		t.Fatalf("empty U32s = %v, want nil", v)
	}
	if v := r.I64s(); len(v) != 3 || v[0] != -1 {
		t.Fatalf("I64s = %v", v)
	}
	if v := r.Bools(); len(v) != 3 || !v[0] || v[1] {
		t.Fatalf("Bools = %v", v)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	var w Writer
	w.U32(7)
	r := NewReader(w.Bytes())
	r.U64() // short read: poisons
	if r.Err() == nil {
		t.Fatal("short read did not poison the reader")
	}
	if v := r.U32(); v != 0 {
		t.Fatalf("poisoned read returned %d, want zero value", v)
	}
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done after poison = %v", err)
	}

	// Unconsumed trailing bytes are an error too.
	r2 := NewReader(w.Bytes())
	if err := r2.Done(); err == nil {
		t.Fatal("Done with trailing bytes should fail")
	}
}

// TestSliceLenBounds pins the anti-allocation guard: a declared slice
// length beyond the remaining bytes must fail without allocating.
func TestSliceLenBounds(t *testing.T) {
	var w Writer
	w.U32(math.MaxUint32) // declares 4 billion elements, provides none
	for _, read := range []func(r *Reader){
		func(r *Reader) { r.Blob() },
		func(r *Reader) { _ = r.String() },
		func(r *Reader) { r.U32s() },
		func(r *Reader) { r.I64s() },
		func(r *Reader) { r.Bools() },
	} {
		r := NewReader(w.Bytes())
		read(r)
		if r.Err() == nil {
			t.Fatal("implausible slice length was accepted")
		}
	}
}

// --- ladder round trip over a fake device codec -------------------------

// fakeSnap is a minimal gpu.Snapshot whose device state is just a cycle
// and an opaque tag, with its memory held as a MemImage directly.
type fakeSnap struct {
	cycle int64
	mem   *gpu.MemImage
	tag   []byte
}

func (s *fakeSnap) Cycle() int64     { return s.cycle }
func (s *fakeSnap) SizeBytes() int64 { return s.mem.SizeBytes() }

// fakeCodec marshals fakeSnaps; its meta blob carries cycle + tag.
type fakeCodec struct{}

func (fakeCodec) MarshalSnapshot(s gpu.Snapshot) (*gpu.MemImage, []byte, error) {
	fs := s.(*fakeSnap)
	var w Writer
	w.I64(fs.cycle)
	w.Blob(fs.tag)
	return fs.mem, w.Bytes(), nil
}

func (fakeCodec) UnmarshalSnapshot(mem *gpu.MemImage, meta []byte) (gpu.Snapshot, error) {
	r := NewReader(meta)
	s := &fakeSnap{cycle: r.I64(), tag: r.Blob(), mem: mem}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// fill returns one page of the given fill byte.
func fill(b byte) []byte {
	pg := make([]byte, gpu.PageSize)
	for i := range pg {
		pg[i] = b
	}
	return pg
}

// snap builds a fake snapshot over the given pages.
func snap(t *testing.T, cycle int64, tag string, pages ...[]byte) *fakeSnap {
	t.Helper()
	hwm := uint32(len(pages) * gpu.PageSize)
	mem, err := gpu.NewMappedImage(pages, hwm, hwm)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeSnap{cycle: cycle, mem: mem, tag: []byte(tag)}
}

func TestLadderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ladder")
	info := LadderInfo{Chip: "Mini Test", Benchmark: "vectoradd", Interval: 0}

	p1, p2, p3, zero := fill(0x11), fill(0x22), fill(0x33), make([]byte, gpu.PageSize)
	snaps := []gpu.Snapshot{
		snap(t, 100, "rung0", p1, p2, zero),
		snap(t, 200, "rung1", p1, p3, zero), // shares p1 and the zero page with rung0
	}

	stored0 := telemetry.WirePagesStored.Value()
	deduped0 := telemetry.WirePagesDeduped.Value()
	saves0 := telemetry.WireLadderSaves.Value()
	if err := WriteLadder(path, info, fakeCodec{}, snaps); err != nil {
		t.Fatal(err)
	}
	// 6 page references, 4 distinct pages: p1, p2, zero, p3.
	if got := telemetry.WirePagesStored.Value() - stored0; got != 4 {
		t.Fatalf("pages stored = %d, want 4", got)
	}
	if got := telemetry.WirePagesDeduped.Value() - deduped0; got != 2 {
		t.Fatalf("pages deduped = %d, want 2", got)
	}
	if got := telemetry.WireLadderSaves.Value() - saves0; got != 1 {
		t.Fatalf("ladder saves = %d, want 1", got)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	mmap0 := telemetry.WireLadderMmapBytes.Value()
	loaded, err := OpenLadder(path, info, fakeCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := telemetry.WireLadderMmapBytes.Value() - mmap0; got != st.Size() {
		t.Fatalf("mmap gauge grew by %d, want file size %d", got, st.Size())
	}
	// A second load of the same file reuses the process-wide mapping:
	// the gauge must not count the file twice.
	if _, err := OpenLadder(path, info, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.WireLadderMmapBytes.Value() - mmap0; got != st.Size() {
		t.Fatalf("second open grew the mmap gauge to +%d, want a single mapping of %d", got, st.Size())
	}

	if len(loaded) != len(snaps) {
		t.Fatalf("loaded %d snapshots, want %d", len(loaded), len(snaps))
	}
	for i, s := range loaded {
		got, want := s.(*fakeSnap), snaps[i].(*fakeSnap)
		if got.cycle != want.cycle || !bytes.Equal(got.tag, want.tag) {
			t.Fatalf("rung %d: cycle/tag = %d/%q, want %d/%q", i, got.cycle, got.tag, want.cycle, want.tag)
		}
		if got.mem.NumPages() != want.mem.NumPages() {
			t.Fatalf("rung %d: %d pages, want %d", i, got.mem.NumPages(), want.mem.NumPages())
		}
		for p := 0; p < want.mem.NumPages(); p++ {
			if !bytes.Equal(got.mem.Page(p), want.mem.Page(p)) {
				t.Fatalf("rung %d page %d differs", i, p)
			}
		}
		// The all-zero page must decode to the canonical zero page so
		// restores keep their identity-match fast path.
		if zp := got.mem.Page(2); &zp[0] != &gpu.ZeroPage()[0] {
			t.Fatalf("rung %d: zero page was not canonicalized", i)
		}
		// Rungs alias shared pages: one physical copy of p1.
		if i > 0 {
			prev := loaded[0].(*fakeSnap)
			if a, b := got.mem.Page(0), prev.mem.Page(0); &a[0] != &b[0] {
				t.Fatal("shared page is not aliased across rungs")
			}
		}
	}

	// VerifyLadder agrees with what was written.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pages, snapshots, err := VerifyLadder(data)
	if err != nil || pages != 4 || snapshots != 2 {
		t.Fatalf("VerifyLadder = %d pages, %d snapshots, %v", pages, snapshots, err)
	}
}

func TestLadderIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.ladder")
	info := LadderInfo{Chip: "Mini Test", Benchmark: "vectoradd", Interval: 777}
	if err := WriteLadder(path, info, fakeCodec{}, []gpu.Snapshot{snap(t, 1, "x", fill(1))}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []LadderInfo{
		{Chip: "Other Chip", Benchmark: "vectoradd", Interval: 777},
		{Chip: "Mini Test", Benchmark: "matrixMul", Interval: 777},
		{Chip: "Mini Test", Benchmark: "vectoradd", Interval: 0},
	} {
		if _, err := OpenLadder(path, want, fakeCodec{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("foreign ladder %+v: err = %v, want ErrCorrupt", want, err)
		}
	}
}

func TestLadderRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ladder")
	info := LadderInfo{Chip: "c", Benchmark: "b", Interval: 0}
	if err := WriteLadder(good, info, fakeCodec{}, []gpu.Snapshot{snap(t, 5, "x", fill(7))}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	// Ladders are written atomically, so a short tail is an error here,
	// not a healable torn append. Separate paths per case: mappings are
	// cached per path for the life of the process.
	torn := filepath.Join(dir, "torn.ladder")
	if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLadder(torn, info, fakeCodec{}); !errors.Is(err, ErrTorn) {
		t.Fatalf("truncated ladder: err = %v, want ErrTorn", err)
	}
	if _, _, err := VerifyLadder(data[:len(data)-3]); !errors.Is(err, ErrTorn) {
		t.Fatalf("VerifyLadder truncated: err = %v, want ErrTorn", err)
	}

	// A store file is not a ladder.
	store := filepath.Join(dir, "not-a.ladder")
	if err := os.WriteFile(store, AppendHeader(nil, FileStore), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLadder(store, info, fakeCodec{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("store-as-ladder: err = %v, want ErrCorrupt", err)
	}

	// A flipped page byte fails the content hash in VerifyLadder and the
	// record CRC before that.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-200] ^= 0x40
	if _, _, err := VerifyLadder(flipped); err == nil {
		t.Fatal("flipped byte passed VerifyLadder")
	}

	// Missing the ladder file entirely is fs.ErrNotExist, which the
	// finject loader treats as a silent miss.
	if _, err := OpenLadder(filepath.Join(dir, "absent.ladder"), info, fakeCodec{}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("absent ladder: err = %v, want ErrNotExist", err)
	}
}
