package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends fixed-width little-endian primitives to a growing
// buffer. It is the one encoding vocabulary shared by every wire
// payload (cell results, snapshot meta blobs, ladder info), so all
// record kinds agree on widths and byte order by construction.
type Writer struct {
	b []byte
}

// NewWriter returns a Writer over an optional pre-allocated buffer.
func NewWriter(buf []byte) *Writer { return &Writer{b: buf[:0]} }

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.b }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.b = append(w.b, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a 32-bit little-endian value.
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// U64 appends a 64-bit little-endian value.
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// I64 appends a signed 64-bit value (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a signed 64-bit value.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by bit pattern (exact round trip).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(v []byte) {
	w.U32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// String appends a length-prefixed string.
func (w *Writer) String(v string) {
	w.U32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// U32s appends a length-prefixed []uint32.
func (w *Writer) U32s(v []uint32) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U32(x)
	}
}

// I64s appends a length-prefixed []int64.
func (w *Writer) I64s(v []int64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.I64(x)
	}
}

// Bools appends a length-prefixed []bool, one byte per element.
func (w *Writer) Bools(v []bool) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Bool(x)
	}
}

// Reader decodes a Writer-encoded buffer with a sticky error: the first
// short read or malformed value poisons the Reader, every later call
// returns a zero value, and Err reports the failure once at the end.
// All reads are bounds-checked and slice lengths are validated against
// the remaining bytes before allocation, so a Reader never panics or
// over-allocates on adversarial input — the property FuzzWireDecode
// exercises.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader never writes through
// buf and the slices it returns are always copies, so buf may reference
// read-only mapped memory.
func NewReader(buf []byte) *Reader { return &Reader{b: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Done returns an error unless the buffer was consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b)-r.off)
	}
	return nil
}

// fail poisons the reader.
func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, r.off)
	}
}

// take returns the next n bytes, or nil after poisoning the reader.
func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	v := r.take(1, "u8")
	if v == nil {
		return 0
	}
	return v[0]
}

// Bool reads a one-byte bool; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a 32-bit little-endian value.
func (r *Reader) U32() uint32 {
	v := r.take(4, "u32")
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

// U64 reads a 64-bit little-endian value.
func (r *Reader) U64() uint64 {
	v := r.take(8, "u64")
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int encoded by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// sliceLen reads and validates a length prefix for elements of
// elemSize bytes: the declared payload must fit in the remaining
// buffer, which bounds any allocation by the input size.
func (r *Reader) sliceLen(elemSize int, what string) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.Remaining()/elemSize {
		r.fail(what)
		return 0
	}
	return n
}

// Blob reads a length-prefixed byte slice, returning a copy (nil when
// the encoded length is zero, matching how captures of empty state
// encode nil slices).
func (r *Reader) Blob() []byte {
	n := r.sliceLen(1, "blob")
	if n == 0 {
		return nil
	}
	v := r.take(n, "blob")
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1, "string")
	v := r.take(n, "string")
	return string(v)
}

// U32s reads a length-prefixed []uint32 (nil when empty).
func (r *Reader) U32s() []uint32 {
	n := r.sliceLen(4, "[]uint32")
	if n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.U32()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// I64s reads a length-prefixed []int64 (nil when empty).
func (r *Reader) I64s() []int64 {
	n := r.sliceLen(8, "[]int64")
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Bools reads a length-prefixed []bool (nil when empty).
func (r *Reader) Bools() []bool {
	n := r.sliceLen(1, "[]bool")
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	if r.err != nil {
		return nil
	}
	return out
}
