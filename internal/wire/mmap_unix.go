//go:build unix

package wire

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the mapping plus a release
// function. The mapping is shared (MAP_SHARED) so every process mapping
// the same ladder file shares one physical copy of its pages; writes
// are impossible through it (PROT_READ), which the COW restore path
// never attempts anyway.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("wire: %s: %d bytes exceeds the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// mmapSupported reports whether this platform shares ladder files by
// true memory mapping (it affects telemetry labeling only).
const mmapSupported = true
