package wire

import "fmt"

// Ownership journal payloads. A FileOwner wire file is the shared
// ground truth through which a fleet of fiservers agrees on who owns
// the job store: an append-only sequence of RecOwner records, each one
// epoch transition. The protocol is deliberately primitive — there is
// no consensus round, only fencing: a server claims ownership by
// appending a claim record with an epoch strictly greater than every
// epoch in the file, proves liveness by appending heartbeat records
// under that epoch, and abdicates the moment it observes a higher
// epoch than its own (a peer decided it was dead and took over).
// Because records are CRC-framed and appended with O_APPEND single
// write(2) calls, a torn tail from a SIGKILL mid-append is healed by
// the standard wire truncation rule and never forges a claim.

// Owner event names. They are encoded as strings (not enum bytes) so
// fistore inspect output and future event kinds stay self-describing.
const (
	// OwnerClaim opens a new epoch: the appender asserts ownership.
	OwnerClaim = "claim"
	// OwnerBeat renews a live epoch's lease against takeover TTLs.
	OwnerBeat = "beat"
	// OwnerRelease closes an epoch voluntarily (clean shutdown), so a
	// standby may claim immediately instead of waiting out the TTL.
	OwnerRelease = "release"
)

// OwnerRecord is one ownership transition in a FileOwner journal.
type OwnerRecord struct {
	// Epoch is the fencing token. Claims must strictly exceed every
	// prior epoch; beats and releases carry the epoch they renew/close.
	Epoch uint64
	// Server identifies the appending fiserver (its -server-id).
	Server string
	// UnixMillis is the appender's wall clock at append time; standbys
	// compare it against their own clock to detect a stale owner.
	UnixMillis int64
	// Event is one of OwnerClaim, OwnerBeat, OwnerRelease.
	Event string
}

// EncodeOwner encodes the record as a RecOwner payload.
func EncodeOwner(rec OwnerRecord) []byte {
	w := NewWriter(nil)
	w.U64(rec.Epoch)
	w.String(rec.Server)
	w.I64(rec.UnixMillis)
	w.String(rec.Event)
	return w.Bytes()
}

// DecodeOwner decodes a RecOwner payload.
func DecodeOwner(payload []byte) (OwnerRecord, error) {
	r := NewReader(payload)
	rec := OwnerRecord{
		Epoch:      r.U64(),
		Server:     r.String(),
		UnixMillis: r.I64(),
		Event:      r.String(),
	}
	if err := r.Done(); err != nil {
		return OwnerRecord{}, fmt.Errorf("owner record: %w", err)
	}
	switch rec.Event {
	case OwnerClaim, OwnerBeat, OwnerRelease:
	default:
		return OwnerRecord{}, fmt.Errorf("%w: owner record: unknown event %q", ErrCorrupt, rec.Event)
	}
	return rec, nil
}
