// Package wire is the versioned binary on-disk format shared by the
// campaign result store (campaign.BinaryDiskStore), the file-backed
// checkpoint-ladder store (finject's -ladder-dir path) and the fistore
// inspection CLI. A wire file is
//
//	[magic "FIWR"][version u8][file kind u8][reserved u16]
//	[record]...
//
// and every record is length-prefixed and checksummed:
//
//	[kind u8][payload length u32][payload][crc32(kind || payload) u32]
//
// Two payload families exist: campaign cell records (a campaign.CellKey
// plus its finject.Result, encoded by internal/campaign) and snapshot
// images (ladder files), where each 4 KiB device-memory page is stored
// once under its content hash and referenced by index, so adjacent
// ladder rungs share their unchanged pages on disk exactly as they do
// in heap COW. Ladder files are opened by read-only mmap, so every
// process on a host shares one physical copy of a golden's ladder.
//
// Torn tails versus corruption follow the JSON store's rule: a record
// whose declared extent runs past the end of the file is the signature
// of a process killed mid-append and is truncated away by appenders; a
// record that is wholly present but fails its CRC or decode is
// corruption and is an error. Version bumps are explicit: a reader
// rejects files whose version it does not know (no silent best-effort
// parsing), and compatible additions arrive as new record kinds, which
// readers must skip when unknown.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies every wire-format file; campaign.OpenStore selects
// the binary store by sniffing it, so JSON-lines stores (which can
// never start with these bytes) keep working unchanged.
const Magic = "FIWR"

// Version is the current format version. Readers reject other versions.
const Version = 1

// HeaderSize is the fixed byte length of the file header.
const HeaderSize = 8

// FileKind distinguishes the wire file layouts.
type FileKind uint8

// The defined file kinds.
const (
	// FileStore is an appendable campaign cell-result store.
	FileStore FileKind = 1
	// FileLadder is an immutable checkpoint-ladder image, written once
	// and mmap'd read-only by any number of processes.
	FileLadder FileKind = 2
	// FileOwner is the control-plane ownership journal: an append-only
	// sequence of epoch claim/heartbeat/release records through which a
	// fleet of fiservers agrees on which one owns the shared job store.
	FileOwner FileKind = 3
)

// String names the file kind for inspect output.
func (k FileKind) String() string {
	switch k {
	case FileStore:
		return "store"
	case FileLadder:
		return "ladder"
	case FileOwner:
		return "ownership"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// RecordKind tags one record's payload family.
type RecordKind uint8

// The defined record kinds.
const (
	// RecCell is one campaign cell result (key + finject.Result).
	RecCell RecordKind = 1
	// RecPage is one content-addressed 4 KiB device-memory page:
	// [sha256 32 bytes][4096 page bytes]. Pages are indexed by their
	// order of appearance in the file.
	RecPage RecordKind = 2
	// RecSnapshot is one checkpoint-ladder rung referencing pages by
	// index plus an opaque device meta blob.
	RecSnapshot RecordKind = 3
	// RecLadderInfo identifies a ladder file's (chip, benchmark,
	// interval) so loaders never restore a foreign ladder.
	RecLadderInfo RecordKind = 4
	// RecOwner is one control-plane ownership transition (see
	// ownership.go): an epoch claim, a heartbeat under an epoch, or a
	// voluntary release.
	RecOwner RecordKind = 5
)

// String names the record kind for inspect output.
func (k RecordKind) String() string {
	switch k {
	case RecCell:
		return "cell"
	case RecPage:
		return "page"
	case RecSnapshot:
		return "snapshot"
	case RecLadderInfo:
		return "ladder-info"
	case RecOwner:
		return "owner"
	default:
		return fmt.Sprintf("record(%d)", uint8(k))
	}
}

// Typed decode failures. ErrTorn marks an incomplete final record (the
// crash-append signature appenders heal by truncation); everything else
// wraps ErrCorrupt and is a hard error.
var (
	// ErrBadMagic reports a file that is not wire-format at all.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion reports a wire file from an unknown format version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrCorrupt reports a structurally invalid file or record.
	ErrCorrupt = errors.New("wire: corrupt data")
	// ErrTorn reports an incomplete final record (torn append).
	ErrTorn = errors.New("wire: torn final record")
)

// recordOverhead is the per-record framing cost: kind + length + CRC.
const recordOverhead = 1 + 4 + 4

// crcTable is the standard IEEE polynomial, matching cksum/zlib.
var crcTable = crc32.IEEETable

// AppendHeader appends a file header for the given kind.
func AppendHeader(b []byte, kind FileKind) []byte {
	b = append(b, Magic...)
	b = append(b, Version, uint8(kind), 0, 0)
	return b
}

// ParseHeader validates a file header and returns the kind plus the
// offset of the first record.
func ParseHeader(b []byte) (FileKind, int, error) {
	if len(b) < HeaderSize || string(b[:4]) != Magic {
		return 0, 0, ErrBadMagic
	}
	if b[4] != Version {
		return 0, 0, fmt.Errorf("%w: %d (reader speaks %d)", ErrVersion, b[4], Version)
	}
	kind := FileKind(b[5])
	if kind != FileStore && kind != FileLadder && kind != FileOwner {
		return 0, 0, fmt.Errorf("%w: unknown file kind %d", ErrCorrupt, b[5])
	}
	return kind, HeaderSize, nil
}

// IsWireFile reports whether b begins with the wire magic — the sniff
// campaign.OpenStore uses to route between store implementations.
func IsWireFile(b []byte) bool {
	return len(b) >= len(Magic) && string(b[:len(Magic)]) == Magic
}

// AppendRecord frames one record onto b. The write is buffer-only;
// callers that need crash atomicity must hand the full record to a
// single write(2).
func AppendRecord(b []byte, kind RecordKind, payload []byte) []byte {
	b = append(b, uint8(kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	crc := crc32.Update(crc32.Checksum([]byte{uint8(kind)}, crcTable), crcTable, payload)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// Record is one decoded record frame. Payload aliases the scanned
// buffer (zero-copy: for an mmap'd ladder file it points straight into
// the mapping), so callers must copy anything they retain unless the
// buffer is immutable and long-lived.
type Record struct {
	Kind    RecordKind
	Payload []byte
	// Off is the record's byte offset in the scanned buffer — the
	// truncation point when a torn tail follows a good prefix.
	Off int
}

// NextRecord decodes the record starting at off. It returns the record
// and the offset of the next one. At the exact end of the buffer it
// returns (Record{}, off, nil) with Kind 0; callers detect completion
// via done := next == len(b) style checks, or use the returned record's
// Kind == 0 sentinel. An incomplete final record returns ErrTorn; a
// complete record with a bad CRC returns an ErrCorrupt-wrapping error.
func NextRecord(b []byte, off int) (Record, int, error) {
	if off == len(b) {
		return Record{}, off, nil
	}
	if off > len(b) || off < 0 {
		return Record{}, off, fmt.Errorf("%w: scan offset %d beyond %d bytes", ErrCorrupt, off, len(b))
	}
	if len(b)-off < recordOverhead {
		return Record{}, off, ErrTorn
	}
	kind := RecordKind(b[off])
	plen := int(binary.LittleEndian.Uint32(b[off+1 : off+5]))
	if plen < 0 || plen > len(b)-off-recordOverhead {
		// The declared payload runs past the end of the file: a torn
		// append (the length prefix landed, the payload did not).
		return Record{}, off, ErrTorn
	}
	payload := b[off+5 : off+5+plen]
	want := binary.LittleEndian.Uint32(b[off+5+plen : off+recordOverhead+plen])
	got := crc32.Update(crc32.Checksum(b[off:off+1], crcTable), crcTable, payload)
	if got != want {
		return Record{}, off, fmt.Errorf("%w: record at offset %d: crc mismatch (got %08x want %08x)", ErrCorrupt, off, got, want)
	}
	return Record{Kind: kind, Payload: payload, Off: off}, off + recordOverhead + plen, nil
}

// ScanRecords walks every record of a wire file body, invoking fn per
// record, and returns the byte offset just past the last good record.
// A torn final record stops the scan cleanly (the returned offset is
// the truncation point); corruption anywhere is an error. fn may stop
// the scan early by returning an error.
func ScanRecords(b []byte, fn func(Record) error) (good int, err error) {
	kind, off, err := ParseHeader(b)
	if err != nil {
		return 0, err
	}
	_ = kind
	for {
		rec, next, err := NextRecord(b, off)
		if errors.Is(err, ErrTorn) {
			return off, nil
		}
		if err != nil {
			return off, err
		}
		if next == off { // clean end of buffer
			return off, nil
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off = next
	}
}
