package wire

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"sync"

	"repro/internal/gpu"
	"repro/internal/telemetry"
)

// Ladder files: one golden run's checkpoint ladder, serialized once and
// mmap'd read-only by every consumer. Layout after the file header:
//
//	RecLadderInfo   chip, benchmark, interval, rung count
//	RecPage...      each distinct 4 KiB memory page, once, under its
//	                sha256 (index = order of appearance)
//	RecSnapshot...  per rung: cycle, memory watermarks, page indices,
//	                opaque device meta blob
//
// Pages are content-addressed at write time, so rungs that share COW
// pages in heap share the same page records on disk; all-zero pages
// decode to the canonical gpu.ZeroPage so restores keep their
// identity-match fast path. Loaded snapshot images alias the mapping
// directly (gpu.NewMappedImage) — nothing is copied, and the mapping
// lives for the remainder of the process (see mappings below), which is
// the safety rule that makes aliasing sound: snapshots never outlive
// their pages.

// LadderInfo identifies which golden run a ladder file belongs to.
// Loading fails unless it matches the request exactly: a ladder is only
// valid for the deterministic golden execution of its own
// (chip, benchmark) pair at its own checkpoint interval.
type LadderInfo struct {
	Chip      string
	Benchmark string
	// Interval is the configured checkpoint interval (0 = auto-sized).
	Interval int64
}

// pageHashSize is the content-hash width stored with each page.
const pageHashSize = sha256.Size

// WriteLadder serializes a checkpoint ladder to path atomically: the
// file streams to a unique temporary sibling, is fsynced, and is
// renamed into place, so concurrent writers racing on the same path
// leave one complete file (their contents are identical anyway —
// golden runs are deterministic). codec must be a device of the
// ladder's own chip configuration.
func WriteLadder(path string, info LadderInfo, codec gpu.SnapshotCodec, snaps []gpu.Snapshot) error {
	buf := AppendHeader(nil, FileLadder)

	var w Writer
	w.String(info.Chip)
	w.String(info.Benchmark)
	w.I64(info.Interval)
	w.U32(uint32(len(snaps)))
	buf = AppendRecord(buf, RecLadderInfo, w.Bytes())

	// Content-addressed page pool: first reference writes the page and
	// assigns the next index, later references reuse it.
	pageIdx := make(map[[pageHashSize]byte]uint32)
	var stored, deduped int64
	for _, s := range snaps {
		mem, meta, err := codec.MarshalSnapshot(s)
		if err != nil {
			return fmt.Errorf("wire: ladder %s: %w", path, err)
		}
		np := mem.NumPages()
		refs := make([]uint32, np)
		for p := 0; p < np; p++ {
			pg := mem.Page(p)
			if len(pg) != gpu.PageSize {
				return fmt.Errorf("wire: ladder %s: page %d is %d bytes", path, p, len(pg))
			}
			h := sha256.Sum256(pg)
			idx, ok := pageIdx[h]
			if !ok {
				idx = uint32(len(pageIdx))
				pageIdx[h] = idx
				rec := make([]byte, 0, pageHashSize+gpu.PageSize)
				rec = append(rec, h[:]...)
				rec = append(rec, pg...)
				buf = AppendRecord(buf, RecPage, rec)
				stored++
			} else {
				deduped++
			}
			refs[p] = idx
		}
		brk, hwm := mem.Watermarks()
		sw := Writer{}
		sw.I64(s.Cycle())
		sw.U32(brk)
		sw.U32(hwm)
		sw.U32s(refs)
		sw.Blob(meta)
		buf = AppendRecord(buf, RecSnapshot, sw.Bytes())
	}

	tmp, err := os.CreateTemp(dirOf(path), ".ladder-*")
	if err != nil {
		return fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	// CreateTemp makes the file 0600; ladders are meant to be shared
	// read-only across processes (and users), so widen before publishing.
	if err := os.Chmod(tmpPath, 0o644); err != nil {
		return fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	telemetry.WireBytesWritten.Add(int64(len(buf)))
	telemetry.WirePagesStored.Add(stored)
	telemetry.WirePagesDeduped.Add(deduped)
	telemetry.WireLadderSaves.Inc()
	return nil
}

// dirOf returns the directory holding path ("." when bare).
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			if i == 0 {
				return string(path[0])
			}
			return path[:i]
		}
	}
	return "."
}

// mappings is the process-wide ladder mapping cache: each ladder file
// is mapped at most once per process, every loader aliases the same
// mapping, and mappings live until process exit — the lifetime rule
// that lets snapshot images reference mapped pages without reference
// counting. The fi_wire_ladder_mmap_bytes gauge therefore reports each
// file's bytes exactly once per process no matter how many goldens,
// workers or campaigns share it.
var mappings struct {
	sync.Mutex
	byPath map[string][]byte
}

// mappedFile returns the shared read-only mapping of path.
func mappedFile(path string) ([]byte, error) {
	mappings.Lock()
	defer mappings.Unlock()
	if data, ok := mappings.byPath[path]; ok {
		return data, nil
	}
	data, _, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	if mappings.byPath == nil {
		mappings.byPath = make(map[string][]byte)
	}
	mappings.byPath[path] = data
	telemetry.WireLadderMmapBytes.Add(int64(len(data)))
	return data, nil
}

// MmapSupported reports whether ladder files are shared by true
// read-only memory mapping on this platform (false means the copying
// fallback: correct, but one heap copy per process).
func MmapSupported() bool { return mmapSupported }

// OpenLadder loads the ladder at path, validating that it matches want,
// and rebuilds its snapshots through codec. Snapshot memory pages alias
// the shared read-only mapping — zero copies, zero heap, one physical
// ladder per host across any number of processes.
func OpenLadder(path string, want LadderInfo, codec gpu.SnapshotCodec) ([]gpu.Snapshot, error) {
	data, err := mappedFile(path)
	if err != nil {
		return nil, err
	}
	kind, _, err := ParseHeader(data)
	if err != nil {
		return nil, fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	if kind != FileLadder {
		return nil, fmt.Errorf("%w: %s is a %s file, not a ladder", ErrCorrupt, path, kind)
	}

	var (
		info     *LadderInfo
		declared uint32
		pages    [][]byte
		snaps    []gpu.Snapshot
	)
	good, err := ScanRecords(data, func(rec Record) error {
		switch rec.Kind {
		case RecLadderInfo:
			r := NewReader(rec.Payload)
			info = &LadderInfo{Chip: r.String(), Benchmark: r.String(), Interval: r.I64()}
			declared = r.U32()
			if err := r.Done(); err != nil {
				return err
			}
			if *info != want {
				return fmt.Errorf("%w: ladder %s is for %s/%s interval %d, want %s/%s interval %d",
					ErrCorrupt, path, info.Chip, info.Benchmark, info.Interval,
					want.Chip, want.Benchmark, want.Interval)
			}
		case RecPage:
			if len(rec.Payload) != pageHashSize+gpu.PageSize {
				return fmt.Errorf("%w: page record of %d bytes", ErrCorrupt, len(rec.Payload))
			}
			pg := rec.Payload[pageHashSize:]
			if allZero(pg) {
				// Preserve the canonical zero-page identity so restores
				// skip zero pages by pointer match, exactly as with an
				// in-heap ladder.
				pg = gpu.ZeroPage()
			}
			pages = append(pages, pg)
		case RecSnapshot:
			r := NewReader(rec.Payload)
			cycle := r.I64()
			brk, hwm := r.U32(), r.U32()
			refs := r.U32s()
			meta := r.Blob()
			if err := r.Done(); err != nil {
				return err
			}
			imgPages := make([][]byte, len(refs))
			for i, idx := range refs {
				if int(idx) >= len(pages) {
					return fmt.Errorf("%w: snapshot references page %d of %d", ErrCorrupt, idx, len(pages))
				}
				imgPages[i] = pages[idx]
			}
			mem, err := gpu.NewMappedImage(imgPages, brk, hwm)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			snap, err := codec.UnmarshalSnapshot(mem, meta)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if snap.Cycle() != cycle {
				return fmt.Errorf("%w: snapshot meta cycle %d disagrees with record cycle %d", ErrCorrupt, snap.Cycle(), cycle)
			}
			snaps = append(snaps, snap)
		default:
			// Unknown kinds are forward-compatible additions: skip.
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("wire: ladder %s: %w", path, err)
	}
	if good != len(data) {
		// Ladders are written atomically; a short tail is corruption
		// here, not an append crash.
		return nil, fmt.Errorf("wire: ladder %s: %w after offset %d", path, ErrTorn, good)
	}
	if info == nil {
		return nil, fmt.Errorf("wire: ladder %s: %w: missing ladder-info record", path, ErrCorrupt)
	}
	if int(declared) != len(snaps) {
		return nil, fmt.Errorf("wire: ladder %s: %w: %d snapshots declared, %d present", path, ErrCorrupt, declared, len(snaps))
	}
	return snaps, nil
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for len(b) >= 8 {
		if b[0]|b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] != 0 {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// VerifyLadder fully checks a ladder file: framing, CRCs, page content
// hashes and snapshot page references. It does not need a device codec
// (meta blobs stay opaque); fistore verify uses it.
func VerifyLadder(data []byte) (pages, snapshots int, err error) {
	kind, _, err := ParseHeader(data)
	if err != nil {
		return 0, 0, err
	}
	if kind != FileLadder {
		return 0, 0, fmt.Errorf("%w: not a ladder file", ErrCorrupt)
	}
	good, err := ScanRecords(data, func(rec Record) error {
		switch rec.Kind {
		case RecPage:
			if len(rec.Payload) != pageHashSize+gpu.PageSize {
				return fmt.Errorf("%w: page record of %d bytes", ErrCorrupt, len(rec.Payload))
			}
			want := rec.Payload[:pageHashSize]
			got := sha256.Sum256(rec.Payload[pageHashSize:])
			if !bytes.Equal(got[:], want) {
				return fmt.Errorf("%w: page %d content hash mismatch", ErrCorrupt, pages)
			}
			pages++
		case RecSnapshot:
			r := NewReader(rec.Payload)
			r.I64()
			r.U32()
			r.U32()
			refs := r.U32s()
			r.Blob()
			if err := r.Done(); err != nil {
				return err
			}
			for _, idx := range refs {
				if int(idx) >= pages {
					return fmt.Errorf("%w: snapshot %d references page %d of %d", ErrCorrupt, snapshots, idx, pages)
				}
			}
			snapshots++
		}
		return nil
	})
	if err != nil {
		return pages, snapshots, err
	}
	if good != len(data) {
		return pages, snapshots, fmt.Errorf("%w after offset %d", ErrTorn, good)
	}
	return pages, snapshots, nil
}
