//go:build !unix

package wire

import "os"

// mapFile is the copying fallback for platforms without syscall.Mmap:
// the file is read into the heap once per process. Ladder rungs still
// share pages with each other (the in-process dedupe is structural),
// but separate processes each hold their own copy.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

// mmapSupported reports whether this platform shares ladder files by
// true memory mapping.
const mmapSupported = false
