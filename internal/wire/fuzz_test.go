package wire

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpu"
)

// FuzzWireDecode feeds arbitrary bytes to every wire decoder. The
// contract under test: decoders never panic and never allocate beyond
// the input size — they either decode or return a typed error.
func FuzzWireDecode(f *testing.F) {
	// Seed with real encodings so the fuzzer starts past the magic check.
	store := AppendHeader(nil, FileStore)
	var w Writer
	w.String("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	w.Int(42)
	store = AppendRecord(store, RecCell, w.Bytes())
	f.Add(store)

	dir := f.TempDir()
	path := filepath.Join(dir, "seed.ladder")
	pg := make([]byte, gpu.PageSize)
	pg[17] = 0xaa
	hwm := uint32(gpu.PageSize)
	mem, err := gpu.NewMappedImage([][]byte{pg}, hwm, hwm)
	if err != nil {
		f.Fatal(err)
	}
	info := LadderInfo{Chip: "seed", Benchmark: "seed", Interval: 0}
	if err := WriteLadder(path, info, fakeCodec{}, []gpu.Snapshot{&fakeSnap{cycle: 9, mem: mem, tag: []byte("t")}}); err != nil {
		f.Fatal(err)
	}
	ladder, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ladder)
	f.Add([]byte(Magic))
	f.Add([]byte(`{"key":"a","result":{}}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		good, err := ScanRecords(data, func(rec Record) error {
			// Exercise the payload readers the way real decoders do.
			r := NewReader(rec.Payload)
			_ = r.String()
			r.I64()
			r.U32s()
			r.Blob()
			return nil
		})
		if err == nil && (good < 0 || good > len(data)) {
			t.Fatalf("ScanRecords returned offset %d for %d bytes", good, len(data))
		}
		if err != nil && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ScanRecords returned an untyped error: %v", err)
		}

		_, _, _ = VerifyLadder(data)

		r := NewReader(data)
		r.U8()
		r.Bool()
		r.U32()
		r.U64()
		r.I64()
		r.F64()
		r.Blob()
		_ = r.String()
		r.U32s()
		r.I64s()
		r.Bools()
		_ = r.Done()
	})
}

// FuzzWireRoundTrip proves Writer/Reader are exact inverses for every
// primitive, including NaN floats and empty slices.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(1), true, uint32(2), uint64(3), int64(-4), 5.5, []byte("blob"), "string")
	f.Add(uint8(0), false, uint32(math.MaxUint32), uint64(math.MaxUint64), int64(math.MinInt64), math.Inf(-1), []byte{}, "")
	f.Fuzz(func(t *testing.T, u8 uint8, b bool, u32 uint32, u64 uint64, i64 int64, f64 float64, blob []byte, s string) {
		var w Writer
		w.U8(u8)
		w.Bool(b)
		w.U32(u32)
		w.U64(u64)
		w.I64(i64)
		w.F64(f64)
		w.Blob(blob)
		w.String(s)

		r := NewReader(w.Bytes())
		if got := r.U8(); got != u8 {
			t.Fatalf("U8 = %d, want %d", got, u8)
		}
		if got := r.Bool(); got != b {
			t.Fatalf("Bool = %v, want %v", got, b)
		}
		if got := r.U32(); got != u32 {
			t.Fatalf("U32 = %d, want %d", got, u32)
		}
		if got := r.U64(); got != u64 {
			t.Fatalf("U64 = %d, want %d", got, u64)
		}
		if got := r.I64(); got != i64 {
			t.Fatalf("I64 = %d, want %d", got, i64)
		}
		if got := r.F64(); math.Float64bits(got) != math.Float64bits(f64) {
			t.Fatalf("F64 = %v, want %v", got, f64)
		}
		if got := r.Blob(); !bytes.Equal(got, blob) {
			t.Fatalf("Blob = %v, want %v", got, blob)
		}
		if got := r.String(); got != s {
			t.Fatalf("String = %q, want %q", got, s)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("Done: %v", err)
		}
	})
}
