package wire

import (
	"errors"
	"testing"
)

func TestOwnerRecordRoundTrip(t *testing.T) {
	recs := []OwnerRecord{
		{Epoch: 1, Server: "fiserver-a", UnixMillis: 1700000000000, Event: OwnerClaim},
		{Epoch: 1, Server: "fiserver-a", UnixMillis: 1700000000250, Event: OwnerBeat},
		{Epoch: 2, Server: "fiserver-b", UnixMillis: 1700000009000, Event: OwnerClaim},
		{Epoch: 2, Server: "fiserver-b", UnixMillis: 1700000010000, Event: OwnerRelease},
	}
	for _, want := range recs {
		got, err := DecodeOwner(EncodeOwner(want))
		if err != nil {
			t.Fatalf("DecodeOwner(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestOwnerRecordRejectsBadPayloads(t *testing.T) {
	good := EncodeOwner(OwnerRecord{Epoch: 3, Server: "s", UnixMillis: 42, Event: OwnerBeat})

	if _, err := DecodeOwner(good[:len(good)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodeOwner(append(append([]byte(nil), good...), 0xFF)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
	bogus := EncodeOwner(OwnerRecord{Epoch: 3, Server: "s", UnixMillis: 42, Event: "usurp"})
	if _, err := DecodeOwner(bogus); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown event: got %v, want ErrCorrupt", err)
	}
}

func TestOwnerFileScanAndTornTail(t *testing.T) {
	b := AppendHeader(nil, FileOwner)
	b = AppendRecord(b, RecOwner, EncodeOwner(OwnerRecord{Epoch: 1, Server: "a", UnixMillis: 10, Event: OwnerClaim}))
	b = AppendRecord(b, RecOwner, EncodeOwner(OwnerRecord{Epoch: 2, Server: "b", UnixMillis: 20, Event: OwnerClaim}))
	goodLen := len(b)
	// A torn tail: half an appended record, the SIGKILL-mid-claim shape.
	torn := AppendRecord(nil, RecOwner, EncodeOwner(OwnerRecord{Epoch: 3, Server: "c", UnixMillis: 30, Event: OwnerClaim}))
	b = append(b, torn[:len(torn)/2]...)

	var got []OwnerRecord
	good, err := ScanRecords(b, func(rec Record) error {
		if rec.Kind != RecOwner {
			t.Fatalf("unexpected record kind %v", rec.Kind)
		}
		o, err := DecodeOwner(rec.Payload)
		if err != nil {
			return err
		}
		got = append(got, o)
		return nil
	})
	if err != nil {
		t.Fatalf("ScanRecords: %v", err)
	}
	if good != goodLen {
		t.Fatalf("good offset %d, want %d (torn tail must be truncated away)", good, goodLen)
	}
	if len(got) != 2 || got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Fatalf("scanned records %+v, want epochs 1,2", got)
	}
}
