package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/finject"
	"repro/internal/testutil"
)

// newRemoteServer builds a Server whose scheduler executes through a
// lease queue served by the worker endpoints.
func newRemoteServer(t *testing.T, ttl time.Duration) (*httptest.Server, *campaign.Scheduler, *campaign.LeaseQueue) {
	t.Helper()
	q := campaign.NewLeaseQueue(ttl)
	sched := campaign.New(campaign.Config{Executor: campaign.NewRemoteExecutor(q), Workers: 64})
	srv := NewServer(sched)
	srv.ServeWorkers(q)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, sched, q
}

// leaseOnce asks the worker endpoint for up to max cells.
func leaseOnce(t *testing.T, ts *httptest.Server, worker string, max int, wait time.Duration) []campaign.Lease {
	t.Helper()
	var resp struct {
		Leases []campaign.Lease `json:"leases"`
	}
	testutil.PostJSON(t, ts.URL, "/v1/workers/lease",
		map[string]any{"worker": worker, "max": max, "wait_ms": wait.Milliseconds()},
		&resp, http.StatusOK)
	return resp.Leases
}

// completeLease answers one lease over HTTP, expecting wantCode.
func completeLease(t *testing.T, ts *httptest.Server, leaseID string, res *finject.Result, errMsg string, wantCode int) {
	t.Helper()
	body := map[string]any{}
	if errMsg != "" {
		body["error"] = errMsg
	} else {
		body["result"] = res
	}
	testutil.PostJSON(t, ts.URL, "/v1/workers/"+leaseID+"/complete", body, nil, wantCode)
}

// runRemoteCell computes the cell the way a real worker would.
func runRemoteCell(t *testing.T, task campaign.Task) *finject.Result {
	t.Helper()
	spec := task.Spec.Normalize()
	cfg := task.Policy
	cfg.Workers = 2
	res, err := campaign.NewLocalExecutor().Execute(context.Background(),
		campaign.Request{Spec: spec, Key: spec.Key(), Policy: cfg.Policy(spec.CheckpointPolicy())})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkerProtocolServesJob(t *testing.T) {
	ts, sched, _ := newRemoteServer(t, time.Minute)

	var submitted struct {
		ID string `json:"id"`
	}
	cells := []campaign.CellSpec{testutil.MiniSpec("vectoradd", 41), testutil.MiniSpec("transpose", 41)}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": cells}, &submitted, http.StatusAccepted)

	// Drain the queue by hand: every cell of the batch must surface as a
	// lease, and completing them finishes the job.
	served := 0
	deadline := time.Now().Add(30 * time.Second)
	for served < len(cells) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d cells surfaced as leases", served, len(cells))
		}
		for _, l := range leaseOnce(t, ts, "w1", 4, 100*time.Millisecond) {
			completeLease(t, ts, l.ID, runRemoteCell(t, l.Task), "", http.StatusOK)
			served++
		}
	}

	var status struct {
		State string      `json:"state"`
		Cells []cellState `json:"cells"`
	}
	for {
		testutil.GetJSON(t, ts.URL, "/v1/jobs/"+submitted.ID, &status)
		if status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status.State != "done" {
		t.Fatalf("job %+v", status)
	}
	for i, c := range status.Cells {
		if c.State != "done" || c.Injections != 20 {
			t.Fatalf("cell %d: %+v", i, c)
		}
	}
	if runs := sched.Stats().Runs; runs != 2 {
		t.Fatalf("runs %d, want 2", runs)
	}

	// The queue's state shows up in /v1/stats.
	var stats struct {
		Workers *campaign.LeaseStats `json:"workers"`
	}
	testutil.GetJSON(t, ts.URL, "/v1/stats", &stats)
	if stats.Workers == nil || stats.Workers.Completed != 2 {
		t.Fatalf("worker stats %+v", stats.Workers)
	}
}

func TestWorkerDiesMidLease(t *testing.T) {
	// A very short TTL stands in for the dead worker's missing
	// heartbeats.
	ts, _, _ := newRemoteServer(t, 50*time.Millisecond)

	var submitted struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": []campaign.CellSpec{testutil.MiniSpec("vectoradd", 43)}},
		&submitted, http.StatusAccepted)

	// Worker 1 leases the cell and dies without completing it.
	var dead []campaign.Lease
	deadline := time.Now().Add(10 * time.Second)
	for len(dead) == 0 && time.Now().Before(deadline) {
		dead = leaseOnce(t, ts, "doomed", 1, 50*time.Millisecond)
	}
	if len(dead) != 1 {
		t.Fatal("cell never leased")
	}
	time.Sleep(100 * time.Millisecond) // TTL passes, lease expires

	// Worker 2 inherits the cell and completes it; the job still lands.
	var second []campaign.Lease
	for len(second) == 0 && time.Now().Before(deadline) {
		second = leaseOnce(t, ts, "survivor", 1, 50*time.Millisecond)
	}
	if len(second) != 1 {
		t.Fatal("expired cell never re-leased")
	}
	if second[0].ID == dead[0].ID {
		t.Fatal("lease id reused after expiry")
	}
	completeLease(t, ts, second[0].ID, runRemoteCell(t, second[0].Task), "", http.StatusOK)

	var status struct {
		State string `json:"state"`
	}
	for {
		testutil.GetJSON(t, ts.URL, "/v1/jobs/"+submitted.ID, &status)
		if status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished after re-lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status.State != "done" {
		t.Fatalf("job %q after worker death, want done", status.State)
	}

	var stats struct {
		Workers *campaign.LeaseStats `json:"workers"`
	}
	testutil.GetJSON(t, ts.URL, "/v1/stats", &stats)
	if stats.Workers.Expired < 1 {
		t.Fatalf("expiry not counted: %+v", stats.Workers)
	}
}

func TestDuplicateCompleteOverHTTPIsIdempotent(t *testing.T) {
	ts, _, q := newRemoteServer(t, time.Minute)
	go q.Do(context.Background(), campaign.Task{Spec: testutil.MiniSpec("vectoradd", 44)})

	var leases []campaign.Lease
	deadline := time.Now().Add(10 * time.Second)
	for len(leases) == 0 && time.Now().Before(deadline) {
		leases = leaseOnce(t, ts, "w1", 1, 50*time.Millisecond)
	}
	if len(leases) != 1 {
		t.Fatal("cell never leased")
	}
	res := runRemoteCell(t, leases[0].Task)
	completeLease(t, ts, leases[0].ID, res, "", http.StatusOK)
	completeLease(t, ts, leases[0].ID, res, "", http.StatusOK) // duplicate: still 200
	if st := q.Stats(); st.Completed != 1 {
		t.Fatalf("duplicate complete double-counted: %+v", st)
	}
}

func TestWorkerEndpointValidation(t *testing.T) {
	ts, _, _ := newRemoteServer(t, time.Minute)

	testutil.PostJSON(t, ts.URL, "/v1/workers/lease", map[string]any{"max": 1}, nil, http.StatusBadRequest)
	completeLease(t, ts, "lease-999999", nil, "", http.StatusBadRequest) // neither result nor error
	completeLease(t, ts, "lease-999999", &finject.Result{}, "", http.StatusNotFound)
	testutil.PostJSON(t, ts.URL, "/v1/workers/lease-999999/heartbeat", map[string]any{}, nil, http.StatusGone)

	// Without ServeWorkers the endpoints don't exist.
	plain := httptest.NewServer(NewServer(campaign.New(campaign.Config{})))
	defer plain.Close()
	testutil.PostJSON(t, plain.URL, "/v1/workers/lease", map[string]any{"worker": "w"}, nil, http.StatusNotFound)
}

func TestShutdownDrainsRunningJobs(t *testing.T) {
	// In-process execution, big enough batch to still be running.
	sched := campaign.New(campaign.Config{Workers: 1, CampaignWorkers: 1})
	srv := NewServer(sched)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var cells []campaign.CellSpec
	for i := uint64(0); i < 8; i++ {
		s := testutil.MiniSpec("matrixMul", 300+i)
		s.Injections = 200
		cells = append(cells, s)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": cells}, &submitted, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// After the drain the job has settled (canceled or done, not
	// running) and new submissions bounce.
	var status struct {
		State string `json:"state"`
	}
	testutil.GetJSON(t, ts.URL, "/v1/jobs/"+submitted.ID, &status)
	if status.State == "running" {
		t.Fatalf("job still running after Shutdown")
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": cells[:1]}, nil, http.StatusServiceUnavailable)
}

func TestLeaseTaskWireFormat(t *testing.T) {
	// The wire task is (spec, policy) and nothing else: a worker can
	// reconstruct the campaign from the registries alone.
	task := campaign.Task{
		Spec:   testutil.MiniSpec("vectoradd", 45).Normalize(),
		Policy: finject.Config{Margin: 0.05, Confidence: 0.95},
	}
	buf, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	var back campaign.Task
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != task.Spec || !back.Policy.Equal(task.Policy) || back.Corr != task.Corr {
		t.Fatalf("task round-trip changed it:\n%+v\n%+v", task, back)
	}
	if _, err := back.Spec.Campaign(); err != nil {
		t.Fatal(err)
	}
}
