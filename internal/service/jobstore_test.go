package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/finject"
	"repro/internal/testutil"
)

// mustOpenJobStore opens the journal or fails the test.
func mustOpenJobStore(t *testing.T, path string) *JobStore {
	t.Helper()
	js, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// appendAll journals recs in order, failing the test on error.
func appendAll(t *testing.T, js *JobStore, recs ...journalRecord) {
	t.Helper()
	for _, rec := range recs {
		if err := js.append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJobStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	js := mustOpenJobStore(t, path)
	res := &finject.Result{Injections: 20}
	appendAll(t, js,
		journalRecord{Event: "submit", Job: "job-000001", Kind: "batch",
			Cells: []campaign.CellSpec{testutil.MiniSpec("vectoradd", 1)}},
		journalRecord{Event: "cell", Job: "job-000001", Index: 0,
			State: "done", Injections: 20, Result: res},
		journalRecord{Event: "finish", Job: "job-000001", State: "done"},
	)
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}

	js2 := mustOpenJobStore(t, path)
	defer js2.Close()
	snaps := js2.snapshots()
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots, want 1", len(snaps))
	}
	snap := snaps[0]
	if snap.ID != "job-000001" || snap.Kind != "batch" || snap.State != "done" {
		t.Fatalf("snapshot %+v", snap)
	}
	if len(snap.Cells) != 1 || snap.Cells[0].State != "done" || snap.Cells[0].Injections != 20 {
		t.Fatalf("cells %+v", snap.Cells)
	}
	if snap.Results[0] == nil || snap.Results[0].Injections != 20 {
		t.Fatalf("results %+v", snap.Results)
	}
	if js2.MaxSeq() != 1 {
		t.Fatalf("MaxSeq %d, want 1", js2.MaxSeq())
	}
}

// TestJobStoreSkipsInvalidTransitions pins the "never invent state"
// rule: syntactically valid records that reference an unknown job or an
// out-of-range cell index are dropped on replay, not guessed at.
func TestJobStoreSkipsInvalidTransitions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	js := mustOpenJobStore(t, path)
	appendAll(t, js,
		journalRecord{Event: "cell", Job: "job-000404", Index: 0, State: "done"},
		journalRecord{Event: "finish", Job: "job-000404", State: "done"},
		journalRecord{Event: "delete", Job: "job-000404"},
		journalRecord{Event: "submit", Job: "job-000002", Kind: "batch",
			Cells: []campaign.CellSpec{testutil.MiniSpec("vectoradd", 1)}},
		journalRecord{Event: "cell", Job: "job-000002", Index: 7, State: "done"},
	)
	js.Close()

	js2 := mustOpenJobStore(t, path)
	defer js2.Close()
	snaps := js2.snapshots()
	if len(snaps) != 1 || snaps[0].ID != "job-000002" {
		t.Fatalf("snapshots %+v", snaps)
	}
	if snaps[0].Cells[0].State != "pending" {
		t.Fatalf("out-of-range cell record mutated cell 0: %+v", snaps[0].Cells)
	}
	// The bad job's id still advances the sequence: ids must never be
	// reused even against half-garbage journals.
	if js2.MaxSeq() != 404 {
		t.Fatalf("MaxSeq %d, want 404", js2.MaxSeq())
	}
}

func TestJobStoreCorruptMidFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	body := `{"event":"submit","job":"job-000001","kind":"batch"}` + "\n" +
		"{definitely not json\n" +
		`{"event":"finish","job":"job-000001","state":"done"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJobStore(path); err == nil {
		t.Fatal("corrupt journal opened cleanly")
	}
}

// TestJobStoreTornTailEveryByteOffset is the torn-write sweep demanded
// by the restart-proof acceptance bar: a real journal is truncated at
// every byte offset and reopened. Recovery must never error, never
// panic, and never invent state — every job it reports is a job the full
// journal knows, every "done" job carries exactly the results the full
// journal recorded, and the journal file is left on a clean line
// boundary ready for appends.
func TestJobStoreTornTailEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	js := mustOpenJobStore(t, full)
	res1 := &finject.Result{Injections: 20, Outcomes: [4]int{18, 1, 1, 0}}
	res2 := &finject.Result{Injections: 40, Outcomes: [4]int{39, 1, 0, 0}}
	appendAll(t, js,
		journalRecord{Event: "submit", Job: "job-000001", Kind: "batch",
			Cells: []campaign.CellSpec{testutil.MiniSpec("vectoradd", 1), testutil.MiniSpec("transpose", 2)}},
		journalRecord{Event: "cell", Job: "job-000001", Index: 0, State: "done", Injections: 20, Result: res1},
		journalRecord{Event: "cell", Job: "job-000001", Index: 1, State: "done", Injections: 40, Result: res2},
		journalRecord{Event: "finish", Job: "job-000001", State: "done"},
		journalRecord{Event: "submit", Job: "exp-000002", Kind: "experiment",
			Spec: json.RawMessage(`{"version":1}`)},
		journalRecord{Event: "delete", Job: "job-000001"},
	)
	js.Close()

	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Reference replay of the complete journal.
	ref := make(map[string]*jobSnapshot)
	jsRef := mustOpenJobStore(t, full)
	for _, snap := range jsRef.snapshots() {
		ref[snap.ID] = snap
	}
	jsRef.Close()

	torn := filepath.Join(dir, "torn.jsonl")
	for off := 0; off <= len(data); off++ {
		if err := os.WriteFile(torn, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		tjs, err := OpenJobStore(torn)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		for _, snap := range tjs.snapshots() {
			// "job-000001" may legitimately reappear here: its delete
			// record can be beyond the tear. Its contents must still
			// match what the full journal recorded for it.
			want, ok := ref[snap.ID]
			if !ok && snap.ID == "job-000001" {
				want = refBeforeDelete(t, data)
			} else if !ok {
				t.Fatalf("offset %d: invented job %q", off, snap.ID)
			}
			if snap.State == "done" {
				if want.State != "done" {
					t.Fatalf("offset %d: job %s invented a finish", off, snap.ID)
				}
				if !reflect.DeepEqual(snap.Results, want.Results) {
					t.Fatalf("offset %d: job %s results diverge from the full journal", off, snap.ID)
				}
			}
			for i, c := range snap.Cells {
				if c.State != "pending" && !reflect.DeepEqual(c, want.Cells[i]) {
					t.Fatalf("offset %d: job %s cell %d invented state %+v", off, snap.ID, i, c)
				}
			}
		}
		// Whatever was torn, the survivor must accept appends cleanly.
		if err := tjs.append(journalRecord{Event: "submit", Job: "job-000999", Kind: "batch"}); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", off, err)
		}
		tjs.Close()
		rjs, err := OpenJobStore(torn)
		if err != nil {
			t.Fatalf("offset %d: reopen after append: %v", off, err)
		}
		if _, ok := findSnap(rjs.snapshots(), "job-000999"); !ok {
			t.Fatalf("offset %d: post-recovery append lost", off)
		}
		rjs.Close()
	}
}

// refBeforeDelete replays the full journal minus its delete records, for
// comparing truncations that tore the delete off.
func refBeforeDelete(t *testing.T, data []byte) *jobSnapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "nodelete.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range splitLines(data) {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err == nil && rec.Event == "delete" {
			continue
		}
		f.Write(line)
		f.Write([]byte("\n"))
	}
	f.Close()
	js := mustOpenJobStore(t, path)
	defer js.Close()
	snap, ok := findSnap(js.snapshots(), "job-000001")
	if !ok {
		t.Fatal("reference journal lost job-000001")
	}
	return snap
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func findSnap(snaps []*jobSnapshot, id string) (*jobSnapshot, bool) {
	for _, s := range snaps {
		if s.ID == id {
			return s, true
		}
	}
	return nil, false
}

// TestJobStoreCompaction drives the journal past the dead-record
// threshold and reopens it: the file must shrink to the live minimum
// while replaying to the identical job set.
func TestJobStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	js := mustOpenJobStore(t, path)
	// Submit + delete churn: every deleted job leaves 2 dead records.
	for i := 1; i <= campaign.CompactDeadThreshold; i++ {
		id := fmt.Sprintf("job-%06d", i)
		appendAll(t, js,
			journalRecord{Event: "submit", Job: id, Kind: "batch",
				Cells: []campaign.CellSpec{testutil.MiniSpec("vectoradd", uint64(i))}},
			journalRecord{Event: "delete", Job: id},
		)
	}
	appendAll(t, js, journalRecord{Event: "submit", Job: "job-999999", Kind: "batch",
		Cells: []campaign.CellSpec{testutil.MiniSpec("transpose", 1)}})
	before := js.Records()
	js.Close()

	js2 := mustOpenJobStore(t, path)
	defer js2.Close()
	if js2.Records() >= before {
		t.Fatalf("no compaction: %d records before, %d after", before, js2.Records())
	}
	if js2.Records() != 1 || js2.Len() != 1 {
		t.Fatalf("compacted to %d records / %d jobs, want 1 / 1", js2.Records(), js2.Len())
	}
	if _, ok := findSnap(js2.snapshots(), "job-999999"); !ok {
		t.Fatal("live job lost in compaction")
	}
	if js2.MaxSeq() != 999999 {
		t.Fatalf("MaxSeq %d after compaction", js2.MaxSeq())
	}
}

// TestJobStoreMaxSeq pins id-sequence restoration inputs, including ids
// that must not advance the sequence.
func TestJobStoreMaxSeq(t *testing.T) {
	cases := []struct {
		name string
		ids  []string
		want int
	}{
		{"empty", nil, 0},
		{"single batch", []string{"job-000007"}, 7},
		{"mixed prefixes share one sequence", []string{"job-000002", "exp-000011", "job-000005"}, 11},
		{"deleted ids still count", []string{"job-000009"}, 9},
		{"unparseable suffix ignored", []string{"job-abc", "weird"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.jsonl")
			js := mustOpenJobStore(t, path)
			for _, id := range tc.ids {
				appendAll(t, js, journalRecord{Event: "submit", Job: id, Kind: "batch"})
			}
			if tc.name == "deleted ids still count" {
				appendAll(t, js, journalRecord{Event: "delete", Job: tc.ids[0]})
			}
			js.Close()
			js2 := mustOpenJobStore(t, path)
			defer js2.Close()
			if got := js2.MaxSeq(); got != tc.want {
				t.Fatalf("MaxSeq = %d, want %d", got, tc.want)
			}
		})
	}
}
