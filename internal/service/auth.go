package service

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Multi-tenant API-key authentication. A fiserver started with
// -api-keys loads a static key file and rejects any control-plane
// request that does not present a known key as "Authorization: Bearer
// <key>"; without the flag the server stays the historical open
// single-tenant process, byte-compatible with every pre-tenancy client.
//
// The key file is line-oriented:
//
//	# comment
//	<key> <tenant> [weight=N] [max-jobs=N] [inj-rate=N]
//
// One key per line; several keys may name the same tenant (credential
// rotation) as long as their quota options agree. weight scales the
// tenant's fair share in the lease queue (default 1), max-jobs bounds
// its concurrently running jobs, and inj-rate bounds its admitted
// injections per second via a token bucket — both zero/absent meaning
// unlimited.

// Tenant is one tenant's identity and limits as declared by the key
// file.
type Tenant struct {
	// Name is the tenant id threaded through jobs, logs and metrics.
	Name string
	// Weight is the fair-share weight in the lease queue (>= 1).
	Weight int
	// MaxJobs bounds concurrently running jobs; 0 means unlimited.
	MaxJobs int
	// InjRate bounds admitted injections per second; 0 means unlimited.
	InjRate float64
}

// KeySet is a parsed key file: the authentication table plus the tenant
// directory.
type KeySet struct {
	keys    map[string]*Tenant
	tenants []*Tenant // declaration order, for deterministic iteration
}

// ParseKeys parses a key file. Every malformed line is an error — an
// operator typo must fail boot, not silently lock a tenant out.
func ParseKeys(r io.Reader) (*KeySet, error) {
	ks := &KeySet{keys: make(map[string]*Tenant)}
	byName := make(map[string]*Tenant)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("api keys: line %d: want <key> <tenant> [options]", lineNo)
		}
		key, name := fields[0], fields[1]
		if strings.Contains(key, "=") || strings.Contains(name, "=") {
			return nil, fmt.Errorf("api keys: line %d: key and tenant must precede options", lineNo)
		}
		if _, dup := ks.keys[key]; dup {
			return nil, fmt.Errorf("api keys: line %d: duplicate key", lineNo)
		}
		t := Tenant{Name: name, Weight: 1}
		for _, opt := range fields[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("api keys: line %d: bad option %q", lineNo, opt)
			}
			switch k {
			case "weight":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("api keys: line %d: bad weight %q", lineNo, v)
				}
				t.Weight = n
			case "max-jobs":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("api keys: line %d: bad max-jobs %q", lineNo, v)
				}
				t.MaxJobs = n
			case "inj-rate":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 {
					return nil, fmt.Errorf("api keys: line %d: bad inj-rate %q", lineNo, v)
				}
				t.InjRate = f
			default:
				return nil, fmt.Errorf("api keys: line %d: unknown option %q", lineNo, k)
			}
		}
		if prev, ok := byName[name]; ok {
			if *prev != t {
				return nil, fmt.Errorf("api keys: line %d: tenant %q declared with conflicting limits", lineNo, name)
			}
			ks.keys[key] = prev
			continue
		}
		tp := &t
		byName[name] = tp
		ks.keys[key] = tp
		ks.tenants = append(ks.tenants, tp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("api keys: %w", err)
	}
	if len(ks.keys) == 0 {
		return nil, fmt.Errorf("api keys: no keys defined")
	}
	return ks, nil
}

// LoadKeys parses the key file at path.
func LoadKeys(path string) (*KeySet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("api keys: %w", err)
	}
	defer f.Close()
	return ParseKeys(f)
}

// Tenants returns the declared tenants in declaration order.
func (ks *KeySet) Tenants() []*Tenant {
	out := make([]*Tenant, len(ks.tenants))
	copy(out, ks.tenants)
	return out
}

// Authenticate resolves an Authorization header to its tenant. Only the
// Bearer scheme is accepted; anything else — missing header, other
// scheme, unknown key — is a refusal.
func (ks *KeySet) Authenticate(authorization string) (*Tenant, bool) {
	scheme, key, ok := strings.Cut(strings.TrimSpace(authorization), " ")
	if !ok || !strings.EqualFold(scheme, "Bearer") {
		return nil, false
	}
	t, ok := ks.keys[strings.TrimSpace(key)]
	return t, ok
}

// SetAuth installs the key set: from now on every control-plane request
// must authenticate, is accounted to its tenant, and is subject to the
// tenant's quotas. Monitoring (/healthz, /metrics), the worker protocol
// (the fleet is operator infrastructure, not a tenant) and pprof stay
// open. Call before serving traffic; a nil KeySet keeps the server
// open.
func (s *Server) SetAuth(ks *KeySet) { s.auth = ks }

// authExempt lists the paths that stay open under -api-keys.
func authExempt(path string) bool {
	return path == "/healthz" || path == "/metrics" ||
		strings.HasPrefix(path, "/v1/workers/") ||
		strings.HasPrefix(path, "/debug/pprof")
}
