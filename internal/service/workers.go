package service

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/finject"
)

// maxLeaseWait caps how long a lease request may long-poll for work.
const maxLeaseWait = 30 * time.Second

// ServeWorkers mounts the pull-based worker protocol backed by q. The
// scheduler must be executing through a campaign.RemoteExecutor over the
// same queue, or no cells will ever appear here.
//
//	POST /v1/workers/lease               lease up to max cells (long-poll)
//	POST /v1/workers/{lease}/heartbeat   keep a lease alive
//	POST /v1/workers/{lease}/complete    deliver a result or an error
//
// Leases expire one TTL after their last heartbeat and re-queue their
// cell, so a dead worker never loses work; completions are idempotent and
// late completions from presumed-dead workers are accepted (determinism
// makes every completion of a cell interchangeable).
func (s *Server) ServeWorkers(q *campaign.LeaseQueue) {
	s.queue = q
	s.handle("POST /v1/workers/lease", s.handleWorkerLease)
	s.handle("POST /v1/workers/{lease}/heartbeat", s.handleWorkerHeartbeat)
	s.handle("POST /v1/workers/{lease}/complete", s.handleWorkerComplete)
}

// leaseRequest is the POST /v1/workers/lease body.
type leaseRequest struct {
	// Worker names the requester (for lease bookkeeping and error
	// messages); required.
	Worker string `json:"worker"`
	// Max bounds the cells granted at once (1 when 0); multi-cell grants
	// are cost-balanced shards of the backlog.
	Max int `json:"max"`
	// WaitMillis long-polls: the server holds the request up to this long
	// waiting for work before answering with an empty grant.
	WaitMillis int64 `json:"wait_ms"`
}

// leaseResponse is the lease grant; empty Leases means "no work yet".
type leaseResponse struct {
	Leases []campaign.Lease `json:"leases"`
}

// handleWorkerLease grants pending cells, long-polling when asked.
func (s *Server) handleWorkerLease(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		httpError(w, http.StatusNotFound, "remote workers not enabled")
		return
	}
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "worker name required")
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	// Lease expiry is lazy (swept inside queue calls), so an idle poll
	// still re-checks periodically — but the common wakeup is the
	// queue's own new-work signal, not the ticker.
	recheck := time.NewTicker(250 * time.Millisecond)
	defer recheck.Stop()
	for {
		wake := s.queue.Wake()
		leases := s.queue.Lease(req.Worker, req.Max)
		if len(leases) > 0 {
			writeJSON(w, http.StatusOK, leaseResponse{Leases: leases})
			return
		}
		select {
		case <-wake:
		case <-recheck.C:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, leaseResponse{Leases: nil})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleWorkerHeartbeat renews a lease; 410 tells the worker its lease is
// gone (expired and re-queued, or already completed) and further work on
// the cell is wasted.
func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		httpError(w, http.StatusNotFound, "remote workers not enabled")
		return
	}
	id := r.PathValue("lease")
	if !s.queue.Heartbeat(id) {
		httpError(w, http.StatusGone, "lease %q is no longer held", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"lease": id, "state": "held"})
}

// completeRequest is the POST /v1/workers/{lease}/complete body: exactly
// one of Result and Error.
type completeRequest struct {
	Result *finject.Result `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// handleWorkerComplete records a worker's answer for its leased cell.
func (s *Server) handleWorkerComplete(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		httpError(w, http.StatusNotFound, "remote workers not enabled")
		return
	}
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Result == nil && req.Error == "" {
		httpError(w, http.StatusBadRequest, "complete needs a result or an error")
		return
	}
	id := r.PathValue("lease")
	if err := s.queue.Complete(id, req.Result, req.Error); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"lease": id, "state": "completed"})
}
