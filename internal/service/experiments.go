package service

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/experiment"
	"repro/internal/telemetry"
)

// experimentEvent is one NDJSON line of the experiment stream.
type experimentEvent struct {
	Event     string `json:"event"` // "job", "cell", "error" or "result"
	ID        string `json:"id,omitempty"`
	Name      string `json:"name,omitempty"`
	Chip      string `json:"chip,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Structure string `json:"structure,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Error     string `json:"error,omitempty"`
	// Result carries the full experiment result on the final event.
	Result *experiment.Result `json:"result,omitempty"`
}

// handleExperiment runs one declarative experiment spec: the body is a
// versioned experiment.Spec (unknown fields rejected), the response is
// an NDJSON stream — a "job" event with the registered job id, one
// "cell" event per grid cell as the scheduler serves it, and a final
// "result" event carrying the full experiment result. The run is backed
// by the job store: its status, result and DELETE-cancel work through
// the /v1/jobs endpoints like any batch job, and the result is retained
// after the stream ends.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	spec, err := experiment.Parse(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan, err := spec.Compile()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	cells := make([]cellState, len(plan.Cells))
	specs := plan.CellSpecs()
	for i, cs := range specs {
		cells[i] = cellState{Spec: cs, State: "pending"}
	}
	tenant, tq := s.tenantOf(r)
	if !s.admitJob(w, tq, batchCost(specs)) {
		return
	}

	// The run dies with the connection (the stream is the delivery
	// channel) or with a DELETE on the job id; the finished result
	// outlives both in the job store.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if tq != nil {
			s.quota.release(tenant)
		}
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.running.Add(1)
	s.nextID++
	j := &job{
		id:        newJobID("exp", s.nextID),
		kind:      "experiment",
		cancel:    cancel,
		tenant:    tenant,
		quotaHeld: tq != nil,
		state:     "running",
		cells:     cells,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()
	telemetry.JobsSubmitted.With(tenantMetricLabel(tenant)).Inc()

	// Journal the normalized spec: replaying it through Parse + Compile on
	// recovery reproduces this exact plan (normalization is idempotent).
	rawSpec, _ := json.Marshal(plan.Spec)
	s.journal(journalRecord{Event: "submit", Job: j.id, Kind: "experiment", Tenant: tenant, Spec: rawSpec})

	ctx = telemetry.WithTenant(telemetry.WithJob(ctx, j.id), tenant)
	s.log.InfoContext(ctx, "experiment started", "name", plan.Spec.Name, "cells", len(plan.Cells))

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := newLockedEncoder(w, flusher)
	enc.emit(experimentEvent{Event: "job", ID: j.id, Name: plan.Spec.Name, Total: len(plan.Cells)})

	defer enc.close()
	s.runExperimentJob(ctx, cancel, j, plan, func(ev experimentEvent) { enc.emit(ev) })
}

// runExperimentJob drives one experiment job through the spec runner,
// journaling cell transitions and the terminal result. The emit hook
// (nil for detached runs, the NDJSON encoder for streamed ones) receives
// progress and the final result/error event. Shared between the
// streaming handler and restart recovery — determinism plus the warm
// campaign store make a recovered run byte-identical to an
// uninterrupted one.
func (s *Server) runExperimentJob(ctx context.Context, cancel context.CancelFunc, j *job, plan *experiment.Plan, emit func(experimentEvent)) {
	defer s.running.Done()
	defer cancel()
	if emit == nil {
		emit = func(experimentEvent) {}
	}
	runner := &experiment.Runner{
		Scheduler: s.sched,
		OnCell: func(p experiment.Progress) {
			j.mu.Lock()
			i := indexOfCell(p, plan)
			st := &j.cells[i]
			j.done++
			if p.Err != nil {
				st.State = "failed"
				st.Error = p.Err.Error()
			} else {
				st.State = "done"
				st.Cached = p.Cached
			}
			s.journal(journalRecord{
				Event: "cell", Job: j.id, Index: i,
				State: st.State, Cached: st.Cached, Error: st.Error,
			})
			j.mu.Unlock()
			if p.Err != nil {
				return
			}
			emit(experimentEvent{
				Event:     "cell",
				Chip:      p.Spec.Chip,
				Benchmark: p.Spec.Benchmark,
				Structure: p.Spec.Structure.String(),
				Cached:    p.Cached,
				Done:      p.Done,
				Total:     p.Total,
			})
		},
	}
	res, err := runner.RunPlan(ctx, plan)

	j.mu.Lock()
	switch {
	case err == nil:
		j.state = "done"
		j.expResult = res
	case ctx.Err() != nil:
		j.state = "canceled"
		j.errMsg = err.Error()
	default:
		j.state = "failed"
		j.errMsg = err.Error()
	}
	state, errMsg := j.state, j.errMsg
	j.mu.Unlock()
	s.settleJob(j)
	s.journalFinish(journalRecord{Event: "finish", Job: j.id, State: state, Error: errMsg, ExpResult: res})
	s.log.InfoContext(ctx, "experiment finished", "name", plan.Spec.Name, "state", state)

	if err != nil {
		emit(experimentEvent{Event: "error", ID: j.id, Error: err.Error()})
		return
	}
	emit(experimentEvent{Event: "result", ID: j.id, Name: plan.Spec.Name, Result: res})
}

// indexOfCell maps a runner progress event back to its flat cell-state
// index (the plan's scheduling order).
func indexOfCell(p experiment.Progress, plan *experiment.Plan) int {
	nChips := len(plan.Chips)
	nStructs := len(plan.Spec.Structures)
	return (p.Cell.BenchIndex*nChips+p.Cell.ChipIndex)*nStructs + p.Cell.StructIndex
}

// lockedEncoder serializes NDJSON emission from scheduler goroutines
// and guards against writes after the handler returned.
type lockedEncoder struct {
	mu      sync.Mutex
	enc     *json.Encoder
	flusher http.Flusher
	closed  bool
}

func newLockedEncoder(w http.ResponseWriter, flusher http.Flusher) *lockedEncoder {
	return &lockedEncoder{enc: json.NewEncoder(w), flusher: flusher}
}

func (e *lockedEncoder) emit(v any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.enc.Encode(v)
	if e.flusher != nil {
		e.flusher.Flush()
	}
}

func (e *lockedEncoder) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}
