package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/experiment"
	"repro/internal/finject"
	"repro/internal/telemetry"
)

// JobStore is the server's write-ahead job journal: one JSON record per
// line, appended and fsynced at every state transition, so the job table
// — submissions, per-cell progress and final results — survives a
// kill -9 of the process. It reuses the campaign.DiskStore machinery's
// shape: appends shadow earlier records, recovery replays the file, and
// Compact rewrites it to the live minimum with fsync + atomic rename.
//
// Durability contract: a record is either wholly in the journal or
// wholly absent after a crash. Recovery tolerates exactly one torn tail
// (a partially written final record, as a mid-write crash leaves) by
// truncating it; it never invents state that was not durably journaled.
type JobStore struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	records int // physical records in the file

	snaps  map[string]*jobSnapshot
	order  []string // job ids in submission order
	maxSeq int      // highest numeric id suffix ever journaled

	faultPoint string
	faultFired bool
}

// journalRecord is one JSON line of the job journal. Event selects which
// of the remaining fields are meaningful.
type journalRecord struct {
	Event string `json:"event"` // "submit", "cell", "finish" or "delete"
	Job   string `json:"job"`

	// Submit records carry the job's full definition: the raw submitted
	// cell specs and policy for batches, the normalized experiment spec
	// for experiments. Recovery replays them through the same validation
	// and compilation path as a fresh submission.
	Kind   string              `json:"kind,omitempty"`
	Tenant string              `json:"tenant,omitempty"`
	Cells  []campaign.CellSpec `json:"cells,omitempty"`
	Policy *jobPolicy          `json:"policy,omitempty"`
	Spec   json.RawMessage     `json:"spec,omitempty"`

	// Cell records journal one per-cell state transition, including the
	// result so a finished batch job serves /result from the journal
	// alone after a restart.
	Index      int             `json:"index,omitempty"`
	State      string          `json:"state,omitempty"` // cell state, or the final job state on finish records
	Cached     bool            `json:"cached,omitempty"`
	Injections int             `json:"injections,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     *finject.Result `json:"result,omitempty"`

	// Finish records carry the experiment's assembled result.
	ExpResult *experiment.Result `json:"exp_result,omitempty"`
}

// jobSnapshot is one job as reconstructed from the journal. State stays
// "" for a job that was still running when the previous process died —
// the recovery path resumes it through the scheduler.
type jobSnapshot struct {
	ID        string
	Kind      string
	Tenant    string
	RawCells  []campaign.CellSpec
	Policy    *jobPolicy
	Spec      json.RawMessage
	Cells     []cellState
	Results   []*finject.Result
	State     string
	ErrMsg    string
	ExpResult *experiment.Result
}

// Crash barriers the chaos harness injects via JobStore.SetFaultPoint
// (wired to the FISERVER_CRASH environment variable by cmd/fiserver;
// test-only). At each barrier the process delivers SIGKILL to itself —
// the genuine crash the restart-proof guarantee is tested against: no
// deferred cleanup, no flushes, no graceful drain.
const (
	// CrashPostSubmit kills the process right after a submit record is
	// durably journaled (the client may never see the job id).
	CrashPostSubmit = "post-submit"
	// CrashMidCell kills the process right after the first cell record
	// is durably journaled (the campaign is demonstrably underway).
	CrashMidCell = "mid-cell"
	// CrashPreFinish kills the process after every cell has been
	// journaled but before the finish record is written.
	CrashPreFinish = "pre-finish"
	// CrashTornCell kills the process half-way through writing a cell
	// record, leaving a genuinely torn journal tail on disk.
	CrashTornCell = "torn-cell"
)

// SetFaultPoint arms a crash barrier (one of the Crash* constants). The
// barrier fires once. Test-only: production servers never set it.
func (js *JobStore) SetFaultPoint(p string) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.faultPoint = p
}

// fireLocked reports whether the armed barrier p should trip now, at
// most once per process. Callers hold js.mu.
func (js *JobStore) fireLocked(p string) bool {
	if js.faultPoint != p || js.faultFired {
		return false
	}
	js.faultFired = true
	return true
}

// killSelf delivers SIGKILL to the current process and never returns.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // SIGKILL delivery is asynchronous; block until it lands
}

// OpenJobStore opens (creating if absent) the journal at path and
// replays it. A torn final record — the signature of a crash mid-write —
// is truncated away so subsequent appends land on a clean line boundary;
// any other malformed line is an error, not a guess.
func OpenJobStore(path string) (*JobStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open job store: %w", err)
	}
	js := &JobStore{path: path, f: f, snaps: make(map[string]*jobSnapshot)}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("service: job store %s: %w", path, err)
	}
	good := 0 // byte offset just past the last fully applied record
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // unterminated tail: torn write
		}
		line := rest[:nl]
		if len(bytes.TrimSpace(line)) > 0 {
			// A newline-terminated record was fully written (the newline
			// is its last byte), so a parse failure here is corruption,
			// not a torn write — refuse to guess.
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				f.Close()
				return nil, fmt.Errorf("service: job store %s: corrupt record at offset %d: %w", path, good, err)
			}
			js.applyLocked(rec)
			js.records++
		}
		good += nl + 1
		rest = rest[nl+1:]
	}
	if good < len(data) {
		// Drop the torn tail so the next append starts a clean line.
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("service: job store %s: truncate torn tail: %w", path, err)
		}
		telemetry.JobJournalTornTails.Inc()
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: job store %s: %w", path, err)
	}
	if js.records-js.liveRecordsLocked() > campaign.CompactDeadThreshold {
		if err := js.Compact(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return js, nil
}

// applyLocked folds one record into the snapshot table. Semantically
// invalid records (unknown job, out-of-range index) are skipped: the
// journal never invents state. Callers hold js.mu (or own js
// exclusively, as OpenJobStore does).
func (js *JobStore) applyLocked(rec journalRecord) {
	js.noteSeqLocked(rec.Job)
	switch rec.Event {
	case "submit":
		snap := &jobSnapshot{
			ID:       rec.Job,
			Kind:     rec.Kind,
			Tenant:   rec.Tenant,
			RawCells: rec.Cells,
			Policy:   rec.Policy,
			Spec:     rec.Spec,
			Cells:    make([]cellState, len(rec.Cells)),
			Results:  make([]*finject.Result, len(rec.Cells)),
		}
		for i, cs := range rec.Cells {
			snap.Cells[i] = cellState{Spec: cs.Normalize(), State: "pending"}
		}
		if _, ok := js.snaps[rec.Job]; !ok {
			js.order = append(js.order, rec.Job)
		}
		js.snaps[rec.Job] = snap
	case "cell":
		snap := js.snaps[rec.Job]
		if snap == nil || rec.Index < 0 || rec.Index >= len(snap.Cells) {
			return
		}
		snap.Cells[rec.Index] = cellState{
			Spec:       snap.Cells[rec.Index].Spec,
			State:      rec.State,
			Cached:     rec.Cached,
			Injections: rec.Injections,
			Error:      rec.Error,
		}
		snap.Results[rec.Index] = rec.Result
	case "finish":
		snap := js.snaps[rec.Job]
		if snap == nil {
			return
		}
		snap.State = rec.State
		snap.ErrMsg = rec.Error
		snap.ExpResult = rec.ExpResult
	case "delete":
		if _, ok := js.snaps[rec.Job]; !ok {
			return
		}
		delete(js.snaps, rec.Job)
		for i, id := range js.order {
			if id == rec.Job {
				js.order = append(js.order[:i], js.order[i+1:]...)
				break
			}
		}
	}
}

// noteSeqLocked records the numeric suffix of a journaled job id so the
// id sequence resumes past every id ever minted — deleted ones included.
func (js *JobStore) noteSeqLocked(id string) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil || n <= js.maxSeq {
		return
	}
	js.maxSeq = n
}

// MaxSeq returns the highest numeric id suffix seen in the journal; the
// server restores its id counter past it so ids never collide across
// restarts.
func (js *JobStore) MaxSeq() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.maxSeq
}

// snapshots returns the replayed jobs in submission order.
func (js *JobStore) snapshots() []*jobSnapshot {
	js.mu.Lock()
	defer js.mu.Unlock()
	out := make([]*jobSnapshot, 0, len(js.order))
	for _, id := range js.order {
		out = append(out, js.snaps[id])
	}
	return out
}

// append journals one record durably: marshal, write, fsync. The write
// is a single write(2) of record+newline, so a crash leaves the record
// wholly present or wholly absent — except under the injected torn-cell
// barrier, which deliberately crashes half-way through the write.
func (js *JobStore) append(rec journalRecord) error {
	js.mu.Lock()
	defer js.mu.Unlock()
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: job store append: %w", err)
	}
	buf = append(buf, '\n')
	if rec.Event == "cell" && js.fireLocked(CrashTornCell) {
		js.f.Write(buf[:len(buf)/2])
		js.f.Sync()
		killSelf()
	}
	if _, err := js.f.Write(buf); err != nil {
		return fmt.Errorf("service: job store append: %w", err)
	}
	if err := js.f.Sync(); err != nil {
		return fmt.Errorf("service: job store append: %w", err)
	}
	js.records++
	js.applyLocked(rec)
	telemetry.JobJournalAppends.Inc()
	switch {
	case rec.Event == "submit" && js.fireLocked(CrashPostSubmit):
		killSelf()
	case rec.Event == "cell" && js.fireLocked(CrashMidCell):
		killSelf()
	}
	return nil
}

// appendFinish journals a job's terminal state. The pre-finish crash
// barrier sits here: every cell durably journaled, the finish record
// not — recovery must reassemble the result with zero re-injections.
func (js *JobStore) appendFinish(rec journalRecord) error {
	js.mu.Lock()
	fire := js.fireLocked(CrashPreFinish)
	js.mu.Unlock()
	if fire {
		killSelf()
	}
	return js.append(rec)
}

// liveRecordsLocked counts the records a compacted journal would hold:
// per retained job, one submit, one record per settled cell and one
// finish record if the job is finished. Callers hold js.mu (or own js
// exclusively).
func (js *JobStore) liveRecordsLocked() int {
	n := 0
	for _, snap := range js.snaps {
		n++
		for _, c := range snap.Cells {
			if c.State != "pending" {
				n++
			}
		}
		if snap.State != "" {
			n++
		}
	}
	return n
}

// Records reports the physical record count of the backing file.
func (js *JobStore) Records() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.records
}

// Len reports the number of retained jobs in the journal.
func (js *JobStore) Len() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return len(js.snaps)
}

// Path returns the backing file's path.
func (js *JobStore) Path() string { return js.path }

// Compact rewrites the journal down to the live minimum — one submit
// record, the settled cell records and the finish record per retained
// job — through a temporary sibling that is fsynced and atomically
// renamed over the journal, exactly like campaign.DiskStore.Compact: a
// crash at any point leaves either the old complete file or the new one.
func (js *JobStore) Compact() error {
	js.mu.Lock()
	defer js.mu.Unlock()
	tmpPath := js.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: compact job store: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	written := 0
	for _, id := range js.order {
		snap := js.snaps[id]
		recs := []journalRecord{{
			Event: "submit", Job: id, Kind: snap.Kind, Tenant: snap.Tenant,
			Cells: snap.RawCells, Policy: snap.Policy, Spec: snap.Spec,
		}}
		for i, c := range snap.Cells {
			if c.State == "pending" {
				continue
			}
			recs = append(recs, journalRecord{
				Event: "cell", Job: id, Index: i, State: c.State,
				Cached: c.Cached, Injections: c.Injections, Error: c.Error,
				Result: snap.Results[i],
			})
		}
		if snap.State != "" {
			recs = append(recs, journalRecord{
				Event: "finish", Job: id, State: snap.State,
				Error: snap.ErrMsg, ExpResult: snap.ExpResult,
			})
		}
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				tmp.Close()
				return fmt.Errorf("service: compact job store: %w", err)
			}
			written++
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: compact job store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: compact job store: %w", err)
	}
	if err := os.Rename(tmpPath, js.path); err != nil {
		return fmt.Errorf("service: compact job store: %w", err)
	}
	f, err := os.OpenFile(js.path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: compact job store: reopen: %w", err)
	}
	js.f.Close()
	js.f = f
	js.records = written
	telemetry.JobJournalCompactions.Inc()
	return nil
}

// Close flushes and closes the journal. The store must not be used
// afterwards.
func (js *JobStore) Close() error {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.f.Close()
}
