// Package service implements the fiserver HTTP API: asynchronous
// campaign-batch jobs (submit / status / result / cancel), streamed
// whole-figure experiments, and scheduler statistics — all JSON over
// net/http, sharing one campaign.Scheduler so every client benefits from
// every other client's finished cells.
//
// Endpoints:
//
//	POST   /v1/jobs              submit a batch of cells; returns {id}
//	GET    /v1/jobs              list retained jobs, oldest first
//	GET    /v1/jobs/{id}         job status with per-cell states
//	GET    /v1/jobs/{id}/result  results (409 until the job is done)
//	DELETE /v1/jobs/{id}         cancel a running job, or delete a
//	                             finished one from the retained set
//	POST   /v1/experiments       run a declarative experiment spec,
//	                             streaming NDJSON progress + result
//	GET    /v1/figure            run Fig. 1/2/3, streaming NDJSON progress
//	                             (deprecated: a shim over the spec runner;
//	                             new clients POST the figure spec to
//	                             /v1/experiments instead)
//	GET    /v1/stats             scheduler counters and store size
//	GET    /healthz              liveness probe
//
// With ServeWorkers enabled the server also speaks the pull-based remote
// worker protocol (see workers.go), distributing cells to a fiworker
// fleet under expiring leases instead of simulating them in-process.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/finject"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// maxRetainedJobs bounds the finished jobs kept for result retrieval;
// the oldest finished jobs are evicted first.
const maxRetainedJobs = 256

// Server is the fiserver request handler. Create one with NewServer and
// mount it as an http.Handler. ServeWorkers adds the remote-worker lease
// protocol; Shutdown drains in-flight jobs.
type Server struct {
	sched *campaign.Scheduler
	mux   *http.ServeMux
	queue *campaign.LeaseQueue // non-nil once ServeWorkers ran
	log   *slog.Logger

	// auth, when non-nil, turns on multi-tenant mode: every control-plane
	// request must carry a known API key (see auth.go) and is accounted
	// and quota-checked under its tenant. quota tracks per-tenant usage
	// regardless (it is inert while auth is nil).
	auth  *KeySet
	quota *quotaTable

	// jstore, when non-nil, write-ahead journals every job transition so
	// the job table survives restart (see UseJobStore). Lock ordering:
	// jstore's mutex is strictly innermost — appends may happen while
	// holding s.mu or a job's mu, never the other way around.
	jstore *JobStore

	mu          sync.Mutex
	nextID      int
	jobs        map[string]*job
	order       []string // job ids in submission order, for eviction
	maxRetained int      // finished-job retention bound (maxRetainedJobs)
	closed      bool     // Shutdown called; no new jobs
	running     sync.WaitGroup
}

// job tracks one submitted batch or one streamed experiment run.
type job struct {
	id     string
	kind   string // "batch" or "experiment"
	cancel context.CancelFunc
	// tenant is the submitting tenant ("" on open servers); in
	// multi-tenant mode other tenants cannot see this job. quotaHeld
	// marks a reserved max-jobs slot, returned once when the job settles.
	tenant    string
	quotaHeld bool

	mu      sync.Mutex
	state   string // "running", "done", "failed", "canceled"
	done    int
	cells   []cellState
	results []*finject.Result
	// expResult is the finished experiment's result (kind "experiment").
	expResult *experiment.Result
	errMsg    string
}

// newJobID mints a job id; experiments and batches share one sequence
// but carry distinct prefixes so operators can tell them apart.
func newJobID(prefix string, n int) string {
	return fmt.Sprintf("%s-%06d", prefix, n)
}

// cellState is the per-cell view inside a job status.
type cellState struct {
	Spec   campaign.CellSpec `json:"spec"`
	State  string            `json:"state"` // "pending", "done", "failed"
	Cached bool              `json:"cached"`
	// Injections is the realized sample size; under an adaptive policy
	// it can stop below the cell's cap.
	Injections int    `json:"injections,omitempty"`
	Error      string `json:"error,omitempty"`
}

// jobPolicy is the wire form of the execution policy applied to every
// cell of a submitted batch: the engine's versioned Config. The field
// names match the historical ad-hoc policy block (margin, confidence,
// max_injections, checkpoint), so journals and clients written against
// it keep parsing; worker counts remain server-owned — the scheduler
// overwrites them per cell regardless of what a submitter sends. A nil
// checkpoint means each cell's own setting; the cell seed always comes
// from the spec, never the policy block.
type jobPolicy = finject.Config

// NewServer builds a Server around the scheduler.
func NewServer(sched *campaign.Scheduler) *Server {
	s := &Server{
		sched:       sched,
		mux:         http.NewServeMux(),
		jobs:        make(map[string]*job),
		maxRetained: maxRetainedJobs,
		quota:       newQuotaTable(),
		log:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	s.handle("POST /v1/jobs", s.handleSubmit)
	s.handle("GET /v1/jobs", s.handleJobs)
	s.handle("GET /v1/jobs/{id}", s.handleStatus)
	s.handle("GET /v1/jobs/{id}/result", s.handleResult)
	s.handle("DELETE /v1/jobs/{id}", s.handleCancel)
	s.handle("POST /v1/experiments", s.handleExperiment)
	s.handle("GET /v1/figure", s.handleFigure)
	s.handle("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", telemetry.Handler())
	s.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// handle registers a route with per-route request/latency metrics. The
// pattern doubles as the metric label, so cardinality is fixed at
// registration time and path parameters like {id} never explode it.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, telemetry.InstrumentHandler(pattern, h))
}

// SetLogger replaces the server's structured logger (a discarding logger
// by default, keeping embedded and test servers quiet).
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
	}
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ on the server's
// own mux — opt-in via fiserver's -pprof flag, never on by default.
func (s *Server) EnablePprof() { telemetry.RegisterPprof(s.mux) }

// ServeHTTP implements http.Handler. With a key set installed it is
// also the authentication gate: the resolved tenant rides the request
// context into handlers, logs and — over the lease wire — worker-side
// correlation.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.auth != nil && !authExempt(r.URL.Path) {
		t, ok := s.auth.Authenticate(r.Header.Get("Authorization"))
		if !ok {
			telemetry.HTTPAuthFailures.Inc()
			httpError(w, http.StatusUnauthorized, "missing or unknown API key")
			return
		}
		telemetry.HTTPTenantRequests.With(t.Name).Inc()
		r = r.WithContext(telemetry.WithTenant(r.Context(), t.Name))
	}
	s.mux.ServeHTTP(w, r)
}

// tenantOf resolves the authenticated tenant of a request ("" and nil
// on open servers, where no tenant accounting applies).
func (s *Server) tenantOf(r *http.Request) (string, *Tenant) {
	if s.auth == nil {
		return "", nil
	}
	t, ok := s.auth.Authenticate(r.Header.Get("Authorization"))
	if !ok {
		return "", nil
	}
	return t.Name, t
}

// admitJob runs quota admission for a submission of cost normalized
// injections, answering 429 (and counting the rejection) itself when
// the tenant is over a limit. The returned cleanup releases the
// reserved job slot; callers hand it to the job so settling releases
// exactly once.
func (s *Server) admitJob(w http.ResponseWriter, t *Tenant, cost int64) bool {
	if t == nil {
		return true
	}
	if err := s.quota.admit(t, cost); err != nil {
		telemetry.JobsQuotaRejected.With(t.Name).Inc()
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return false
	}
	return true
}

// settleJob releases a job's quota slot, exactly once.
func (s *Server) settleJob(j *job) {
	j.mu.Lock()
	held := j.quotaHeld
	j.quotaHeld = false
	j.mu.Unlock()
	if held {
		s.quota.release(j.tenant)
	}
}

// writeJSON writes one JSON response with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// errorBody is the unified /v1 error envelope. Every non-2xx JSON
// answer — jobs, experiments, figures and the worker protocol — has the
// shape {"error":{"code","message","job_id"}}: a stable machine-readable
// code derived from the status, the human-readable message, and the job
// the error concerns when one exists. Streamed NDJSON error *events*
// keep their own flat shape; this envelope covers request/response
// errors only.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	JobID   string `json:"job_id,omitempty"`
}

// errorCode maps a status code onto the envelope's stable slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "gone"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusTooManyRequests:
		return "quota_exceeded"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "error"
	}
}

// httpError writes the error envelope with no job attribution.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	httpJobError(w, code, "", format, args...)
}

// httpJobError writes the error envelope for an error concerning jobID
// (empty when the request never resolved to a job).
func httpJobError(w http.ResponseWriter, code int, jobID, format string, args ...any) {
	writeJSON(w, code, map[string]errorBody{"error": {
		Code:    errorCode(code),
		Message: fmt.Sprintf(format, args...),
		JobID:   jobID,
	}})
}

// journal appends one record to the job journal, if one is attached.
// Journal failures are logged, never fatal: a server whose disk fills
// keeps serving from memory exactly as an unjournaled one would.
func (s *Server) journal(rec journalRecord) {
	if s.jstore == nil {
		return
	}
	if err := s.jstore.append(rec); err != nil {
		s.log.Warn("job journal append failed", "job", rec.Job, "event", rec.Event, "err", err)
	}
}

// journalFinish appends a job's terminal record (the pre-finish crash
// barrier lives on this path).
func (s *Server) journalFinish(rec journalRecord) {
	if s.jstore == nil {
		return
	}
	if err := s.jstore.appendFinish(rec); err != nil {
		s.log.Warn("job journal append failed", "job", rec.Job, "event", rec.Event, "err", err)
	}
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Cells []campaign.CellSpec `json:"cells"`
	// Policy, when present, applies to every cell of the batch.
	Policy *jobPolicy `json:"policy,omitempty"`
}

// handleSubmit validates the batch, registers a job and runs it
// asynchronously.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if p := req.Policy; p != nil {
		// Same legality rules as the figure endpoint's query parameters;
		// zero values mean "default", so only genuinely out-of-range
		// policies are rejected. Normalize owns the rules (and the exact
		// error text, which is part of the API).
		norm, err := p.Normalize()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		*p = norm
	}
	batch, cells, err := buildBatch(req.Cells, req.Policy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant, tq := s.tenantOf(r)
	if !s.admitJob(w, tq, batchCost(req.Cells)) {
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		if tq != nil {
			s.quota.release(tenant)
		}
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.running.Add(1)
	s.nextID++
	j := &job{
		id:        newJobID("job", s.nextID),
		kind:      "batch",
		cancel:    cancel,
		tenant:    tenant,
		quotaHeld: tq != nil,
		state:     "running",
		cells:     cells,
		results:   make([]*finject.Result, len(batch)),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()
	telemetry.JobsSubmitted.With(tenantMetricLabel(tenant)).Inc()

	// The submit record goes down before the job goroutine can journal
	// its first cell, so replay always sees a job before its transitions.
	s.journal(journalRecord{
		Event: "submit", Job: j.id, Kind: "batch", Tenant: tenant,
		Cells: req.Cells, Policy: req.Policy,
	})

	// The job id and tenant ride the context from here through the
	// scheduler and — on the remote tier — across the lease wire into
	// worker logs and fair-share accounting.
	jctx := telemetry.WithTenant(telemetry.WithJob(ctx, j.id), tenant)
	s.log.InfoContext(jctx, "job submitted", "kind", "batch", "cells", len(batch))

	go s.runBatchJob(jctx, cancel, j, batch)

	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "total": len(batch)})
}

// buildBatch compiles submitted cell specs (plus an optional batch-wide
// policy override) into runnable campaigns and their initial cell
// states. Shared by submission and restart recovery, so a recovered job
// re-runs through exactly the validation and policy path it was
// submitted under.
func buildBatch(specs []campaign.CellSpec, policy *jobPolicy) ([]finject.Campaign, []cellState, error) {
	batch := make([]finject.Campaign, len(specs))
	cells := make([]cellState, len(specs))
	for i, spec := range specs {
		c, err := spec.Campaign()
		if err != nil {
			return nil, nil, fmt.Errorf("cell %d: %v", i, err)
		}
		if policy != nil {
			// The batch policy replaces each cell's stopping rule but keeps
			// the cell's own checkpoint knob unless the policy sets one; a
			// seed in the policy block is ignored — cell identity always
			// comes from the spec.
			c.Policy = policy.Policy(c.Policy.Checkpoint)
		}
		batch[i] = c
		cells[i] = cellState{Spec: campaign.SpecOf(c), State: "pending"}
	}
	return batch, cells, nil
}

// batchCost sums a submission's normalized injection caps — the
// admission weight the inj-rate quota charges.
func batchCost(specs []campaign.CellSpec) int64 {
	var cost int64
	for _, s := range specs {
		cost += int64(s.Normalize().Injections)
	}
	return cost
}

// tenantMetricLabel maps the empty tenant to the documented label value
// for per-tenant metric families on open servers.
func tenantMetricLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// runBatchJob drives one batch job through the scheduler, journaling
// every cell transition and the terminal state. It is the shared engine
// behind fresh submissions and restart recovery: because campaigns are
// deterministic functions of their specs, re-driving a recovered job
// through the same path yields byte-identical results, with
// already-journaled cells answered from the warm campaign store.
func (s *Server) runBatchJob(ctx context.Context, cancel context.CancelFunc, j *job, batch []finject.Campaign) {
	// Release the context's resources once the batch settles; DELETE
	// uses the same cancel to abort early and Shutdown drains on the
	// same WaitGroup.
	defer s.running.Done()
	defer cancel()
	results, err := s.sched.RunBatch(ctx, batch, func(i int, res *finject.Result, cached bool, cellErr error) {
		j.mu.Lock()
		defer j.mu.Unlock()
		j.done++
		if cellErr != nil {
			j.cells[i].State = "failed"
			j.cells[i].Error = cellErr.Error()
			s.log.WarnContext(ctx, "cell failed", "spec", j.cells[i].Spec, "err", cellErr)
		} else {
			j.cells[i].State = "done"
			j.cells[i].Cached = cached
			j.cells[i].Injections = res.Injections
			s.log.DebugContext(ctx, "cell done",
				"spec", j.cells[i].Spec, "cached", cached, "injections", res.Injections)
		}
		s.journal(journalRecord{
			Event: "cell", Job: j.id, Index: i,
			State: j.cells[i].State, Cached: j.cells[i].Cached,
			Injections: j.cells[i].Injections, Error: j.cells[i].Error,
			Result: res,
		})
	})
	j.mu.Lock()
	j.results = results
	switch {
	case err == nil:
		j.state = "done"
	case ctx.Err() != nil:
		j.state = "canceled"
		j.errMsg = err.Error()
	default:
		j.state = "failed"
		j.errMsg = err.Error()
	}
	state, errMsg, done := j.state, j.errMsg, j.done
	j.mu.Unlock()
	s.settleJob(j)
	s.journalFinish(journalRecord{Event: "finish", Job: j.id, State: state, Error: errMsg})
	s.log.InfoContext(ctx, "job finished", "state", state, "done", done, "error", errMsg)
}

// evictLocked drops the oldest finished jobs beyond the retention bound,
// journaling each eviction so a restarted server retains the same set.
// Callers hold s.mu.
func (s *Server) evictLocked() {
	for i := 0; len(s.jobs) > s.maxRetained && i < len(s.order); {
		id := s.order[i]
		j := s.jobs[id]
		if j == nil {
			s.order = append(s.order[:i], s.order[i+1:]...)
			continue
		}
		j.mu.Lock()
		finished := j.state != "running"
		j.mu.Unlock()
		if !finished {
			i++
			continue
		}
		delete(s.jobs, id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		s.journal(journalRecord{Event: "delete", Job: id})
	}
}

// jobByID resolves the {id} path value, scoped to the requesting
// tenant: in multi-tenant mode another tenant's job answers the same
// 404 as a job that never existed, so job ids leak nothing across
// tenants. Jobs journaled before tenancy (tenant "") stay visible to
// everyone.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j != nil && !s.tenantSees(r, j) {
		j = nil
	}
	if j == nil {
		httpJobError(w, http.StatusNotFound, r.PathValue("id"), "unknown job %q", r.PathValue("id"))
	}
	return j
}

// tenantSees reports whether the request's tenant may observe j.
func (s *Server) tenantSees(r *http.Request, j *job) bool {
	if s.auth == nil || j.tenant == "" {
		return true
	}
	tenant, _ := s.tenantOf(r)
	return tenant == j.tenant
}

// handleStatus reports a job's progress.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	body := map[string]any{
		"id":    j.id,
		"kind":  j.kind,
		"state": j.state,
		"done":  j.done,
		"total": len(j.cells),
		"cells": j.cells,
		"error": j.errMsg,
	}
	if j.tenant != "" {
		body["tenant"] = j.tenant
	}
	writeJSON(w, http.StatusOK, body)
}

// jobResultRow pairs a cell spec with its result.
type jobResultRow struct {
	Spec   campaign.CellSpec `json:"spec"`
	Result *finject.Result   `json:"result"`
}

// handleResult returns the full results once the job is done.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == "running" {
		httpJobError(w, http.StatusConflict, j.id, "job %s still running (%d/%d cells)", j.id, j.done, len(j.cells))
		return
	}
	if j.state != "done" {
		httpJobError(w, http.StatusConflict, j.id, "job %s %s: %s", j.id, j.state, j.errMsg)
		return
	}
	if j.kind == "experiment" {
		writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "result": j.expResult})
		return
	}
	rows := make([]jobResultRow, len(j.cells))
	for i := range j.cells {
		rows[i] = jobResultRow{Spec: j.cells[i].Spec, Result: j.results[i]}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "cells": rows})
}

// jobSummary is one row of the GET /v1/jobs listing.
type jobSummary struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Tenant string `json:"tenant,omitempty"`
}

// handleJobs lists the retained jobs, oldest first — the discovery
// surface clients use to find their jobs again after a server restart.
// In multi-tenant mode each tenant sees only its own jobs (plus any
// pre-tenancy jobs with no owner).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && s.tenantSees(r, j) {
			js = append(js, j)
		}
	}
	s.mu.Unlock()
	rows := make([]jobSummary, len(js))
	for i, j := range js {
		j.mu.Lock()
		rows[i] = jobSummary{ID: j.id, Kind: j.kind, State: j.state, Done: j.done, Total: len(j.cells), Tenant: j.tenant}
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": rows})
}

// handleCancel implements DELETE /v1/jobs/{id}. The semantics are
// state-dependent and pinned by TestDeleteJobSemantics:
//
//   - running job: request cancellation, answer {"state":"canceling"};
//     the job settles as "canceled" and stays retrievable until deleted.
//   - finished job ("done", "failed", "canceled"): remove it from the
//     retained set, answer {"state":"deleted"}; subsequent requests 404.
//   - unknown id (never submitted, already deleted or evicted): 404.
//
// Removal happens under s.mu — the same lock evictLocked runs under —
// so a DELETE can never race eviction into a double-removal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	if j != nil && !s.tenantSees(r, j) {
		j = nil
	}
	if j == nil {
		s.mu.Unlock()
		httpJobError(w, http.StatusNotFound, id, "unknown job %q", id)
		return
	}
	j.mu.Lock()
	finished := j.state != "running"
	j.mu.Unlock()
	if !finished {
		s.mu.Unlock()
		j.cancel()
		writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "state": "canceling"})
		return
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.journal(journalRecord{Event: "delete", Job: id})
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "deleted"})
}

// Shutdown stops accepting new jobs, cancels the in-flight ones and
// waits for their goroutines to settle, up to ctx's deadline. It is the
// drain step between http.Server.Shutdown and process exit: without it,
// job goroutines keep simulating into a torn-down process.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for _, j := range s.jobs {
		j.cancel()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.running.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleStats reports scheduler counters, store size and (with remote
// workers enabled) lease-queue state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	body := map[string]any{
		"hits":        st.Hits,
		"runs":        st.Runs,
		"joins":       st.Joins,
		"golden_runs": st.GoldenRuns,
		"injections":  st.Injections,
		"upgrades":    st.Upgrades,
		"store_cells": s.sched.Store().Len(),
	}
	if s.queue != nil {
		body["workers"] = s.queue.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}

// figureOptions parses the shared figure query parameters.
func figureOptions(r *http.Request, sched *campaign.Scheduler) (core.Options, error) {
	opts := core.Options{Scheduler: sched}
	q := r.URL.Query()
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return opts, fmt.Errorf("bad n %q", v)
		}
		opts.Injections = n
	}
	if v := q.Get("margin"); v != "" {
		m, err := strconv.ParseFloat(v, 64)
		if err != nil || m < 0 || m >= 1 {
			return opts, fmt.Errorf("bad margin %q", v)
		}
		opts.Margin = m
	}
	if v := q.Get("confidence"); v != "" {
		cl, err := strconv.ParseFloat(v, 64)
		if err != nil || cl <= 0 || cl >= 1 {
			return opts, fmt.Errorf("bad confidence %q", v)
		}
		opts.Confidence = cl
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("bad seed %q", v)
		}
		opts.Seed = seed
	}
	if v := q.Get("chips"); v != "" {
		for _, name := range strings.Split(v, ",") {
			c, err := chips.ByName(strings.TrimSpace(name))
			if err != nil {
				return opts, err
			}
			opts.Chips = append(opts.Chips, c)
		}
	}
	if v := q.Get("bench"); v != "" {
		for _, name := range strings.Split(v, ",") {
			b, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return opts, err
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	return opts, nil
}

// figureEvent is one NDJSON line of the figure stream.
type figureEvent struct {
	Event     string `json:"event"` // "cell" or "result"
	Chip      string `json:"chip,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Structure string `json:"structure,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Fig       string `json:"fig,omitempty"`
	Figure    any    `json:"figure,omitempty"`
	Error     string `json:"error,omitempty"`
}

// handleFigure runs one of the paper's figures through the shared
// scheduler, streaming per-cell progress as NDJSON lines followed by one
// final result event. Query: fig=1|2|3 plus n, seed, chips, bench and
// stream=0 to suppress progress lines.
//
// Deprecated: the endpoint is a backward-compatibility shim — the core
// figure drivers it calls compile their options into experiment specs
// and run through the spec runner, so its output is byte-identical to
// the pre-redesign path (see TestFigureEndpointCompat) while new
// clients POST the equivalent spec to /v1/experiments.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	figNum := 0
	switch r.URL.Query().Get("fig") {
	case "1":
		figNum = 1
	case "2":
		figNum = 2
	case "3":
		figNum = 3
	default:
		httpError(w, http.StatusBadRequest, "fig must be 1, 2 or 3")
		return
	}
	opts, err := figureOptions(r, s.sched)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	stream := r.URL.Query().Get("stream") != "0"

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// emitMu also guards closed: once the handler returns, a late
	// scheduler notification must not touch the recycled ResponseWriter.
	var (
		emitMu sync.Mutex
		closed bool
	)
	emit := func(ev figureEvent) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if closed {
			return
		}
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	defer func() {
		emitMu.Lock()
		closed = true
		emitMu.Unlock()
	}()

	if stream {
		// This figure's exact work list: progress is restricted to these
		// keys (the scheduler is shared, so other requests' cells also
		// notify) and each unique cell counts once even though prewarm
		// batches and per-cell assembly both touch the scheduler.
		specs, err := core.FigureCells(figNum, opts)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		total := 0
		pending := make(map[campaign.CellKey]bool, len(specs))
		for _, spec := range specs {
			if !pending[spec.Key()] {
				pending[spec.Key()] = true
				total++
			}
		}
		var seenMu sync.Mutex
		done := 0
		unsub := s.sched.Subscribe(func(p campaign.Progress) {
			seenMu.Lock()
			if !pending[p.Key] {
				seenMu.Unlock()
				return
			}
			delete(pending, p.Key)
			done++
			d := done
			seenMu.Unlock()
			emit(figureEvent{
				Event:     "cell",
				Chip:      p.Spec.Chip,
				Benchmark: p.Spec.Benchmark,
				Structure: p.Spec.Structure.String(),
				Cached:    p.Cached,
				Done:      d,
				Total:     total,
			})
		})
		defer unsub()
	}

	// Figure runs are not registered jobs, but they still get a job
	// correlation id so their cells are greppable across the fleet.
	s.mu.Lock()
	s.nextID++
	figID := newJobID("fig", s.nextID)
	s.mu.Unlock()
	ctx := telemetry.WithJob(r.Context(), figID)
	s.log.InfoContext(ctx, "figure run", "fig", figNum)
	var result any
	switch figNum {
	case 1:
		result, err = core.FigureRegisterFileContext(ctx, opts)
	case 2:
		result, err = core.FigureLocalMemoryContext(ctx, opts)
	case 3:
		result, err = core.FigureEPFContext(ctx, opts)
	}
	if err != nil {
		s.log.WarnContext(ctx, "figure failed", "fig", figNum, "err", err)
		emit(figureEvent{Event: "error", Error: err.Error()})
		return
	}
	s.log.InfoContext(ctx, "figure done", "fig", figNum)
	emit(figureEvent{Event: "result", Fig: strconv.Itoa(figNum), Figure: result})
}
