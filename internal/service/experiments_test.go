package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/experiment"
	"repro/internal/gpu"
)

func miniExperimentSpec() experiment.Spec {
	return experiment.Spec{
		Name:       "mini-exp",
		Chips:      []string{"Mini NVIDIA"},
		Benchmarks: []string{"vectoradd", "transpose"},
		Structures: []gpu.Structure{gpu.RegisterFile},
		Injections: 20,
		Seed:       3,
	}
}

// TestExperimentEndpoint drives POST /v1/experiments through the shared
// Go client: streamed job + cell + result events, job-store backing for
// status and late result retrieval, and strict spec rejection.
func TestExperimentEndpoint(t *testing.T) {
	srv, sched := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := &client.Client{Base: ts.URL}
	ctx := context.Background()

	var events []client.Event
	res, err := cl.RunExperiment(ctx, miniExperimentSpec(), func(ev client.Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 { // job + 2 cells + result
		t.Fatalf("events: %d (%+v), want 4", len(events), events)
	}
	if events[0].Event != "job" || !strings.HasPrefix(events[0].ID, "exp-") || events[0].Total != 2 {
		t.Fatalf("first event %+v", events[0])
	}
	for _, ev := range events[1:3] {
		if ev.Event != "cell" || ev.Structure != "register-file" || ev.Total != 2 {
			t.Fatalf("cell event %+v", ev)
		}
	}
	last := events[len(events)-1]
	if last.Event != "result" || last.Name != "mini-exp" {
		t.Fatalf("final event %+v", last)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Cells) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	if res.Spec.Version != experiment.Version || res.Spec.Injections != 20 {
		t.Fatalf("result spec not normalized: %+v", res.Spec)
	}

	// Job-store backing: status and the result survive the stream.
	jobID := events[0].ID
	st, err := cl.Status(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "experiment" || st.State != "done" || st.Done != 2 || st.Total != 2 {
		t.Fatalf("status %+v", st)
	}
	stored, err := cl.ExperimentResult(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(stored)
	if string(a) != string(b) {
		t.Fatalf("stored result differs from streamed result:\n%s\nvs\n%s", a, b)
	}

	// The run went through the shared scheduler: a second identical
	// spec is served entirely from cache.
	runs := sched.Stats().Runs
	if _, err := cl.RunExperiment(ctx, miniExperimentSpec(), nil); err != nil {
		t.Fatal(err)
	}
	if got := sched.Stats().Runs; got != runs {
		t.Fatalf("warm rerun executed %d campaigns", got-runs)
	}
}

func TestExperimentEndpointRejects(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := &client.Client{Base: ts.URL}
	ctx := context.Background()

	// Unknown chip.
	bad := miniExperimentSpec()
	bad.Chips = []string{"GeForce 9999"}
	if _, err := cl.RunExperiment(ctx, bad, nil); client.StatusCode(err) != 400 {
		t.Fatalf("bad chip: err %v, want 400", err)
	}

	// Unknown field (strict decode): raw POST, since the typed client
	// cannot produce one.
	resp, err := ts.Client().Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(`{"version":1,"injctions":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// Unsupported version.
	v2 := miniExperimentSpec()
	v2.Version = 99
	if _, err := cl.RunExperiment(ctx, v2, nil); client.StatusCode(err) != 400 {
		t.Fatalf("v99 spec: err %v, want 400", err)
	}
}

// TestExperimentProtectionOverHTTP runs the redesign's flagship new
// scenario — a protection what-if sweep — end to end over the wire.
func TestExperimentProtectionOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := &client.Client{Base: ts.URL}

	spec := experiment.Spec{
		Name:       "protection-sweep",
		Chips:      []string{"Mini NVIDIA"},
		Benchmarks: []string{"matrixMul"},
		Structures: []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory},
		Estimator:  experiment.EstimatorFI,
		Injections: 40,
		Seed:       31,
		Metrics: experiment.Metrics{
			EPF: true,
			Protection: []experiment.Protection{
				{Name: "unprotected"},
				{Name: "secded-all", Schemes: []experiment.ProtectionScheme{
					{Structure: gpu.RegisterFile, Scheme: "secded"},
					{Structure: gpu.LocalMemory, Scheme: "secded"},
				}},
			},
		},
	}
	res, err := cl.RunExperiment(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.EPF == nil || len(res.Protection) != 2 {
		t.Fatalf("result: EPF %v, %d protection rows", res.EPF != nil, len(res.Protection))
	}
	for _, row := range res.Protection {
		if row.Config == "secded-all" && (row.SDCFIT != 0 || row.DUEFIT != 0) {
			t.Fatalf("secded-all left failures: %+v", row)
		}
	}
}
