package service

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/finject"
	"repro/internal/telemetry"
)

// RecoveryStats summarizes one boot-time journal recovery.
type RecoveryStats struct {
	// Restored is the number of jobs rebuilt from the journal, finished
	// and unfinished alike.
	Restored int
	// Resumed is the subset that was still unfinished when the previous
	// process died and is now re-driven through the scheduler.
	Resumed int
}

// resumedJob is one rebuilt unfinished job, ready to re-run: its job is
// already registered (cancel wired) and run drives it to completion.
type resumedJob struct {
	j   *job
	run func()
}

// UseJobStore attaches the write-ahead job journal to the server and
// recovers its contents: every journal transition from here on is
// durable, the id sequence continues past the highest journaled id, and
// the journaled jobs come back —
//
//   - finished jobs are restored in place, so GET /v1/jobs/{id} and
//     /result answer exactly as before the restart, with zero
//     re-execution;
//   - unfinished jobs (submitted, possibly partially run, never
//     finished) are resumed: re-driven through the same scheduler path
//     as a fresh submission. Cells that completed before the crash were
//     journaled into the campaign store, so they come back as cache
//     hits with zero re-injections; only genuinely unfinished cells
//     execute. Determinism makes the final result byte-identical to an
//     uninterrupted run.
//
// A journaled submission that no longer validates (say, a chip renamed
// between versions) is restored as a failed job carrying the error —
// recovery never invents results and never drops a job silently.
//
// Call it once, after NewServer and before serving traffic.
func (s *Server) UseJobStore(js *JobStore) (RecoveryStats, error) {
	var stats RecoveryStats
	s.mu.Lock()
	if s.jstore != nil {
		s.mu.Unlock()
		return stats, fmt.Errorf("service: job store already attached")
	}
	s.jstore = js
	if seq := js.MaxSeq(); seq > s.nextID {
		s.nextID = seq
	}
	s.mu.Unlock()

	var resumes []resumedJob
	for _, snap := range js.snapshots() {
		telemetry.JobsRecovered.Inc()
		stats.Restored++
		if snap.State != "" {
			// Finished before the crash: restore the terminal record as-is.
			done := 0
			for _, c := range snap.Cells {
				if c.State != "pending" {
					done++
				}
			}
			s.registerRecovered(&job{
				id: snap.ID, kind: snap.Kind, tenant: snap.Tenant, cancel: func() {},
				state: snap.State, done: done, cells: snap.Cells,
				results: snap.Results, expResult: snap.ExpResult,
				errMsg: snap.ErrMsg,
			})
			continue
		}
		// Unfinished: rebuild the run from the journaled submission and
		// re-drive it. Progress resets to pending — the journal's partial
		// cell records were only hints; the truth comes back from the
		// warm campaign store as the cells re-resolve.
		var r resumedJob
		var err error
		switch snap.Kind {
		case "experiment":
			r, err = s.resumeExperiment(snap)
		default:
			r, err = s.resumeBatch(snap)
		}
		if err != nil {
			j := &job{
				id: snap.ID, kind: snap.Kind, tenant: snap.Tenant, cancel: func() {},
				state: "failed", cells: snap.Cells,
				errMsg: fmt.Sprintf("recovery: %v", err),
			}
			s.registerRecovered(j)
			s.journal(journalRecord{Event: "finish", Job: j.id, State: "failed", Error: j.errMsg})
			s.log.Warn("job recovery failed", "job", j.id, "err", err)
			continue
		}
		telemetry.JobsResumed.Inc()
		stats.Resumed++
		resumes = append(resumes, r)
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()

	for _, r := range resumes {
		s.running.Add(1)
		s.log.Info("job resumed after restart", "job", r.j.id, "kind", r.j.kind)
		go r.run()
	}
	return stats, nil
}

// registerRecovered inserts a rebuilt job into the in-memory table.
func (s *Server) registerRecovered(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.id]; ok {
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

// resumeBatch rebuilds an unfinished batch job from its journaled raw
// submission, through the same buildBatch path a fresh POST takes.
func (s *Server) resumeBatch(snap *jobSnapshot) (resumedJob, error) {
	batch, cells, err := buildBatch(snap.RawCells, snap.Policy)
	if err != nil {
		return resumedJob{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id: snap.ID, kind: "batch", tenant: snap.Tenant, state: "running", cancel: cancel,
		cells: cells, results: make([]*finject.Result, len(batch)),
	}
	s.reacquireQuota(j)
	s.registerRecovered(j)
	jctx := telemetry.WithTenant(telemetry.WithJob(ctx, j.id), j.tenant)
	return resumedJob{j: j, run: func() {
		s.runBatchJob(jctx, cancel, j, batch)
	}}, nil
}

// reacquireQuota re-takes a resumed job's max-jobs slot without
// admission checks: its original submission already passed the quota,
// and recovery must never bounce a journaled job off a limit.
func (s *Server) reacquireQuota(j *job) {
	if j.tenant == "" {
		return
	}
	s.quota.reacquire(j.tenant)
	j.quotaHeld = true
}

// resumeExperiment rebuilds an unfinished experiment job from its
// journaled normalized spec, ready to re-run detached (there is no
// stream left to feed — the result lands in the job table, where the
// client polls for it).
func (s *Server) resumeExperiment(snap *jobSnapshot) (resumedJob, error) {
	spec, err := experiment.Parse(bytes.NewReader(snap.Spec))
	if err != nil {
		return resumedJob{}, err
	}
	plan, err := spec.Compile()
	if err != nil {
		return resumedJob{}, err
	}
	cells := make([]cellState, len(plan.Cells))
	for i, cs := range plan.CellSpecs() {
		cells[i] = cellState{Spec: cs, State: "pending"}
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: snap.ID, kind: "experiment", tenant: snap.Tenant, state: "running", cancel: cancel, cells: cells}
	s.reacquireQuota(j)
	s.registerRecovered(j)
	jctx := telemetry.WithTenant(telemetry.WithJob(ctx, j.id), j.tenant)
	return resumedJob{j: j, run: func() {
		s.runExperimentJob(jctx, cancel, j, plan, nil)
	}}, nil
}
