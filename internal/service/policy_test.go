package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/testutil"
)

// awaitJob polls a job until it leaves "running" and returns its final
// status document.
func awaitJob(t *testing.T, ts *httptest.Server, id string) (status struct {
	State string      `json:"state"`
	Cells []cellState `json:"cells"`
}) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if testutil.GetJSON(t, ts.URL, "/v1/jobs/"+id, &status) != http.StatusOK {
			t.Fatal("status not OK")
		}
		if status.State != "running" {
			return status
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobPolicyAdaptive submits a batch under an adaptive policy and
// checks that the realized injection counts stop below the cap, that the
// per-cell status reports them, and that the scheduler stats surface the
// injection totals and upgrades.
func TestJobPolicyAdaptive(t *testing.T) {
	srv, sched := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const cap = 800
	spec := testutil.MiniSpec("vectoradd", 3)
	spec.Injections = cap

	var submitted struct {
		ID string `json:"id"`
	}
	req := map[string]any{
		"cells":  []campaign.CellSpec{spec},
		"policy": map[string]any{"margin": 0.1, "confidence": 0.99},
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", req, &submitted, http.StatusAccepted)
	status := awaitJob(t, ts, submitted.ID)
	if status.State != "done" {
		t.Fatalf("final status %+v", status)
	}
	realized := status.Cells[0].Injections
	if realized <= 0 || realized >= cap {
		t.Fatalf("cell realized %d injections, want adaptive stop below cap %d", realized, cap)
	}

	// The same cell submitted fixed-size must upgrade the cached result.
	req = map[string]any{"cells": []campaign.CellSpec{spec}}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", req, &submitted, http.StatusAccepted)
	status = awaitJob(t, ts, submitted.ID)
	if status.State != "done" {
		t.Fatalf("final status %+v", status)
	}
	if got := status.Cells[0].Injections; got != cap {
		t.Fatalf("fixed-size resubmit realized %d injections, want the cap %d", got, cap)
	}
	if st := sched.Stats(); st.Upgrades != 1 || st.Runs != 2 {
		t.Fatalf("scheduler stats %+v, want one upgrade over two runs", st)
	}

	var stats struct {
		Injections int64 `json:"injections"`
		Upgrades   int64 `json:"upgrades"`
	}
	if testutil.GetJSON(t, ts.URL, "/v1/stats", &stats) != http.StatusOK {
		t.Fatal("stats not OK")
	}
	if stats.Injections != int64(realized+cap) || stats.Upgrades != 1 {
		t.Fatalf("stats %+v, want %d injections and 1 upgrade", stats, realized+cap)
	}
}

// TestJobPolicyMaxInjections: the wire policy's max_injections overrides
// each cell's cap (and therefore its identity).
func TestJobPolicyMaxInjections(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := testutil.MiniSpec("vectoradd", 4)
	spec.Injections = 500
	var submitted struct {
		ID string `json:"id"`
	}
	req := map[string]any{
		"cells":  []campaign.CellSpec{spec},
		"policy": map[string]any{"max_injections": 30},
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", req, &submitted, http.StatusAccepted)
	status := awaitJob(t, ts, submitted.ID)
	if status.State != "done" {
		t.Fatalf("final status %+v", status)
	}
	if got := status.Cells[0].Spec.Injections; got != 30 {
		t.Fatalf("normalized spec cap %d, want the policy override 30", got)
	}
	if got := status.Cells[0].Injections; got != 30 {
		t.Fatalf("realized %d injections, want 30", got)
	}
}

// TestJobPolicyValidation: out-of-range policies are rejected up front,
// matching the figure endpoint's rules.
func TestJobPolicyValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, policy := range []map[string]any{
		{"margin": 5},
		{"margin": -0.1},
		{"confidence": 1.5},
		{"confidence": -1},
		{"max_injections": -2},
	} {
		req := map[string]any{"cells": []campaign.CellSpec{testutil.MiniSpec("vectoradd", 9)}, "policy": policy}
		testutil.PostJSON(t, ts.URL, "/v1/jobs", req, nil, http.StatusBadRequest)
	}
}

// TestFigureAdaptiveQuery drives a figure run with margin/confidence
// query parameters.
func TestFigureAdaptiveQuery(t *testing.T) {
	srv, sched := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var last map[string]any
	code := testutil.GetJSON(t, ts.URL, "/v1/figure?fig=1&n=600&margin=0.1&chips=Mini+NVIDIA&bench=vectoradd&stream=0", &last)
	if code != http.StatusOK {
		t.Fatalf("figure status %d", code)
	}
	st := sched.Stats()
	if st.Runs != 1 {
		t.Fatalf("stats %+v, want one campaign", st)
	}
	if st.Injections <= 0 || st.Injections >= 600 {
		t.Fatalf("figure campaign executed %d injections, want adaptive stop below 600", st.Injections)
	}

	if testutil.GetJSON(t, ts.URL, "/v1/figure?fig=1&margin=2", nil) != http.StatusBadRequest {
		t.Fatal("bad margin accepted")
	}
	if testutil.GetJSON(t, ts.URL, "/v1/figure?fig=1&confidence=0", nil) != http.StatusBadRequest {
		t.Fatal("bad confidence accepted")
	}
}
