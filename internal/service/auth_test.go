package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/testutil"
)

func TestParseKeys(t *testing.T) {
	ks, err := ParseKeys(strings.NewReader(`
# operator comment
key-acme-1  acme  weight=3 max-jobs=2 inj-rate=500
key-acme-2  acme  weight=3 max-jobs=2 inj-rate=500
key-beta    beta
`))
	if err != nil {
		t.Fatal(err)
	}
	tenants := ks.Tenants()
	if len(tenants) != 2 || tenants[0].Name != "acme" || tenants[1].Name != "beta" {
		t.Fatalf("tenants %+v", tenants)
	}
	if tenants[0].Weight != 3 || tenants[0].MaxJobs != 2 || tenants[0].InjRate != 500 {
		t.Fatalf("acme limits %+v", tenants[0])
	}
	if tenants[1].Weight != 1 || tenants[1].MaxJobs != 0 || tenants[1].InjRate != 0 {
		t.Fatalf("beta defaults %+v", tenants[1])
	}
	// Both acme keys resolve to the same tenant record.
	a1, ok1 := ks.Authenticate("Bearer key-acme-1")
	a2, ok2 := ks.Authenticate("bearer key-acme-2")
	if !ok1 || !ok2 || a1 != a2 {
		t.Fatalf("rotated keys resolve differently: %v %v", a1, a2)
	}
	for _, bad := range []string{"", "key-acme-1", "Basic key-acme-1", "Bearer nope", "Bearer"} {
		if _, ok := ks.Authenticate(bad); ok {
			t.Fatalf("header %q authenticated", bad)
		}
	}
}

func TestParseKeysRejectsMalformedFiles(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"comments only":     "# nothing\n\n",
		"one field":         "lonely-key\n",
		"duplicate key":     "k1 acme\nk1 beta\n",
		"conflicting limit": "k1 acme max-jobs=1\nk2 acme max-jobs=2\n",
		"bad option":        "k1 acme shape=round\n",
		"bad weight":        "k1 acme weight=0\n",
		"bad rate":          "k1 acme inj-rate=-1\n",
		"option first":      "weight=2 acme\n",
	}
	for name, body := range cases {
		if _, err := ParseKeys(strings.NewReader(body)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// authedServer builds a two-tenant test server: acme with tight quotas,
// beta unlimited.
func authedServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewServer(campaign.New(campaign.Config{}))
	ks, err := ParseKeys(strings.NewReader(
		"key-acme acme max-jobs=1 inj-rate=100\nkey-beta beta\n"))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAuth(ks)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// authedDo performs one JSON request with a bearer key and decodes the
// response body.
func authedDo(t *testing.T, ts *httptest.Server, method, path, key string, body io.Reader, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("decode %s %s: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func submitBody(t *testing.T, n int) io.Reader {
	t.Helper()
	cells := make([]campaign.CellSpec, n)
	for i := range cells {
		cells[i] = testutil.MiniSpec("vectoradd", uint64(100+i))
	}
	b, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(b))
}

func TestAuthRejectsUnknownKeys(t *testing.T) {
	ts, _ := authedServer(t)
	var envelope struct {
		Error errorBody `json:"error"`
	}
	if code := authedDo(t, ts, "GET", "/v1/jobs", "", nil, &envelope); code != http.StatusUnauthorized {
		t.Fatalf("missing key: status %d", code)
	}
	if envelope.Error.Code != "unauthorized" {
		t.Fatalf("envelope %+v", envelope)
	}
	if code := authedDo(t, ts, "GET", "/v1/jobs", "stolen", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unknown key: status %d", code)
	}
	// Monitoring stays open: liveness and metrics need no key.
	if code := authedDo(t, ts, "GET", "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz behind auth: status %d", code)
	}
	if code := authedDo(t, ts, "GET", "/metrics", "", nil, nil); code != http.StatusOK {
		t.Fatalf("metrics behind auth: status %d", code)
	}
}

func TestTenantIsolation(t *testing.T) {
	ts, _ := authedServer(t)
	var submitted struct {
		ID string `json:"id"`
	}
	if code := authedDo(t, ts, "POST", "/v1/jobs", "key-beta", submitBody(t, 1), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitSettledAs(t, ts, submitted.ID, "key-beta")

	// The owner sees its job, with the tenant attributed.
	var status struct {
		Tenant string `json:"tenant"`
	}
	if code := authedDo(t, ts, "GET", "/v1/jobs/"+submitted.ID, "key-beta", nil, &status); code != http.StatusOK {
		t.Fatalf("owner status: %d", code)
	}
	if status.Tenant != "beta" {
		t.Fatalf("status tenant %q", status.Tenant)
	}
	// Another tenant gets the same 404 as for a job that never existed,
	// on status, result, list and delete alike.
	for _, path := range []string{"/v1/jobs/" + submitted.ID, "/v1/jobs/" + submitted.ID + "/result"} {
		if code := authedDo(t, ts, "GET", path, "key-acme", nil, nil); code != http.StatusNotFound {
			t.Fatalf("cross-tenant GET %s: status %d", path, code)
		}
	}
	if code := authedDo(t, ts, "DELETE", "/v1/jobs/"+submitted.ID, "key-acme", nil, nil); code != http.StatusNotFound {
		t.Fatalf("cross-tenant DELETE: status %d", code)
	}
	var listing struct {
		Jobs []jobSummary `json:"jobs"`
	}
	if code := authedDo(t, ts, "GET", "/v1/jobs", "key-acme", nil, &listing); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(listing.Jobs) != 0 {
		t.Fatalf("acme sees beta's jobs: %+v", listing.Jobs)
	}
	if code := authedDo(t, ts, "GET", "/v1/jobs", "key-beta", nil, &listing); code != http.StatusOK || len(listing.Jobs) != 1 || listing.Jobs[0].Tenant != "beta" {
		t.Fatalf("owner list: %+v", listing.Jobs)
	}
}

// waitSettledAs polls a job until it leaves "running".
func waitSettledAs(t *testing.T, ts *httptest.Server, id, key string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var status struct {
			State string `json:"state"`
		}
		if code := authedDo(t, ts, "GET", "/v1/jobs/"+id, key, nil, &status); code != http.StatusOK {
			t.Fatalf("status: %d", code)
		}
		if status.State != "running" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job stuck")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQuotaMaxJobs(t *testing.T) {
	srv := NewServer(campaign.New(campaign.Config{}))
	ks, err := ParseKeys(strings.NewReader("key-acme acme max-jobs=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAuth(ks)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Pin the quota slot directly: with the single slot held, a submit
	// must bounce with the 429 envelope; released, it must admit.
	acme := ks.Tenants()[0]
	if err := srv.quota.admit(acme, 0); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error errorBody `json:"error"`
	}
	if code := authedDo(t, ts, "POST", "/v1/jobs", "key-acme", submitBody(t, 1), &envelope); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d", code)
	}
	if envelope.Error.Code != "quota_exceeded" {
		t.Fatalf("envelope %+v", envelope)
	}
	srv.quota.release("acme")

	var submitted struct {
		ID string `json:"id"`
	}
	if code := authedDo(t, ts, "POST", "/v1/jobs", "key-acme", submitBody(t, 1), &submitted); code != http.StatusAccepted {
		t.Fatalf("post-release submit: status %d", code)
	}
	waitSettledAs(t, ts, submitted.ID, "key-acme")
	// The settled job returned its slot: another submission admits.
	if code := authedDo(t, ts, "POST", "/v1/jobs", "key-acme", submitBody(t, 1), &submitted); code != http.StatusAccepted {
		t.Fatalf("slot not released on settle: status %d", code)
	}
	waitSettledAs(t, ts, submitted.ID, "key-acme")
}

func TestQuotaInjectionRate(t *testing.T) {
	q := newQuotaTable()
	clock := time.Unix(0, 0)
	q.now = func() time.Time { return clock }
	ten := &Tenant{Name: "acme", Weight: 1, InjRate: 100}

	// First submission admits on an empty bucket and charges its cost.
	if err := q.admit(ten, 250); err != nil {
		t.Fatal(err)
	}
	q.release("acme")
	// Still in debt: the next submission bounces.
	if err := q.admit(ten, 10); err == nil {
		t.Fatal("admitted while in rate debt")
	}
	// 2.5 seconds pays off 250 injections of debt at 100/s.
	clock = clock.Add(2500 * time.Millisecond)
	if err := q.admit(ten, 10); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
}

// FuzzAPIKeys hammers the key-file parser and the Authorization header
// path with adversarial input: whatever the bytes, parsing must never
// panic, a parsed key set must uphold its invariants, and
// authentication must be exact — every declared key resolves, nothing
// else does.
func FuzzAPIKeys(f *testing.F) {
	f.Add("key tenant\n", "Bearer key")
	f.Add("# comment\nk1 acme weight=2 max-jobs=3 inj-rate=5.5\nk2 acme weight=2 max-jobs=3 inj-rate=5.5\n", "bearer k2")
	f.Add("k1 a\nk1 b\n", "Basic k1")
	f.Add("weight=1 t\n", "")
	f.Add("k t weight=\n", "Bearer\tk")
	f.Fuzz(func(t *testing.T, file, header string) {
		ks, err := ParseKeys(strings.NewReader(file))
		if err != nil {
			return
		}
		tenants := ks.Tenants()
		if len(tenants) == 0 {
			t.Fatal("parsed key set with no tenants")
		}
		seen := map[string]bool{}
		for _, ten := range tenants {
			if ten.Name == "" || ten.Weight < 1 || ten.MaxJobs < 0 || ten.InjRate < 0 {
				t.Fatalf("invalid tenant %+v", ten)
			}
			if seen[ten.Name] {
				t.Fatalf("tenant %q listed twice", ten.Name)
			}
			seen[ten.Name] = true
		}
		// Every declared key authenticates to its declared tenant.
		for key, want := range ks.keys {
			got, ok := ks.Authenticate("Bearer " + key)
			if !ok || got != want {
				t.Fatalf("declared key %q did not authenticate to %v", key, want)
			}
		}
		// Arbitrary headers never panic and never mint a tenant outside
		// the table.
		if ten, ok := ks.Authenticate(header); ok && !seen[ten.Name] {
			t.Fatalf("header %q authenticated unknown tenant %+v", header, ten)
		}
	})
}
