package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/testutil"
)

// persistentServer is one "process generation" of a journaled fiserver:
// a scheduler over a shared on-disk campaign store plus a job journal.
type persistentServer struct {
	srv   *Server
	sched *campaign.Scheduler
	ts    *httptest.Server
	store *campaign.DiskStore
	js    *JobStore
	rec   RecoveryStats
}

// bootPersistent opens (or reopens) the campaign store and job journal
// in dir and boots a server over them, running recovery — the in-process
// equivalent of restarting fiserver with -store and -job-store.
func bootPersistent(t *testing.T, dir string) *persistentServer {
	t.Helper()
	store, err := campaign.OpenDiskStore(filepath.Join(dir, "cells.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	js, err := OpenJobStore(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	sched := campaign.New(campaign.Config{Store: store})
	srv := NewServer(sched)
	rec, err := srv.UseJobStore(js)
	if err != nil {
		t.Fatal(err)
	}
	p := &persistentServer{srv: srv, sched: sched, ts: httptest.NewServer(srv), store: store, js: js, rec: rec}
	t.Cleanup(p.stop)
	return p
}

// stop tears the generation down (idempotent), closing both files so the
// next generation can reopen them.
func (p *persistentServer) stop() {
	if p.ts == nil {
		return
	}
	p.ts.Close()
	p.js.Close()
	p.store.Close()
	p.ts = nil
}

// submitAndWait submits a one-cell batch and waits for it, returning the
// job id.
func submitAndWait(t *testing.T, base string, spec campaign.CellSpec) string {
	t.Helper()
	var submitted struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, base, "/v1/jobs", map[string]any{"cells": []campaign.CellSpec{spec}}, &submitted, http.StatusAccepted)
	testutil.WaitForJob(t, base, submitted.ID)
	return submitted.ID
}

// rawResult fetches /v1/jobs/{id}/result as raw bytes for byte-identity
// comparisons.
func rawResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDeleteJobSemantics pins the state-dependent DELETE /v1/jobs/{id}
// contract, including the finished-job path that used to race eviction.
func TestDeleteJobSemantics(t *testing.T) {
	cases := []struct {
		name string
		// prepare boots a server and returns its base URL plus a job id
		// in the state under test.
		prepare func(t *testing.T) (base, id string)
		// first DELETE: expected status and body state.
		wantCode  int
		wantState string
		// whether a follow-up DELETE (after the job settles) must first
		// answer "deleted" and only then 404.
		deletable bool
	}{
		{
			name: "unknown job",
			prepare: func(t *testing.T) (string, string) {
				srv, _ := newTestServer(t)
				ts := httptest.NewServer(srv)
				t.Cleanup(ts.Close)
				return ts.URL, "job-999999"
			},
			wantCode: http.StatusNotFound,
		},
		{
			name: "finished job",
			prepare: func(t *testing.T) (string, string) {
				srv, _ := newTestServer(t)
				ts := httptest.NewServer(srv)
				t.Cleanup(ts.Close)
				return ts.URL, submitAndWait(t, ts.URL, testutil.MiniSpec("vectoradd", 21))
			},
			wantCode:  http.StatusOK,
			wantState: "deleted",
		},
		{
			name: "running job",
			prepare: func(t *testing.T) (string, string) {
				// A remote-executor server with no workers attached: the
				// job blocks on the lease queue until canceled, so it is
				// deterministically running at the DELETE.
				q := campaign.NewLeaseQueue(time.Second)
				sched := campaign.New(campaign.Config{Executor: campaign.NewRemoteExecutor(q), Workers: 8})
				srv := NewServer(sched)
				srv.ServeWorkers(q)
				ts := httptest.NewServer(srv)
				t.Cleanup(ts.Close)
				var submitted struct {
					ID string `json:"id"`
				}
				testutil.PostJSON(t, ts.URL, "/v1/jobs",
					map[string]any{"cells": []campaign.CellSpec{testutil.MiniSpec("vectoradd", 22)}},
					&submitted, http.StatusAccepted)
				return ts.URL, submitted.ID
			},
			wantCode:  http.StatusOK,
			wantState: "canceling",
			deletable: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, id := tc.prepare(t)

			var body struct {
				State string `json:"state"`
			}
			if code := testutil.DeleteJSON(t, base, "/v1/jobs/"+id, &body); code != tc.wantCode {
				t.Fatalf("first DELETE: status %d, want %d", code, tc.wantCode)
			}
			if tc.wantState != "" && body.State != tc.wantState {
				t.Fatalf("first DELETE: state %q, want %q", body.State, tc.wantState)
			}
			if tc.wantCode == http.StatusNotFound {
				return
			}
			if tc.deletable {
				// A canceled job settles as finished-and-retained: the next
				// DELETE removes it.
				if state := testutil.WaitForJobState(t, base, id); state != "canceled" {
					t.Fatalf("after cancel: state %q, want canceled", state)
				}
				var del struct {
					State string `json:"state"`
				}
				if code := testutil.DeleteJSON(t, base, "/v1/jobs/"+id, &del); code != http.StatusOK || del.State != "deleted" {
					t.Fatalf("DELETE of canceled job: %d %q", code, del.State)
				}
			}
			// Deleted means gone: status and repeat deletes both 404.
			if code := testutil.GetJSON(t, base, "/v1/jobs/"+id, nil); code != http.StatusNotFound {
				t.Fatalf("GET after delete: status %d, want 404", code)
			}
			if code := testutil.DeleteJSON(t, base, "/v1/jobs/"+id, nil); code != http.StatusNotFound {
				t.Fatalf("second DELETE: status %d, want 404", code)
			}
		})
	}
}

// TestRestartRestoresFinishedJobs is the warm half of the restart story:
// finished jobs come back byte-identical from the journal alone, with
// zero scheduler activity.
func TestRestartRestoresFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	gen1 := bootPersistent(t, dir)
	id := submitAndWait(t, gen1.ts.URL, testutil.MiniSpec("vectoradd", 31))
	want := rawResult(t, gen1.ts.URL, id)
	runs1 := gen1.sched.Stats().Runs
	gen1.stop()

	gen2 := bootPersistent(t, dir)
	if gen2.rec.Restored != 1 || gen2.rec.Resumed != 0 {
		t.Fatalf("recovery stats %+v, want 1 restored / 0 resumed", gen2.rec)
	}
	got := rawResult(t, gen2.ts.URL, id)
	if string(got) != string(want) {
		t.Fatalf("restored result differs:\nbefore: %s\nafter:  %s", want, got)
	}
	var status struct {
		State string `json:"state"`
		Done  int    `json:"done"`
	}
	if code := testutil.GetJSON(t, gen2.ts.URL, "/v1/jobs/"+id, &status); code != http.StatusOK {
		t.Fatalf("status after restart: %d", code)
	}
	if status.State != "done" || status.Done != 1 {
		t.Fatalf("status after restart: %+v", status)
	}
	if runs := gen2.sched.Stats().Runs; runs != 0 {
		t.Fatalf("restoring finished jobs executed %d cells (gen1 ran %d)", runs, runs1)
	}
}

// TestRestartResumesUnfinishedJob is the crash half: a journaled job
// with no finish record re-runs on boot; its already-completed cell is
// served from the warm campaign store (a cache hit, zero re-injections)
// and only the genuinely unfinished cell executes.
func TestRestartResumesUnfinishedJob(t *testing.T) {
	dir := t.TempDir()
	gen1 := bootPersistent(t, dir)
	// Complete one cell so its result is in the warm campaign store.
	warm := testutil.MiniSpec("vectoradd", 41)
	submitAndWait(t, gen1.ts.URL, warm)
	// Forge the crash: a submitted-but-never-finished job over the warm
	// cell plus a cold one, exactly what a kill -9 after the submit
	// record leaves behind.
	cold := testutil.MiniSpec("transpose", 42)
	if err := gen1.js.append(journalRecord{
		Event: "submit", Job: "job-000077", Kind: "batch",
		Cells: []campaign.CellSpec{warm, cold},
	}); err != nil {
		t.Fatal(err)
	}
	gen1.stop()

	gen2 := bootPersistent(t, dir)
	if gen2.rec.Restored != 2 || gen2.rec.Resumed != 1 {
		t.Fatalf("recovery stats %+v, want 2 restored / 1 resumed", gen2.rec)
	}
	testutil.WaitForJob(t, gen2.ts.URL, "job-000077")
	var status struct {
		State string      `json:"state"`
		Cells []cellState `json:"cells"`
	}
	testutil.GetJSON(t, gen2.ts.URL, "/v1/jobs/job-000077", &status)
	if !status.Cells[0].Cached {
		t.Fatalf("warm cell re-executed after restart: %+v", status.Cells[0])
	}
	if status.Cells[1].Cached {
		t.Fatalf("cold cell claims a cache hit: %+v", status.Cells[1])
	}
	st := gen2.sched.Stats()
	if st.Hits != 1 || st.Runs != 1 {
		t.Fatalf("scheduler stats %+v, want exactly 1 hit (warm cell) and 1 run (cold cell)", st)
	}
}

// TestJobIDSequenceAcrossRestart: ids minted after a restart continue
// past every journaled id — batches and experiments share the sequence,
// and deleted jobs still count.
func TestJobIDSequenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	gen1 := bootPersistent(t, dir)
	id1 := submitAndWait(t, gen1.ts.URL, testutil.MiniSpec("vectoradd", 51))
	if id1 != "job-000001" {
		t.Fatalf("first id %q", id1)
	}
	id2 := submitAndWait(t, gen1.ts.URL, testutil.MiniSpec("vectoradd", 52))
	// Delete the latest job: its id must still never be reused.
	if code := testutil.DeleteJSON(t, gen1.ts.URL, "/v1/jobs/"+id2, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	gen1.stop()

	gen2 := bootPersistent(t, dir)
	id3 := submitAndWait(t, gen2.ts.URL, testutil.MiniSpec("vectoradd", 53))
	if id3 != "job-000003" {
		t.Fatalf("post-restart id %q, want job-000003 (sequence restored past deleted job-000002)", id3)
	}
}

// TestEvictionOrderingAcrossRestart: the retention bound evicts oldest
// finished jobs first, the journal mirrors each eviction, and a restart
// preserves both the retained set and its ordering.
func TestEvictionOrderingAcrossRestart(t *testing.T) {
	cases := []struct {
		name        string
		maxRetained int
		submit      int
		wantKept    []string
	}{
		{"bound 2 keeps the newest 2", 2, 4, []string{"job-000003", "job-000004"}},
		{"bound above count keeps all", 8, 3, []string{"job-000001", "job-000002", "job-000003"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			gen1 := bootPersistent(t, dir)
			gen1.srv.mu.Lock()
			gen1.srv.maxRetained = tc.maxRetained
			gen1.srv.mu.Unlock()
			for i := 0; i < tc.submit; i++ {
				// Same spec every time: later jobs are cache hits, fast.
				submitAndWait(t, gen1.ts.URL, testutil.MiniSpec("vectoradd", 61))
			}
			gen1.stop()

			gen2 := bootPersistent(t, dir)
			gen2.srv.mu.Lock()
			gen2.srv.maxRetained = tc.maxRetained
			gen2.srv.mu.Unlock()
			var listing struct {
				Jobs []jobSummary `json:"jobs"`
			}
			testutil.GetJSON(t, gen2.ts.URL, "/v1/jobs", &listing)
			if len(listing.Jobs) != len(tc.wantKept) {
				t.Fatalf("%d jobs retained after restart, want %d: %+v", len(listing.Jobs), len(tc.wantKept), listing.Jobs)
			}
			for i, want := range tc.wantKept {
				if listing.Jobs[i].ID != want {
					t.Fatalf("retained[%d] = %q, want %q (ordering must survive restart)", i, listing.Jobs[i].ID, want)
				}
				if listing.Jobs[i].State != "done" {
					t.Fatalf("retained[%d] state %q", i, listing.Jobs[i].State)
				}
			}
		})
	}
}
