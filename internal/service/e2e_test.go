package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/worker"
	"repro/internal/workloads"
)

// TestDistributedFigureSurvivesWorkerDeath is the distributed tier's
// end-to-end acceptance test: one in-process fiserver in remote-worker
// mode, two fiworkers, a multi-cell figure batch, one worker killed
// mid-campaign — and the final figure JSON must equal the single-process
// output byte for byte.
func TestDistributedFigureSurvivesWorkerDeath(t *testing.T) {
	// The TTL must comfortably exceed a heartbeat interval even when the
	// race detector slows everything ~10x, or healthy leases expire and
	// cells restart forever; cells are sized so several remain when the
	// first worker dies.
	const (
		ttl        = 3 * time.Second
		injections = 120
		seed       = 9
	)
	chipNames := []string{"Mini NVIDIA", "Mini AMD"}
	benchNames := []string{"vectoradd", "transpose"}

	q := campaign.NewLeaseQueue(ttl)
	sched := campaign.New(campaign.Config{Executor: campaign.NewRemoteExecutor(q), Workers: 64})
	srv := NewServer(sched)
	srv.ServeWorkers(q)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	newWorker := func(name string) (*worker.Worker, context.CancelFunc, chan struct{}) {
		ctx, cancel := context.WithCancel(context.Background())
		w := worker.New(&worker.Client{Base: ts.URL, Name: name}, worker.Options{
			Concurrency: 1, CampaignWorkers: 2, Poll: 50 * time.Millisecond,
		})
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(ctx)
		}()
		return w, cancel, done
	}
	doomed, killDoomed, doomedDone := newWorker("doomed")
	survivor, killSurvivor, survivorDone := newWorker("survivor")
	defer func() {
		killSurvivor()
		<-survivorDone
	}()

	// Kill one worker as soon as the campaign is demonstrably underway:
	// at least one cell finished, others still pending or leased.
	go func() {
		for {
			st := sched.Stats()
			if st.Runs >= 1 {
				killDoomed()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	figURL := ts.URL + "/v1/figure?" + url.Values{
		"fig":   {"1"},
		"n":     {strconv.Itoa(injections)},
		"seed":  {strconv.FormatUint(seed, 10)},
		"chips": {strings.Join(chipNames, ",")},
		"bench": {strings.Join(benchNames, ",")},
	}.Encode()
	resp, err := http.Get(figURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure status %d", resp.StatusCode)
	}
	var remoteFigure json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev struct {
			Event  string          `json:"event"`
			Error  string          `json:"error"`
			Figure json.RawMessage `json:"figure"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "error":
			t.Fatalf("figure failed: %s", ev.Error)
		case "result":
			remoteFigure = ev.Figure
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if remoteFigure == nil {
		t.Fatal("stream ended without a result event")
	}
	<-doomedDone

	// The doomed worker died mid-campaign; the survivor carried the rest.
	if survivor.Completed() == 0 {
		t.Fatal("surviving worker completed nothing")
	}
	wantCells := int64(len(chipNames) * len(benchNames))
	if runs := sched.Stats().Runs; runs != wantCells {
		t.Fatalf("scheduler ran %d cells, want %d", runs, wantCells)
	}
	if doomed.Completed() >= wantCells {
		t.Fatal("the doomed worker finished the whole campaign before dying; nothing was redistributed")
	}

	// Single-process reference: same options, default local executor.
	var (
		cs []*chips.Chip
		bs []*workloads.Benchmark
	)
	for _, name := range chipNames {
		c, err := chips.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	for _, name := range benchNames {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	localFig, err := core.FigureRegisterFile(core.Options{
		Injections: injections, Seed: seed, Chips: cs, Benchmarks: bs,
	})
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(localFig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSON, remoteFigure) {
		t.Fatalf("distributed figure differs from the single-process run:\nlocal:  %s\nremote: %s",
			localJSON, remoteFigure)
	}
}
