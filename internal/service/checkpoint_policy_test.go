package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/testutil"
)

// TestJobPolicyCheckpoint drives the wire form of the checkpoint knob:
// the same cell submitted with checkpointing forced off and with a fixed
// interval must complete either way and land on the same cell key (the
// knob stays out of identity), with the second submission answered from
// the store without re-running.
func TestJobPolicyCheckpoint(t *testing.T) {
	srv, sched := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := testutil.MiniSpec("vectoradd", 5)
	spec.Injections = 40

	submit := func(policy map[string]any) []cellState {
		var submitted struct {
			ID string `json:"id"`
		}
		req := map[string]any{"cells": []campaign.CellSpec{spec}}
		if policy != nil {
			req["policy"] = policy
		}
		testutil.PostJSON(t, ts.URL, "/v1/jobs", req, &submitted, http.StatusAccepted)
		status := awaitJob(t, ts, submitted.ID)
		if status.State != "done" {
			t.Fatalf("final status %+v", status)
		}
		return status.Cells
	}

	off := submit(map[string]any{"checkpoint": map[string]any{"off": true}})
	interval := submit(map[string]any{"checkpoint": map[string]any{"interval": 2048}})
	if off[0].Spec.Key() != interval[0].Spec.Key() {
		t.Fatalf("checkpoint knob changed the cell key: %s vs %s", off[0].Spec.Key(), interval[0].Spec.Key())
	}
	st := sched.Stats()
	if st.Runs != 1 {
		t.Fatalf("expected one execution and one store hit across policies, got %d runs", st.Runs)
	}
	if st.Hits == 0 {
		t.Fatal("second submission was not served from the store")
	}
}

// TestJobPolicyCheckpointValidation rejects a negative interval.
func TestJobPolicyCheckpointValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := testutil.MiniSpec("vectoradd", 5)
	var errBody struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{
		"cells":  []campaign.CellSpec{spec},
		"policy": map[string]any{"checkpoint": map[string]any{"interval": -5}},
	}, &errBody, http.StatusBadRequest)
	if errBody.Error.Code != "bad_request" || !strings.Contains(errBody.Error.Message, "checkpoint interval") {
		t.Fatalf("error envelope %+v", errBody)
	}
}
