package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/ace"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/experiment"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// legacyFigure1 reimplements the pre-redesign Fig. 1 path for one
// (chip, benchmark) cell, straight on the injection engine and the ACE
// analyzer — no scheduler, no spec runner. It is the reference the
// deprecated endpoint must keep matching byte for byte.
func legacyFigure1(t *testing.T, chip *chips.Chip, bench *workloads.Benchmark, n int, seed uint64) *core.Figure {
	t.Helper()
	res, err := finject.Run(finject.Campaign{
		Chip:       chip,
		Benchmark:  bench,
		Structure:  gpu.RegisterFile,
		Injections: n,
		Seed:       experiment.CellSeed(seed, chip.Name, bench.Name, gpu.RegisterFile),
		Policy:     finject.Policy{Confidence: 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := res.AVFInterval(0.99)
	if err != nil {
		t.Fatal(err)
	}
	d, err := devices.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		t.Fatal(err)
	}
	regACE, _, runStats, err := ace.Measure(d, hp)
	if err != nil {
		t.Fatal(err)
	}
	cell := &core.Cell{
		Chip:       chip.Name,
		Benchmark:  bench.Name,
		Structure:  gpu.RegisterFile,
		AVFFI:      res.AVF(),
		AVFFILo:    lo,
		AVFFIHi:    hi,
		AVFACE:     regACE,
		Occupancy:  res.Occupancy,
		Cycles:     runStats.Cycles,
		Injections: res.Injections,
		Outcomes:   res.Outcomes,
	}
	// The figures' per-chip "average" group: summed over the benchmark
	// axis, carrying only the averaged fields (the drivers have always
	// left the rest zero).
	avg := &core.Cell{Chip: chip.Name, Benchmark: "average", Structure: gpu.RegisterFile}
	avg.AVFFI = cell.AVFFI / 1
	avg.AVFACE = cell.AVFACE / 1
	avg.Occupancy = cell.Occupancy / 1
	return &core.Figure{
		Structure:  gpu.RegisterFile,
		ChipNames:  []string{chip.Name},
		BenchNames: []string{bench.Name},
		Cells:      [][]*core.Cell{{cell}},
		Averages:   []*core.Cell{avg},
	}
}

// TestFigureEndpointCompat: GET /v1/figure is a deprecated shim routed
// through the spec runner — its NDJSON progress lines and its final
// figure JSON must stay byte-identical to the pre-redesign path,
// reconstructed here directly on the measurement engines.
func TestFigureEndpointCompat(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	chip := chips.MiniNVIDIA()
	bench, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	const n, seed = 40, 5

	resp, err := ts.Client().Get(ts.URL + "/v1/figure?fig=1&chips=Mini+NVIDIA&bench=vectoradd&n=40&seed=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Error("deprecated endpoint does not advertise Deprecation")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The expected stream, byte for byte: one progress line for the
	// single cell, then the result event wrapping the legacy figure.
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	if err := enc.Encode(figureEvent{
		Event:     "cell",
		Chip:      chip.Name,
		Benchmark: bench.Name,
		Structure: gpu.RegisterFile.String(),
		Done:      1,
		Total:     1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(figureEvent{
		Event:  "result",
		Fig:    "1",
		Figure: legacyFigure1(t, chip, bench, n, seed),
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("deprecated figure stream drifted from the pre-redesign bytes:\ngot:\n%s\nwant:\n%s", body, want.Bytes())
	}
}
