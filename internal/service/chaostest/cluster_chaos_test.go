package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/client"
	"repro/internal/testutil"
)

// startClusterServer launches one fiserver of a cluster: shared cell
// store, shared job journal and shared ownership journal under dir,
// multi-tenant auth from keys, and remote-worker mode so a fiworker
// fleet carries the actual simulations.
func startClusterServer(t *testing.T, dir, id, keys string) *proc {
	t.Helper()
	return startServer(t, dir, "",
		"-cluster-dir", filepath.Join(dir, "cluster"),
		"-server-id", id,
		"-takeover-ttl", "750ms",
		"-api-keys", keys,
		"-workers-remote",
		"-lease-ttl", "2s",
	)
}

// startFleetWorker launches one fiworker pointed at the whole server
// list; it survives individual server deaths by sticky failover.
func startFleetWorker(t *testing.T, servers string) {
	t.Helper()
	cmd := exec.Command(fiworkerBin,
		"-server", servers,
		"-poll", "250ms",
		"-concurrency", "2",
		"-quiet",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Signal(os.Interrupt)
		select {
		case <-exited:
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			<-exited
		}
	})
}

// submitAuthed POSTs a batch with a Bearer key and returns the job id.
func submitAuthed(t *testing.T, base, key string, cells []campaign.CellSpec) string {
	t.Helper()
	buf, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &submitted); err != nil || submitted.ID == "" {
		t.Fatalf("submit answer %s: %v", body, err)
	}
	return submitted.ID
}

// getAuthed GETs path with a Bearer key and returns status and body.
func getAuthed(t *testing.T, base, key, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestMultiServerFailoverByteIdentical is the horizontal-scaling proof:
// two fiservers share one cell store, one job journal and one ownership
// journal; a fiworker fleet points at both; a tenant submits a batch to
// the active owner, which is SIGKILLed mid-campaign. The standby must
// seize ownership, adopt and finish the job, and the client — polling
// the standby through client.WaitDone the whole time — must receive a
// result byte-identical to an uninterrupted single-server run, with the
// dead server's settled cells served from the shared store, never
// re-injected.
func TestMultiServerFailoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	var cells []campaign.CellSpec
	for i := uint64(0); i < 6; i++ {
		s := testutil.MiniSpec("matrixMul", 90+i)
		s.Injections = 100
		cells = append(cells, s)
	}
	want := cleanReference(t, cells)

	dir := t.TempDir()
	keys := filepath.Join(dir, "keys.conf")
	if err := os.WriteFile(keys, []byte("key-acme acme weight=2\nkey-beta beta\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	a := startClusterServer(t, dir, "a", keys)
	b := startClusterServer(t, dir, "b", keys)
	startFleetWorker(t, a.base+","+b.base)
	startFleetWorker(t, b.base+","+a.base)

	// a owns the journal; b is a standby answering 503 (and 401 is not
	// the answer — the gate behind the cluster shim never runs).
	if code, body := getAuthed(t, b.base, "key-acme", "/v1/jobs"); code != http.StatusServiceUnavailable {
		t.Fatalf("standby answered %d: %s", code, body)
	}
	if code, body := getAuthed(t, a.base, "key-acme", "/v1/jobs"); code != http.StatusOK {
		t.Fatalf("owner answered %d: %s", code, body)
	}
	// The tenancy gate is live on the owner: keyless requests bounce.
	if code, _ := getAuthed(t, a.base, "", "/v1/jobs"); code != http.StatusUnauthorized {
		t.Fatalf("keyless request answered %d, want 401", code)
	}

	id := submitAuthed(t, a.base, "key-acme", cells)

	// The waiting client points at the standby from the first moment:
	// its 503s and the owner's death are both invisible to WaitDone.
	waiter := &client.Client{Base: b.base, APIKey: "key-acme"}
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	waitErr := make(chan error, 1)
	var final *client.JobStatus
	go func() {
		st, err := waiter.WaitDone(ctx, id)
		final = st
		waitErr <- err
	}()

	// Let the fleet settle some cells through a, then kill -9.
	ca := &client.Client{Base: a.base, APIKey: "key-acme"}
	progressDeadline := time.Now().Add(120 * time.Second)
	for {
		st, err := ca.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done > 0 {
			break
		}
		if time.Now().After(progressDeadline) {
			t.Fatalf("job never progressed\n%s", a.dump())
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.kill(t)

	if err := <-waitErr; err != nil {
		t.Fatalf("WaitDone across the failover: %v\na:\n%s\nb:\n%s", err, a.dump(), b.dump())
	}
	if final.State != "done" {
		t.Fatalf("adopted job finished %q: %+v", final.State, final)
	}

	// b adopted exactly the one journaled job and resumed it.
	if restored, resumed := b.recovery(); restored != 1 || resumed != 1 {
		t.Fatalf("takeover recovered %d jobs / resumed %d, want 1/1\n%s", restored, resumed, b.dump())
	}
	got, err := waiter.Status(ctx, id)
	if err != nil || got.Done != len(cells) {
		t.Fatalf("status after failover: %+v (%v)", got, err)
	}
	raw := rawResultAuthed(t, b.base, id, "key-acme")
	if !bytes.Equal(raw, want) {
		t.Fatalf("failover result differs from uninterrupted run:\nclean:    %s\nfailover: %s", want, raw)
	}

	// Work conservation, from the survivor's own counters: every cell is
	// either a warm hit from the shared store (settled by the dead
	// server) or one fresh remote run — nothing is injected twice.
	hits := metric(t, b.base, "fi_sched_cache_hits_total")
	runs := metric(t, b.base, "fi_sched_cell_runs_total")
	if int(hits)+int(runs) != len(cells) {
		t.Fatalf("hits %v + runs %v != %d cells", hits, runs, len(cells))
	}
	if hits < 1 {
		t.Fatal("no warm hits on the survivor: the dead server's settled cells were re-injected")
	}
	if tk := metric(t, b.base, "fi_cluster_takeovers_total"); tk != 1 {
		t.Fatalf("fi_cluster_takeovers_total %v, want 1", tk)
	}
	if act := metric(t, b.base, "fi_cluster_active"); act != 1 {
		t.Fatalf("fi_cluster_active %v, want 1", act)
	}

	// Tenant isolation survives the failover: the other tenant's key
	// cannot see acme's job on the new owner.
	if code, _ := getAuthed(t, b.base, "key-beta", "/v1/jobs/"+id); code != http.StatusNotFound {
		t.Fatalf("cross-tenant status answered %d, want 404", code)
	}
}

// rawResultAuthed fetches /v1/jobs/{id}/result with a Bearer key.
func rawResultAuthed(t *testing.T, base, id, key string) []byte {
	t.Helper()
	code, body := getAuthed(t, base, key, "/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status %d: %s", code, body)
	}
	return body
}
