// Package chaostest is the crash-injection proof of restart-proof job
// persistence: it builds the real fiserver binary, runs it as a
// subprocess over on-disk stores, SIGKILLs it at injected crash
// barriers (or from the outside, mid-campaign), restarts it against the
// same stores, and asserts that the recovered job's result is
// byte-identical to an uninterrupted run — with already-completed cells
// served from the warm campaign store, never re-injected.
package chaostest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/client"
	"repro/internal/service"
	"repro/internal/testutil"
)

// fiserverBin and fiworkerBin are the binaries TestMain builds once for
// every test.
var fiserverBin, fiworkerBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "chaostest")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	fiserverBin = filepath.Join(dir, "fiserver")
	fiworkerBin = filepath.Join(dir, "fiworker")
	for bin, pkg := range map[string]string{fiserverBin: "repro/cmd/fiserver", fiworkerBin: "repro/cmd/fiworker"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "chaostest: building %s: %v\n", pkg, err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// proc is one fiserver subprocess generation over a data directory.
type proc struct {
	cmd  *exec.Cmd
	base string // http://host:port once the listener is up

	mu       sync.Mutex
	lines    []string // every stdout line, for diagnostics
	restored int      // parsed from the "job store ..." boot line
	resumed  int

	exited chan error // receives cmd.Wait exactly once
}

var bootLine = regexp.MustCompile(`^job store .*: (\d+) jobs restored, (\d+) resumed$`)

// startServer launches fiserver over dir's stores and waits for its
// listener. crash (a service.Crash* constant) arms a self-SIGKILL
// barrier via FISERVER_CRASH; empty runs a healthy server. extra flags
// (cluster mode, api keys, remote workers) append after the defaults.
func startServer(t *testing.T, dir, crash string, extra ...string) *proc {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-store", filepath.Join(dir, "cells.jsonl"),
		"-job-store", filepath.Join(dir, "jobs.jsonl"),
		"-drain-timeout", "2s",
	}
	args = append(args, extra...)
	cmd := exec.Command(fiserverBin, args...)
	cmd.Env = os.Environ()
	if crash != "" {
		cmd.Env = append(cmd.Env, "FISERVER_CRASH="+crash)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, exited: make(chan error, 1)}
	listening := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			if m := bootLine.FindStringSubmatch(line); m != nil {
				p.restored, _ = strconv.Atoi(m[1])
				p.resumed, _ = strconv.Atoi(m[2])
			}
			p.mu.Unlock()
			if addr, ok := strings.CutPrefix(line, "listening on "); ok {
				listening <- addr
			}
		}
	}()
	go func() { p.exited <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-p.exited
	})
	select {
	case addr := <-listening:
		p.base = "http://" + addr
	case err := <-p.exited:
		p.exited <- err
		t.Fatalf("fiserver exited before listening: %v\n%s", err, p.dump())
	case <-time.After(15 * time.Second):
		t.Fatalf("fiserver never announced its listener\n%s", p.dump())
	}
	return p
}

func (p *proc) dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// recovery returns the restored/resumed counts announced at boot.
func (p *proc) recovery() (restored, resumed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restored, p.resumed
}

// waitKilled blocks until the process dies and asserts it died to
// SIGKILL — the crash barrier fired — not a clean exit or a panic.
func (p *proc) waitKilled(t *testing.T) {
	t.Helper()
	select {
	case err := <-p.exited:
		p.exited <- err
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
			t.Fatalf("server died, but not to SIGKILL: %v\n%s", err, p.dump())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("crash barrier never fired\n%s", p.dump())
	}
}

// kill SIGKILLs the subprocess from the outside and reaps it.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	<-p.exited
	p.exited <- nil
}

// stop shuts the server down gracefully (SIGINT + drain) so a later
// generation can reopen its stores.
func (p *proc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.exited:
		p.exited <- err
	case <-time.After(15 * time.Second):
		t.Fatalf("server never drained\n%s", p.dump())
	}
}

// chaosCells is the batch every chaos scenario submits: distinct cells
// so cache hits can only come from the crashed generation's work.
func chaosCells() []campaign.CellSpec {
	return []campaign.CellSpec{
		testutil.MiniSpec("vectoradd", 71),
		testutil.MiniSpec("transpose", 72),
		testutil.MiniSpec("matrixMul", 73),
	}
}

// submitLoose POSTs a batch and tolerates transport errors: a server
// arming post-submit kills itself before it can answer.
func submitLoose(base string, cells []campaign.CellSpec) {
	buf, _ := json.Marshal(map[string]any{"cells": cells})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// rawResult fetches /v1/jobs/{id}/result as raw bytes — the unit of
// the byte-identity assertions.
func rawResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, body)
	}
	return body
}

// metric scrapes one counter's value from GET /metrics (0 when the
// family has not been incremented in this process).
func metric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	return 0
}

// cleanReference runs the batch on an uninterrupted server over its own
// stores and returns the result bytes every recovery must reproduce.
func cleanReference(t *testing.T, cells []campaign.CellSpec) []byte {
	t.Helper()
	p := startServer(t, t.TempDir(), "")
	c := &client.Client{Base: p.base}
	var submitted struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, p.base, "/v1/jobs", map[string]any{"cells": cells}, &submitted, http.StatusAccepted)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.WaitDone(ctx, submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("clean run finished %q: %+v", st.State, st)
	}
	return rawResult(t, p.base, submitted.ID)
}

// TestCrashPointsRecoverByteIdentical is the heart of the harness: for
// every injected crash barrier, the server SIGKILLs itself mid-job, a
// fresh process recovers from the journal, resumes, and must produce a
// result byte-identical to the uninterrupted reference — with every
// cell that settled before the crash answered from the warm campaign
// store (a cache hit), never re-injected.
func TestCrashPointsRecoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	cells := chaosCells()
	want := cleanReference(t, cells)

	points := []struct {
		crash string
		// minWarm bounds how many cells must already be settled when the
		// barrier fires — each one must recover as a cache hit.
		minWarm int
		// allWarm asserts the whole batch settled pre-crash: recovery
		// re-injects nothing at all.
		allWarm bool
		// tornTail asserts the recovering process found (and healed) a
		// half-written journal record.
		tornTail bool
	}{
		{crash: service.CrashPostSubmit},
		{crash: service.CrashMidCell, minWarm: 1},
		{crash: service.CrashTornCell, minWarm: 1, tornTail: true},
		{crash: service.CrashPreFinish, minWarm: len(cells), allWarm: true},
	}
	for _, tc := range points {
		t.Run(tc.crash, func(t *testing.T) {
			dir := t.TempDir()
			gen1 := startServer(t, dir, tc.crash)
			submitLoose(gen1.base, cells)
			gen1.waitKilled(t)

			gen2 := startServer(t, dir, "")
			if restored, resumed := gen2.recovery(); restored != 1 || resumed != 1 {
				t.Fatalf("recovered %d jobs / resumed %d, want 1/1\n%s", restored, resumed, gen2.dump())
			}
			c := &client.Client{Base: gen2.base}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			// The id is deterministic: the journal restores the sequence.
			st, err := c.WaitDone(ctx, "job-000001")
			if err != nil {
				t.Fatalf("awaiting resumed job: %v\n%s", err, gen2.dump())
			}
			if st.State != "done" {
				t.Fatalf("resumed job finished %q: %+v", st.State, st)
			}
			got := rawResult(t, gen2.base, "job-000001")
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered result differs from uninterrupted run:\nclean:     %s\nrecovered: %s", want, got)
			}

			// Work conservation, from the recovering process's own counters:
			// every cell is either a warm-store hit or a fresh run, and the
			// cells the crashed generation finished are never re-injected.
			hits := metric(t, gen2.base, "fi_sched_cache_hits_total")
			runs := metric(t, gen2.base, "fi_sched_cell_runs_total")
			if int(hits)+int(runs) != len(cells) {
				t.Fatalf("hits %v + runs %v != %d cells", hits, runs, len(cells))
			}
			if int(hits) < tc.minWarm {
				t.Fatalf("only %v cache hits after recovery, want >= %d (completed cells re-injected?)", hits, tc.minWarm)
			}
			if tc.allWarm {
				if inj := metric(t, gen2.base, "fi_inject_injections_total"); inj != 0 {
					t.Fatalf("recovery of a fully-settled job performed %v injections, want 0", inj)
				}
			}
			if torn := metric(t, gen2.base, "fi_store_job_journal_torn_tails_total"); (torn == 1) != tc.tornTail {
				t.Fatalf("torn-tail counter %v, want torn=%v", torn, tc.tornTail)
			}
			if rec := metric(t, gen2.base, "fi_store_jobs_recovered_total"); rec != 1 {
				t.Fatalf("fi_store_jobs_recovered_total %v, want 1", rec)
			}
		})
	}
}

// TestExternalSigkillMidCampaign delivers the SIGKILL from outside the
// process — no barrier, no cooperation — while a large batch is
// mid-flight, then proves the same recovery contract.
func TestExternalSigkillMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	// A batch big enough to be mid-flight when the signal lands.
	var cells []campaign.CellSpec
	for i := uint64(0); i < 6; i++ {
		s := testutil.MiniSpec("matrixMul", 80+i)
		s.Injections = 100
		cells = append(cells, s)
	}
	want := cleanReference(t, cells)

	dir := t.TempDir()
	gen1 := startServer(t, dir, "")
	var submitted struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, gen1.base, "/v1/jobs", map[string]any{"cells": cells}, &submitted, http.StatusAccepted)
	// Let it make some progress so the restart has warm cells to prove
	// work conservation with, then kill -9.
	c1 := &client.Client{Base: gen1.base}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c1.Status(context.Background(), submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	gen1.kill(t)

	gen2 := startServer(t, dir, "")
	if restored, resumed := gen2.recovery(); restored != 1 || resumed != 1 {
		t.Fatalf("recovered %d/%d, want 1 restored / 1 resumed\n%s", restored, resumed, gen2.dump())
	}
	c2 := &client.Client{Base: gen2.base}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := c2.WaitDone(ctx, submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("resumed job finished %q", st.State)
	}
	got := rawResult(t, gen2.base, submitted.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs from uninterrupted run:\nclean:     %s\nrecovered: %s", want, got)
	}
	hits := metric(t, gen2.base, "fi_sched_cache_hits_total")
	runs := metric(t, gen2.base, "fi_sched_cell_runs_total")
	if int(hits)+int(runs) != len(cells) {
		t.Fatalf("hits %v + runs %v != %d cells", hits, runs, len(cells))
	}
	if hits < 1 {
		t.Fatal("no cache hits after recovery: the killed generation's settled cells were re-injected")
	}
}

// TestRestartWhileClientWaits is the reconnect half: a client polling
// through client.WaitDone keeps waiting across the crash and the
// restart, and gets the finished job from the second process without
// ever seeing an error.
func TestRestartWhileClientWaits(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	dir := t.TempDir()
	gen1 := startServer(t, dir, service.CrashMidCell)
	submitLoose(gen1.base, chaosCells())
	gen1.waitKilled(t)

	// The second generation binds a fresh port; real deployments restart
	// on a fixed address, so point the waiting client at the new base —
	// its transport errors in between are exactly what WaitDone rides out.
	gen2 := startServer(t, dir, "")
	c := &client.Client{Base: gen2.base}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.WaitDone(ctx, "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Done != st.Total {
		t.Fatalf("job after restart: %+v", st)
	}
	// The listing endpoint is how a reconnecting client rediscovers its
	// jobs when it lost the id with the stream.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "job-000001" {
		t.Fatalf("job listing after restart: %+v", jobs)
	}
}
