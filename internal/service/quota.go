package service

import (
	"fmt"
	"sync"
	"time"
)

// Per-tenant admission control. Two limits, both declared in the key
// file and enforced at submit time (never mid-run):
//
//   - max-jobs caps a tenant's concurrently running jobs; the slot is
//     released when the job settles (done, failed or canceled).
//   - inj-rate caps admitted injection work per second with a debt-style
//     token bucket: a submission is admitted whenever the tenant owes no
//     debt, then charged its full normalized injection cost. Large jobs
//     therefore always admit eventually (no job can be bigger than the
//     bucket) and the long-run admitted rate converges to inj-rate.
//
// A rejected submission answers 429 with the standard error envelope
// (code "quota_exceeded") and counts in fi_jobs_quota_rejected_total.
type quotaTable struct {
	mu      sync.Mutex
	now     func() time.Time
	tenants map[string]*tenantUsage
}

// tenantUsage is one tenant's live consumption.
type tenantUsage struct {
	running int
	debt    float64 // injections owed; admission requires debt == 0
	last    time.Time
}

func newQuotaTable() *quotaTable {
	return &quotaTable{now: time.Now, tenants: make(map[string]*tenantUsage)}
}

// usageLocked returns (creating if needed) a tenant's usage record with
// its rate debt decayed to the present. Callers hold q.mu.
func (q *quotaTable) usageLocked(tenant string, rate float64) *tenantUsage {
	u := q.tenants[tenant]
	if u == nil {
		u = &tenantUsage{last: q.now()}
		q.tenants[tenant] = u
	}
	now := q.now()
	if rate > 0 && u.debt > 0 {
		u.debt -= rate * now.Sub(u.last).Seconds()
		if u.debt < 0 {
			u.debt = 0
		}
	}
	u.last = now
	return u
}

// admit charges a submission of cost normalized injections against the
// tenant's limits, reserving a job slot on success. The error, when
// non-nil, is the human-readable 429 message.
func (q *quotaTable) admit(t *Tenant, cost int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	u := q.usageLocked(t.Name, t.InjRate)
	if t.MaxJobs > 0 && u.running >= t.MaxJobs {
		return fmt.Errorf("tenant %s at max-jobs limit (%d running)", t.Name, u.running)
	}
	if t.InjRate > 0 && u.debt > 0 {
		return fmt.Errorf("tenant %s over injection rate (%.0f inj/s, retry in %.1fs)",
			t.Name, t.InjRate, u.debt/t.InjRate)
	}
	u.running++
	u.debt += float64(cost)
	return nil
}

// reacquire takes a job slot without admission checks — restart
// recovery resuming a journaled job must never bounce off the quota its
// original submission already passed.
func (q *quotaTable) reacquire(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.usageLocked(tenant, 0).running++
}

// release returns a tenant's job slot when its job settles.
func (q *quotaTable) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if u := q.tenants[tenant]; u != nil && u.running > 0 {
		u.running--
	}
}
