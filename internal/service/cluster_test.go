package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// okHandler is a minimal activated handler for cluster tests.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"served": "yes"})
	})
}

func TestClusterLoneServerBootsActive(t *testing.T) {
	dir := t.TempDir()
	activations := 0
	c := NewCluster(dir, "a", time.Second, func() (http.Handler, error) {
		activations++
		return okHandler(), nil
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	state, epoch := c.State()
	if state != "active" || epoch != 1 || activations != 1 {
		t.Fatalf("state %s epoch %d activations %d", state, epoch, activations)
	}
	rr := httptest.NewRecorder()
	c.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("active node answered %d", rr.Code)
	}
	// The journal holds the claim under the wire FileOwner format.
	data, err := os.ReadFile(filepath.Join(dir, OwnershipFile))
	if err != nil {
		t.Fatal(err)
	}
	kind, _, err := wire.ParseHeader(data)
	if err != nil || kind != wire.FileOwner {
		t.Fatalf("journal header kind %v err %v", kind, err)
	}
}

func TestClusterStandbyAnswers503UntilTakeover(t *testing.T) {
	dir := t.TempDir()
	a := NewCluster(dir, "a", 300*time.Millisecond, func() (http.Handler, error) { return okHandler(), nil })
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}

	b := NewCluster(dir, "b", 300*time.Millisecond, func() (http.Handler, error) { return okHandler(), nil })
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if state, _ := b.State(); state != "standby" {
		t.Fatalf("b booted %s with a live owner", state)
	}
	// Standby refuses traffic with the unavailable envelope but keeps
	// its health probe answering.
	rr := httptest.NewRecorder()
	b.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("standby answered %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	b.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("standby healthz answered %d", rr.Code)
	}

	// Owner a dies without releasing (the heartbeat loop just stops, as
	// under SIGKILL). b must claim the next epoch within a few TTLs.
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
	deadline := time.Now().Add(5 * time.Second)
	for {
		if state, epoch := b.State(); state == "active" {
			if epoch != 2 {
				t.Fatalf("takeover epoch %d, want 2", epoch)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never took over from a dead owner")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rr = httptest.NewRecorder()
	b.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("new owner answered %d", rr.Code)
	}
}

func TestClusterCleanReleaseHandsOverImmediately(t *testing.T) {
	dir := t.TempDir()
	a := NewCluster(dir, "a", 10*time.Second, func() (http.Handler, error) { return okHandler(), nil })
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	a.Close() // appends a release record

	// Despite the 10s TTL, the released epoch is claimable at once.
	b := NewCluster(dir, "b", 10*time.Second, func() (http.Handler, error) { return okHandler(), nil })
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if state, epoch := b.State(); state != "active" || epoch != 2 {
		t.Fatalf("after clean release: state %s epoch %d", state, epoch)
	}
}

func TestClusterOwnerDeposedByHigherEpoch(t *testing.T) {
	dir := t.TempDir()
	var deposed atomic.Bool
	a := NewCluster(dir, "a", 200*time.Millisecond, func() (http.Handler, error) { return okHandler(), nil })
	a.OnDeposed(func() { deposed.Store(true) })
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A usurper claims epoch 2 behind a's back (a partitioned standby
	// that decided a was dead). a must fence itself out on its next
	// heartbeat, not keep serving a stale epoch.
	usurper := NewCluster(dir, "b", 200*time.Millisecond, nil)
	if err := usurper.append(wire.OwnerRecord{Epoch: 2, Server: "b", Event: wire.OwnerClaim}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if state, _ := a.State(); state == "deposed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never deposed itself under a higher epoch")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !deposed.Load() {
		t.Fatal("OnDeposed hook not invoked")
	}
	rr := httptest.NewRecorder()
	a.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("deposed node kept serving: %d", rr.Code)
	}
}

func TestClusterHealsTornOwnershipTail(t *testing.T) {
	dir := t.TempDir()
	a := NewCluster(dir, "a", time.Second, func() (http.Handler, error) { return okHandler(), nil })
	// Seed a good claim, then tear the tail as a SIGKILL mid-append
	// would.
	if err := a.append(wire.OwnerRecord{Epoch: 7, Server: "x", Event: wire.OwnerRelease}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, OwnershipFile)
	torn := wire.AppendRecord(nil, wire.RecOwner, wire.EncodeOwner(wire.OwnerRecord{Epoch: 8, Server: "x", Event: wire.OwnerClaim}))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The torn record must not forge epoch 8: reads skip it and the next
	// append truncates it away, so the new claim lands at epoch 8 from a.
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if state, epoch := a.State(); state != "active" || epoch != 8 {
		t.Fatalf("after torn tail: state %s epoch %d", state, epoch)
	}
	recs, err := a.read()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Server == "x" && rec.Epoch == 8 {
			t.Fatalf("torn claim resurrected: %+v", rec)
		}
	}
}
