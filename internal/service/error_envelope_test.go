package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/testutil"
)

// TestErrorEnvelope pins the unified /v1 error shape across the job,
// experiment and figure endpoints: every non-2xx JSON answer is
// {"error":{"code","message","job_id"}}, with the status codes the API
// has always used and job_id present exactly when the request resolved
// to (or named) a job.
func TestErrorEnvelope(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One finished job so conflict/not-found cases have real ids to hit.
	var submitted struct {
		ID string `json:"id"`
	}
	cells := []campaign.CellSpec{testutil.MiniSpec("vectoradd", 77)}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": cells}, &submitted, http.StatusAccepted)
	testutil.WaitForJob(t, ts.URL, submitted.ID)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string // JSON request body ("" for none)
		wantStatus int
		wantCode   string
		wantMsg    string // substring of message
		wantJob    string // exact job_id ("" = must be absent)
	}{
		{
			name:   "jobs: bad policy",
			method: http.MethodPost, path: "/v1/jobs",
			body:       `{"cells":[{"chip":"Mini NVIDIA","benchmark":"vectoradd","injections":5,"seed":1}],"policy":{"margin":2}}`,
			wantStatus: http.StatusBadRequest, wantCode: "bad_request", wantMsg: "bad policy margin",
		},
		{
			name:   "jobs: empty batch",
			method: http.MethodPost, path: "/v1/jobs",
			body:       `{"cells":[]}`,
			wantStatus: http.StatusBadRequest, wantCode: "bad_request", wantMsg: "empty batch",
		},
		{
			name:   "jobs: unknown job status",
			method: http.MethodGet, path: "/v1/jobs/job-999999",
			wantStatus: http.StatusNotFound, wantCode: "not_found", wantMsg: "unknown job",
			wantJob: "job-999999",
		},
		{
			name:   "jobs: unknown job cancel",
			method: http.MethodDelete, path: "/v1/jobs/job-999999",
			wantStatus: http.StatusNotFound, wantCode: "not_found", wantMsg: "unknown job",
			wantJob: "job-999999",
		},
		{
			name:   "experiments: bad spec",
			method: http.MethodPost, path: "/v1/experiments",
			body:       `{"name":"broken","injections":-4}`,
			wantStatus: http.StatusBadRequest, wantCode: "bad_request",
		},
		{
			name:   "figure: bad figure number",
			method: http.MethodGet, path: "/v1/figure?fig=9",
			wantStatus: http.StatusBadRequest, wantCode: "bad_request", wantMsg: "fig must be",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd *bytes.Reader
			if tc.body != "" {
				rd = bytes.NewReader([]byte(tc.body))
			} else {
				rd = bytes.NewReader(nil)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			// Decode through RawMessage first so a legacy flat string
			// error fails loudly rather than silently matching.
			var raw struct {
				Error json.RawMessage `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
				t.Fatal(err)
			}
			var env struct {
				Code    string `json:"code"`
				Message string `json:"message"`
				JobID   string `json:"job_id"`
			}
			if err := json.Unmarshal(raw.Error, &env); err != nil {
				t.Fatalf("error body is not the envelope object: %s", raw.Error)
			}
			if env.Code != tc.wantCode {
				t.Errorf("code %q, want %q", env.Code, tc.wantCode)
			}
			if env.Message == "" || !strings.Contains(env.Message, tc.wantMsg) {
				t.Errorf("message %q, want substring %q", env.Message, tc.wantMsg)
			}
			if env.JobID != tc.wantJob {
				t.Errorf("job_id %q, want %q", env.JobID, tc.wantJob)
			}
		})
	}

	// The 409 conflict path must carry the job's id too. Fetching the
	// result right after submission usually lands while the job still
	// runs; when the race is lost and the job already finished, the 200
	// simply skips the envelope assertions (the conflict site shares
	// httpJobError with the pinned cases above).
	var second struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": []campaign.CellSpec{testutil.MiniSpec("vectoradd", 78)}}, &second, http.StatusAccepted)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + second.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		var raw struct {
			Error json.RawMessage `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		var env struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			JobID   string `json:"job_id"`
		}
		if err := json.Unmarshal(raw.Error, &env); err != nil {
			t.Fatalf("conflict body is not the envelope object: %s", raw.Error)
		}
		if env.Code != "conflict" || env.JobID != second.ID {
			t.Errorf("conflict envelope %+v, want code=conflict job_id=%s", env, second.ID)
		}
	}
	testutil.WaitForJob(t, ts.URL, second.ID)
}
