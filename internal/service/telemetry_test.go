package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
	"repro/internal/testutil"
	"repro/internal/worker"
)

// TestMetricsEndpointValidExposition boots a server, runs one job, and
// scrapes GET /metrics: the body must be well-formed Prometheus text
// exposition (checked by the same validator cmd/metricslint uses in the
// CI smoke) and must carry all five instrumented subsystem families —
// scheduler, lease queue, injection engine, store, and HTTP.
func TestMetricsEndpointValidExposition(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": []campaign.CellSpec{testutil.MiniSpec("vectoradd", 3)}}, &submitted, http.StatusAccepted)
	testutil.WaitForJob(t, ts.URL, submitted.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := telemetry.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if families < 20 {
		t.Fatalf("only %d families exposed, want the full catalog (>= 20)", families)
	}
	for _, group := range []string{"fi_sched_", "fi_lease_", "fi_inject_", "fi_store_", "fi_http_"} {
		if !strings.Contains(string(body), group) {
			t.Fatalf("metric group %s missing from /metrics:\n%s", group, body)
		}
	}
	// The job above ran through the instrumented mux, so the per-route
	// counter must show the route label, not a raw path.
	if !strings.Contains(string(body), `fi_http_requests_total{route="POST /v1/jobs"}`) {
		t.Fatalf("per-route HTTP counter missing:\n%s", body)
	}
}

// TestStatsJSONShapePinned byte-pins /v1/stats: the endpoint predates
// the metrics registry and scripts parse it, so its JSON shape is a
// compatibility contract — /metrics is the extension point, this body
// must not move.
func TestStatsJSONShapePinned(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"golden_runs":0,"hits":0,"injections":0,"joins":0,"runs":0,"store_cells":0,"upgrades":0}` + "\n"
	if string(body) != want {
		t.Fatalf("/v1/stats shape moved:\ngot:  %q\nwant: %q", body, want)
	}

	// With remote workers enabled the queue snapshot joins the body under
	// the fixed "workers" key.
	srv2, _ := newTestServer(t)
	srv2.ServeWorkers(campaign.NewLeaseQueue(time.Second))
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	want2 := `{"golden_runs":0,"hits":0,"injections":0,"joins":0,"runs":0,"store_cells":0,"upgrades":0,` +
		`"workers":{"pending":0,"leased":0,"completed":0,"failed":0,"expired":0}}` + "\n"
	if string(body2) != want2 {
		t.Fatalf("/v1/stats shape moved with workers enabled:\ngot:  %q\nwant: %q", body2, want2)
	}
}

// TestCorrelationIDCrossesLeaseWire is the end-to-end correlation
// proof: a job submitted to the server runs on a remote worker in
// another "process" (separate worker loop over HTTP), and the worker's
// structured log lines must carry the server-minted job id plus lease
// and cell identities — one grep reconstructs the cell's life across
// both sides of the wire.
func TestCorrelationIDCrossesLeaseWire(t *testing.T) {
	q := campaign.NewLeaseQueue(3 * time.Second)
	sched := campaign.New(campaign.Config{Executor: campaign.NewRemoteExecutor(q), Workers: 8})
	srv := NewServer(sched)
	srv.ServeWorkers(q)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sink := &testutil.SyncWriter{}
	wctx, stopWorker := context.WithCancel(context.Background())
	w := worker.New(&worker.Client{Base: ts.URL, Name: "corr-w1"}, worker.Options{
		Concurrency: 1, CampaignWorkers: 2, Poll: 50 * time.Millisecond,
		Logger: telemetry.NewLogger(sink, 0 /* info */, "json"),
	})
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(wctx)
	}()
	defer func() {
		stopWorker()
		<-workerDone
	}()

	var submitted struct {
		ID string `json:"id"`
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": []campaign.CellSpec{testutil.MiniSpec("vectoradd", 5)}}, &submitted, http.StatusAccepted)
	testutil.WaitForJob(t, ts.URL, submitted.ID)

	// The job is done server-side, but the worker writes its completion
	// line after its Complete call returns — give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(sink.String(), `"msg":"cell completed"`) {
		if time.Now().After(deadline) {
			t.Fatalf("worker never logged the completion:\n%s", sink.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	logs := sink.String()
	if !strings.Contains(logs, `"job":"`+submitted.ID+`"`) {
		t.Fatalf("worker logs never mention the server-minted job id %s:\n%s", submitted.ID, logs)
	}
	for _, field := range []string{`"lease":"`, `"cell":"`} {
		if !strings.Contains(logs, field) {
			t.Fatalf("worker logs missing %s:\n%s", field, logs)
		}
	}
}
