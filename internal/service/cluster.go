package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Horizontal control plane. N fiservers may be started against one
// shared -cluster-dir (a directory on a common filesystem, next to the
// shared result/job stores): exactly one of them — the owner — opens
// the stores and serves traffic, the rest stand by answering 503 so
// clients and workers rotate to the owner. Ownership is agreed through
// the ownership journal, an append-only wire-format file (FileOwner) of
// epoch claim/heartbeat/release records:
//
//	standby ──claim (no live owner)──▶ active
//	active  ──heartbeat every TTL/3──▶ active
//	active  ──observes higher epoch──▶ deposed  (fenced out, stops serving)
//	active  ──Close────────────────────▶ released (a standby claims at once)
//
// A SIGKILLed owner simply stops heartbeating; when its last record
// ages past the takeover TTL a standby claims the next epoch, runs the
// ordinary PR-7 journal recovery over the shared job store — adopting
// every job the dead server left behind — and starts serving. Epochs
// are fencing tokens: claims must strictly exceed every epoch in the
// file, and an owner that sees a higher epoch than its own abdicates
// instead of split-braining, so at most one server believes it owns the
// stores once writes become visible. The protocol leans on the shared
// filesystem's append ordering and loosely synchronized clocks — the
// deployment it targets is a fleet on one host or one NFS volume, not a
// WAN consensus system (DESIGN.md spells out the model).

// DefaultTakeoverTTL is how stale an owner's last heartbeat must be
// before a standby claims ownership.
const DefaultTakeoverTTL = 10 * time.Second

// OwnershipFile is the ownership journal's filename inside the cluster
// directory.
const OwnershipFile = "ownership.fiwr"

// Cluster wraps a lazily-activated Server in the ownership state
// machine. It is the http.Handler the cluster-mode fiserver mounts:
// while standby every request answers 503 (code "unavailable"), and
// once this node claims ownership the activate hook builds the real
// handler — opening the shared stores and recovering the job journal —
// which serves from then on.
type Cluster struct {
	path     string
	server   string
	ttl      time.Duration
	activate func() (http.Handler, error)

	log       *slog.Logger
	now       func() time.Time
	onDeposed func()
	// onActive, when set, observes activation (test hook and boot log).
	onActive func(epoch uint64)

	mu      sync.Mutex
	state   string // "standby", "active" or "deposed"
	epoch   uint64
	handler http.Handler

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewCluster prepares a cluster member named serverID over dir's
// ownership journal. activate is called at most once, on the standby →
// active transition; it must open the shared stores, run job-store
// recovery and return the traffic handler. ttl <= 0 means
// DefaultTakeoverTTL.
func NewCluster(dir, serverID string, ttl time.Duration, activate func() (http.Handler, error)) *Cluster {
	if ttl <= 0 {
		ttl = DefaultTakeoverTTL
	}
	return &Cluster{
		path:     filepath.Join(dir, OwnershipFile),
		server:   serverID,
		ttl:      ttl,
		activate: activate,
		log:      slog.Default(),
		now:      time.Now,
		state:    "standby",
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetLogger replaces the cluster's logger.
func (c *Cluster) SetLogger(l *slog.Logger) {
	if l != nil {
		c.log = l
	}
}

// OnDeposed registers a hook invoked (once, from the heartbeat
// goroutine) when this node is fenced out by a higher epoch. The
// fiserver binary uses it to exit: a deposed node's in-memory state is
// stale by definition and a fresh boot rejoins as standby.
func (c *Cluster) OnDeposed(fn func()) { c.onDeposed = fn }

// State reports the node's current role and epoch.
func (c *Cluster) State() (string, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state, c.epoch
}

// Start attempts an immediate claim (so a lone server boots straight
// into active) and launches the background claim/heartbeat loop.
func (c *Cluster) Start() error {
	if _, err := c.tryClaim(); err != nil {
		return err
	}
	go c.loop()
	return nil
}

// Close stops the loop; an active node appends a release record so a
// standby peer can claim immediately instead of waiting out the TTL.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
	c.mu.Lock()
	active, epoch := c.state == "active", c.epoch
	c.mu.Unlock()
	if active {
		c.append(wire.OwnerRecord{Epoch: epoch, Server: c.server, Event: wire.OwnerRelease})
		telemetry.ClusterActive.Set(0)
	}
}

// ServeHTTP gates traffic on ownership. /healthz always answers (load
// balancers must be able to probe a standby) and reports the role.
func (c *Cluster) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	state, epoch, h := c.state, c.epoch, c.handler
	c.mu.Unlock()
	if state == "active" && h != nil {
		h.ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		writeJSON(w, http.StatusOK, map[string]any{"status": state, "server": c.server, "epoch": epoch})
		return
	}
	httpError(w, http.StatusServiceUnavailable, "server %s is %s: it does not own the job store", c.server, state)
}

// loop is the background state machine: standbys poll for a stale
// owner, the owner heartbeats and watches for a usurping epoch.
func (c *Cluster) loop() {
	defer close(c.done)
	tick := c.ttl / 3
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		state, epoch := c.state, c.epoch
		c.mu.Unlock()
		switch state {
		case "standby":
			if _, err := c.tryClaim(); err != nil {
				c.log.Warn("cluster claim failed", "server", c.server, "err", err)
			}
		case "active":
			if err := c.beat(epoch); err != nil {
				c.log.Warn("cluster heartbeat failed", "server", c.server, "err", err)
			}
		case "deposed":
			return
		}
	}
}

// beat renews the owner's lease and checks for a usurper. Written
// before read: even if a concurrent claim lands first, the usurper's
// higher epoch wins the subsequent scan and this node deposes itself.
func (c *Cluster) beat(epoch uint64) error {
	if err := c.append(wire.OwnerRecord{Epoch: epoch, Server: c.server, Event: wire.OwnerBeat}); err != nil {
		return err
	}
	recs, err := c.read()
	if err != nil {
		return err
	}
	maxEpoch, owner, _ := ownerStatus(recs, c.now(), c.ttl)
	if maxEpoch > epoch || (maxEpoch == epoch && owner != c.server) {
		c.depose(maxEpoch, owner)
	}
	return nil
}

// depose fences this node out: it stops serving (back to 503s) and
// never reclaims — the deposed state is terminal for the process.
func (c *Cluster) depose(epoch uint64, owner string) {
	c.mu.Lock()
	c.state = "deposed"
	c.mu.Unlock()
	telemetry.ClusterActive.Set(0)
	telemetry.ClusterEpoch.Set(int64(epoch))
	c.log.Warn("cluster ownership lost", "server", c.server, "usurper", owner, "epoch", epoch)
	if c.onDeposed != nil {
		c.onDeposed()
	}
}

// tryClaim claims ownership if the journal shows no live owner. It
// returns whether this node is (now) the owner.
func (c *Cluster) tryClaim() (bool, error) {
	recs, err := c.read()
	if err != nil {
		return false, err
	}
	epoch, owner, live := ownerStatus(recs, c.now(), c.ttl)
	if live && owner != c.server {
		return false, nil
	}
	next := epoch + 1
	takeover := epoch > 0 && owner != c.server
	if err := c.append(wire.OwnerRecord{Epoch: next, Server: c.server, Event: wire.OwnerClaim}); err != nil {
		return false, err
	}
	// Two standbys may race to claim the same epoch; the journal's
	// append order is the tiebreak — the first claim at that epoch wins,
	// the loser stays standby and sees the winner's heartbeats.
	recs, err = c.read()
	if err != nil {
		return false, err
	}
	for _, rec := range recs {
		if rec.Event != wire.OwnerClaim || rec.Epoch < next {
			continue
		}
		if rec.Epoch > next || rec.Server != c.server {
			return false, nil
		}
		break
	}
	return true, c.activated(next, takeover)
}

// activated runs the activate hook and publishes the handler. An
// activation failure (corrupt store, bad journal) is fatal to the
// claim: the node releases the epoch and reports the error, rather than
// squatting on an ownership it cannot serve.
func (c *Cluster) activated(epoch uint64, takeover bool) error {
	h, err := c.activate()
	if err != nil {
		c.append(wire.OwnerRecord{Epoch: epoch, Server: c.server, Event: wire.OwnerRelease})
		return fmt.Errorf("cluster activation: %w", err)
	}
	c.mu.Lock()
	c.state = "active"
	c.epoch = epoch
	c.handler = h
	c.mu.Unlock()
	telemetry.ClusterActive.Set(1)
	telemetry.ClusterEpoch.Set(int64(epoch))
	if takeover {
		telemetry.ClusterTakeovers.Inc()
	}
	c.log.Info("cluster ownership claimed", "server", c.server, "epoch", epoch, "takeover", takeover)
	if c.onActive != nil {
		c.onActive(epoch)
	}
	return nil
}

// ownerStatus reduces the journal to (highest epoch, its server, live).
// An epoch is live while its latest record is not a release and is
// younger than the takeover TTL.
func ownerStatus(recs []wire.OwnerRecord, now time.Time, ttl time.Duration) (epoch uint64, server string, live bool) {
	var last wire.OwnerRecord
	for _, rec := range recs {
		if rec.Epoch >= last.Epoch {
			last = rec
		}
	}
	if last.Epoch == 0 {
		return 0, "", false
	}
	age := now.Sub(time.UnixMilli(last.UnixMillis))
	return last.Epoch, last.Server, last.Event != wire.OwnerRelease && age <= ttl
}

// read scans the ownership journal, tolerating a missing file (first
// boot) and a torn tail (a SIGKILL mid-append never forges a record).
func (c *Cluster) read() ([]wire.OwnerRecord, error) {
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	var recs []wire.OwnerRecord
	_, err = wire.ScanRecords(data, func(rec wire.Record) error {
		if rec.Kind != wire.RecOwner {
			return nil // future record kinds are skippable by contract
		}
		o, derr := wire.DecodeOwner(rec.Payload)
		if derr != nil {
			return derr
		}
		recs = append(recs, o)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ownership journal %s: %w", c.path, err)
	}
	return recs, nil
}

// append stamps and durably appends one record, healing any torn tail
// first (the writer-side half of the wire torn-tail rule). The record
// goes down in one write(2) at the healed offset and is fsynced before
// the call returns, matching the job journal's durability discipline.
func (c *Cluster) append(rec wire.OwnerRecord) error {
	rec.UnixMillis = c.now().UnixMilli()
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := os.ReadFile(c.path)
	if err != nil {
		return err
	}
	off := int64(0)
	if len(data) == 0 {
		hdr := wire.AppendHeader(nil, wire.FileOwner)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			return err
		}
		off = int64(len(hdr))
	} else {
		good, err := wire.ScanRecords(data, func(wire.Record) error { return nil })
		if err != nil {
			return fmt.Errorf("ownership journal %s: %w", c.path, err)
		}
		off = int64(good)
		if good < len(data) {
			if err := f.Truncate(off); err != nil {
				return err
			}
		}
	}
	buf := wire.AppendRecord(nil, wire.RecOwner, wire.EncodeOwner(rec))
	if _, err := f.WriteAt(buf, off); err != nil {
		return err
	}
	return f.Sync()
}
