package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/testutil"
)

func newTestServer(t *testing.T) (*Server, *campaign.Scheduler) {
	t.Helper()
	sched := campaign.New(campaign.Config{})
	return NewServer(sched), sched
}

func TestJobLifecycle(t *testing.T) {
	srv, sched := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var submitted struct {
		ID    string `json:"id"`
		Total int    `json:"total"`
	}
	req := map[string]any{"cells": []campaign.CellSpec{
		testutil.MiniSpec("vectoradd", 1),
		testutil.MiniSpec("transpose", 1),
		testutil.MiniSpec("vectoradd", 1), // duplicate: must dedup, not re-run
	}}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", req, &submitted, http.StatusAccepted)
	if submitted.ID == "" || submitted.Total != 3 {
		t.Fatalf("submit response %+v", submitted)
	}

	var status struct {
		State string      `json:"state"`
		Done  int         `json:"done"`
		Total int         `json:"total"`
		Cells []cellState `json:"cells"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if testutil.GetJSON(t, ts.URL, "/v1/jobs/"+submitted.ID, &status) != http.StatusOK {
			t.Fatal("status not OK")
		}
		if status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status.State != "done" || status.Done != 3 {
		t.Fatalf("final status %+v", status)
	}
	for i, c := range status.Cells {
		if c.State != "done" {
			t.Fatalf("cell %d: %+v", i, c)
		}
	}

	var result struct {
		Cells []jobResultRow `json:"cells"`
	}
	if testutil.GetJSON(t, ts.URL, "/v1/jobs/"+submitted.ID+"/result", &result) != http.StatusOK {
		t.Fatal("result not OK")
	}
	if len(result.Cells) != 3 {
		t.Fatalf("%d result rows", len(result.Cells))
	}
	for i, row := range result.Cells {
		if row.Result == nil || row.Result.Injections != 20 {
			t.Fatalf("row %d: %+v", i, row.Result)
		}
	}
	if result.Cells[0].Result.Outcomes != result.Cells[2].Result.Outcomes {
		t.Fatal("duplicate cells disagree")
	}
	if runs := sched.Stats().Runs; runs != 2 {
		t.Fatalf("3 cells (1 duplicate) caused %d executions, want 2", runs)
	}

	var stats struct {
		Runs       int64 `json:"runs"`
		StoreCells int   `json:"store_cells"`
	}
	if testutil.GetJSON(t, ts.URL, "/v1/stats", &stats) != http.StatusOK {
		t.Fatal("stats not OK")
	}
	if stats.Runs != 2 || stats.StoreCells != 2 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": []campaign.CellSpec{}}, nil, http.StatusBadRequest)
	testutil.PostJSON(t, ts.URL, "/v1/jobs",
		map[string]any{"cells": []campaign.CellSpec{{Chip: "no such chip", Benchmark: "vectoradd"}}},
		nil, http.StatusBadRequest)
	if testutil.GetJSON(t, ts.URL, "/v1/jobs/job-999999", nil) != http.StatusNotFound {
		t.Fatal("unknown job not 404")
	}
}

func TestResultConflictWhileRunning(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	// A batch big enough to still be running when we poll the result.
	var cells []campaign.CellSpec
	for i := uint64(0); i < 6; i++ {
		s := testutil.MiniSpec("matrixMul", 100+i)
		s.Injections = 150
		cells = append(cells, s)
	}
	testutil.PostJSON(t, ts.URL, "/v1/jobs", map[string]any{"cells": cells}, &submitted, http.StatusAccepted)
	code := testutil.GetJSON(t, ts.URL, "/v1/jobs/"+submitted.ID+"/result", nil)
	if code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("result while running: status %d", code)
	}
	// Cancel to avoid burning the rest of the batch.
	reqCancel, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+submitted.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(reqCancel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
}

func TestFigureStream(t *testing.T) {
	srv, sched := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	url := ts.URL + "/v1/figure?fig=1&n=10&seed=3&chips=Mini+NVIDIA&bench=vectoradd,transpose"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type %q", ct)
	}
	var cellEvents int
	var last figureEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev figureEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Event == "cell" {
			cellEvents++
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cellEvents != 2 {
		t.Fatalf("%d cell events, want 2 (2 benchmarks x 1 chip)", cellEvents)
	}
	if last.Event != "result" || last.Fig != "1" || last.Figure == nil {
		t.Fatalf("final event %+v", last)
	}
	if sched.Stats().Runs != 2 {
		t.Fatalf("figure ran %d campaigns, want 2", sched.Stats().Runs)
	}

	// A warm, unstreamed rerun answers entirely from the store.
	resp2, err := http.Get(url + "&stream=0")
	if err != nil {
		t.Fatal(err)
	}
	body := bufio.NewScanner(resp2.Body)
	lines := 0
	for body.Scan() {
		lines++
	}
	resp2.Body.Close()
	if lines != 1 {
		t.Fatalf("stream=0 emitted %d lines, want only the result", lines)
	}
	if sched.Stats().Runs != 2 {
		t.Fatal("warm figure rerun executed new campaigns")
	}
}

func TestFigureValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{
		"/v1/figure?fig=9",
		"/v1/figure?fig=1&n=bogus",
		"/v1/figure?fig=1&chips=no+such+chip",
		"/v1/figure?fig=1&bench=no-such-bench",
	} {
		if code := testutil.GetJSON(t, ts.URL, path, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, code)
		}
	}
}
