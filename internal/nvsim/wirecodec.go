package nvsim

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/wire"
)

// Wire codec for nvsim snapshots (gpu.SnapshotCodec): the memory image
// travels separately as content-addressed pages in the ladder file; the
// meta blob encoded here carries everything else — execution statistics
// and the per-SM scheduler state. The layout is private to nvsim and
// versioned only through the enclosing wire file version: a format
// change here requires a wire.Version bump.

// MarshalSnapshot implements gpu.SnapshotCodec.
func (d *Device) MarshalSnapshot(s gpu.Snapshot) (*gpu.MemImage, []byte, error) {
	snap, ok := s.(*snapshot)
	if !ok {
		return nil, nil, fmt.Errorf("nvsim: cannot marshal a %T snapshot", s)
	}
	var w wire.Writer
	w.I64(snap.cycle)
	w.I64(snap.stats.Cycles)
	w.I64(snap.stats.Instructions)
	w.I64(snap.stats.LaneInstructions)
	w.Int(snap.stats.Launches)
	w.F64(snap.stats.RegOcc.AllocUnitCycles)
	w.F64(snap.stats.LocalOcc.AllocUnitCycles)
	w.Int(snap.launches)
	w.Bool(snap.inflight != nil)
	if snap.inflight != nil {
		w.Int(snap.inflight.nextBlock)
		w.Int(snap.inflight.retired)
		w.I64(snap.inflight.launchStart)
	}
	w.I64(snap.bytes)
	w.U32(uint32(len(snap.sms)))
	for _, sm := range snap.sms {
		w.U32s(sm.regs)
		w.Blob(sm.shared)
		w.Bools(sm.slots)
		w.Int(sm.rrWarp)
		w.Int(sm.greedySlot)
		w.Int(sm.greedyWarp)
		w.U32(uint32(len(sm.blocks)))
		for _, blk := range sm.blocks {
			w.Bool(blk != nil)
			if blk == nil {
				continue
			}
			w.Int(blk.id)
			w.Int(blk.ctaX)
			w.Int(blk.ctaY)
			w.Int(blk.slot)
			w.Int(blk.regBase)
			w.Int(blk.regCount)
			w.Int(blk.shBase)
			w.Int(blk.shCount)
			w.Int(blk.live)
			w.Int(blk.arrived)
			w.I64(blk.allocCycle)
			w.U32(uint32(len(blk.warps)))
			for i := range blk.warps {
				wp := &blk.warps[i]
				w.Int(wp.idx)
				w.Int(wp.pc)
				w.U32(wp.valid)
				w.U32(wp.active)
				w.U32(wp.exited)
				w.U32(uint32(len(wp.stack)))
				for _, e := range wp.stack {
					w.U8(uint8(e.kind))
					w.Int(e.pc)
					w.U32(e.mask)
				}
				for _, p := range wp.preds {
					w.U32(p)
				}
				w.I64s(wp.regReady)
				for _, rdy := range wp.predReady {
					w.I64(rdy)
				}
				w.Bool(wp.atBarrier)
				w.Bool(wp.done)
				w.I64(wp.wakeAt)
				w.Int(wp.threadBase)
			}
		}
	}
	return snap.mem, w.Bytes(), nil
}

// stackEntryWireSize is the encoded size of one reconvergence stack
// entry, used to bound decode-time allocation by the input size.
const stackEntryWireSize = 1 + 8 + 4

// UnmarshalSnapshot implements gpu.SnapshotCodec. The returned snapshot
// references mem directly (which may alias a read-only mapping — the
// restore path only copies out of images, never into them).
func (d *Device) UnmarshalSnapshot(mem *gpu.MemImage, meta []byte) (gpu.Snapshot, error) {
	r := wire.NewReader(meta)
	snap := &snapshot{mem: mem}
	snap.cycle = r.I64()
	snap.stats.Cycles = r.I64()
	snap.stats.Instructions = r.I64()
	snap.stats.LaneInstructions = r.I64()
	snap.stats.Launches = r.Int()
	snap.stats.RegOcc.AllocUnitCycles = r.F64()
	snap.stats.LocalOcc.AllocUnitCycles = r.F64()
	snap.launches = r.Int()
	if r.Bool() {
		snap.inflight = &inflightImage{
			nextBlock:   r.Int(),
			retired:     r.Int(),
			launchStart: r.I64(),
		}
	}
	snap.bytes = r.I64()
	nsm := int(r.U32())
	if r.Err() != nil {
		return nil, fmt.Errorf("nvsim: snapshot meta: %w", r.Err())
	}
	if nsm < 0 || nsm > r.Remaining() {
		return nil, fmt.Errorf("nvsim: snapshot meta: %w: implausible SM count %d", wire.ErrCorrupt, nsm)
	}
	snap.sms = make([]smImage, nsm)
	for i := range snap.sms {
		sm := &snap.sms[i]
		sm.regs = r.U32s()
		sm.shared = r.Blob()
		sm.slots = r.Bools()
		sm.rrWarp = r.Int()
		sm.greedySlot = r.Int()
		sm.greedyWarp = r.Int()
		nblk := int(r.U32())
		if r.Err() != nil {
			return nil, fmt.Errorf("nvsim: snapshot meta: %w", r.Err())
		}
		if nblk < 0 || nblk > r.Remaining() {
			return nil, fmt.Errorf("nvsim: snapshot meta: %w: implausible block count %d", wire.ErrCorrupt, nblk)
		}
		sm.blocks = make([]*blockImage, nblk)
		for slot := range sm.blocks {
			if !r.Bool() {
				continue
			}
			blk := &blockImage{
				id: r.Int(), ctaX: r.Int(), ctaY: r.Int(), slot: r.Int(),
				regBase: r.Int(), regCount: r.Int(),
				shBase: r.Int(), shCount: r.Int(),
				live: r.Int(), arrived: r.Int(), allocCycle: r.I64(),
			}
			nw := int(r.U32())
			if r.Err() != nil {
				return nil, fmt.Errorf("nvsim: snapshot meta: %w", r.Err())
			}
			if nw < 0 || nw > r.Remaining() {
				return nil, fmt.Errorf("nvsim: snapshot meta: %w: implausible warp count %d", wire.ErrCorrupt, nw)
			}
			blk.warps = make([]warpImage, nw)
			for wi := range blk.warps {
				wp := &blk.warps[wi]
				wp.idx = r.Int()
				wp.pc = r.Int()
				wp.valid = r.U32()
				wp.active = r.U32()
				wp.exited = r.U32()
				ns := int(r.U32())
				if r.Err() != nil {
					return nil, fmt.Errorf("nvsim: snapshot meta: %w", r.Err())
				}
				if ns > 0 {
					if ns > r.Remaining()/stackEntryWireSize {
						return nil, fmt.Errorf("nvsim: snapshot meta: %w: implausible stack depth %d", wire.ErrCorrupt, ns)
					}
					wp.stack = make([]stackEntry, ns)
					for si := range wp.stack {
						wp.stack[si] = stackEntry{kind: stackKind(r.U8()), pc: r.Int(), mask: r.U32()}
					}
				}
				for pi := 0; pi < sass.NumPreds; pi++ {
					wp.preds[pi] = r.U32()
				}
				wp.regReady = r.I64s()
				for pi := 0; pi < sass.NumPreds; pi++ {
					wp.predReady[pi] = r.I64()
				}
				wp.atBarrier = r.Bool()
				wp.done = r.Bool()
				wp.wakeAt = r.I64()
				wp.threadBase = r.Int()
			}
			sm.blocks[slot] = blk
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("nvsim: snapshot meta: %w", err)
	}
	return snap, nil
}
