package nvsim

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/sass"
)

// vecAddSrc: c[0]=A, c[1]=B, c[2]=OUT, c[3]=n.
const vecAddSrc = `
.kernel vecadd
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0       ; gid
    ISETP.GE P0, R3, c[3]
@P0 EXIT
    SHL R4, R3, 2
    IADD R5, R4, c[0]
    LDG R6, [R5]
    IADD R7, R4, c[1]
    LDG R8, [R7]
    FADD R9, R6, R8
    IADD R10, R4, c[2]
    STG [R10], R9
    EXIT
`

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestVecAdd(t *testing.T) {
	d := newTestDevice(t)
	prog, err := sass.Assemble(vecAddSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	const n = 100 // deliberately not a multiple of the block size
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = 2 * float32(i)
	}
	addrA, err := d.Mem().AllocFloats(a)
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := d.Mem().AllocFloats(b)
	if err != nil {
		t.Fatal(err)
	}
	addrC, err := d.Mem().Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Launch(gpu.LaunchSpec{
		Kernel: prog,
		Grid:   gpu.D1((n + 63) / 64),
		Group:  gpu.D1(64),
		Args:   []uint32{addrA, addrB, addrC, n},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := d.Mem().ReadFloats(addrC, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := 3 * float32(i); got[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
	st := d.Stats()
	if st.Cycles <= 0 || st.Instructions <= 0 || st.LaneInstructions <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.LaneInstructions < int64(n) {
		t.Fatalf("lane instructions %d < n=%d", st.LaneInstructions, n)
	}
}

// divergeSrc writes 1 for even tids and 2 for odd tids through an
// if/else realized with SSY/SYNC.
const divergeSrc = `
.kernel diverge
    S2R R0, SR_TID.X
    AND R1, R0, 1
    ISETP.EQ P0, R1, 0
    SHL R2, R0, 2
    IADD R3, R2, c[0]
    SSY join
@!P0 BRA odd
    MOV R4, 1
    STG [R3], R4
    SYNC
odd:
    MOV R4, 2
    STG [R3], R4
    SYNC
join:
    EXIT
`

func TestDivergenceSSYSync(t *testing.T) {
	d := newTestDevice(t)
	prog, err := sass.Assemble(divergeSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	const n = 64
	out, err := d.Mem().Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Launch(gpu.LaunchSpec{
		Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(n),
		Args: []uint32{out},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := d.Mem().ReadWords(out, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := uint32(1)
		if i%2 == 1 {
			want = 2
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

// reverseSharedSrc reverses 128 words within a block via shared memory,
// exercising STS/LDS and BAR.SYNC across multiple warps.
const reverseSharedSrc = `
.kernel revshared
.shared 512
    S2R R0, SR_TID.X
    SHL R1, R0, 2          ; tid*4
    IADD R2, R1, c[0]
    LDG R3, [R2]
    STS [R1], R3
    BAR.SYNC
    MOV R4, 127
    ISUB R5, R4, R0        ; 127-tid
    SHL R6, R5, 2
    LDS R7, [R6]
    IADD R8, R1, c[1]
    STG [R8], R7
    EXIT
`

func TestSharedMemoryBarrier(t *testing.T) {
	d := newTestDevice(t)
	prog, err := sass.Assemble(reverseSharedSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	const n = 128
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(1000 + i)
	}
	addrIn, err := d.Mem().AllocWords(in)
	if err != nil {
		t.Fatal(err)
	}
	addrOut, err := d.Mem().Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Launch(gpu.LaunchSpec{
		Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(n),
		Args: []uint32{addrIn, addrOut},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := d.Mem().ReadWords(addrOut, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := in[n-1-i]; v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if occ := d.Stats().Occupancy(gpu.LocalMemory, int64(2*8<<10)); occ <= 0 {
		t.Fatalf("expected positive local-memory occupancy, got %v", occ)
	}
}

func TestFaultInjectionFlipsOutput(t *testing.T) {
	prog, err := sass.Assemble(vecAddSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	run := func(f *gpu.Fault) []float32 {
		d := newTestDevice(t)
		const n = 64
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = 1
			b[i] = 2
		}
		addrA, _ := d.Mem().AllocFloats(a)
		addrB, _ := d.Mem().AllocFloats(b)
		addrC, _ := d.Mem().Alloc(4 * n)
		d.InjectFault(f)
		err := d.Launch(gpu.LaunchSpec{
			Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(n),
			Args: []uint32{addrA, addrB, addrC, n},
		})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		out, err := d.Mem().ReadFloats(addrC, n)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	golden := run(nil)
	// Flip a high mantissa bit of R6 (the loaded A value) of thread 0 at
	// a cycle early enough to hit the live interval in most schedules;
	// scan a few cycles to find one that manifests.
	manifested := false
	for c := int64(1); c < 2000 && !manifested; c += 7 {
		faulty := run(&gpu.Fault{
			Structure: gpu.RegisterFile, Unit: 0,
			Entry: 6, Bit: 22, Cycle: c,
		})
		for i := range faulty {
			if faulty[i] != golden[i] {
				manifested = true
				break
			}
		}
	}
	if !manifested {
		t.Fatal("no injection manifested as SDC across the scanned cycles")
	}
}

func TestUnfitKernelRejected(t *testing.T) {
	d := newTestDevice(t)
	prog, err := sass.Assemble(".kernel big\n.shared 65536\nEXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32)})
	if err == nil {
		t.Fatal("expected residency failure for 64KB shared on 8KB SM")
	}
}

func TestWatchdogFires(t *testing.T) {
	d := newTestDevice(t)
	prog, err := sass.Assemble(`
.kernel spin
loop:
    BRA loop
    EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	d.SetWatchdog(5000)
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32)})
	if err != gpu.ErrWatchdog {
		t.Fatalf("got %v, want ErrWatchdog", err)
	}
}
