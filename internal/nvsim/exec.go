package nvsim

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/sass"
)

// latency returns the completion latency for an opcode class.
func (d *Device) latency(cl sass.Class) int64 {
	switch cl {
	case sass.ClassSFU:
		return int64(d.chip.SFULat)
	case sass.ClassLocalMem:
		return int64(d.chip.LocalLat)
	case sass.ClassGlobalMem:
		return int64(d.chip.GlobalLat)
	default:
		return int64(d.chip.ALULat)
	}
}

// depReady returns the cycle at which every register/predicate dependency
// of the instruction is available.
func (w *warp) depReady(in *sass.Instr) int64 {
	var t int64
	reg := func(r uint8) {
		if r != sass.RZ && int(r) < len(w.regReady) && w.regReady[r] > t {
			t = w.regReady[r]
		}
	}
	pred := func(p uint8) {
		if p != sass.PT && w.predReady[p] > t {
			t = w.predReady[p]
		}
	}
	pred(in.Guard.Pred)
	for _, o := range in.Src {
		if o.Kind == sass.OperandReg {
			reg(o.Reg)
		}
	}
	switch in.Op {
	case sass.OpLDG, sass.OpSTG, sass.OpLDS, sass.OpSTS:
		reg(in.MemBase)
	}
	reg(in.Dst) // WAW
	if in.Op == sass.OpISETP || in.Op == sass.OpFSETP {
		pred(in.PDst)
	}
	if in.Op == sass.OpSEL {
		pred(in.PSrc)
	}
	return t
}

// regIndex maps (warp, lane, architectural register) to the physical
// register-file entry within the SM.
func regIndex(w *warp, lc *launchCtx, lane int, r uint8) int {
	return w.blk.regBase + (w.threadBase+lane)*lc.prog.NumRegs + int(r)
}

// readReg reads an architectural register for one lane.
func (d *Device) readReg(s *sm, w *warp, lc *launchCtx, lane int, r uint8) uint32 {
	if r == sass.RZ {
		return 0
	}
	idx := regIndex(w, lc, lane, r)
	if t := d.tracer; t != nil {
		t.RegAccess(s.id, idx, d.cycle, false)
	}
	return s.regs[idx]
}

// writeReg writes an architectural register for one lane.
func (d *Device) writeReg(s *sm, w *warp, lc *launchCtx, lane int, r uint8, v uint32) {
	if r == sass.RZ {
		return
	}
	idx := regIndex(w, lc, lane, r)
	if t := d.tracer; t != nil {
		t.RegAccess(s.id, idx, d.cycle, true)
	}
	s.regs[idx] = v
}

// readOperand evaluates a source operand for one lane.
func (d *Device) readOperand(s *sm, w *warp, lc *launchCtx, lane int, o sass.Operand) uint32 {
	switch o.Kind {
	case sass.OperandReg:
		return d.readReg(s, w, lc, lane, o.Reg)
	case sass.OperandImm:
		return o.Imm
	case sass.OperandConst:
		return lc.args[o.CIdx]
	default:
		return 0
	}
}

// guardMask returns the lanes whose guard predicate holds.
func (w *warp) guardMask(g sass.Guard) uint32 {
	if g.Pred == sass.PT {
		if g.Neg {
			return 0
		}
		return ^uint32(0)
	}
	m := w.preds[g.Pred]
	if g.Neg {
		m = ^m
	}
	return m
}

// unwind pops the SIMT stack while the active mask is empty; it marks the
// warp done when the stack is exhausted.
func (d *Device) unwind(s *sm, w *warp) {
	for w.active == 0 {
		if len(w.stack) == 0 {
			d.finishWarp(s, w)
			return
		}
		e := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.pc = e.pc
		w.active = e.mask &^ w.exited
	}
}

// finishWarp retires a warp and releases a barrier that was waiting only
// on already-finished warps.
func (d *Device) finishWarp(s *sm, w *warp) {
	if w.done {
		return
	}
	w.done = true
	blk := w.blk
	blk.live--
	s.liveWarp--
	if blk.live > 0 && blk.arrived >= blk.live {
		releaseBarrier(blk, d.cycle)
	}
}

func releaseBarrier(blk *block, cycle int64) {
	blk.arrived = 0
	for _, w := range blk.warps {
		if !w.done && w.atBarrier {
			w.atBarrier = false
			w.wakeAt = cycle
		}
	}
}

// tryIssue attempts to issue the warp's next instruction at the current
// cycle. It returns (issued, wakeCycle, error); wakeCycle is meaningful
// when issued is false and indicates when the blocking dependency clears.
func (d *Device) tryIssue(s *sm, w *warp, lc *launchCtx) (bool, int64, error) {
	if w.pc < 0 || w.pc >= len(lc.prog.Instrs) {
		return false, 0, fmt.Errorf("nvsim: kernel %s: invalid PC %d (warp %d of block %d)",
			lc.prog.Name, w.pc, w.idx, w.blk.id)
	}
	in := &lc.prog.Instrs[w.pc]
	if ready := w.depReady(in); ready > d.cycle {
		return false, ready, nil
	}
	exec := w.active & w.guardMask(in.Guard)

	d.stats.Instructions++
	d.stats.LaneInstructions += int64(popcount32(exec))
	lat := d.latency(sass.OpClass(in.Op))

	switch in.Op {
	case sass.OpNOP:
		w.pc++

	case sass.OpEXIT:
		w.exited |= exec
		w.active &^= exec
		if exec == 0 {
			w.pc++
		} else if w.active == 0 {
			d.unwind(s, w)
		} else {
			w.pc++
		}

	case sass.OpBRA:
		taken := exec
		notTaken := w.active &^ taken
		switch {
		case taken == 0:
			w.pc++
		case notTaken == 0:
			w.pc = in.Target
		default:
			w.stack = append(w.stack, stackEntry{kind: stackDIV, pc: in.Target, mask: taken})
			w.active = notTaken
			w.pc++
		}

	case sass.OpSSY:
		w.stack = append(w.stack, stackEntry{kind: stackSSY, pc: in.Target, mask: w.active})
		w.pc++

	case sass.OpSYNC:
		if len(w.stack) == 0 {
			return false, 0, fmt.Errorf("nvsim: kernel %s: SYNC with empty SIMT stack at PC %d",
				lc.prog.Name, w.pc)
		}
		e := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.pc = e.pc
		w.active = e.mask &^ w.exited
		if w.active == 0 {
			d.unwind(s, w)
		}

	case sass.OpBAR:
		w.pc++
		w.atBarrier = true
		w.blk.arrived++
		if w.blk.arrived >= w.blk.live {
			releaseBarrier(w.blk, d.cycle)
		}

	case sass.OpS2R:
		for lane := 0; lane < 32; lane++ {
			if exec&(1<<lane) == 0 {
				continue
			}
			d.writeReg(s, w, lc, lane, in.Dst, d.specialReg(w, lc, lane, in.SR))
		}
		w.regReady[in.Dst] = d.cycle + lat
		w.pc++

	case sass.OpISETP, sass.OpFSETP:
		var setMask uint32
		for lane := 0; lane < 32; lane++ {
			if exec&(1<<lane) == 0 {
				continue
			}
			a := d.readOperand(s, w, lc, lane, in.Src[0])
			b := d.readOperand(s, w, lc, lane, in.Src[1])
			var res bool
			if in.Op == sass.OpISETP {
				res = in.Cmp.EvalI(int32(a), int32(b))
			} else {
				res = in.Cmp.EvalF(math.Float32frombits(a), math.Float32frombits(b))
			}
			if res {
				setMask |= 1 << lane
			}
		}
		w.preds[in.PDst] = (w.preds[in.PDst] &^ exec) | setMask
		w.predReady[in.PDst] = d.cycle + lat
		w.pc++

	case sass.OpLDG, sass.OpSTG:
		if err := d.execGlobal(s, w, lc, in, exec); err != nil {
			return false, 0, err
		}
		if in.Op == sass.OpLDG && in.Dst != sass.RZ {
			w.regReady[in.Dst] = d.cycle + lat
		}
		w.pc++

	case sass.OpLDS, sass.OpSTS:
		if err := d.execShared(s, w, lc, in, exec); err != nil {
			return false, 0, err
		}
		if in.Op == sass.OpLDS && in.Dst != sass.RZ {
			w.regReady[in.Dst] = d.cycle + lat
		}
		w.pc++

	default: // register-to-register ALU/SFU ops
		for lane := 0; lane < 32; lane++ {
			if exec&(1<<lane) == 0 {
				continue
			}
			v := d.execALU(s, w, lc, lane, in)
			d.writeReg(s, w, lc, lane, in.Dst, v)
		}
		if in.Dst != sass.RZ {
			w.regReady[in.Dst] = d.cycle + lat
		}
		w.pc++
	}

	if w.pc >= len(lc.prog.Instrs) && !w.done && in.Op != sass.OpEXIT {
		// Fell off the end of the instruction stream: invalid control
		// flow (can be reached through fault-corrupted indices only via
		// EXIT-less paths, which the assembler rejects; keep it fatal).
		return false, 0, fmt.Errorf("nvsim: kernel %s: control flow fell off program end", lc.prog.Name)
	}
	return true, 0, nil
}

// specialReg evaluates S2R for one lane.
func (d *Device) specialReg(w *warp, lc *launchCtx, lane int, sr sass.SpecialReg) uint32 {
	t := w.threadBase + lane
	ntx, nty := lc.group.X, lc.group.Y
	if ntx <= 0 {
		ntx = 1
	}
	if nty <= 0 {
		nty = 1
	}
	switch sr {
	case sass.SRTidX:
		return uint32(t % ntx)
	case sass.SRTidY:
		return uint32((t / ntx) % nty)
	case sass.SRCtaidX:
		return uint32(w.blk.ctaX)
	case sass.SRCtaidY:
		return uint32(w.blk.ctaY)
	case sass.SRNTidX:
		return uint32(ntx)
	case sass.SRNTidY:
		return uint32(nty)
	case sass.SRNCtaidX:
		x := lc.grid.X
		if x <= 0 {
			x = 1
		}
		return uint32(x)
	case sass.SRNCtaidY:
		y := lc.grid.Y
		if y <= 0 {
			y = 1
		}
		return uint32(y)
	case sass.SRLaneID:
		return uint32(lane)
	case sass.SRWarpID:
		return uint32(w.idx)
	default:
		return 0
	}
}

// execALU computes one ALU/SFU result for one lane.
func (d *Device) execALU(s *sm, w *warp, lc *launchCtx, lane int, in *sass.Instr) uint32 {
	a := d.readOperand(s, w, lc, lane, in.Src[0])
	var b, c uint32
	if in.Src[1].Kind != sass.OperandNone {
		b = d.readOperand(s, w, lc, lane, in.Src[1])
	}
	if in.Src[2].Kind != sass.OperandNone {
		c = d.readOperand(s, w, lc, lane, in.Src[2])
	}
	fa := math.Float32frombits(a)
	fb := math.Float32frombits(b)
	fc := math.Float32frombits(c)

	switch in.Op {
	case sass.OpMOV:
		return a
	case sass.OpIADD:
		return a + b
	case sass.OpISUB:
		return a - b
	case sass.OpIMUL:
		return uint32(int32(a) * int32(b))
	case sass.OpIMIN:
		if int32(a) < int32(b) {
			return a
		}
		return b
	case sass.OpIMAX:
		if int32(a) > int32(b) {
			return a
		}
		return b
	case sass.OpAND:
		return a & b
	case sass.OpOR:
		return a | b
	case sass.OpXOR:
		return a ^ b
	case sass.OpSHL:
		return a << (b & 31)
	case sass.OpSHR:
		return a >> (b & 31)
	case sass.OpIMAD:
		return uint32(int32(a)*int32(b) + int32(c))
	case sass.OpFADD:
		return math.Float32bits(fa + fb)
	case sass.OpFSUB:
		return math.Float32bits(fa - fb)
	case sass.OpFMUL:
		return math.Float32bits(fa * fb)
	case sass.OpFMIN:
		return math.Float32bits(fminf(fa, fb))
	case sass.OpFMAX:
		return math.Float32bits(fmaxf(fa, fb))
	case sass.OpFFMA:
		return math.Float32bits(float32(math.FMA(float64(fa), float64(fb), float64(fc))))
	case sass.OpRCP:
		return math.Float32bits(1 / fa)
	case sass.OpEX2:
		return math.Float32bits(float32(math.Exp2(float64(fa))))
	case sass.OpLG2:
		return math.Float32bits(float32(math.Log2(float64(fa))))
	case sass.OpSQRT:
		return math.Float32bits(float32(math.Sqrt(float64(fa))))
	case sass.OpI2F:
		return math.Float32bits(float32(int32(a)))
	case sass.OpF2I:
		return uint32(f2i(fa))
	case sass.OpSEL:
		if w.preds[in.PSrc]&(1<<lane) != 0 || in.PSrc == sass.PT {
			return a
		}
		return b
	default:
		return 0
	}
}

// fminf follows GPU semantics: the non-NaN operand wins.
func fminf(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func fmaxf(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a > b:
		return a
	default:
		return b
	}
}

// f2i converts float32 to int32 with saturation (deterministic for NaN
// and out-of-range inputs, which fault-corrupted data can produce).
func f2i(f float32) int32 {
	if f != f {
		return 0
	}
	v := math.Trunc(float64(f))
	switch {
	case v > math.MaxInt32:
		return math.MaxInt32
	case v < math.MinInt32:
		return math.MinInt32
	default:
		return int32(v)
	}
}

// execGlobal performs LDG/STG for all active lanes.
func (d *Device) execGlobal(s *sm, w *warp, lc *launchCtx, in *sass.Instr, exec uint32) error {
	for lane := 0; lane < 32; lane++ {
		if exec&(1<<lane) == 0 {
			continue
		}
		base := d.readReg(s, w, lc, lane, in.MemBase)
		addr := base + uint32(in.MemOff)
		if addr%4 != 0 {
			return fmt.Errorf("nvsim: kernel %s: misaligned global access %#x (PC %d)", lc.prog.Name, addr, w.pc)
		}
		if in.Op == sass.OpLDG {
			v, err := d.mem.Load32(addr)
			if err != nil {
				return fmt.Errorf("nvsim: kernel %s PC %d: %w", lc.prog.Name, w.pc, err)
			}
			d.writeReg(s, w, lc, lane, in.Dst, v)
		} else {
			v := d.readOperand(s, w, lc, lane, in.Src[0])
			if err := d.mem.Store32(addr, v); err != nil {
				return fmt.Errorf("nvsim: kernel %s PC %d: %w", lc.prog.Name, w.pc, err)
			}
		}
	}
	return nil
}

// execShared performs LDS/STS for all active lanes against the block's
// shared-memory window.
func (d *Device) execShared(s *sm, w *warp, lc *launchCtx, in *sass.Instr, exec uint32) error {
	blk := w.blk
	for lane := 0; lane < 32; lane++ {
		if exec&(1<<lane) == 0 {
			continue
		}
		base := d.readReg(s, w, lc, lane, in.MemBase)
		addr := base + uint32(in.MemOff)
		if addr%4 != 0 {
			return fmt.Errorf("nvsim: kernel %s: misaligned shared access %#x (PC %d)", lc.prog.Name, addr, w.pc)
		}
		if int(addr)+4 > blk.shCount {
			return fmt.Errorf("nvsim: kernel %s: shared access %#x beyond block allocation %d (PC %d)",
				lc.prog.Name, addr, blk.shCount, w.pc)
		}
		phys := blk.shBase + int(addr)
		if in.Op == sass.OpLDS {
			if t := d.tracer; t != nil {
				t.LocalAccess(s.id, phys, 4, d.cycle, false)
			}
			v := binary.LittleEndian.Uint32(s.shared[phys:])
			d.writeReg(s, w, lc, lane, in.Dst, v)
		} else {
			v := d.readOperand(s, w, lc, lane, in.Src[0])
			if t := d.tracer; t != nil {
				t.LocalAccess(s.id, phys, 4, d.cycle, true)
			}
			binary.LittleEndian.PutUint32(s.shared[phys:], v)
		}
	}
	return nil
}

var _ gpu.Device = (*Device)(nil)
