package nvsim

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sass"
)

// Checkpointed fast-forward: the golden run captures snapshots of the
// complete device state at scheduling boundaries (the top of the launch
// loop, where an iteration's dispatch/issue/retire work has not yet
// begun), and each injection restores the greatest snapshot below its
// fault cycle instead of re-simulating the fault-free prefix.
//
// Restoring arms resume mode: the host program is replayed from its
// start, device memory suppresses its already-applied allocations and
// uploads (gpu.Memory replay mode), Launch calls for launches the
// snapshot already completed return immediately, and the launch the
// snapshot interrupted re-enters the loop at the captured boundary.
// Because the loop's continuation depends only on the restored state,
// execution from that point is bit-identical to an uninterrupted run.

// snapshot is the nvsim implementation of gpu.Snapshot: a deep copy of
// every piece of state the launch loop reads or writes.
type snapshot struct {
	cycle int64
	stats gpu.RunStats
	mem   *gpu.MemImage
	sms   []smImage
	// launches is the number of completed Launch calls at capture; a
	// restore skips that many host launches before resuming.
	launches int
	// inflight carries the interrupted launch's loop state; nil when the
	// snapshot was taken between launches.
	inflight *inflightImage
	bytes    int64
}

// Cycle implements gpu.Snapshot.
func (s *snapshot) Cycle() int64 { return s.cycle }

// SizeBytes implements gpu.Snapshot.
func (s *snapshot) SizeBytes() int64 { return s.bytes }

// inflightImage is the interrupted launch's loop-local state.
type inflightImage struct {
	nextBlock   int
	retired     int
	launchStart int64
}

// smImage is the deep copy of one SM.
type smImage struct {
	regs   []uint32
	shared []byte
	slots  []bool
	blocks []*blockImage // indexed by slot; nil = free
	rrWarp int
	// greedySlot/greedyWarp locate the GTO head warp; -1 when there is
	// none worth re-finding (nil, retired or done — all of which the
	// issue logic treats identically to nil).
	greedySlot, greedyWarp int
}

type blockImage struct {
	id, ctaX, ctaY, slot int
	regBase, regCount    int
	shBase, shCount      int
	live, arrived        int
	allocCycle           int64
	warps                []warpImage
}

type warpImage struct {
	idx        int
	pc         int
	valid      uint32
	active     uint32
	exited     uint32
	stack      []stackEntry
	preds      [sass.NumPreds]uint32
	regReady   []int64
	predReady  [sass.NumPreds]int64
	atBarrier  bool
	done       bool
	wakeAt     int64
	threadBase int
}

// Snapshot implements gpu.Device: it captures the state between
// launches (mid-launch snapshots come from the checkpoint hook, which
// supplies the in-flight loop state).
func (d *Device) Snapshot() gpu.Snapshot { return d.capture(nil) }

// capture deep-copies the device state.
func (d *Device) capture(inflight *inflightImage) *snapshot {
	snap := &snapshot{
		cycle:    d.cycle,
		stats:    d.stats,
		mem:      d.mem.Image(),
		launches: d.stats.Launches,
		inflight: inflight,
	}
	snap.bytes = snap.mem.SizeBytes()
	snap.sms = make([]smImage, len(d.sms))
	for i, s := range d.sms {
		img := smImage{
			regs:       append([]uint32(nil), s.regs...),
			shared:     append([]byte(nil), s.shared...),
			slots:      append([]bool(nil), s.slots...),
			rrWarp:     s.rrWarp,
			greedySlot: -1, greedyWarp: -1,
		}
		img.blocks = make([]*blockImage, len(s.blocks))
		for slot, blk := range s.blocks {
			if blk == nil {
				continue
			}
			bi := &blockImage{
				id: blk.id, ctaX: blk.ctaX, ctaY: blk.ctaY, slot: blk.slot,
				regBase: blk.regBase, regCount: blk.regCount,
				shBase: blk.shBase, shCount: blk.shCount,
				live: blk.live, arrived: blk.arrived, allocCycle: blk.allocCycle,
			}
			bi.warps = make([]warpImage, len(blk.warps))
			for wi, w := range blk.warps {
				bi.warps[wi] = warpImage{
					idx: w.idx, pc: w.pc,
					valid: w.valid, active: w.active, exited: w.exited,
					stack:     append([]stackEntry(nil), w.stack...),
					preds:     w.preds,
					regReady:  append([]int64(nil), w.regReady...),
					predReady: w.predReady,
					atBarrier: w.atBarrier, done: w.done,
					wakeAt: w.wakeAt, threadBase: w.threadBase,
				}
				if s.greedy == w && !w.done {
					img.greedySlot, img.greedyWarp = slot, wi
				}
			}
			img.blocks[slot] = bi
		}
		snap.bytes += int64(4*len(img.regs) + len(img.shared) + len(img.slots))
		snap.sms[i] = img
	}
	return snap
}

// Restore implements gpu.Device. It replaces the execution state with
// the snapshot's and arms fast-forward resume; the armed fault, tracer
// and watchdog are left untouched.
func (d *Device) Restore(s gpu.Snapshot) error {
	snap, ok := s.(*snapshot)
	if !ok {
		return fmt.Errorf("nvsim: cannot restore a %T snapshot", s)
	}
	if len(snap.sms) != len(d.sms) ||
		(len(snap.sms) > 0 && (len(snap.sms[0].regs) != len(d.sms[0].regs) ||
			len(snap.sms[0].shared) != len(d.sms[0].shared))) {
		return fmt.Errorf("nvsim: snapshot geometry does not match chip %s", d.chip.Name)
	}
	if err := d.mem.SetImage(snap.mem); err != nil {
		return err
	}
	for i, img := range snap.sms {
		sm := d.sms[i]
		copy(sm.regs, img.regs)
		copy(sm.shared, img.shared)
		// Recycle the current residents, then rebuild the slot tables
		// from the image reusing retained object and slice capacity:
		// restore runs once per injection, so it must not allocate.
		sm.recycleBlocks()
		sm.slots = append(sm.slots[:0], img.slots...)
		if cap(sm.blocks) >= len(img.blocks) {
			sm.blocks = sm.blocks[:len(img.blocks)]
			clear(sm.blocks)
		} else {
			sm.blocks = make([]*block, len(img.blocks))
		}
		sm.rrWarp = img.rrWarp
		sm.greedy = nil
		sm.liveWarp = 0
		sm.order = sm.order[:0]
		for slot, bi := range img.blocks {
			if bi == nil {
				continue
			}
			blk := sm.takeBlock()
			blk.id, blk.ctaX, blk.ctaY, blk.slot = bi.id, bi.ctaX, bi.ctaY, bi.slot
			blk.regBase, blk.regCount = bi.regBase, bi.regCount
			blk.shBase, blk.shCount = bi.shBase, bi.shCount
			blk.live, blk.arrived, blk.allocCycle = bi.live, bi.arrived, bi.allocCycle
			sizeWarps(blk, len(bi.warps))
			for wi := range bi.warps {
				w := &bi.warps[wi]
				wp := warpAt(blk, wi)
				wp.blk, wp.idx, wp.pc = blk, w.idx, w.pc
				wp.valid, wp.active, wp.exited = w.valid, w.active, w.exited
				wp.stack = append(wp.stack[:0], w.stack...)
				wp.preds = w.preds
				wp.regReady = append(wp.regReady[:0], w.regReady...)
				wp.predReady = w.predReady
				wp.atBarrier, wp.done = w.atBarrier, w.done
				wp.wakeAt, wp.threadBase = w.wakeAt, w.threadBase
				if !w.done {
					sm.liveWarp++
				}
				if slot == img.greedySlot && wi == img.greedyWarp {
					sm.greedy = wp
				}
			}
			sm.blocks[slot] = blk
		}
	}
	d.stats = snap.stats
	d.cycle = snap.cycle
	d.resume = &resumeState{skip: snap.launches, inflight: snap.inflight}
	return nil
}

// SetCheckpointHook implements gpu.Device.
func (d *Device) SetCheckpointHook(next int64, fn func(s gpu.Snapshot) int64) {
	d.ckptFn = fn
	d.ckptNext = next
}

// resumeState tracks an armed fast-forward: skip counts the completed
// launches the host program will replay, inflight (when non-nil) is the
// loop state of the launch the snapshot interrupted.
type resumeState struct {
	skip     int
	inflight *inflightImage
}
