// Package nvsim is a cycle-level simulator of NVIDIA-style SIMT GPUs
// (G80, GT200, Fermi) executing the SASS-like ISA of internal/sass. It is
// the reproduction's stand-in for GPGPU-Sim 3.2.2, the substrate of the
// paper's GUFI tool.
//
// The model: a chip is a set of streaming multiprocessors (SMs). Thread
// blocks are dispatched to SMs subject to the chip's residency limits
// (resident blocks, resident warps, register file, shared memory). Each
// warp of 32 threads executes in lockstep with a SIMT reconvergence stack
// (SSY/SYNC), per-warp register scoreboarding with per-class latencies,
// and round-robin issue of up to IssueWidth warp instructions per SM per
// IssuePeriod cycles. Values are written architecturally at issue and
// become visible to dependents after the instruction latency, which is
// the standard trade-off for fault-injection simulators: the physical
// register file always holds the architectural values that a bit flip
// would corrupt on real hardware.
//
// Reliability hooks: InjectFault arms a single-bit flip on a physical
// register-file entry or shared-memory byte at an absolute device cycle;
// SetTracer streams every register/shared-memory access and every
// allocation interval to the ACE analysis.
package nvsim

import (
	"fmt"
	"math/bits"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/sass"
)

// DefaultWatchdog is the per-launch cycle budget when none is set.
const DefaultWatchdog = 50_000_000

// Device is one simulated NVIDIA GPU.
type Device struct {
	chip  *chips.Chip
	mem   *gpu.Memory
	sms   []*sm
	stats gpu.RunStats

	fault        *gpu.Fault
	faultApplied bool
	tracer       gpu.Tracer
	watchdog     int64

	cycle int64 // global device cycle, monotonic across launches

	// Checkpoint hook (armed on golden runs only; see snapshot.go).
	ckptFn   func(s gpu.Snapshot) int64
	ckptNext int64
	// resume is non-nil between Restore and the fast-forward re-entry.
	resume *resumeState
}

type sm struct {
	id     int
	regs   []uint32
	shared []byte

	blocks   []*block // resident blocks (slot index = position)
	slots    []bool   // slot occupancy
	rrWarp   int      // round-robin issue pointer
	greedy   *warp    // GTO: warp that issued most recently
	liveWarp int      // resident non-retired warps

	// order is the issue scan's scratch slice, rebuilt every cycle.
	// Keeping it on the SM (instead of a per-cycle allocation) removes
	// the dominant allocation site of the whole injection loop — ~95% of
	// bytes allocated per campaign came from rebuilding this slice.
	order []*warp
	// freeBlks recycles retired block objects (with their warp objects
	// and per-warp slices) so dispatch and snapshot-restore stop
	// allocating; every field is rewritten on reuse.
	freeBlks []*block
}

// takeBlock returns a recycled block or a fresh one. The caller must
// initialize every field; recycled warp objects keep their slice
// capacity but carry stale values.
func (s *sm) takeBlock() *block {
	if n := len(s.freeBlks); n > 0 {
		blk := s.freeBlks[n-1]
		s.freeBlks[n-1] = nil
		s.freeBlks = s.freeBlks[:n-1]
		return blk
	}
	return &block{}
}

// recycleBlocks moves every resident block to the freelist and clears
// the slot table.
func (s *sm) recycleBlocks() {
	for slot, blk := range s.blocks {
		if blk != nil {
			s.freeBlks = append(s.freeBlks, blk)
			s.blocks[slot] = nil
		}
		s.slots[slot] = false
	}
}

// warpAt returns blk.warps[w], reviving a recycled warp object when one
// is available. The caller must initialize every warp field.
func warpAt(blk *block, w int) *warp {
	wp := blk.warps[w]
	if wp == nil {
		wp = &warp{}
		blk.warps[w] = wp
	}
	return wp
}

// sizeWarps resizes blk.warps to n, keeping recycled warp objects within
// the retained capacity.
func sizeWarps(blk *block, n int) {
	if cap(blk.warps) >= n {
		blk.warps = blk.warps[:n]
		return
	}
	old := blk.warps[:cap(blk.warps)]
	blk.warps = make([]*warp, n)
	copy(blk.warps, old)
}

type block struct {
	id         int // linear block id in the grid
	ctaX, ctaY int
	slot       int
	regBase    int
	regCount   int
	shBase     int
	shCount    int
	warps      []*warp
	live       int // warps not yet done
	arrived    int // warps waiting at the barrier
	allocCycle int64
}

type stackKind uint8

const (
	stackSSY stackKind = iota
	stackDIV
)

type stackEntry struct {
	kind stackKind
	pc   int
	mask uint32
}

type warp struct {
	blk        *block
	idx        int // warp index within block
	pc         int
	valid      uint32 // lanes that carry real threads
	active     uint32 // current SIMT active mask
	exited     uint32 // lanes that executed EXIT
	stack      []stackEntry
	preds      [sass.NumPreds]uint32 // per-lane predicate bits
	regReady   []int64               // scoreboard: per architectural register
	predReady  [sass.NumPreds]int64
	atBarrier  bool
	done       bool
	wakeAt     int64 // earliest cycle worth re-examining this warp
	threadBase int   // linear thread id of lane 0 within the block
}

// launchCtx holds per-launch geometry shared by the execution helpers.
type launchCtx struct {
	prog      *sass.Program
	args      []uint32
	grid      gpu.Dim3
	group     gpu.Dim3
	threads   int // threads per block
	warpsPerB int
	regsPerB  int
	shPerB    int
}

// New creates a device for an NVIDIA chip configuration.
func New(chip *chips.Chip) (*Device, error) {
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	if chip.Vendor != gpu.NVIDIA {
		return nil, fmt.Errorf("nvsim: chip %s is not an NVIDIA configuration", chip.Name)
	}
	d := &Device{
		chip:     chip,
		mem:      gpu.NewMemory(chip.GlobalMemBytes),
		watchdog: DefaultWatchdog,
	}
	d.sms = make([]*sm, chip.Units)
	for i := range d.sms {
		d.sms[i] = &sm{
			id:     i,
			regs:   make([]uint32, chip.RegsPerUnit),
			shared: make([]byte, chip.LocalBytesPerUnit),
		}
	}
	return d, nil
}

// Name implements gpu.Device.
func (d *Device) Name() string { return d.chip.Name }

// Vendor implements gpu.Device.
func (d *Device) Vendor() gpu.Vendor { return gpu.NVIDIA }

// Mem implements gpu.Device.
func (d *Device) Mem() *gpu.Memory { return d.mem }

// Stats implements gpu.Device.
func (d *Device) Stats() gpu.RunStats { return d.stats }

// Units implements gpu.Device.
func (d *Device) Units() int { return d.chip.Units }

// RestorePageStats implements gpu.RestoreCoster: cumulative COW page
// copy/skip counts from snapshot restores into this device's memory.
func (d *Device) RestorePageStats() (copied, shared int64) { return d.mem.RestorePageStats() }

// StructSize implements gpu.Device.
func (d *Device) StructSize(st gpu.Structure) int { return d.chip.StructSize(st) }

// StructBits implements gpu.Device.
func (d *Device) StructBits(st gpu.Structure) int64 { return d.chip.StructBits(st) }

// ClockGHz implements gpu.Device.
func (d *Device) ClockGHz() float64 { return d.chip.ClockGHz }

// InjectFault implements gpu.Device.
func (d *Device) InjectFault(f *gpu.Fault) {
	d.fault = f
	d.faultApplied = false
}

// SetTracer implements gpu.Device.
func (d *Device) SetTracer(t gpu.Tracer) { d.tracer = t }

// SetWatchdog implements gpu.Device.
func (d *Device) SetWatchdog(maxCycles int64) {
	if maxCycles <= 0 {
		d.watchdog = DefaultWatchdog
		return
	}
	d.watchdog = maxCycles
}

// Reset implements gpu.Device.
func (d *Device) Reset() {
	d.mem.Reset()
	for _, s := range d.sms {
		clear(s.regs)
		clear(s.shared)
		s.recycleBlocks()
		s.blocks = s.blocks[:0]
		s.slots = s.slots[:0]
		s.rrWarp = 0
		s.greedy = nil
		s.liveWarp = 0
		s.order = s.order[:0]
	}
	d.stats = gpu.RunStats{}
	d.cycle = 0
	d.fault = nil
	d.faultApplied = false
	d.tracer = nil
	d.watchdog = DefaultWatchdog
	d.ckptFn = nil
	d.ckptNext = 0
	d.resume = nil
}

// Launch implements gpu.Device: it synchronously executes one kernel
// launch, advancing the device cycle counter. Under an armed
// fast-forward (see Restore) launches the snapshot already completed
// return immediately and the interrupted launch resumes mid-loop.
func (d *Device) Launch(spec gpu.LaunchSpec) error {
	prog, ok := spec.Kernel.(*sass.Program)
	if !ok {
		return fmt.Errorf("nvsim: kernel %T is not a *sass.Program", spec.Kernel)
	}
	if r := d.resume; r != nil {
		if r.skip > 0 {
			r.skip--
			return nil
		}
		// This is the launch the snapshot interrupted (or, for a
		// between-launch snapshot, the first launch after it): leave
		// replay mode and continue from the restored state.
		d.resume = nil
		d.mem.EndReplay()
		if inflight := r.inflight; inflight != nil {
			lc, _, err := d.prepare(prog, spec)
			if err != nil {
				return err
			}
			return d.launchLoop(lc, spec.Grid.Count(), inflight.nextBlock, inflight.retired, inflight.launchStart)
		}
	}
	lc, slotsPerSM, err := d.prepare(prog, spec)
	if err != nil {
		return err
	}

	// Initialize slot tables for this launch, recycling any residue from
	// an aborted previous launch and reusing table capacity.
	for _, s := range d.sms {
		s.recycleBlocks()
		if cap(s.blocks) >= slotsPerSM {
			s.blocks = s.blocks[:slotsPerSM]
			clear(s.blocks)
		} else {
			s.blocks = make([]*block, slotsPerSM)
		}
		if cap(s.slots) >= slotsPerSM {
			s.slots = s.slots[:slotsPerSM]
			clear(s.slots)
		} else {
			s.slots = make([]bool, slotsPerSM)
		}
		s.rrWarp = 0
		s.greedy = nil
		s.liveWarp = 0
	}
	return d.launchLoop(lc, spec.Grid.Count(), 0, 0, d.cycle)
}

// launchLoop runs the launch's dispatch/issue/retire loop from the given
// progress point. Its top is the deterministic boundary where checkpoint
// snapshots are captured and where restored launches re-enter, so the
// continuation of a restored run is bit-identical to the original.
func (d *Device) launchLoop(lc *launchCtx, totalBlocks, nextBlock, retired int, launchStart int64) error {
	period := int64(d.chip.IssuePeriod)

	for retired < totalBlocks {
		if d.cycle-launchStart > d.watchdog {
			return gpu.ErrWatchdog
		}
		if d.ckptFn != nil && d.cycle >= d.ckptNext {
			snap := d.capture(&inflightImage{nextBlock: nextBlock, retired: retired, launchStart: launchStart})
			if next := d.ckptFn(snap); next > d.cycle {
				d.ckptNext = next
			} else {
				d.ckptFn = nil
			}
		}
		d.applyFault()

		// Dispatch pending blocks to free slots.
		for _, s := range d.sms {
			if nextBlock >= totalBlocks {
				break
			}
			for slot := 0; slot < len(s.slots) && nextBlock < totalBlocks; slot++ {
				if s.slots[slot] {
					continue
				}
				d.dispatch(s, slot, nextBlock, lc)
				nextBlock++
			}
		}

		// Issue up to IssueWidth ready warps per SM, round-robin.
		progress := false
		nextWake := int64(1) << 62
		for _, s := range d.sms {
			if s.liveWarp == 0 {
				continue
			}
			issued, wake, err := d.issueSM(s, lc)
			if err != nil {
				return err
			}
			if issued > 0 {
				progress = true
			}
			if wake < nextWake {
				nextWake = wake
			}
			// Retire completed blocks, freeing their slots.
			for slot, blk := range s.blocks {
				if blk != nil && blk.live == 0 {
					d.retire(s, slot, blk)
					retired++
					progress = true
				}
			}
		}

		if retired >= totalBlocks {
			break
		}
		// Advance time: step by the issue period when making progress,
		// otherwise jump straight to the next scoreboard wake-up.
		if progress || nextWake <= d.cycle {
			d.cycle += period
		} else if nextWake < (int64(1) << 62) {
			d.cycle = nextWake
		} else {
			// No warp can ever become ready: all remaining warps wait at
			// a barrier that cannot be satisfied.
			return fmt.Errorf("nvsim: deadlock at cycle %d (barrier starvation)", d.cycle)
		}
	}
	d.stats.Cycles = d.cycle
	d.stats.Launches++
	return nil
}

// prepare validates the launch and computes residency.
func (d *Device) prepare(prog *sass.Program, spec gpu.LaunchSpec) (*launchCtx, int, error) {
	c := d.chip
	threads := spec.Group.Count()
	if threads <= 0 {
		return nil, 0, fmt.Errorf("nvsim: empty thread block")
	}
	if spec.Grid.Count() <= 0 {
		return nil, 0, fmt.Errorf("nvsim: empty grid")
	}
	if len(spec.Args) < prog.NumParams {
		return nil, 0, fmt.Errorf("nvsim: kernel %s reads %d params, launch provides %d",
			prog.Name, prog.NumParams, len(spec.Args))
	}
	warpsPerB := (threads + c.WarpWidth - 1) / c.WarpWidth
	regsPerB := warpsPerB * c.WarpWidth * prog.NumRegs
	shPerB := prog.SharedBytes

	limit := c.MaxGroupsPerUnit
	if byWarps := c.MaxWarpsPerUnit / warpsPerB; byWarps < limit {
		limit = byWarps
	}
	if regsPerB > 0 {
		if byRegs := c.RegsPerUnit / regsPerB; byRegs < limit {
			limit = byRegs
		}
	}
	if shPerB > 0 {
		if bySh := c.LocalBytesPerUnit / shPerB; bySh < limit {
			limit = bySh
		}
	}
	if limit <= 0 {
		return nil, 0, fmt.Errorf("nvsim: kernel %s (%d regs/thread, %d shared bytes, %d threads) does not fit on %s",
			prog.Name, prog.NumRegs, shPerB, threads, c.Name)
	}
	return &launchCtx{
		prog: prog, args: spec.Args, grid: spec.Grid, group: spec.Group,
		threads: threads, warpsPerB: warpsPerB, regsPerB: regsPerB, shPerB: shPerB,
	}, limit, nil
}

// dispatch places grid block blockID into the given SM slot.
func (d *Device) dispatch(s *sm, slot, blockID int, lc *launchCtx) {
	gx := lc.grid.X
	if gx <= 0 {
		gx = 1
	}
	blk := s.takeBlock()
	blk.id = blockID
	blk.ctaX = blockID % gx
	blk.ctaY = blockID / gx
	blk.slot = slot
	blk.regBase = slot * lc.regsPerB
	blk.regCount = lc.regsPerB
	blk.shBase = slot * lc.shPerB
	blk.shCount = lc.shPerB
	blk.live = lc.warpsPerB
	blk.arrived = 0
	blk.allocCycle = d.cycle
	ww := d.chip.WarpWidth
	sizeWarps(blk, lc.warpsPerB)
	for w := range blk.warps {
		base := w * ww
		var valid uint32
		n := lc.threads - base
		if n >= ww {
			valid = ^uint32(0)
		} else {
			valid = (uint32(1) << n) - 1
		}
		wp := warpAt(blk, w)
		wp.blk = blk
		wp.idx = w
		wp.pc = 0
		wp.valid = valid
		wp.active = valid
		wp.exited = 0
		wp.stack = wp.stack[:0]
		wp.preds = [sass.NumPreds]uint32{}
		if cap(wp.regReady) >= lc.prog.NumRegs {
			wp.regReady = wp.regReady[:lc.prog.NumRegs]
			clear(wp.regReady)
		} else {
			wp.regReady = make([]int64, lc.prog.NumRegs)
		}
		wp.predReady = [sass.NumPreds]int64{}
		wp.atBarrier = false
		wp.done = false
		wp.wakeAt = 0
		wp.threadBase = base
	}
	s.blocks[slot] = blk
	s.slots[slot] = true
	s.liveWarp += lc.warpsPerB
	if t := d.tracer; t != nil {
		if blk.regCount > 0 {
			t.RegAlloc(s.id, blk.regBase, blk.regCount, d.cycle)
		}
		if blk.shCount > 0 {
			t.LocalAlloc(s.id, blk.shBase, blk.shCount, d.cycle)
		}
	}
}

// retire frees a completed block's resources and accounts occupancy.
func (d *Device) retire(s *sm, slot int, blk *block) {
	dur := float64(d.cycle - blk.allocCycle)
	d.stats.RegOcc.AllocUnitCycles += float64(blk.regCount) * dur
	d.stats.LocalOcc.AllocUnitCycles += float64(blk.shCount) * dur
	if t := d.tracer; t != nil {
		if blk.regCount > 0 {
			t.RegFree(s.id, blk.regBase, blk.regCount, d.cycle)
		}
		if blk.shCount > 0 {
			t.LocalFree(s.id, blk.shBase, blk.shCount, d.cycle)
		}
	}
	s.blocks[slot] = nil
	s.slots[slot] = false
	// A greedy pointer into the retired block is dead weight (every
	// consumer skips done warps); drop it so the recycled warp objects
	// can't be mistaken for the GTO head after reuse.
	if s.greedy != nil && s.greedy.blk == blk {
		s.greedy = nil
	}
	s.freeBlks = append(s.freeBlks, blk)
}

// applyFault flips the armed bit once the device cycle reaches its time.
func (d *Device) applyFault() {
	f := d.fault
	if f == nil || d.faultApplied || d.cycle < f.Cycle {
		return
	}
	d.faultApplied = true
	if f.Unit < 0 || f.Unit >= len(d.sms) {
		return
	}
	s := d.sms[f.Unit]
	switch f.Structure {
	case gpu.RegisterFile:
		if f.Entry >= 0 && f.Entry < len(s.regs) {
			s.regs[f.Entry] ^= f.Mask(32)
		}
	case gpu.LocalMemory:
		if f.Entry >= 0 && f.Entry < len(s.shared) {
			s.shared[f.Entry] ^= byte(f.Mask(8))
		}
	}
}

// issueSM attempts to issue up to IssueWidth ready warps on one SM.
// It returns the number issued and the earliest wake-up cycle among
// blocked warps (1<<62 when none is time-blocked).
func (d *Device) issueSM(s *sm, lc *launchCtx) (int, int64, error) {
	issued := 0
	nextWake := int64(1) << 62
	// Snapshot the resident warps in round-robin order into the SM's
	// persistent scratch slice (a fresh slice here was the injection
	// loop's dominant allocation site: one slice per SM per cycle).
	order := s.order[:0]
	for _, blk := range s.blocks {
		if blk == nil {
			continue
		}
		for _, w := range blk.warps {
			if !w.done {
				order = append(order, w)
			}
		}
	}
	s.order = order
	n := len(order)
	if n == 0 {
		return 0, nextWake, nil
	}
	// Greedy-then-oldest: the most recently issued warp gets first claim
	// on the slot; the fallback scan below is oldest-first because the
	// order slice follows block dispatch order.
	if d.chip.Scheduler == chips.SchedGTO {
		if g := s.greedy; g != nil && !g.done && !g.atBarrier && g.wakeAt <= d.cycle {
			ok, wake, err := d.tryIssue(s, g, lc)
			if err != nil {
				return issued, nextWake, err
			}
			if ok {
				issued++
			} else if wake > d.cycle {
				g.wakeAt = wake
				if wake < nextWake {
					nextWake = wake
				}
			}
		}
	}
	start := 0
	if d.chip.Scheduler == chips.SchedRR {
		start = s.rrWarp % n
	}
	for k := 0; k < n && issued < d.chip.IssueWidth; k++ {
		w := order[(start+k)%n]
		if w.done || w.atBarrier || (d.chip.Scheduler == chips.SchedGTO && w == s.greedy) {
			continue
		}
		if w.wakeAt > d.cycle {
			if w.wakeAt < nextWake {
				nextWake = w.wakeAt
			}
			continue
		}
		ok, wake, err := d.tryIssue(s, w, lc)
		if err != nil {
			return issued, nextWake, err
		}
		if ok {
			issued++
			s.rrWarp = (start + k + 1) % n
			s.greedy = w
		} else if wake > d.cycle {
			w.wakeAt = wake
			if wake < nextWake {
				nextWake = wake
			}
		}
	}
	return issued, nextWake, nil
}

// popcount32 counts set bits in a lane mask.
func popcount32(m uint32) int { return bits.OnesCount32(m) }
