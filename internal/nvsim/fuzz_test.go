package nvsim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/workloads"
)

// FuzzSnapshotRestore is the simulator-level half of the checkpointing
// proof: for arbitrary assembled programs and arbitrary snapshot cycles,
// capturing a snapshot mid-run, restoring it into a fresh device and
// re-driving the same host sequence must end in exactly the state and
// statistics of the uninterrupted run — including identical errors for
// programs that fault, deadlock or hit the watchdog. The seed corpus is
// the paper suite's real kernels, so the population covers every
// control-flow and memory shape the campaigns exercise.
func FuzzSnapshotRestore(f *testing.F) {
	for _, src := range workloads.KernelSources(gpu.NVIDIA) {
		f.Add(src, uint32(1000))
	}
	f.Add(".kernel k\nEXIT\n", uint32(0))
	f.Add(".kernel k\nMOV R0, 7\nloop:\nIADD R0, R0, 1\nBRA loop\nEXIT\n", uint32(5000))
	f.Fuzz(func(t *testing.T, src string, snapRaw uint32) {
		prog, err := sass.Assemble(src)
		if err != nil {
			return
		}
		chip := chips.MiniNVIDIA()
		const watchdog = 100_000
		snapCycle := int64(snapRaw % 60_000)

		// drive replays the deterministic host sequence: allocate and
		// fill a scratch buffer, then launch with every parameter
		// pointing into it (fault-free wild programs still abort
		// identically either way).
		drive := func(d *Device) error {
			buf, err := d.Mem().Alloc(4096)
			if err != nil {
				return err
			}
			words := make([]uint32, 1024)
			for i := range words {
				words[i] = uint32(i * 2654435761)
			}
			if err := d.Mem().WriteWords(buf, words); err != nil {
				return err
			}
			args := make([]uint32, prog.NumParams)
			for i := range args {
				args[i] = buf
			}
			return d.Launch(gpu.LaunchSpec{
				Kernel: prog, Grid: gpu.D1(2), Group: gpu.D1(64), Args: args,
			})
		}

		full, err := New(chip)
		if err != nil {
			t.Fatal(err)
		}
		full.SetWatchdog(watchdog)
		var snap gpu.Snapshot
		full.SetCheckpointHook(snapCycle, func(s gpu.Snapshot) int64 {
			snap = s
			return -1 // one capture per run
		})
		fullErr := drive(full)
		if snap == nil {
			// The run ended (or failed) before the snapshot cycle;
			// nothing to restore.
			return
		}

		resumed, err := New(chip)
		if err != nil {
			t.Fatal(err)
		}
		resumed.SetWatchdog(watchdog)
		if err := resumed.Restore(snap); err != nil {
			t.Fatalf("restore: %v", err)
		}
		resumedErr := drive(resumed)

		if fmt.Sprint(fullErr) != fmt.Sprint(resumedErr) {
			t.Fatalf("errors diverge: full=%v resumed=%v\nprogram:\n%s", fullErr, resumedErr, src)
		}
		if full.Stats() != resumed.Stats() {
			t.Fatalf("stats diverge:\nfull:    %+v\nresumed: %+v\nprogram:\n%s", full.Stats(), resumed.Stats(), src)
		}
		// The capture path deep-copies every piece of live state, so two
		// fresh snapshots are a complete, alias-free state comparison.
		if !reflect.DeepEqual(full.Snapshot(), resumed.Snapshot()) {
			t.Fatalf("device state diverges after resume (snapshot at cycle %d)\nprogram:\n%s", snap.Cycle(), src)
		}
	})
}
