package nvsim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/sass"
)

// runScalar executes a kernel with one thread and returns the word it
// stores to OUT (c[0]).
func runScalar(t *testing.T, body string, extraArgs ...uint32) uint32 {
	t.Helper()
	src := ".kernel t\n" + body + `
    MOV R30, c[0]
    STG [R30], R31
    EXIT
`
	prog, err := sass.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Mem().Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]uint32{out}, extraArgs...)
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(1), Args: args})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	v, err := d.Mem().Load32(out)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestALUSemantics(t *testing.T) {
	f32 := math.Float32bits
	cases := []struct {
		name string
		body string
		want uint32
	}{
		{"iadd", "MOV R1, 7\nIADD R31, R1, -3", 4},
		{"isub-wrap", "MOV R1, 0\nISUB R31, R1, 1", 0xFFFFFFFF},
		{"imul-neg", "MOV R1, -4\nIMUL R31, R1, 3", uint32(0xFFFFFFFF4 & 0xFFFFFFFF)},
		{"imad", "MOV R1, 5\nIMAD R31, R1, 6, 7", 37},
		{"imin", "MOV R1, -2\nIMIN R31, R1, 1", 0xFFFFFFFE},
		{"imax", "MOV R1, -2\nIMAX R31, R1, 1", 1},
		{"and", "MOV R1, 0xF0F0\nAND R31, R1, 0xFF00", 0xF000},
		{"shl", "MOV R1, 3\nSHL R31, R1, 4", 48},
		{"shr-logical", "MOV R1, 0x80000000\nSHR R31, R1, 31", 1},
		{"shl-mask", "MOV R1, 1\nSHL R31, R1, 33", 2}, // shift amounts mod 32
		{"fadd", "MOV R1, 1.5f\nFADD R31, R1, 2.25f", f32(3.75)},
		{"ffma", "MOV R1, 2.0f\nFFMA R31, R1, 3.0f, 4.0f", f32(10)},
		{"rcp", "MOV R1, 4.0f\nMUFU.RCP R31, R1", f32(0.25)},
		{"ex2", "MOV R1, 3.0f\nMUFU.EX2 R31, R1", f32(8)},
		{"lg2", "MOV R1, 8.0f\nMUFU.LG2 R31, R1", f32(3)},
		{"sqrt", "MOV R1, 9.0f\nMUFU.SQRT R31, R1", f32(3)},
		{"i2f", "MOV R1, -7\nI2F R31, R1", f32(-7)},
		{"f2i", "MOV R1, -2.75f\nF2I R31, R1", uint32(0xFFFFFFFE)}, // trunc toward zero
		{"rz-reads-zero", "IADD R31, RZ, 5", 5},
		{"sel-true", "MOV R1, 1\nISETP.EQ P0, R1, 1\nMOV R2, 10\nSEL R31, R2, 20, P0", 10},
		{"sel-false", "MOV R1, 1\nISETP.EQ P0, R1, 2\nMOV R2, 10\nSEL R31, R2, 20, P0", 20},
		{"fmin-nan", "MOV R1, 0x7FC00000\nFMIN R31, R1, 3.0f", f32(3)},
		{"fmax-nan", "MOV R1, 0x7FC00000\nFMAX R31, R1, 3.0f", f32(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runScalar(t, c.body); got != c.want {
				t.Fatalf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestF2ISaturation(t *testing.T) {
	// NaN -> 0; +huge -> MaxInt32; -huge -> MinInt32 (deterministic, since
	// fault-corrupted floats hit these paths).
	if got := runScalar(t, "MOV R1, 0x7FC00000\nF2I R31, R1"); got != 0 {
		t.Fatalf("NaN -> %#x", got)
	}
	if got := runScalar(t, "MOV R1, 0x7F000000\nF2I R31, R1"); got != math.MaxInt32 {
		t.Fatalf("+huge -> %#x", got)
	}
	if got := runScalar(t, "MOV R1, 0xFF000000\nF2I R31, R1"); int32(got) != math.MinInt32 {
		t.Fatalf("-huge -> %#x", got)
	}
}

func TestPredicatedExecution(t *testing.T) {
	// Guarded MOV must not touch the register when the guard is false.
	body := `
    MOV R31, 111
    MOV R1, 5
    ISETP.GT P1, R1, 9
@P1 MOV R31, 222
`
	if got := runScalar(t, body); got != 111 {
		t.Fatalf("false-guarded MOV executed: %d", got)
	}
}

func TestNestedDivergence(t *testing.T) {
	// Nested if/else over tid bits: out = (tid&1)*2 + (tid&2)/2 encoded
	// through two nested SSY regions.
	src := `
.kernel nest
    S2R R0, SR_TID.X
    SHL R1, R0, 2
    IADD R1, R1, c[0]
    AND R2, R0, 1
    AND R3, R0, 2
    MOV R10, 0
    ISETP.NE P0, R2, 0
    SSY outer
@!P0 BRA oskip
    IADD R10, R10, 2
    ISETP.NE P1, R3, 0
    SSY inner
@!P1 BRA iskip
    IADD R10, R10, 1
iskip:
    SYNC
inner:
oskip:
    SYNC
outer:
    ISETP.NE P2, R2, 0
@P2 BRA store
    ISETP.NE P3, R3, 0
    SSY fin
@!P3 BRA eskip
    IADD R10, R10, 1
eskip:
    SYNC
fin:
store:
    STG [R1], R10
    EXIT
`
	prog, err := sass.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Mem().Alloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32), Args: []uint32{out}}); err != nil {
		t.Fatal(err)
	}
	got, err := d.Mem().ReadWords(out, 32)
	if err != nil {
		t.Fatal(err)
	}
	for tid, v := range got {
		want := uint32(0)
		if tid&1 != 0 {
			want = 2
			if tid&2 != 0 {
				want++
			}
		} else if tid&2 != 0 {
			want = 1
		}
		if v != want {
			t.Fatalf("tid %d: got %d, want %d", tid, v, want)
		}
	}
}

func TestBadGlobalAccessIsError(t *testing.T) {
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	prog := sass.MustAssemble(".kernel bad\nMOV R1, 0x3FFFFF0\nLDG R2, [R1]\nEXIT\n")
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32)})
	if err == nil {
		t.Fatal("wild global load accepted")
	}
}

func TestMisalignedAccessIsError(t *testing.T) {
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	prog := sass.MustAssemble(".kernel mis\nMOV R1, 258\nLDG R2, [R1]\nEXIT\n")
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32)})
	if err == nil {
		t.Fatal("misaligned load accepted")
	}
}

func TestSharedOOBIsError(t *testing.T) {
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	prog := sass.MustAssemble(".kernel oob\n.shared 64\nMOV R1, 64\nLDS R2, [R1]\nEXIT\n")
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32)})
	if err == nil {
		t.Fatal("shared access beyond the block allocation accepted")
	}
}

func TestSyncEmptyStackIsError(t *testing.T) {
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	prog := sass.MustAssemble(".kernel s\nSYNC\nEXIT\n")
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32)})
	if err == nil {
		t.Fatal("SYNC with empty SIMT stack accepted")
	}
}

func TestOccupancyLimitedResidency(t *testing.T) {
	// A kernel with a big shared footprint limits resident blocks per SM;
	// the launch must still complete and occupancy must reflect it.
	chip := chips.MiniNVIDIA() // 8KB shared per SM
	d, err := New(chip)
	if err != nil {
		t.Fatal(err)
	}
	prog := sass.MustAssemble(`
.kernel fat
.shared 4096
    S2R R0, SR_TID.X
    SHL R1, R0, 2
    MOV R2, 1
    STS [R1], R2
    BAR.SYNC
    EXIT
`)
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(8), Group: gpu.D1(64)}); err != nil {
		t.Fatal(err)
	}
	occ := d.Stats().Occupancy(gpu.LocalMemory, int64(chip.Units)*int64(chip.LocalBytesPerUnit))
	if occ <= 0 || occ > 1 {
		t.Fatalf("occupancy %v", occ)
	}
}

func TestFaultInUnallocatedSpaceIsMasked(t *testing.T) {
	prog := sass.MustAssemble(vecAddSrc)
	run := func(f *gpu.Fault) []float32 {
		d, err := New(chips.MiniNVIDIA())
		if err != nil {
			t.Fatal(err)
		}
		const n = 64
		a := make([]float32, n)
		for i := range a {
			a[i] = 1
		}
		addrA, _ := d.Mem().AllocFloats(a)
		addrB, _ := d.Mem().AllocFloats(a)
		addrC, _ := d.Mem().Alloc(4 * n)
		d.InjectFault(f)
		if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(n),
			Args: []uint32{addrA, addrB, addrC, n}}); err != nil {
			t.Fatal(err)
		}
		out, _ := d.Mem().ReadFloats(addrC, n)
		return out
	}
	golden := run(nil)
	// SM 1 never receives a block (single-block launch): any flip there
	// must be masked.
	faulty := run(&gpu.Fault{Structure: gpu.RegisterFile, Unit: 1, Entry: 100, Bit: 15, Cycle: 50})
	for i := range golden {
		if golden[i] != faulty[i] {
			t.Fatal("flip in an idle SM changed the output")
		}
	}
}

// refALU mirrors the simulator's integer ALU semantics for the
// differential property test.
func refALU(op string, a, b int32) uint32 {
	ua, ub := uint32(a), uint32(b)
	switch op {
	case "IADD":
		return ua + ub
	case "ISUB":
		return ua - ub
	case "IMUL":
		return uint32(a * b)
	case "IMIN":
		if a < b {
			return ua
		}
		return ub
	case "IMAX":
		if a > b {
			return ua
		}
		return ub
	case "AND":
		return ua & ub
	case "OR":
		return ua | ub
	case "XOR":
		return ua ^ ub
	case "SHL":
		return ua << (ub & 31)
	case "SHR":
		return ua >> (ub & 31)
	default:
		panic(op)
	}
}

// TestRandomALUProgramsMatchReference generates random straight-line
// integer programs, executes them on the simulator and on a tiny Go
// reference interpreter, and requires identical results.
func TestRandomALUProgramsMatchReference(t *testing.T) {
	ops := []string{"IADD", "ISUB", "IMUL", "IMIN", "IMAX", "AND", "OR", "XOR", "SHL", "SHR"}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(seedVals [4]int32, choices []uint8) bool {
		if len(choices) == 0 || len(choices) > 30 {
			return true
		}
		regs := [8]uint32{}
		var src strings.Builder
		for i, v := range seedVals {
			fmt.Fprintf(&src, "MOV R%d, %d\n", i+1, v)
			regs[i+1] = uint32(v)
		}
		for i, ch := range choices {
			op := ops[int(ch)%len(ops)]
			ra := 1 + int(ch>>3)%4
			rb := 1 + int(ch>>5)%4
			rd := 1 + (i % 4)
			fmt.Fprintf(&src, "%s R%d, R%d, R%d\n", op, rd, ra, rb)
			regs[rd] = refALU(op, int32(regs[ra]), int32(regs[rb]))
		}
		src.WriteString("MOV R31, R1\n")
		got := runScalar(t, src.String())
		return got == regs[1]
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	prog := sass.MustAssemble(".kernel c\nMOV R1, 1\nEXIT\n")
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(2), Group: gpu.D1(64)}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	// 2 blocks x 2 warps x 2 instructions.
	if st.Instructions != 8 {
		t.Fatalf("instructions = %d, want 8", st.Instructions)
	}
	if st.LaneInstructions != 256 {
		t.Fatalf("lane instructions = %d, want 256", st.LaneInstructions)
	}
	if st.Launches != 1 {
		t.Fatalf("launches = %d", st.Launches)
	}
}

func TestResetRestoresPowerOn(t *testing.T) {
	d, err := New(chips.MiniNVIDIA())
	if err != nil {
		t.Fatal(err)
	}
	prog := sass.MustAssemble(".kernel c\nMOV R1, 1\nEXIT\n")
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32)}); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	st := d.Stats()
	if st.Cycles != 0 || st.Instructions != 0 || st.Launches != 0 {
		t.Fatalf("stats survive reset: %+v", st)
	}
}
