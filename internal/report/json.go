package report

import (
	"encoding/json"
	"io"

	"repro/internal/core"
)

// figureJSON is the machine-readable envelope for an AVF figure.
type figureJSON struct {
	Title     string       `json:"title"`
	Structure string       `json:"structure"`
	Chips     []string     `json:"chips"`
	Benches   []string     `json:"benchmarks"`
	Cells     []*core.Cell `json:"cells"`
	Averages  []*core.Cell `json:"averages"`
}

// WriteFigureJSON emits an AVF figure as one indented JSON document with
// cells flattened benchmark-major (the figures' bar order).
func WriteFigureJSON(w io.Writer, fig *core.Figure, title string) error {
	doc := figureJSON{
		Title:     title,
		Structure: fig.Structure.String(),
		Chips:     fig.ChipNames,
		Benches:   fig.BenchNames,
		Averages:  fig.Averages,
	}
	for _, row := range fig.Cells {
		doc.Cells = append(doc.Cells, row...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// epfJSON is the machine-readable envelope for the EPF figure.
type epfJSON struct {
	Title   string         `json:"title"`
	Chips   []string       `json:"chips"`
	Benches []string       `json:"benchmarks"`
	Rows    []*core.EPFRow `json:"rows"`
}

// WriteEPFJSON emits the EPF dataset as one indented JSON document.
func WriteEPFJSON(w io.Writer, data *core.FigureEPFData, title string) error {
	doc := epfJSON{Title: title, Chips: data.ChipNames, Benches: data.BenchNames}
	for _, row := range data.Rows {
		doc.Rows = append(doc.Rows, row...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
