// Package report renders the reproduction's experiment results as text
// tables matching the content of the paper's three figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// WriteFigure renders an AVF figure (Fig. 1 or Fig. 2): one row per
// (benchmark, chip) with AVF-FI, its 99% interval, AVF-ACE and occupancy.
func WriteFigure(w io.Writer, fig *core.Figure, title string) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title))); err != nil {
		return err
	}
	const hdr = "%-11s %-16s %8s %17s %8s %10s\n"
	const row = "%-11s %-16s %7.2f%% [%6.2f%%,%6.2f%%] %7.2f%% %9.2f%%\n"
	if _, err := fmt.Fprintf(w, hdr, "benchmark", "chip", "AVF-FI", "99% interval", "AVF-ACE", "occupancy"); err != nil {
		return err
	}
	for bi, bn := range fig.BenchNames {
		for ci, cn := range fig.ChipNames {
			c := fig.Cells[bi][ci]
			if _, err := fmt.Fprintf(w, row, bn, cn,
				100*c.AVFFI, 100*c.AVFFILo, 100*c.AVFFIHi, 100*c.AVFACE, 100*c.Occupancy); err != nil {
				return err
			}
		}
	}
	for ci, cn := range fig.ChipNames {
		c := fig.Averages[ci]
		if _, err := fmt.Fprintf(w, row, "average", cn,
			100*c.AVFFI, 0.0, 0.0, 100*c.AVFACE, 100*c.Occupancy); err != nil {
			return err
		}
		_ = ci
	}
	return nil
}

// WriteEPF renders Fig. 3: EPF per (benchmark, chip) on a log-friendly
// scientific notation, with the inputs that produced it.
func WriteEPF(w io.Writer, data *core.FigureEPFData, title string) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title))); err != nil {
		return err
	}
	const hdr = "%-11s %-16s %12s %12s %10s %10s\n"
	if _, err := fmt.Fprintf(w, hdr, "benchmark", "chip", "EPF", "exec (s)", "AVF-RF", "AVF-LM"); err != nil {
		return err
	}
	for bi, bn := range data.BenchNames {
		for ci, cn := range data.ChipNames {
			r := data.Rows[bi][ci]
			epf := fmt.Sprintf("%.3e", r.EPF)
			if r.EPF == 0 {
				epf = "inf"
			}
			if _, err := fmt.Fprintf(w, "%-11s %-16s %12s %12.3e %9.2f%% %9.2f%%\n",
				bn, cn, epf, r.Seconds, 100*r.RegAVF, 100*r.LocalAVF); err != nil {
				return err
			}
		}
	}
	return nil
}
