package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
)

func sampleFigure() *core.Figure {
	return &core.Figure{
		Structure:  gpu.RegisterFile,
		ChipNames:  []string{"Chip A", "Chip B"},
		BenchNames: []string{"bm1"},
		Cells: [][]*core.Cell{{
			{Chip: "Chip A", Benchmark: "bm1", AVFFI: 0.123, AVFFILo: 0.10, AVFFIHi: 0.15, AVFACE: 0.2, Occupancy: 0.5},
			{Chip: "Chip B", Benchmark: "bm1", AVFFI: 0.01, AVFFILo: 0.005, AVFFIHi: 0.02, AVFACE: 0.015, Occupancy: 0.1},
		}},
		Averages: []*core.Cell{
			{Chip: "Chip A", Benchmark: "average", AVFFI: 0.123, AVFACE: 0.2, Occupancy: 0.5},
			{Chip: "Chip B", Benchmark: "average", AVFFI: 0.01, AVFACE: 0.015, Occupancy: 0.1},
		},
	}
}

func TestWriteFigure(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigure(&sb, sampleFigure(), "Fig. X"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. X", "bm1", "Chip A", "Chip B", "12.30%", "average", "occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 7 {
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestWriteEPF(t *testing.T) {
	data := &core.FigureEPFData{
		ChipNames:  []string{"Chip A"},
		BenchNames: []string{"bm1", "bm2"},
		Rows: [][]*core.EPFRow{
			{{Chip: "Chip A", Benchmark: "bm1", EPF: 1.5e14, Seconds: 1e-4, RegAVF: 0.02, LocalAVF: 0.01}},
			{{Chip: "Chip A", Benchmark: "bm2", EPF: 0, Seconds: 2e-4}},
		},
	}
	var sb strings.Builder
	if err := WriteEPF(&sb, data, "Fig. 3"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 3", "1.500e+14", "bm2", "inf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
