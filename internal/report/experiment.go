package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
)

// WriteExperiment renders a full experiment result as text: one AVF
// table per structure (the figures' layout), then the EPF table and the
// protection what-if rows when the spec requested them.
func WriteExperiment(w io.Writer, res *experiment.Result) error {
	name := res.Spec.Name
	if name == "" {
		name = "experiment"
	}
	for _, tbl := range res.Tables {
		title := fmt.Sprintf("%s — %s AVF (%s, %d injections/campaign)",
			name, tbl.Structure, res.Spec.Estimator, res.Spec.Injections)
		if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title))); err != nil {
			return err
		}
		const hdr = "%-11s %-16s %8s %17s %8s %10s\n"
		const row = "%-11s %-16s %7.2f%% [%6.2f%%,%6.2f%%] %7.2f%% %9.2f%%\n"
		if _, err := fmt.Fprintf(w, hdr, "benchmark", "chip", "AVF-FI", "interval", "AVF-ACE", "occupancy"); err != nil {
			return err
		}
		for bi, bn := range res.Benchmarks {
			for ci, cn := range res.Chips {
				c := tbl.Cells[bi][ci]
				if _, err := fmt.Fprintf(w, row, bn, cn,
					100*c.AVFFI, 100*c.AVFFILo, 100*c.AVFFIHi, 100*c.AVFACE, 100*c.Occupancy); err != nil {
					return err
				}
			}
		}
		for ci, cn := range res.Chips {
			c := tbl.Averages[ci]
			if _, err := fmt.Fprintf(w, row, "average", cn,
				100*c.AVFFI, 0.0, 0.0, 100*c.AVFACE, 100*c.Occupancy); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if res.EPF != nil {
		title := name + " — Executions per Failure"
		if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title))); err != nil {
			return err
		}
		const hdr = "%-11s %-16s %12s %12s %10s %10s\n"
		if _, err := fmt.Fprintf(w, hdr, "benchmark", "chip", "EPF", "exec (s)", "AVF-RF", "AVF-LM"); err != nil {
			return err
		}
		for bi, bn := range res.Benchmarks {
			for ci, cn := range res.Chips {
				r := res.EPF.Rows[bi][ci]
				if _, err := fmt.Fprintf(w, "%-11s %-16s %12s %12.3e %9.2f%% %9.2f%%\n",
					bn, cn, epfString(r.EPF), r.Seconds, 100*r.RegAVF, 100*r.LocalAVF); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if len(res.Protection) > 0 {
		title := name + " — protection what-ifs"
		if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title))); err != nil {
			return err
		}
		const hdr = "%-14s %-11s %-16s %12s %10s %10s %9s %12s\n"
		if _, err := fmt.Fprintf(w, hdr, "config", "benchmark", "chip", "EPF", "SDC FIT", "DUE FIT", "slowdown", "extra bits"); err != nil {
			return err
		}
		for _, r := range res.Protection {
			if _, err := fmt.Fprintf(w, "%-14s %-11s %-16s %12s %10.1f %10.1f %8.1f%% %12d\n",
				r.Config, r.Benchmark, r.Chip, epfString(r.EPF), r.SDCFIT, r.DUEFIT, 100*r.Slowdown, r.ExtraBits); err != nil {
				return err
			}
		}
	}
	return nil
}

// epfString renders an EPF value, spelling out the zero-FIT infinity.
func epfString(epf float64) string {
	if epf == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.3e", epf)
}

// WriteExperimentJSON emits the experiment result as one indented JSON
// document — the same shape POST /v1/experiments returns in its final
// stream event.
func WriteExperimentJSON(w io.Writer, res *experiment.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
