package report

import (
	"bytes"
	"testing"

	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/workloads"
)

// TestFigureJSONDeterministicAcrossWorkers: the rendered figure JSON —
// the artifact campaigns ultimately exist to produce — must be
// byte-identical for any worker count and for adaptive vs fixed policies
// that realize the same sample, with a fixed seed. (The test lives here
// rather than in internal/core because report imports core.)
func TestFigureJSONDeterministicAcrossWorkers(t *testing.T) {
	b, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int, margin float64) []byte {
		t.Helper()
		opts := core.Options{
			Injections: 60,
			Seed:       9,
			Chips:      []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()},
			Benchmarks: []*workloads.Benchmark{b},
			Workers:    workers,
			Margin:     margin,
		}
		fig, err := core.FigureRegisterFile(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFigureJSON(&buf, fig, "determinism probe"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := render(1, 0)
	if got := render(8, 0); !bytes.Equal(got, want) {
		t.Fatalf("figure JSON differs across worker counts:\n%s\nvs\n%s", want, got)
	}
	// An unattainably tight margin runs adaptive campaigns to the cap,
	// so the figure must come out identical to the fixed-size run.
	if got := render(8, 1e-9); !bytes.Equal(got, want) {
		t.Fatalf("figure JSON differs between fixed and adaptive-capped runs:\n%s\nvs\n%s", want, got)
	}
}
