package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestWriteFigureJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureJSON(&sb, sampleFigure(), "Fig. X"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title     string `json:"title"`
		Structure string `json:"structure"`
		Chips     []string
		Cells     []*core.Cell
		Averages  []*core.Cell
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Title != "Fig. X" || doc.Structure != "register-file" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Cells) != 2 || len(doc.Averages) != 2 {
		t.Fatalf("cells/averages: %d/%d", len(doc.Cells), len(doc.Averages))
	}
	if doc.Cells[0].AVFFI != 0.123 {
		t.Fatalf("cell payload: %+v", doc.Cells[0])
	}
}

func TestWriteEPFJSON(t *testing.T) {
	data := &core.FigureEPFData{
		ChipNames:  []string{"Chip A"},
		BenchNames: []string{"bm1"},
		Rows: [][]*core.EPFRow{
			{{Chip: "Chip A", Benchmark: "bm1", EPF: 1.5e14, Seconds: 1e-4}},
		},
	}
	var sb strings.Builder
	if err := WriteEPFJSON(&sb, data, "Fig. 3"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []*core.EPFRow
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 1 || doc.Rows[0].EPF != 1.5e14 {
		t.Fatalf("rows: %+v", doc.Rows)
	}
}
