package worker

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

// startRemoteService builds a fiserver handler in remote-worker mode and
// returns its test server, scheduler and queue.
func startRemoteService(t *testing.T, ttl time.Duration) (*httptest.Server, *campaign.Scheduler, *campaign.LeaseQueue) {
	t.Helper()
	q := campaign.NewLeaseQueue(ttl)
	sched := campaign.New(campaign.Config{Executor: campaign.NewRemoteExecutor(q), Workers: 64})
	srv := service.NewServer(sched)
	srv.ServeWorkers(q)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, sched, q
}

func startWorker(t *testing.T, ts *httptest.Server, name string, opts Options) (*Worker, context.CancelFunc) {
	t.Helper()
	if opts.Poll == 0 {
		opts.Poll = 20 * time.Millisecond
	}
	w := New(&Client{Base: ts.URL, Name: name}, opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("worker did not stop")
		}
	})
	return w, cancel
}

func spec(bench string, seed uint64, n int) campaign.CellSpec {
	return campaign.CellSpec{Chip: "Mini NVIDIA", Benchmark: bench, Injections: n, Seed: seed}.Normalize()
}

func TestWorkerDrainsQueue(t *testing.T) {
	ts, sched, _ := startRemoteService(t, time.Minute)
	w, _ := startWorker(t, ts, "w1", Options{Concurrency: 2, CampaignWorkers: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	batch := []campaign.CellSpec{
		spec("vectoradd", 1, 30), spec("transpose", 1, 30), spec("vectoradd", 2, 30),
	}
	cs := make([]int, 0, len(batch))
	for i, s := range batch {
		c, err := s.Campaign()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.Run(ctx, c)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		cs = append(cs, res.Injections)
	}
	for i, n := range cs {
		if n != 30 {
			t.Fatalf("cell %d realized %d injections", i, n)
		}
	}
	// The queue releases waiters before the worker finishes reading the
	// completion response, so the counter may trail by a beat.
	deadline := time.Now().Add(5 * time.Second)
	for w.Completed() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := w.Completed(); got != 3 {
		t.Fatalf("worker completed %d cells, want 3", got)
	}
}

func TestWorkerReportsExecutionErrors(t *testing.T) {
	ts, _, q := startRemoteService(t, time.Minute)
	w, _ := startWorker(t, ts, "w1", Options{})

	bad := campaign.CellSpec{Chip: "no such chip", Benchmark: "vectoradd", Injections: 10}.Normalize()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := q.Do(ctx, campaign.Task{Spec: bad})
	if err == nil {
		t.Fatal("unknown chip executed successfully")
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Failed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Failed() != 1 {
		t.Fatalf("failed count %d, want 1", w.Failed())
	}
}

func TestWorkerSurvivesServerAbsence(t *testing.T) {
	// Point the worker at a dead address: Run must keep retrying, not
	// exit, and must stop promptly on cancel.
	w := New(&Client{Base: "http://127.0.0.1:1", Name: "w"}, Options{Poll: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("worker exited against a dead server: %v", err)
	default:
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop on cancel")
	}
}

func TestClientHeartbeatAgainstQueue(t *testing.T) {
	ts, _, q := startRemoteService(t, time.Minute)
	ctx := context.Background()
	go q.Do(ctx, campaign.Task{Spec: spec("vectoradd", 5, 10)})

	c := &Client{Base: ts.URL, Name: "w1"}
	var leases []campaign.Lease
	deadline := time.Now().Add(10 * time.Second)
	for len(leases) == 0 && time.Now().Before(deadline) {
		var err error
		leases, err = c.Lease(ctx, 1, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(leases) != 1 {
		t.Fatal("no lease")
	}
	alive, err := c.Heartbeat(ctx, leases[0].ID)
	if err != nil || !alive {
		t.Fatalf("heartbeat alive=%v err=%v", alive, err)
	}
	alive, err = c.Heartbeat(ctx, "lease-999999")
	if err != nil || alive {
		t.Fatalf("unknown lease heartbeat alive=%v err=%v", alive, err)
	}
}
