package worker

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

// startRemoteService builds a fiserver handler in remote-worker mode and
// returns its test server, scheduler and queue.
func startRemoteService(t *testing.T, ttl time.Duration) (*httptest.Server, *campaign.Scheduler, *campaign.LeaseQueue) {
	t.Helper()
	q := campaign.NewLeaseQueue(ttl)
	sched := campaign.New(campaign.Config{Executor: campaign.NewRemoteExecutor(q), Workers: 64})
	srv := service.NewServer(sched)
	srv.ServeWorkers(q)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, sched, q
}

func startWorker(t *testing.T, ts *httptest.Server, name string, opts Options) (*Worker, context.CancelFunc) {
	t.Helper()
	if opts.Poll == 0 {
		opts.Poll = 20 * time.Millisecond
	}
	w := New(&Client{Base: ts.URL, Name: name}, opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("worker did not stop")
		}
	})
	return w, cancel
}

func spec(bench string, seed uint64, n int) campaign.CellSpec {
	return campaign.CellSpec{Chip: "Mini NVIDIA", Benchmark: bench, Injections: n, Seed: seed}.Normalize()
}

func TestWorkerDrainsQueue(t *testing.T) {
	ts, sched, _ := startRemoteService(t, time.Minute)
	w, _ := startWorker(t, ts, "w1", Options{Concurrency: 2, CampaignWorkers: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	batch := []campaign.CellSpec{
		spec("vectoradd", 1, 30), spec("transpose", 1, 30), spec("vectoradd", 2, 30),
	}
	cs := make([]int, 0, len(batch))
	for i, s := range batch {
		c, err := s.Campaign()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.Run(ctx, c)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		cs = append(cs, res.Injections)
	}
	for i, n := range cs {
		if n != 30 {
			t.Fatalf("cell %d realized %d injections", i, n)
		}
	}
	// The queue releases waiters before the worker finishes reading the
	// completion response, so the counter may trail by a beat.
	deadline := time.Now().Add(5 * time.Second)
	for w.Completed() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := w.Completed(); got != 3 {
		t.Fatalf("worker completed %d cells, want 3", got)
	}
}

func TestWorkerReportsExecutionErrors(t *testing.T) {
	ts, _, q := startRemoteService(t, time.Minute)
	w, _ := startWorker(t, ts, "w1", Options{})

	bad := campaign.CellSpec{Chip: "no such chip", Benchmark: "vectoradd", Injections: 10}.Normalize()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := q.Do(ctx, campaign.Task{Spec: bad})
	if err == nil {
		t.Fatal("unknown chip executed successfully")
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Failed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Failed() != 1 {
		t.Fatalf("failed count %d, want 1", w.Failed())
	}
}

func TestWorkerSurvivesServerAbsence(t *testing.T) {
	// Point the worker at a dead address: Run must keep retrying, not
	// exit, and must stop promptly on cancel.
	w := New(&Client{Base: "http://127.0.0.1:1", Name: "w"}, Options{Poll: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("worker exited against a dead server: %v", err)
	default:
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop on cancel")
	}
}

// TestWorkerFailsOverToLiveServer points a worker at a two-server list
// whose first entry is dead: the first lease attempt rotates to the
// live server and the queue drains there, no configuration change
// needed.
func TestWorkerFailsOverToLiveServer(t *testing.T) {
	ts, sched, _ := startRemoteService(t, time.Minute)
	w := New(&Client{Base: "http://127.0.0.1:1, " + ts.URL, Name: "w"}, Options{Poll: 20 * time.Millisecond, CampaignWorkers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	defer func() { cancel(); <-done }()

	c, err := spec("vectoradd", 3, 20).Campaign()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != 20 {
		t.Fatalf("realized %d injections", res.Injections)
	}
}

// TestWorkerRotatesAwayFromStandby: a cluster standby answers every
// worker call 503; the client must stick to the active server after one
// bounce rather than alternating.
func TestWorkerRotatesAwayFromStandby(t *testing.T) {
	var standbyHits atomic.Int64
	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		standbyHits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":{"code":"unavailable","message":"standby"}}`)
	}))
	defer standby.Close()
	ts, sched, _ := startRemoteService(t, time.Minute)

	w := New(&Client{Base: standby.URL + "," + ts.URL, Name: "w"}, Options{Poll: 20 * time.Millisecond, CampaignWorkers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	defer func() { cancel(); <-done }()

	for i := 0; i < 3; i++ {
		c, err := spec("vectoradd", uint64(10+i), 20).Campaign()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Run(ctx, c); err != nil {
			t.Fatal(err)
		}
	}
	// Sticky rotation: the standby is consulted once (maybe twice under
	// races), never once per lease.
	if n := standbyHits.Load(); n > 2 {
		t.Fatalf("standby consulted %d times, want sticky failover", n)
	}
}

// TestClientBaseListParsing pins the comma-list contract: whitespace
// trimmed, trailing slashes dropped, single-server lists never rotate.
func TestClientBaseListParsing(t *testing.T) {
	c := &Client{Base: " http://a:1/ , http://b:2 "}
	if got := c.current(); got != "http://a:1" {
		t.Fatalf("current %q", got)
	}
	c.failover("http://a:1")
	if got := c.current(); got != "http://b:2" {
		t.Fatalf("after failover %q", got)
	}
	// A stale failover (loser of a race) must not advance the cursor.
	c.failover("http://a:1")
	if got := c.current(); got != "http://b:2" {
		t.Fatalf("after stale failover %q", got)
	}
	solo := &Client{Base: "http://only:1"}
	solo.failover(solo.current())
	if got := solo.current(); got != "http://only:1" {
		t.Fatalf("single-server rotated to %q", got)
	}
}

func TestClientHeartbeatAgainstQueue(t *testing.T) {
	ts, _, q := startRemoteService(t, time.Minute)
	ctx := context.Background()
	go q.Do(ctx, campaign.Task{Spec: spec("vectoradd", 5, 10)})

	c := &Client{Base: ts.URL, Name: "w1"}
	var leases []campaign.Lease
	deadline := time.Now().Add(10 * time.Second)
	for len(leases) == 0 && time.Now().Before(deadline) {
		var err error
		leases, err = c.Lease(ctx, 1, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(leases) != 1 {
		t.Fatal("no lease")
	}
	alive, err := c.Heartbeat(ctx, leases[0].ID)
	if err != nil || !alive {
		t.Fatalf("heartbeat alive=%v err=%v", alive, err)
	}
	alive, err = c.Heartbeat(ctx, "lease-999999")
	if err != nil || alive {
		t.Fatalf("unknown lease heartbeat alive=%v err=%v", alive, err)
	}
}
