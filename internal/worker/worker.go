// Package worker implements the fiworker side of the distributed
// campaign tier: an HTTP client for the fiserver worker protocol (lease /
// heartbeat / complete) and a pull-based worker loop that runs leased
// cells through the local deterministic injection engine and streams the
// results back. Because campaigns are deterministic functions of their
// spec, a cell computed here is byte-identical to one computed by the
// server or by any other worker — the fleet only moves work, never
// results.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/finject"
	"repro/internal/telemetry"
)

// Client speaks the fiserver worker protocol. It may be pointed at a
// whole cluster: Base accepts a comma-separated list of server URLs,
// and the client sticks to one until it fails (transport error or 5xx
// — a dead server or a standby answering 503), then rotates to the
// next. Determinism makes the servers interchangeable: whichever owner
// grants the lease, the cell's result is the same bytes.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080", or a
	// comma-separated list of them for a clustered control plane.
	Base string
	// Name identifies this worker in leases and server-side stats.
	Name string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	mu    sync.Mutex
	bases []string
	cur   int
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// current returns the server the client is currently stuck to, parsing
// Base on first use.
func (c *Client) current() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bases == nil {
		for _, b := range strings.Split(c.Base, ",") {
			if b = strings.TrimSpace(b); b != "" {
				c.bases = append(c.bases, strings.TrimRight(b, "/"))
			}
		}
		if len(c.bases) == 0 {
			c.bases = []string{""}
		}
	}
	return c.bases[c.cur]
}

// failover rotates to the next server, but only if from is still the
// current one — concurrent requests that all fail against the same
// server advance the cursor once, not once each.
func (c *Client) failover(from string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bases) > 1 && c.bases[c.cur] == from {
		c.cur = (c.cur + 1) % len(c.bases)
	}
}

// post sends one JSON request and decodes the JSON answer into out
// (ignored when nil). Non-2xx statuses become errors carrying the
// server's error body, with the status code retrievable via errStatus.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	base := c.current()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		// Unreachable server: try the next one on the following call.
		c.failover(base)
		return err
	}
	if resp.StatusCode/100 == 5 {
		// A 5xx — notably a cluster standby's 503 — means this server
		// cannot grant work; rotate before the caller retries.
		c.failover(base)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// Both server generations speak here: the unified envelope
		// {"error":{"code","message",...}} and the legacy flat string.
		var e struct {
			Error json.RawMessage `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		msg := ""
		if json.Unmarshal(e.Error, &msg) != nil {
			var env struct {
				Message string `json:"message"`
			}
			if json.Unmarshal(e.Error, &env) == nil {
				msg = env.Message
			}
		}
		return &statusError{code: resp.StatusCode, msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// statusError is a non-2xx protocol answer.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("server status %d: %s", e.code, e.msg)
}

// errStatus extracts the HTTP status behind err, or 0.
func errStatus(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	return 0
}

// Lease asks for up to max cells, long-polling the server for wait.
func (c *Client) Lease(ctx context.Context, max int, wait time.Duration) ([]campaign.Lease, error) {
	var resp struct {
		Leases []campaign.Lease `json:"leases"`
	}
	err := c.post(ctx, "/v1/workers/lease", map[string]any{
		"worker": c.Name, "max": max, "wait_ms": wait.Milliseconds(),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Leases, nil
}

// Heartbeat renews a lease; alive == false means the server re-queued or
// already resolved the cell and further work on it is wasted.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) (alive bool, err error) {
	err = c.post(ctx, "/v1/workers/"+leaseID+"/heartbeat", map[string]any{}, nil)
	if errStatus(err) == http.StatusGone {
		return false, nil
	}
	return err == nil, err
}

// Complete delivers the cell's result (or the execution error when
// errMsg is non-empty).
func (c *Client) Complete(ctx context.Context, leaseID string, res *finject.Result, errMsg string) error {
	body := map[string]any{}
	if errMsg != "" {
		body["error"] = errMsg
	} else {
		body["result"] = res
	}
	return c.post(ctx, "/v1/workers/"+leaseID+"/complete", body, nil)
}

// Options tunes a Worker.
type Options struct {
	// Concurrency is the number of cells executed in parallel (1 when 0).
	Concurrency int
	// CampaignWorkers bounds the parallel simulations inside one cell
	// (GOMAXPROCS divided by Concurrency when 0, so the two levels never
	// multiply beyond the machine). Never affects results.
	CampaignWorkers int
	// Poll is the lease long-poll duration (2s when 0).
	Poll time.Duration
	// Logger, when non-nil, receives one structured record per lease and
	// completion, correlated with the job id carried on the lease wire.
	Logger *slog.Logger
}

// Worker drains a fiserver's lease queue until its context ends: lease,
// simulate, heartbeat while running, complete. Golden reference runs are
// shared across every cell this worker executes for the same (chip,
// benchmark) pair, exactly as in the in-process scheduler.
type Worker struct {
	client *Client
	exec   *campaign.LocalExecutor
	opts   Options

	completed atomic.Int64
	failed    atomic.Int64
}

// New builds a Worker over the client.
func New(client *Client, opts Options) *Worker {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.CampaignWorkers <= 0 {
		opts.CampaignWorkers = runtime.GOMAXPROCS(0) / opts.Concurrency
		if opts.CampaignWorkers < 1 {
			opts.CampaignWorkers = 1
		}
	}
	if opts.Poll <= 0 {
		opts.Poll = 2 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Worker{client: client, exec: campaign.NewLocalExecutor(), opts: opts}
}

// Completed reports cells this worker finished successfully.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// Failed reports cells whose execution errored (reported to the server).
func (w *Worker) Failed() int64 { return w.failed.Load() }

// Run drains leases until ctx is canceled, then returns nil. Transient
// server errors (including an unreachable server) are retried after one
// poll interval — a worker outlives server restarts.
func (w *Worker) Run(ctx context.Context) error {
	sem := make(chan struct{}, w.opts.Concurrency)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil
		}
		// Widen the request to every idle slot: a multi-cell grant is a
		// cost-balanced shard of the backlog.
		free := 1
		for len(sem) < cap(sem) {
			select {
			case sem <- struct{}{}:
				free++
			default:
			}
			if free == cap(sem) {
				break
			}
		}
		leases, err := w.client.Lease(ctx, free, w.opts.Poll)
		if err != nil {
			for i := 0; i < free; i++ {
				<-sem
			}
			if ctx.Err() != nil {
				return nil
			}
			w.opts.Logger.WarnContext(ctx, "lease request failed, retrying", "err", err)
			select {
			case <-time.After(w.opts.Poll):
			case <-ctx.Done():
				return nil
			}
			continue
		}
		for i := free; i > len(leases); i-- {
			<-sem
		}
		for _, l := range leases {
			wg.Add(1)
			go func(l campaign.Lease) {
				defer wg.Done()
				defer func() { <-sem }()
				w.runLease(ctx, l)
			}(l)
		}
	}
}

// runLease executes one leased cell, heartbeating while it runs. A
// worker canceled mid-cell completes nothing — the lease expires on the
// server and the cell goes to someone else.
func (w *Worker) runLease(ctx context.Context, l campaign.Lease) {
	// Rebuild the correlation identity on this side of the wire: the job
	// id travels in the task, the lease and cell ids are the lease's own.
	ctx = telemetry.WithJob(ctx, l.Task.Corr)
	ctx = telemetry.WithLease(ctx, l.ID)
	ctx = telemetry.WithCell(ctx, l.Task.Spec.String())
	log := w.opts.Logger
	log.InfoContext(ctx, "lease granted")
	cellCtx, cancel := context.WithCancel(ctx)

	hbEvery := time.Duration(l.TTLMillis) * time.Millisecond / 3
	if hbEvery < 50*time.Millisecond {
		hbEvery = 50 * time.Millisecond
	}
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-cellCtx.Done():
				return
			case <-t.C:
				alive, err := w.client.Heartbeat(cellCtx, l.ID)
				if err == nil && !alive {
					// The server gave the cell to someone else; stop
					// burning cycles on it.
					log.InfoContext(cellCtx, "lease revoked, aborting cell")
					cancel()
					return
				}
			}
		}
	}()
	defer func() {
		cancel()
		hbWG.Wait()
	}()

	spec := l.Task.Spec.Normalize()
	cfg := l.Task.Policy
	cfg.Workers = w.opts.CampaignWorkers
	cfg.MaxInjections = 0
	// Flatten the wire config onto the engine policy, defaulting the
	// checkpoint knob to the spec's own when the config leaves it unset.
	pol := cfg.Policy(spec.CheckpointPolicy())
	res, err := w.exec.Execute(cellCtx, campaign.Request{Spec: spec, Key: spec.Key(), Policy: pol})
	if cellCtx.Err() != nil {
		return // dying or revoked mid-cell: let the lease expire
	}
	errMsg := ""
	if err != nil {
		errMsg, res = err.Error(), nil
		w.failed.Add(1)
	}
	// Deliver even when the worker is shutting down — the result is
	// already paid for and the queue accepts it — under a short detached
	// context so a dead server can't wedge the exit.
	for attempt := 0; attempt < 3; attempt++ {
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		cerr := w.client.Complete(dctx, l.ID, res, errMsg)
		dcancel()
		if cerr == nil {
			if errMsg == "" {
				w.completed.Add(1)
				log.InfoContext(ctx, "cell completed", "injections", res.Injections)
			} else {
				log.WarnContext(ctx, "cell failed", "err", errMsg)
			}
			return
		}
		if errStatus(cerr) == http.StatusNotFound {
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	log.WarnContext(ctx, "could not deliver result, letting the lease expire")
}
