package finject

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// TestTelemetryInertRecordStream is the engine-level inertness proof:
// one campaign with per-injection detail recording forced on, run
// unobserved and then under the full observer set — tracer installed,
// debug slog default, and concurrent scrapes of the metrics registry —
// must produce byte-identical serialized results, down to the fault
// site and outcome of every single injection. The observed run goes
// through CheckpointEquivalence, so the checkpointed-vs-full proof of
// PR 5 holds under observation too.
func TestTelemetryInertRecordStream(t *testing.T) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{
		Chip: chips.MiniNVIDIA(), Benchmark: bench, Structure: gpu.RegisterFile,
		Injections: 60, Seed: 41, Detail: true,
		Policy: Policy{Workers: 4},
	}

	offRes, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	off, err := json.Marshal(offRes)
	if err != nil {
		t.Fatal(err)
	}

	prevTracer := telemetry.SetTracer(telemetry.NewTracer())
	prevLog := slog.Default()
	slog.SetDefault(telemetry.NewLogger(io.Discard, slog.LevelDebug, "json"))
	scrapeDone := make(chan struct{})
	stopScrape := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
				telemetry.Default.WritePrometheus(io.Discard)
			}
		}
	}()
	onRes, err := CheckpointEquivalence(c)
	close(stopScrape)
	<-scrapeDone
	slog.SetDefault(prevLog)
	telemetry.SetTracer(prevTracer)
	if err != nil {
		t.Fatal(err)
	}
	on, err := json.Marshal(onRes)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(off, on) {
		t.Fatalf("record stream differs with telemetry on:\noff: %s\non:  %s", off, on)
	}
}
