// Package finject is the statistical fault-injection campaign engine —
// the core of what GUFI (NVIDIA/GPGPU-Sim) and SIFI (AMD/Multi2Sim) do in
// the paper. A campaign samples N single-bit faults uniformly over the
// (bit, cycle) population of one hardware structure of one chip running
// one benchmark, executes each fault in a fresh simulation, classifies
// the outcome against the golden run (Masked / SDC / DUE / Timeout), and
// reports the AVF with its confidence interval.
//
// Campaigns are deterministic: fault #i is derived from (Seed, i) only,
// so results are independent of the worker count and the scheduling
// order.
package finject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/gpu"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// DefaultInjections is the paper's per-structure sample size (2,000
// faults: 2.88% error margin at 99% confidence).
const DefaultInjections = 2000

// DefaultWatchdogFactor bounds a faulty run at this multiple of the
// golden cycle count before declaring a hang.
const DefaultWatchdogFactor = 20

// DefaultConfidence is the confidence level of the adaptive stopping
// rule when Policy.Confidence is unset (the paper evaluates at 99%).
const DefaultConfidence = 0.99

// adaptiveFirstRound is the size of the first adaptive round. Later
// rounds double the completed count, so the interval is recomputed at
// 100, 200, 400, ... injections — a deterministic schedule that does not
// depend on the worker count.
const adaptiveFirstRound = 100

// Policy controls how a campaign executes its injections: the size of
// the worker pool and, when Margin is set, adaptive sampling. A policy
// never changes which fault injection #i draws — that is fixed by
// (Seed, i) — so two policies that end up running the same number of
// injections produce bit-identical results.
//
// Policy is a frozen compatibility shim: the engine consumes it
// internally, but external producers construct campaigns through the
// versioned Config (see config.go), which is where any new execution
// knob lands. Do not add fields here.
type Policy struct {
	// Workers bounds the parallel simulations (GOMAXPROCS when 0).
	Workers int
	// Margin, when > 0, enables adaptive sampling: injections run in
	// deterministic rounds and the campaign stops at the end of the first
	// round whose Wilson interval half-width is at most Margin at the
	// policy's confidence level, or at the cap.
	Margin float64
	// Confidence is the adaptive stopping rule's confidence level
	// (DefaultConfidence when 0).
	Confidence float64
	// MaxInjections caps the campaign; when 0 the cap is
	// Campaign.Injections (DefaultInjections when that is also 0).
	MaxInjections int
	// Checkpoint configures checkpointed fast-forward execution (see
	// checkpoint.go). The zero value enables it with an auto-sized
	// interval; it is an execution knob only and never changes results.
	Checkpoint Checkpoint
}

// Adaptive reports whether the policy requests adaptive sampling.
func (p Policy) Adaptive() bool { return p.Margin > 0 }

// Cap resolves the campaign's injection budget against the campaign's
// own Injections field: MaxInjections wins, then injections, then
// DefaultInjections.
func (p Policy) Cap(injections int) int {
	if p.MaxInjections > 0 {
		return p.MaxInjections
	}
	if injections > 0 {
		return injections
	}
	return DefaultInjections
}

// confidence resolves the stopping rule's confidence level.
func (p Policy) confidence() float64 {
	if p.Confidence <= 0 || p.Confidence >= 1 {
		return DefaultConfidence
	}
	return p.Confidence
}

// SatisfiedBy reports whether an existing result already answers a
// request for this policy with the given cap: a fixed-size request needs
// the full cap, while an adaptive request also accepts any result whose
// interval half-width is within the margin. This is what lets a cached
// cell measured at a tighter margin serve looser requests without
// re-running.
func (p Policy) SatisfiedBy(res *Result, limit int) bool {
	if res == nil {
		return false
	}
	if res.Injections >= limit {
		return true
	}
	if !p.Adaptive() {
		return false
	}
	hw, err := res.HalfWidth(p.confidence())
	return err == nil && hw <= p.Margin
}

// Campaign describes one statistical fault-injection experiment.
type Campaign struct {
	Chip      *chips.Chip
	Benchmark *workloads.Benchmark
	Structure gpu.Structure
	// Injections is the number of faults (DefaultInjections when 0). An
	// adaptive policy treats it as the hard cap and may stop earlier.
	Injections int
	// Seed selects the fault sample; campaigns with equal seeds are
	// bit-for-bit reproducible.
	Seed uint64
	// Policy sets the execution policy: worker pool size and, when its
	// Margin is set, adaptive early stopping. The zero Policy runs
	// exactly Injections faults on GOMAXPROCS workers.
	Policy Policy
	// WatchdogFactor overrides DefaultWatchdogFactor when > 0.
	WatchdogFactor int
	// Detail records every injection's fault site, outcome and SDC
	// severity in Result.Records (costs memory proportional to N).
	Detail bool
	// FaultWidth sets the burst width in adjacent bits (values < 2 give
	// the paper's single-bit model).
	FaultWidth uint
	// Golden supplies a precomputed fault-free reference run (see
	// NewGolden). It must come from the same chip and benchmark as the
	// campaign; when nil the campaign executes its own reference run.
	// Sharing one Golden across the campaigns of all structures of a
	// (chip, benchmark) pair removes the redundant reference simulations.
	Golden *Golden
}

// Record is one injection's detailed result (Campaign.Detail).
type Record struct {
	Fault   gpu.Fault
	Outcome gpu.Outcome
	// CorruptBytes counts output bytes differing from the golden run
	// (SDC severity; zero unless the outcome is SDC).
	CorruptBytes int
}

// Result aggregates a campaign.
type Result struct {
	// Outcomes counts per outcome class, indexed by gpu.Outcome.
	Outcomes [gpu.NumOutcomes]int
	// Injections is the realized sample size.
	Injections int
	// GoldenStats is the fault-free execution's statistics.
	GoldenStats gpu.RunStats
	// Occupancy is the time-weighted structure occupancy of the golden
	// run (the red line of Figs. 1 and 2).
	Occupancy float64
	// Records holds per-injection details when Campaign.Detail is set,
	// indexed by injection number (deterministic across worker counts).
	Records []Record
}

// AVF returns the fault-injection AVF: the fraction of injections that
// were not masked (SDC + DUE + Timeout).
func (r *Result) AVF() float64 {
	if r.Injections == 0 {
		return 0
	}
	fails := r.Injections - r.Outcomes[gpu.OutcomeMasked]
	return float64(fails) / float64(r.Injections)
}

// AVFInterval returns the Wilson confidence interval of the AVF.
func (r *Result) AVFInterval(confidence float64) (lo, hi float64, err error) {
	p := stats.Proportion{
		Successes: r.Injections - r.Outcomes[gpu.OutcomeMasked],
		Trials:    r.Injections,
	}
	return p.Interval(confidence)
}

// HalfWidth returns the half-width of the AVF's Wilson interval — the
// quantity the adaptive stopping rule drives below Policy.Margin.
func (r *Result) HalfWidth(confidence float64) (float64, error) {
	p := stats.Proportion{
		Successes: r.Injections - r.Outcomes[gpu.OutcomeMasked],
		Trials:    r.Injections,
	}
	return p.HalfWidth(confidence)
}

// Golden is a reusable fault-free reference run of one (chip, benchmark)
// pair. Every campaign needs one to classify outcomes against; campaigns
// that target different structures of the same pair can share a single
// Golden through Campaign.Golden instead of each re-simulating the
// reference execution.
type Golden struct {
	chip     string
	bench    string
	chipRef  *chips.Chip
	benchRef *workloads.Benchmark
	g        *golden

	// The default checkpoint ladder is captured during the reference run
	// itself; ladders for explicit interval overrides are built lazily
	// (one extra fault-free run each) and cached. All ladders are
	// immutable once published and shared read-only by every worker:
	// readers load the current map through an atomic pointer and never
	// lock, writers clone-and-swap the map under mu.
	mu      sync.Mutex
	ladders atomic.Pointer[map[int64]*ladderCall]
}

// ladderMap returns the current immutable ladder map.
func (g *Golden) ladderMap() map[int64]*ladderCall { return *g.ladders.Load() }

// publishLadders installs next as the current ladder map. Callers hold
// g.mu and must treat previously published maps as frozen.
func (g *Golden) publishLadders(next map[int64]*ladderCall) { g.ladders.Store(&next) }

// ladderCall is one ladder build others may wait on, so a slow override
// build never holds the Golden's mutex while it simulates.
type ladderCall struct {
	done  chan struct{}
	snaps []gpu.Snapshot
	err   error
}

// readyLadder wraps an already-built ladder.
func readyLadder(snaps []gpu.Snapshot) *ladderCall {
	lc := &ladderCall{done: make(chan struct{}), snaps: snaps}
	close(lc.done)
	return lc
}

// NewGolden executes the fault-free reference run once, for reuse across
// campaigns via Campaign.Golden. The run also captures the default
// checkpoint ladder (auto-sized snapshot spacing) that fast-forwarded
// injections restore from.
func NewGolden(chip *chips.Chip, bench *workloads.Benchmark) (*Golden, error) {
	if chip == nil || bench == nil {
		return nil, errors.New("finject: golden run needs a chip and a benchmark")
	}
	g, err := runGolden(chip, bench, Checkpoint{})
	if err != nil {
		return nil, err
	}
	gold := &Golden{
		chip: chip.Name, bench: bench.Name,
		chipRef: chip, benchRef: bench, g: g,
	}
	gold.publishLadders(map[int64]*ladderCall{0: readyLadder(g.ladder)})
	return gold, nil
}

// CheckpointCycles returns the capture cycles of the default checkpoint
// ladder, in ascending order — introspection for tests and reports.
func (g *Golden) CheckpointCycles() []int64 {
	lc := g.ladderMap()[0]
	<-lc.done
	cycles := make([]int64, len(lc.snaps))
	for i, s := range lc.snaps {
		cycles[i] = s.Cycle()
	}
	return cycles
}

// ladderFor returns the checkpoint ladder for the configuration,
// building and caching one per distinct interval on first use. A nil
// ladder (checkpointing off) makes every injection replay in full.
// The cached-ladder fast path is lock-free (an atomic load of the
// immutable map); builds run outside the writer mutex (only the leader
// simulates; concurrent requesters for the same interval wait on it,
// other intervals and the default ladder are never blocked); failed
// builds are not cached.
func (g *Golden) ladderFor(cfg Checkpoint) ([]gpu.Snapshot, error) {
	if cfg.Off {
		return nil, nil
	}
	if cfg.Interval < 0 {
		cfg.Interval = 0 // defensive: negative means auto, not a new cache entry
	}
	if lc, ok := g.ladderMap()[cfg.Interval]; ok {
		<-lc.done
		return lc.snaps, lc.err
	}
	g.mu.Lock()
	lc, ok := g.ladderMap()[cfg.Interval]
	if !ok {
		lc = &ladderCall{done: make(chan struct{})}
		g.publishLadders(withLadder(g.ladderMap(), cfg.Interval, lc))
	}
	g.mu.Unlock()
	if ok {
		<-lc.done
		return lc.snaps, lc.err
	}

	run, err := runGolden(g.chipRef, g.benchRef, cfg)
	if err != nil {
		lc.err = err
		g.mu.Lock()
		// Republish without the failed entry so a later request retries.
		next := withLadder(g.ladderMap(), cfg.Interval, nil)
		delete(next, cfg.Interval)
		g.publishLadders(next)
		g.mu.Unlock()
	} else {
		lc.snaps = run.ladder
	}
	close(lc.done)
	return lc.snaps, lc.err
}

// withLadder clones a frozen ladder map with one entry replaced.
func withLadder(m map[int64]*ladderCall, interval int64, lc *ladderCall) map[int64]*ladderCall {
	next := make(map[int64]*ladderCall, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	next[interval] = lc
	return next
}

// Chip returns the name of the chip the reference was run on.
func (g *Golden) Chip() string { return g.chip }

// Benchmark returns the name of the benchmark the reference executed.
func (g *Golden) Benchmark() string { return g.bench }

// Cycles returns the reference execution length in device cycles.
func (g *Golden) Cycles() int64 { return g.g.cycles }

// Stats returns the reference execution's statistics.
func (g *Golden) Stats() gpu.RunStats { return g.g.stats }

// golden holds the reference run against which outcomes are classified,
// plus the checkpoint ladder captured during that run.
type golden struct {
	outputs []gpu.Region
	bytes   [][]byte
	cycles  int64
	stats   gpu.RunStats
	ladder  []gpu.Snapshot
}

// runGolden executes the fault-free reference run, capturing the
// checkpoint ladder along the way unless ckpt.Off.
func runGolden(chip *chips.Chip, bench *workloads.Benchmark, ckpt Checkpoint) (*golden, error) {
	defer telemetry.StartSpan(context.Background(), "golden_run")()
	d, err := devices.New(chip)
	if err != nil {
		return nil, err
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		return nil, err
	}
	// A ladder served from the ladder directory (mmap'd, shared across
	// processes) replaces the capture pass entirely; the golden run still
	// executes for its outputs and statistics.
	loaded, haveLoaded := loadLadderFile(d, chip.Name, bench.Name, ckpt)
	var lb *ladderBuilder
	if !ckpt.Off && !haveLoaded {
		lb = newLadderBuilder(ckpt)
		lb.arm(d)
	}
	if err := hp.Run(d); err != nil {
		return nil, fmt.Errorf("finject: golden run of %s on %s failed: %w", bench.Name, chip.Name, err)
	}
	d.SetCheckpointHook(0, nil)
	g := &golden{outputs: hp.Outputs(), stats: d.Stats()}
	if haveLoaded {
		g.ladder = loaded
	} else if lb != nil {
		g.ladder = lb.snaps
		telemetry.LadderBuilds.Inc()
		telemetry.LadderSnapshots.Add(int64(len(lb.snaps)))
		var ladderBytes int64
		for _, s := range lb.snaps {
			ladderBytes += s.SizeBytes()
		}
		telemetry.LadderBytes.Add(ladderBytes)
		saveLadderFile(d, chip.Name, bench.Name, ckpt, lb.snaps)
	}
	g.cycles = g.stats.Cycles
	if g.cycles <= 0 {
		return nil, fmt.Errorf("finject: golden run of %s reported no cycles", bench.Name)
	}
	for _, r := range g.outputs {
		bs, err := d.Mem().ReadBytes(r.Addr, int(r.Size))
		if err != nil {
			return nil, err
		}
		g.bytes = append(g.bytes, bs)
	}
	return g, nil
}

// sampleFault draws fault #idx of the campaign.
func sampleFault(rng *stats.RNG, c Campaign, cycles int64, idx uint64) gpu.Fault {
	r := rng.Derive(idx)
	return gpu.Fault{
		Structure: c.Structure,
		Unit:      r.Intn(c.Chip.Units),
		Entry:     r.Intn(c.Chip.StructSize(c.Structure)),
		Bit:       uint(r.Intn(gpu.EntryBits(c.Structure))),
		Width:     c.FaultWidth,
		Cycle:     int64(r.Uint64n(uint64(cycles))),
	}
}

// classifyCost is one injection's execution-cost accounting, consumed by
// the telemetry counters: whether a checkpoint rung was restored, how
// many fault-free cycles the restore skipped, how many cycles the run
// actually simulated, and how many COW memory pages the restore copied
// versus skipped by identity. It never feeds back into outcomes.
type classifyCost struct {
	restored    bool
	ffCycles    int64
	simCycles   int64
	pagesCopied int64
	pagesShared int64
}

// classify runs one injection on a worker-owned device and host program,
// returning the outcome, (for SDCs) the number of corrupted output
// bytes, and the run's cost accounting. When the ladder holds a snapshot
// at or below the fault cycle, the run fast-forwards from it instead of
// replaying the fault-free prefix; the pre-fault execution is identical
// either way, so the outcome is too (proven by the differential
// equivalence suite).
func classify(d gpu.Device, hp *gpu.HostProgram, g *golden, ladder []gpu.Snapshot, f gpu.Fault, watchdog int64) (gpu.Outcome, int, classifyCost) {
	var cost classifyCost
	if snap := latestBelow(ladder, f.Cycle); snap != nil {
		rc, _ := d.(gpu.RestoreCoster)
		var c0, s0 int64
		if rc != nil {
			c0, s0 = rc.RestorePageStats()
		}
		if d.Restore(snap) == nil {
			cost.restored = true
			cost.ffCycles = snap.Cycle()
			if rc != nil {
				c1, s1 := rc.RestorePageStats()
				cost.pagesCopied = c1 - c0
				cost.pagesShared = s1 - s0
			}
		}
	}
	if !cost.restored {
		d.Reset()
	}
	d.SetWatchdog(watchdog)
	d.InjectFault(&f)
	err := hp.Run(d)
	if sim := d.Stats().Cycles - cost.ffCycles; sim > 0 {
		cost.simCycles = sim
	}
	switch {
	case errors.Is(err, gpu.ErrWatchdog):
		return gpu.OutcomeTimeout, 0, cost
	case err != nil:
		return gpu.OutcomeDUE, 0, cost
	}
	outs := hp.Outputs()
	if len(outs) != len(g.outputs) {
		return gpu.OutcomeDUE, 0, cost
	}
	corrupt := 0
	for i, r := range outs {
		bs, err := d.Mem().ReadBytes(r.Addr, int(r.Size))
		if err != nil {
			return gpu.OutcomeDUE, 0, cost
		}
		if !bytes.Equal(bs, g.bytes[i]) {
			corrupt += diffBytes(bs, g.bytes[i])
		}
	}
	if corrupt > 0 {
		return gpu.OutcomeSDC, corrupt, cost
	}
	return gpu.OutcomeMasked, 0, cost
}

// diffBytes counts positions where the two equal-length slices differ.
func diffBytes(a, b []byte) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// Run executes the campaign to completion.
func Run(c Campaign) (*Result, error) {
	return RunContext(context.Background(), c)
}

// injector is one worker's private device replica: a full simulator
// instance plus host program, reused across every injection (and every
// adaptive round) the worker executes. Workers never share a device —
// the only shared state during a round is the immutable golden/ladder.
type injector struct {
	d  gpu.Device
	hp *gpu.HostProgram
}

// replicaPools caches injector replicas per (chip, benchmark) so
// back-to-back campaigns over the same pair (every structure of a
// figure, every cell of a sweep) stop paying device construction and
// first-restore page faults. Entries are sync.Pools, so idle replicas
// are reclaimable by the GC.
var replicaPools sync.Map // string -> *sync.Pool

// replicaKey identifies the replica pool for a campaign's (chip,
// benchmark) pair.
func replicaKey(c Campaign) string { return c.Chip.Name + "\x00" + c.Benchmark.Name }

// acquireReplica returns a pooled injector for the campaign or builds a
// fresh one. Every injection path resets or restores the device before
// running, so recycled simulator state is never observable.
func acquireReplica(c Campaign) (*injector, error) {
	p, _ := replicaPools.LoadOrStore(replicaKey(c), &sync.Pool{})
	if in, ok := p.(*sync.Pool).Get().(*injector); ok {
		return in, nil
	}
	d, err := devices.New(c.Chip)
	if err != nil {
		return nil, err
	}
	hp, err := c.Benchmark.New(c.Chip.Vendor)
	if err != nil {
		return nil, err
	}
	return &injector{d: d, hp: hp}, nil
}

// releaseReplicas returns a campaign's worker replicas to its pool.
func releaseReplicas(c Campaign, pool []*injector) {
	p, _ := replicaPools.LoadOrStore(replicaKey(c), &sync.Pool{})
	for _, in := range pool {
		if in != nil {
			p.(*sync.Pool).Put(in)
		}
	}
}

// RunContext executes the campaign, stopping promptly when ctx is
// canceled: no further injections are scheduled once cancellation is
// observed. On cancellation it returns the partial result accumulated so
// far (nil when canceled before the reference run) together with an error
// wrapping ctx.Err(); Result.Injections then reflects the number of
// injections actually performed, and with Campaign.Detail set Records is
// truncated to the injections that ran.
//
// With an adaptive policy (Policy.Margin > 0) injections run in
// deterministic rounds; after each round the AVF's Wilson interval is
// recomputed and the campaign stops once its half-width reaches the
// margin, or at the cap. The round schedule depends only on completed
// injection counts, never on the worker count, so a fixed seed yields
// bit-identical results for any Policy.Workers.
func RunContext(ctx context.Context, c Campaign) (*Result, error) {
	if c.Chip == nil || c.Benchmark == nil {
		return nil, errors.New("finject: campaign needs a chip and a benchmark")
	}
	limit := c.Policy.Cap(c.Injections)
	workers := c.Policy.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > limit {
		workers = limit
	}
	wdFactor := c.WatchdogFactor
	if wdFactor <= 0 {
		wdFactor = DefaultWatchdogFactor
	}
	var (
		g      *golden
		ladder []gpu.Snapshot
	)
	if c.Golden != nil {
		if c.Golden.chip != c.Chip.Name || c.Golden.bench != c.Benchmark.Name {
			return nil, fmt.Errorf("finject: golden run is for %s/%s, campaign targets %s/%s",
				c.Golden.chip, c.Golden.bench, c.Chip.Name, c.Benchmark.Name)
		}
		g = c.Golden.g
		var err error
		if ladder, err = c.Golden.ladderFor(c.Policy.Checkpoint); err != nil {
			return nil, err
		}
	} else {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("finject: campaign canceled before the reference run: %w", err)
		}
		var err error
		g, err = runGolden(c.Chip, c.Benchmark, c.Policy.Checkpoint)
		if err != nil {
			return nil, err
		}
		ladder = g.ladder
	}
	watchdog := g.cycles*int64(wdFactor) + 10_000

	res := &Result{
		GoldenStats: g.stats,
		Occupancy:   g.stats.Occupancy(c.Structure, int64(c.Chip.Units)*int64(c.Chip.StructSize(c.Structure))),
	}
	if c.Detail {
		res.Records = make([]Record, limit)
	}
	baseRNG := stats.NewRNG(c.Seed)

	pool := make([]*injector, workers)
	for i := range pool {
		in, err := acquireReplica(c)
		if err != nil {
			releaseReplicas(c, pool[:i])
			return nil, err
		}
		pool[i] = in
	}
	defer releaseReplicas(c, pool)

	done := 0
	for done < limit {
		end := limit
		if c.Policy.Adaptive() {
			end = done * 2
			if end < adaptiveFirstRound {
				end = adaptiveFirstRound
			}
			if end > limit {
				end = limit
			}
		}
		endSpan := telemetry.StartSpan(ctx, "injection_round")
		ran := runRound(ctx, c, pool, g, ladder, watchdog, baseRNG, done, end, res)
		endSpan()
		telemetry.InjectRounds.Inc()
		done += ran
		if done < end {
			res.Injections = done
			if res.Records != nil {
				res.Records = res.Records[:done]
			}
			return res, fmt.Errorf("finject: campaign canceled after %d/%d injections: %w", done, limit, ctx.Err())
		}
		if c.Policy.Adaptive() {
			res.Injections = done
			hw, err := res.HalfWidth(c.Policy.confidence())
			if err != nil {
				return nil, err
			}
			if hw <= c.Policy.Margin {
				if done < limit {
					telemetry.InjectEarlyStops.Inc()
				}
				break
			}
		}
	}
	res.Injections = done
	if res.Records != nil {
		res.Records = res.Records[:done]
	}
	return res, nil
}

// runRound executes injections [start, end) across the worker pool and
// reports how many completed. Indices are handed out through an atomic
// counter and every handed-out index is classified, so on cancellation
// the completed injections are exactly the contiguous prefix
// [start, start+ran).
func runRound(ctx context.Context, c Campaign, pool []*injector, g *golden, ladder []gpu.Snapshot, watchdog int64, rng *stats.RNG, start, end int, res *Result) int {
	var (
		next atomic.Int64
		mu   sync.Mutex
		wg   sync.WaitGroup
		ran  int
	)
	next.Store(int64(start))
	for _, in := range pool {
		wg.Add(1)
		go func(in *injector) {
			defer wg.Done()
			// Telemetry accumulates in worker-locals and flushes once per
			// round, so the per-injection hot loop costs no atomics.
			var (
				local    [gpu.NumOutcomes]int
				count    int
				restores int64
				replays  int64
				ffCyc    int64
				simCyc   int64
				pgCopied int64
				pgShared int64
			)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= end {
					break
				}
				f := sampleFault(rng, c, g.cycles, uint64(i))
				o, corrupt, cost := classify(in.d, in.hp, g, ladder, f, watchdog)
				local[o]++
				count++
				if cost.restored {
					restores++
				} else {
					replays++
				}
				ffCyc += cost.ffCycles
				simCyc += cost.simCycles
				pgCopied += cost.pagesCopied
				pgShared += cost.pagesShared
				if res.Records != nil {
					res.Records[i] = Record{Fault: f, Outcome: o, CorruptBytes: corrupt}
				}
			}
			telemetry.Injections.Add(int64(count))
			telemetry.CkptRestores.Add(restores)
			telemetry.FullReplays.Add(replays)
			telemetry.FastForwardCycles.Add(ffCyc)
			telemetry.SimulatedCycles.Add(simCyc)
			telemetry.RestorePagesCopied.Add(pgCopied)
			telemetry.RestorePagesShared.Add(pgShared)
			mu.Lock()
			for o, cnt := range local {
				res.Outcomes[o] += cnt
			}
			ran += count
			mu.Unlock()
		}(in)
	}
	wg.Wait()
	return ran
}
