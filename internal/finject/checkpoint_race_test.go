package finject

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// TestCheckpointLadderSharedUnderRace hammers one Golden's checkpoint
// ladder from many directions at once — several concurrent campaigns,
// each with a multi-worker pool, all restoring the same snapshots, one
// of them canceled mid-flight — and asserts (a) the ladder is never
// mutated (restores deep-copy out of it), (b) every surviving campaign
// is bit-identical to a serial full-replay reference, and (c) the
// canceled campaign returns the documented clean partial result. Run
// under -race (CI does), this is the proof that the ladder is safe to
// hang off the scheduler's shared golden cache.
func TestCheckpointLadderSharedUnderRace(t *testing.T) {
	chip := chips.MiniNVIDIA()
	bench, err := workloads.ByName("reduction")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := NewGolden(chip, bench)
	if err != nil {
		t.Fatal(err)
	}
	before := golden.CheckpointCycles()
	if len(before) == 0 {
		t.Fatal("golden has no checkpoint ladder")
	}

	campaignFor := func(seed uint64) Campaign {
		return Campaign{
			Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
			Injections: 60, Seed: seed, Golden: golden, Detail: true,
			Policy: Policy{Workers: 4},
		}
	}

	// Serial full-replay references, computed before the storm.
	refs := make(map[uint64]*Result)
	for seed := uint64(1); seed <= 2; seed++ {
		c := campaignFor(seed)
		c.Policy = Policy{Workers: 1, Checkpoint: Checkpoint{Off: true}}
		ref, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		refs[seed] = ref
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	var cancelRes *Result
	var cancelErr error

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunContext(context.Background(), campaignFor(uint64(i+1)))
		}(i)
	}
	// The doomed campaign: canceled as soon as its first record lands.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := campaignFor(99)
		c.Injections = 100_000 // far more than the cancel lets happen
		cancelRes, cancelErr = RunContext(ctx, c)
	}()
	cancel()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
		if err := equalResults(refs[uint64(i+1)], results[i]); err != nil {
			t.Fatalf("campaign %d diverges from serial full replay: %v", i, err)
		}
	}

	if cancelErr == nil {
		t.Fatal("canceled campaign returned no error")
	}
	if !errors.Is(cancelErr, context.Canceled) {
		t.Fatalf("canceled campaign error does not wrap context.Canceled: %v", cancelErr)
	}
	if cancelRes != nil {
		if cancelRes.Injections >= 100_000 {
			t.Fatalf("canceled campaign claims to have finished: %d injections", cancelRes.Injections)
		}
		if len(cancelRes.Records) != cancelRes.Injections {
			t.Fatalf("partial result records (%d) disagree with injections (%d)", len(cancelRes.Records), cancelRes.Injections)
		}
	}

	after := golden.CheckpointCycles()
	if len(after) != len(before) {
		t.Fatalf("ladder length changed under load: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("ladder rung %d moved: %d -> %d", i, before[i], after[i])
		}
	}
}
