package finject

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// TestCheckpointLadderSharedUnderRace hammers one Golden's checkpoint
// ladder from many directions at once — several concurrent campaigns,
// each with an eight-worker replica pool, all restoring the same
// snapshots, one canceled genuinely mid-flight while a Prometheus
// scraper reads the shared telemetry registry in a tight loop — and
// asserts (a) the ladder is never mutated (restores deep-copy out of
// it), (b) every surviving campaign is bit-identical to a serial
// full-replay reference, and (c) the canceled campaign returns the
// documented clean partial result. Run under -race (CI does), this is
// the proof that the ladder and the per-round telemetry flushes are
// safe to hang off the scheduler's shared golden cache.
func TestCheckpointLadderSharedUnderRace(t *testing.T) {
	chip := chips.MiniNVIDIA()
	bench, err := workloads.ByName("reduction")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := NewGolden(chip, bench)
	if err != nil {
		t.Fatal(err)
	}
	before := golden.CheckpointCycles()
	if len(before) == 0 {
		t.Fatal("golden has no checkpoint ladder")
	}

	campaignFor := func(seed uint64) Campaign {
		return Campaign{
			Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
			Injections: 60, Seed: seed, Golden: golden, Detail: true,
			Policy: Policy{Workers: 8},
		}
	}

	// Serial full-replay references, computed before the storm.
	refs := make(map[uint64]*Result)
	for seed := uint64(1); seed <= 2; seed++ {
		c := campaignFor(seed)
		c.Policy = Policy{Workers: 1, Checkpoint: Checkpoint{Off: true}}
		ref, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		refs[seed] = ref
	}
	// Injection telemetry flushes once per round; the watcher below uses
	// the global counter to time the cancel, so baseline it after the
	// reference runs.
	startInj := telemetry.Injections.Value()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	var cancelRes *Result
	var cancelErr error

	// A concurrent scraper: the telemetry registry is shared fleet-wide,
	// so a Prometheus scrape can land at any instant of a campaign —
	// including during the per-round counter flush from eight workers.
	scrapeDone := make(chan struct{})
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-scrapeDone:
				return
			default:
				if err := telemetry.Default.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape failed: %v", err)
					return
				}
			}
		}
	}()

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunContext(context.Background(), campaignFor(uint64(i+1)))
		}(i)
	}
	// The doomed campaign runs adaptively so it flushes telemetry after
	// every round; the watcher cancels it only after the global counter
	// proves at least one of its rounds completed — a genuine
	// mid-campaign cancel, not a cancel-before-start.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := campaignFor(99)
		c.Injections = 100_000 // far more than the cancel lets happen
		c.Policy.Margin = 1e-9 // adaptive rounds, but unreachably tight
		cancelRes, cancelErr = RunContext(ctx, c)
	}()
	// The two survivors contribute at most 2*60 injections; anything past
	// that came from the doomed campaign's first adaptive round (100).
	const survivorsMax = 2 * 60
	for telemetry.Injections.Value()-startInj < survivorsMax+adaptiveFirstRound {
		time.Sleep(200 * time.Microsecond)
	}
	cancel()
	wg.Wait()
	close(scrapeDone)
	scraperWG.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
		if err := equalResults(refs[uint64(i+1)], results[i]); err != nil {
			t.Fatalf("campaign %d diverges from serial full replay: %v", i, err)
		}
	}

	if cancelErr == nil {
		t.Fatal("canceled campaign returned no error")
	}
	if !errors.Is(cancelErr, context.Canceled) {
		t.Fatalf("canceled campaign error does not wrap context.Canceled: %v", cancelErr)
	}
	if cancelRes != nil {
		if cancelRes.Injections >= 100_000 {
			t.Fatalf("canceled campaign claims to have finished: %d injections", cancelRes.Injections)
		}
		if len(cancelRes.Records) != cancelRes.Injections {
			t.Fatalf("partial result records (%d) disagree with injections (%d)", len(cancelRes.Records), cancelRes.Injections)
		}
	}

	after := golden.CheckpointCycles()
	if len(after) != len(before) {
		t.Fatalf("ladder length changed under load: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("ladder rung %d moved: %d -> %d", i, before[i], after[i])
		}
	}
}
