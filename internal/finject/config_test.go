package finject

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigNormalizeVersions(t *testing.T) {
	c, err := Config{Margin: 0.05}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != ConfigVersion {
		t.Fatalf("version 0 normalized to %d, want %d", c.Version, ConfigVersion)
	}
	if _, err := (Config{Version: ConfigVersion + 1}).Normalize(); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestConfigNormalizeRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Margin: 1}, "bad policy margin"},
		{Config{Margin: -0.1}, "bad policy margin"},
		{Config{Confidence: 1.5}, "bad policy confidence"},
		{Config{MaxInjections: -1}, "bad policy max_injections"},
		{Config{Workers: -2}, "bad policy workers"},
		{Config{Checkpoint: &Checkpoint{Interval: -5}}, "bad policy checkpoint interval"},
	}
	for _, tc := range cases {
		_, err := tc.cfg.Normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Normalize(%+v) = %v, want error containing %q", tc.cfg, err, tc.want)
		}
	}
}

// TestConfigDecodesLegacyPolicyJSON pins wire compatibility: the lease
// wire used to serialize finject.Policy with Go's default (exported,
// untagged) field names, and the /v1/jobs policy block has always used
// snake_case keys. Config must decode both.
func TestConfigDecodesLegacyPolicyJSON(t *testing.T) {
	legacyLease := `{"Workers":3,"Margin":0.05,"Confidence":0.95,"Checkpoint":{"Off":false,"Interval":128}}`
	var c Config
	if err := json.Unmarshal([]byte(legacyLease), &c); err != nil {
		t.Fatal(err)
	}
	if c.Workers != 3 || c.Margin != 0.05 || c.Confidence != 0.95 ||
		c.Checkpoint == nil || c.Checkpoint.Interval != 128 {
		t.Fatalf("legacy lease policy decoded to %+v", c)
	}

	legacyJob := `{"confidence":0.99,"margin":0.02,"max_injections":500,"checkpoint":{"off":true}}`
	c = Config{}
	if err := json.Unmarshal([]byte(legacyJob), &c); err != nil {
		t.Fatal(err)
	}
	if c.Confidence != 0.99 || c.Margin != 0.02 || c.MaxInjections != 500 ||
		c.Checkpoint == nil || !c.Checkpoint.Off {
		t.Fatalf("legacy job policy decoded to %+v", c)
	}
}

func TestConfigEqualComparesCheckpointByValue(t *testing.T) {
	a := Config{Margin: 0.1, Checkpoint: &Checkpoint{Interval: 64}}
	b := Config{Margin: 0.1, Checkpoint: &Checkpoint{Interval: 64}}
	if !a.Equal(b) {
		t.Fatal("value-equal configs with distinct checkpoint pointers compared unequal")
	}
	b.Checkpoint = &Checkpoint{Interval: 65}
	if a.Equal(b) {
		t.Fatal("configs with different checkpoints compared equal")
	}
	b.Checkpoint = nil
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("nil vs set checkpoint compared equal")
	}
}

func TestConfigApplyToKeepsCampaignDefaults(t *testing.T) {
	cp := Campaign{Seed: 7, Policy: Policy{Checkpoint: Checkpoint{Interval: 32}}}
	Config{Margin: 0.05}.ApplyTo(&cp)
	if cp.Seed != 7 {
		t.Fatalf("zero config seed overwrote campaign seed: %d", cp.Seed)
	}
	if cp.Policy.Checkpoint.Interval != 32 {
		t.Fatalf("nil config checkpoint overwrote campaign knob: %+v", cp.Policy.Checkpoint)
	}
	if cp.Policy.Margin != 0.05 {
		t.Fatalf("margin not applied: %+v", cp.Policy)
	}

	Config{Seed: 11, Checkpoint: &Checkpoint{Off: true}}.ApplyTo(&cp)
	if cp.Seed != 11 || !cp.Policy.Checkpoint.Off {
		t.Fatalf("set config fields not applied: seed=%d policy=%+v", cp.Seed, cp.Policy)
	}
}

func TestConfigOfRoundTrip(t *testing.T) {
	cp := Campaign{
		Seed:   42,
		Policy: Policy{Workers: 4, Margin: 0.03, Confidence: 0.9, MaxInjections: 100, Checkpoint: Checkpoint{Interval: 16}},
	}
	cfg := ConfigOf(cp)
	var back Campaign
	cfg.ApplyTo(&back)
	if back.Seed != cp.Seed || back.Policy != cp.Policy {
		t.Fatalf("ConfigOf/ApplyTo round trip changed the campaign:\n%+v\n%+v", cp, back)
	}
}
