package finject

import (
	"encoding/json"
	"fmt"
	"reflect"
)

// CheckpointEquivalence is the differential proof harness behind the
// checkpointed fast-forward engine: it executes the campaign twice —
// once with checkpointing disabled (every injection replays from
// power-on state) and once with the campaign's own checkpoint
// configuration — with per-injection detail recording forced on, and
// fails unless the two runs are bit-identical: same outcome counts, same
// realized sample size, same golden statistics and occupancy, and the
// same per-injection record stream (fault site, outcome and SDC
// severity of every single injection, in order).
//
// It returns the checkpointed run's result so callers can chain further
// assertions (figure assembly, report JSON). Future engine changes keep
// the same proof by running their scenario matrix through this helper.
func CheckpointEquivalence(c Campaign) (*Result, error) {
	c.Detail = true

	full := c
	full.Policy.Checkpoint = Checkpoint{Off: true}
	fullRes, err := Run(full)
	if err != nil {
		return nil, fmt.Errorf("finject: full-replay run: %w", err)
	}

	ckpt := c
	ckpt.Policy.Checkpoint.Off = false
	ckptRes, err := Run(ckpt)
	if err != nil {
		return nil, fmt.Errorf("finject: checkpointed run: %w", err)
	}

	if err := equalResults(fullRes, ckptRes); err != nil {
		return nil, fmt.Errorf("finject: checkpointed run diverges from full replay for %s/%s/%s seed=%d: %w",
			c.Chip.Name, c.Benchmark.Name, c.Structure, c.Seed, err)
	}
	return ckptRes, nil
}

// equalResults compares two campaign results bit for bit, reporting the
// first divergence precisely enough to debug it.
func equalResults(full, ckpt *Result) error {
	if full.Injections != ckpt.Injections {
		return fmt.Errorf("realized injections differ: full=%d checkpointed=%d", full.Injections, ckpt.Injections)
	}
	if full.Outcomes != ckpt.Outcomes {
		return fmt.Errorf("outcome counts differ: full=%v checkpointed=%v", full.Outcomes, ckpt.Outcomes)
	}
	if full.GoldenStats != ckpt.GoldenStats {
		return fmt.Errorf("golden stats differ: full=%+v checkpointed=%+v", full.GoldenStats, ckpt.GoldenStats)
	}
	if full.Occupancy != ckpt.Occupancy {
		return fmt.Errorf("occupancy differs: full=%v checkpointed=%v", full.Occupancy, ckpt.Occupancy)
	}
	for i := range full.Records {
		if full.Records[i] != ckpt.Records[i] {
			return fmt.Errorf("injection #%d differs: full=%+v checkpointed=%+v", i, full.Records[i], ckpt.Records[i])
		}
	}
	// Belt and braces: the serialized forms must match byte for byte,
	// catching any future Result field the comparisons above miss.
	fb, err := json.Marshal(full)
	if err != nil {
		return err
	}
	cb, err := json.Marshal(ckpt)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(fb, cb) {
		return fmt.Errorf("serialized results differ:\nfull:         %s\ncheckpointed: %s", fb, cb)
	}
	return nil
}
