package finject

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/workloads"
)

// dueProg loads through a pointer register after a long delay chain, so
// that a bit flip in the pointer's high bits produces a wild access.
var dueProg = sass.MustAssemble(`
.kernel duebait
    MOV R1, c[0]
    MOV R2, 0
wait:
    IADD R2, R2, 1
    ISETP.LT P0, R2, 200
@P0 BRA wait
    LDG R3, [R1]
    IADD R3, R3, 1
    STG [R1], R3
    EXIT
`)

// synthBenchmark wraps a single fixed launch as a workloads.Benchmark so
// the campaign engine can drive it.
func synthBenchmark(name string, prog *sass.Program) *workloads.Benchmark {
	return &workloads.Benchmark{
		Name: name,
		New: func(v gpu.Vendor) (*gpu.HostProgram, error) {
			var out uint32
			hp := &gpu.HostProgram{Name: name}
			hp.Run = func(d gpu.Device) error {
				var err error
				out, err = d.Mem().Alloc(64)
				if err != nil {
					return err
				}
				return d.Launch(gpu.LaunchSpec{
					Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(32),
					Args: []uint32{out, 0},
				})
			}
			hp.Outputs = func() []gpu.Region { return []gpu.Region{{Addr: out, Size: 64}} }
			hp.Verify = func(d gpu.Device) error { return nil }
			return hp, nil
		},
	}
}

// TestClassifyProducesDUE scans injection cycles on the pointer register
// until one classifies as DUE (wild access aborts the launch).
func TestClassifyProducesDUE(t *testing.T) {
	chip := chips.MiniNVIDIA()
	bench := synthBenchmark("duebait", dueProg)
	g, err := runGolden(chip, bench, Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := devices.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		t.Fatal(err)
	}
	sawDUE := false
	for c := int64(1); c < g.cycles && !sawDUE; c += 3 {
		// R1 of thread 0 holds the pointer; flip bit 25 (beyond the 4MB
		// device memory) so a live hit must fault.
		f := gpu.Fault{Structure: gpu.RegisterFile, Unit: 0, Entry: 1, Bit: 25, Cycle: c}
		if o, _, _ := classify(d, hp, g, nil, f, g.cycles*20+10000); o == gpu.OutcomeDUE {
			sawDUE = true
		}
	}
	if !sawDUE {
		t.Fatal("no injection on the pointer register produced a DUE")
	}
}

// loopProg counts to a bound held in a register; flipping a high bit of
// the counter mid-loop makes the loop effectively unbounded.
var loopProg = sass.MustAssemble(`
.kernel hangbait
    MOV R1, 0
    MOV R2, 400
loop:
    IADD R1, R1, 1
    ISETP.LT P0, R1, R2
@P0 BRA loop
    MOV R3, c[0]
    STG [R3], R1
    EXIT
`)

// TestClassifyProducesTimeout scans injections on the loop bound until
// one classifies as a watchdog timeout.
func TestClassifyProducesTimeout(t *testing.T) {
	chip := chips.MiniNVIDIA()
	bench := synthBenchmark("hangbait", loopProg)
	g, err := runGolden(chip, bench, Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := devices.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		t.Fatal(err)
	}
	sawTimeout := false
	for c := int64(1); c < g.cycles && !sawTimeout; c += 3 {
		// R2 of thread 0 holds the loop bound; setting bit 30 raises it
		// to ~1e9 iterations, far past the watchdog.
		f := gpu.Fault{Structure: gpu.RegisterFile, Unit: 0, Entry: 2, Bit: 30, Cycle: c}
		if o, _, _ := classify(d, hp, g, nil, f, g.cycles*4); o == gpu.OutcomeTimeout {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatal("no injection on the loop bound produced a timeout")
	}
}

// TestClassifyMasked: a flip after the last use of a register must be
// masked.
func TestClassifyMaskedTail(t *testing.T) {
	chip := chips.MiniNVIDIA()
	bench := synthBenchmark("duebait", dueProg)
	g, err := runGolden(chip, bench, Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := devices.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		t.Fatal(err)
	}
	// Flip an entry in the last cycle: nothing can read it afterwards.
	f := gpu.Fault{Structure: gpu.RegisterFile, Unit: 0, Entry: 1, Bit: 25, Cycle: g.cycles - 1}
	if got, corrupt, _ := classify(d, hp, g, nil, f, g.cycles*20); got != gpu.OutcomeMasked || corrupt != 0 {
		t.Fatalf("tail flip classified as %v (corrupt=%d), want masked", got, corrupt)
	}
}

// TestLocalMemoryFaultsManifest runs a small local-memory campaign on a
// shared-memory benchmark and checks that faults both manifest and mask.
func TestLocalMemoryFaultsManifest(t *testing.T) {
	b, err := workloads.ByName("transpose")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Campaign{
		Chip: chips.MiniNVIDIA(), Benchmark: b,
		Structure: gpu.LocalMemory, Injections: 300, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AVF() <= 0 {
		t.Fatal("no local-memory fault manifested in transpose")
	}
	if res.AVF() >= 1 {
		t.Fatal("no local-memory fault was masked")
	}
}
