package finject

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/chips"
	"repro/internal/workloads"
)

func miniCampaign(t *testing.T, n int) Campaign {
	t.Helper()
	b, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	return Campaign{
		Chip:       chips.MiniNVIDIA(),
		Benchmark:  b,
		Injections: n,
		Seed:       7,
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, miniCampaign(t, 50))
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("canceled before the reference run should yield no result, got %+v", res)
	}
}

func TestRunContextCancelMidCampaign(t *testing.T) {
	c := miniCampaign(t, 200)
	c.Policy.Workers = 1
	// Cancel from a fault-classification hook is not available, so use a
	// context that a goroutine cancels once the first injections land:
	// run the golden up front so the campaign body is all that races.
	golden, err := NewGolden(c.Chip, c.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	c.Golden = golden
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, c)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("want a partial result once the reference run exists")
	}
	if res.Injections >= 200 {
		t.Fatalf("partial result claims %d injections, want < 200", res.Injections)
	}
	total := 0
	for _, cnt := range res.Outcomes {
		total += cnt
	}
	if total != res.Injections {
		t.Fatalf("outcome counts sum %d but Injections is %d", total, res.Injections)
	}
}

func TestGoldenReuseMatchesPrivateRun(t *testing.T) {
	base := miniCampaign(t, 60)
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGolden(base.Chip, base.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	if g.Chip() != base.Chip.Name || g.Benchmark() != base.Benchmark.Name {
		t.Fatalf("golden labels %s/%s", g.Chip(), g.Benchmark())
	}
	if g.Cycles() <= 0 {
		t.Fatal("golden reports no cycles")
	}
	shared := base
	shared.Golden = g
	got, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outcomes != want.Outcomes {
		t.Fatalf("shared-golden outcomes %v differ from private-golden %v", got.Outcomes, want.Outcomes)
	}
	if got.Occupancy != want.Occupancy || got.GoldenStats != want.GoldenStats {
		t.Fatal("shared-golden run stats differ from private-golden run")
	}
}

func TestGoldenMismatchRejected(t *testing.T) {
	c := miniCampaign(t, 10)
	other, err := workloads.ByName("transpose")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGolden(c.Chip, other)
	if err != nil {
		t.Fatal(err)
	}
	c.Golden = g
	_, err = Run(c)
	if err == nil || !strings.Contains(err.Error(), "golden run is for") {
		t.Fatalf("mismatched golden accepted: %v", err)
	}
}
