package finject

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// TestLadderFileEquivalence is the differential proof that ladder files
// are invisible in results: for both vendors, a campaign whose golden is
// rebuilt from scratch, one that captures and persists its ladder (cold)
// and one served from the mmap'd file (warm) must produce byte-identical
// results down to the per-injection record stream.
func TestLadderFileEquivalence(t *testing.T) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	for _, chip := range []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()} {
		t.Run(chip.Vendor.String(), func(t *testing.T) {
			c := Campaign{
				Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
				Injections: 30, Seed: 7, Detail: true,
			}

			SetLadderDir("")
			plain, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			SetLadderDir(dir)
			defer SetLadderDir("")

			cold, err := Run(c) // miss: captures the ladder and persists it
			if err != nil {
				t.Fatal(err)
			}
			path := ladderPath(dir, chip.Name, bench.Name, Checkpoint{})
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("cold run did not persist a ladder file: %v", err)
			}

			hits0 := telemetry.WireMmapHits.Value()
			warm, err := Run(c) // hit: golden served from the mmap'd file
			if err != nil {
				t.Fatal(err)
			}
			if got := telemetry.WireMmapHits.Value() - hits0; got != 1 {
				t.Fatalf("warm run scored %d mmap hits, want 1", got)
			}

			if !reflect.DeepEqual(plain, cold) {
				t.Fatalf("cold ladder-dir run diverged:\nplain %+v\ncold  %+v", plain, cold)
			}
			if !reflect.DeepEqual(plain, warm) {
				t.Fatalf("warm ladder-dir run diverged:\nplain %+v\nwarm  %+v", plain, warm)
			}
		})
	}
}

// TestLadderFileSharedMapping pins the zero-copy sharing rule inside one
// process: every golden served from the same ladder file aliases one
// mapping, so fi_wire_ladder_mmap_bytes counts the file exactly once.
func TestLadderFileSharedMapping(t *testing.T) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	dir := t.TempDir()
	SetLadderDir(dir)
	defer SetLadderDir("")

	if _, err := NewGolden(chip, bench); err != nil { // cold: writes the file
		t.Fatal(err)
	}
	st, err := os.Stat(ladderPath(dir, chip.Name, bench.Name, Checkpoint{}))
	if err != nil {
		t.Fatal(err)
	}

	mmap0 := telemetry.WireLadderMmapBytes.Value()
	hits0 := telemetry.WireMmapHits.Value()
	for i := 0; i < 3; i++ {
		if _, err := NewGolden(chip, bench); err != nil {
			t.Fatal(err)
		}
	}
	if got := telemetry.WireMmapHits.Value() - hits0; got != 3 {
		t.Fatalf("3 goldens scored %d mmap hits, want 3", got)
	}
	if got := telemetry.WireLadderMmapBytes.Value() - mmap0; got != st.Size() {
		t.Fatalf("3 goldens grew the mmap gauge by %d, want one %d-byte mapping", got, st.Size())
	}
}

// ladderChildEnv gates TestLadderChildProcess: the test is a helper
// subprocess body, skipped in normal runs.
const ladderChildEnv = "FI_TEST_LADDER_CHILD"

// TestLadderChildProcess is the body of one child in the two-process
// sharing test: it runs a campaign against the shared ladder directory
// and reports its result stream and mmap telemetry as JSON on stdout.
func TestLadderChildProcess(t *testing.T) {
	dir := os.Getenv(ladderChildEnv)
	if dir == "" {
		t.Skip("helper process body; run via TestLadderTwoProcessSharing")
	}
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	SetLadderDir(dir)
	res, err := Run(Campaign{
		Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
		Injections: 30, Seed: 7, Detail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report := struct {
		Result    *Result
		MmapHits  int64
		MmapBytes int64
	}{res, telemetry.WireMmapHits.Value(), telemetry.WireLadderMmapBytes.Value()}
	out, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("LADDER_CHILD %s\n", out)
}

// TestLadderTwoProcessSharing is the cross-process acceptance proof: two
// concurrent processes sharing one mmap'd ladder file complete with
// byte-identical record streams, and each process's
// fi_wire_ladder_mmap_bytes gauge shows the file mapped exactly once.
func TestLadderTwoProcessSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	dir := t.TempDir()

	// Seed the ladder file in-process so both children hit it.
	SetLadderDir(dir)
	defer SetLadderDir("")
	if _, err := NewGolden(chip, bench); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(ladderPath(dir, chip.Name, bench.Name, Checkpoint{}))
	if err != nil {
		t.Fatal(err)
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outputs := make([]string, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range outputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(exe, "-test.run", "^TestLadderChildProcess$", "-test.v")
			cmd.Env = append(os.Environ(), ladderChildEnv+"="+dir)
			cmd.Dir = filepath.Dir(exe)
			out, err := cmd.CombinedOutput()
			outputs[i], errs[i] = string(out), err
		}(i)
	}
	wg.Wait()

	var reports [2]struct {
		Result    *Result
		MmapHits  int64
		MmapBytes int64
	}
	var payloads [2]string
	for i, out := range outputs {
		if errs[i] != nil {
			t.Fatalf("child %d failed: %v\n%s", i, errs[i], out)
		}
		_, rest, ok := strings.Cut(out, "LADDER_CHILD ")
		if !ok {
			t.Fatalf("child %d printed no report:\n%s", i, out)
		}
		payloads[i] = strings.SplitN(rest, "\n", 2)[0]
		if err := json.Unmarshal([]byte(payloads[i]), &reports[i]); err != nil {
			t.Fatalf("child %d report: %v", i, err)
		}
	}

	// Byte-identical record streams across the two processes.
	if payloads[0] != payloads[1] {
		t.Fatalf("children disagree:\n%s\n%s", payloads[0], payloads[1])
	}
	if len(reports[0].Result.Records) == 0 {
		t.Fatal("children produced no per-injection records")
	}
	for i, r := range reports {
		// Each child was served from the file (not a rebuild) and holds
		// exactly one mapping of it, whose size the gauge reports.
		if r.MmapHits != 1 {
			t.Fatalf("child %d scored %d mmap hits, want 1", i, r.MmapHits)
		}
		if r.MmapBytes != st.Size() {
			t.Fatalf("child %d maps %d ladder bytes, want the %d-byte file once", i, r.MmapBytes, st.Size())
		}
	}
	if wire.MmapSupported() {
		t.Logf("ladder shared by true mmap: %d bytes, one physical copy across processes", st.Size())
	}
}
