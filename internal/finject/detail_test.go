package finject

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// TestDetailRecords verifies per-injection records: the aggregate
// outcomes must match, SDC records must report corrupted bytes, and the
// record stream must be identical across worker counts.
func TestDetailRecords(t *testing.T) {
	b, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := Run(Campaign{
			Chip: chips.MiniNVIDIA(), Benchmark: b,
			Structure: gpu.RegisterFile, Injections: 120, Seed: 3,
			Policy: Policy{Workers: workers}, Detail: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(4)
	if len(res.Records) != 120 {
		t.Fatalf("got %d records", len(res.Records))
	}
	var agg [gpu.NumOutcomes]int
	for i, r := range res.Records {
		agg[r.Outcome]++
		if r.Outcome == gpu.OutcomeSDC && r.CorruptBytes == 0 {
			t.Fatalf("record %d: SDC with zero corrupted bytes", i)
		}
		if r.Outcome != gpu.OutcomeSDC && r.CorruptBytes != 0 {
			t.Fatalf("record %d: %v with corrupted bytes %d", i, r.Outcome, r.CorruptBytes)
		}
		if r.Fault.Structure != gpu.RegisterFile {
			t.Fatalf("record %d: wrong structure %v", i, r.Fault.Structure)
		}
		if r.Fault.Unit < 0 || r.Fault.Unit >= 2 || r.Fault.Bit > 31 {
			t.Fatalf("record %d: fault site out of range: %v", i, r.Fault)
		}
	}
	if agg != res.Outcomes {
		t.Fatalf("record aggregate %v != outcome counts %v", agg, res.Outcomes)
	}

	// Same seed, different worker count: identical record stream.
	res1 := run(1)
	for i := range res.Records {
		if res.Records[i] != res1.Records[i] {
			t.Fatalf("record %d differs across worker counts: %+v vs %+v",
				i, res.Records[i], res1.Records[i])
		}
	}
}

// TestNoDetailByDefault keeps the memory-free default.
func TestNoDetailByDefault(t *testing.T) {
	b, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Campaign{
		Chip: chips.MiniNVIDIA(), Benchmark: b,
		Structure: gpu.RegisterFile, Injections: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != nil {
		t.Fatal("records allocated without Detail")
	}
}
