package finject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gpu"
)

// Checkpointed fast-forward: while the golden reference run executes,
// the engine captures snapshots of the complete device state every K
// cycles (the checkpoint ladder). Each injection then restores the
// greatest snapshot at or below its fault cycle and resumes from there
// instead of re-simulating the fault-free prefix from power-on state —
// at uniform (bit, cycle) sampling this roughly halves the simulated
// cycles per injection. The ladder hangs off the shared Golden, is
// immutable after construction, and is read concurrently by the whole
// worker pool. Checkpointing never changes results: fault #i is still
// derived from (Seed, i) alone and the resumed execution is
// bit-identical to a full replay (see CheckpointEquivalence and the
// differential suite in equiv_test.go).

// Checkpoint configures checkpointed fast-forward execution. The zero
// value is the default: checkpointing on, interval auto-sized from the
// golden run's cycle count and the memory budget.
type Checkpoint struct {
	// Off disables fast-forward: every injection replays from cycle 0.
	Off bool `json:"off,omitempty"`
	// Interval overrides the auto-sized snapshot spacing in device
	// cycles (0 = auto).
	Interval int64 `json:"interval,omitempty"`
}

// ParseCheckpoint parses the -checkpoint CLI flag value: "auto" (the
// default ladder), "off", or a positive cycle interval.
func ParseCheckpoint(s string) (Checkpoint, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto", "on":
		return Checkpoint{}, nil
	case "off":
		return Checkpoint{Off: true}, nil
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n <= 0 {
		return Checkpoint{}, fmt.Errorf("finject: bad checkpoint %q (want auto, off or a positive cycle interval)", s)
	}
	return Checkpoint{Interval: n}, nil
}

// String renders the configuration in flag syntax.
func (c Checkpoint) String() string {
	switch {
	case c.Off:
		return "off"
	case c.Interval > 0:
		return strconv.FormatInt(c.Interval, 10)
	default:
		return "auto"
	}
}

// CheckpointBudgetBytes bounds the memory one checkpoint ladder may
// hold; the auto-sizing divides it by the measured snapshot size to cap
// the ladder length.
const CheckpointBudgetBytes = 256 << 20

// maxLadderSnapshots caps a ladder regardless of budget; beyond ~64
// rungs the residual prefix per injection is already small compared to
// the post-fault suffix.
const maxLadderSnapshots = 64

// minCheckpointInterval is the auto-sizer's initial spacing; short
// golden runs are cheap to replay in full, so they get no ladder at all.
const minCheckpointInterval = 2048

// ladderBuilder accumulates a checkpoint ladder during a golden run,
// driving the device's checkpoint hook. In auto mode it starts at
// minCheckpointInterval and, whenever the rung count hits the cap
// (derived from the measured snapshot size and the memory budget), it
// drops every other rung and doubles the interval — an online scheme
// that needs no advance knowledge of the golden cycle count and ends
// within 2x of the ideal spacing.
type ladderBuilder struct {
	interval int64
	fixed    bool
	cap      int
	snaps    []gpu.Snapshot
}

func newLadderBuilder(cfg Checkpoint) *ladderBuilder {
	if cfg.Interval > 0 {
		return &ladderBuilder{interval: cfg.Interval, fixed: true}
	}
	return &ladderBuilder{interval: minCheckpointInterval}
}

// hook is the gpu.Device checkpoint callback: it stores the snapshot
// and returns the next capture cycle (or stops at the cap).
func (lb *ladderBuilder) hook(s gpu.Snapshot) int64 {
	lb.snaps = append(lb.snaps, s)
	if lb.cap == 0 {
		// First snapshot: size the ladder against the memory budget.
		// The budget applies to fixed intervals too — a short explicit
		// interval on a big chip must not hold gigabytes of snapshots.
		lb.cap = maxLadderSnapshots
		if sz := s.SizeBytes(); sz > 0 {
			if byBudget := int(CheckpointBudgetBytes / sz); byBudget < lb.cap {
				lb.cap = byBudget
			}
		}
		if lb.cap < 2 {
			lb.cap = 2
		}
	}
	if len(lb.snaps) >= lb.cap {
		if lb.fixed {
			return -1 // honor the interval, stop extending the ladder
		}
		kept := lb.snaps[:0]
		for i, snap := range lb.snaps {
			if i%2 == 0 {
				kept = append(kept, snap)
			}
		}
		lb.snaps = kept
		lb.interval *= 2
	}
	return s.Cycle() + lb.interval
}

// arm installs the builder's hook on the device, with the first capture
// one interval in.
func (lb *ladderBuilder) arm(d gpu.Device) {
	d.SetCheckpointHook(lb.interval, lb.hook)
}

// latestBelow returns the greatest snapshot with Cycle <= cycle, or nil
// when the ladder has no such rung (the injection then replays in full).
func latestBelow(ladder []gpu.Snapshot, cycle int64) gpu.Snapshot {
	i := sort.Search(len(ladder), func(i int) bool { return ladder[i].Cycle() > cycle })
	if i == 0 {
		return nil
	}
	return ladder[i-1]
}
