package finject

import "testing"

// TestParseCheckpoint covers the -checkpoint flag grammar.
func TestParseCheckpoint(t *testing.T) {
	good := map[string]Checkpoint{
		"auto":  {},
		"":      {},
		"on":    {},
		"AUTO":  {},
		"off":   {Off: true},
		" Off ": {Off: true},
		"4096":  {Interval: 4096},
		"1":     {Interval: 1},
	}
	for in, want := range good {
		got, err := ParseCheckpoint(in)
		if err != nil {
			t.Errorf("ParseCheckpoint(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseCheckpoint(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{"0", "-1", "never", "1.5", "12x"} {
		if _, err := ParseCheckpoint(in); err == nil {
			t.Errorf("ParseCheckpoint(%q) accepted", in)
		}
	}
}

// TestCheckpointString pins the flag-syntax rendering.
func TestCheckpointString(t *testing.T) {
	cases := map[string]Checkpoint{
		"auto": {},
		"off":  {Off: true},
		"2048": {Interval: 2048},
	}
	for want, ck := range cases {
		if got := ck.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", ck, got, want)
		}
	}
}
