package finject

import (
	"errors"
	"io/fs"
	"log/slog"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// File-backed checkpoint ladders (the -ladder-dir flag): when a ladder
// directory is configured, every golden run first looks for a serialized
// ladder of its (chip, benchmark, interval) and, on a hit, mmaps it
// read-only instead of re-capturing snapshots — so any number of
// processes on a host share one physical copy of each ladder's pages.
// On a miss the run captures its ladder as usual and serializes it
// best-effort for the next process. Ladders never affect results (the
// deterministic golden run rebuilds an identical one from scratch), so
// every file-path failure falls back to rebuilding.

// ladderDirV holds the process-wide ladder directory ("" = disabled).
var ladderDirV atomic.Pointer[string]

// SetLadderDir configures the directory where golden runs persist and
// share checkpoint ladders; the empty string disables ladder files.
// The directory must exist.
func SetLadderDir(dir string) { ladderDirV.Store(&dir) }

// LadderDir returns the configured ladder directory ("" when disabled).
func LadderDir() string {
	p := ladderDirV.Load()
	if p == nil {
		return ""
	}
	return *p
}

// ladderFileName derives the ladder file name for one golden
// configuration. Chip and benchmark names are sanitized to a portable
// filename alphabet; the identity check happens on the names stored
// inside the file (wire.LadderInfo), so a sanitization collision can at
// worst cause a rebuild, never a wrong ladder.
func ladderFileName(chip, bench string, interval int64) string {
	return sanitizeName(chip) + "__" + sanitizeName(bench) + "__" + strconv.FormatInt(interval, 10) + ".ladder"
}

// sanitizeName maps a name onto [A-Za-z0-9._-].
func sanitizeName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// ladderPath returns the full ladder file path for a configuration.
func ladderPath(dir, chip, bench string, ckpt Checkpoint) string {
	return filepath.Join(dir, ladderFileName(chip, bench, ckpt.Interval))
}

// loadLadderFile tries to serve a golden run's ladder from the ladder
// directory. ok is false when ladder files are disabled, the device
// cannot decode snapshots, the file is absent, or it is unusable — the
// caller then captures the ladder during the run as usual.
func loadLadderFile(d gpu.Device, chip, bench string, ckpt Checkpoint) (snaps []gpu.Snapshot, ok bool) {
	dir := LadderDir()
	if dir == "" || ckpt.Off {
		return nil, false
	}
	codec, isCodec := d.(gpu.SnapshotCodec)
	if !isCodec {
		return nil, false
	}
	path := ladderPath(dir, chip, bench, ckpt)
	info := wire.LadderInfo{Chip: chip, Benchmark: bench, Interval: ckpt.Interval}
	snaps, err := wire.OpenLadder(path, info, codec)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			slog.Warn("finject: ladder file unusable, rebuilding", "path", path, "err", err)
		}
		return nil, false
	}
	telemetry.WireMmapHits.Inc()
	return snaps, true
}

// saveLadderFile persists a freshly captured ladder, best-effort: the
// write is atomic (tmp + fsync + rename) and a failure only costs the
// next process a rebuild.
func saveLadderFile(d gpu.Device, chip, bench string, ckpt Checkpoint, snaps []gpu.Snapshot) {
	dir := LadderDir()
	if dir == "" || ckpt.Off {
		return
	}
	codec, isCodec := d.(gpu.SnapshotCodec)
	if !isCodec {
		return
	}
	path := ladderPath(dir, chip, bench, ckpt)
	info := wire.LadderInfo{Chip: chip, Benchmark: bench, Interval: ckpt.Interval}
	if err := wire.WriteLadder(path, info, codec, snaps); err != nil {
		slog.Warn("finject: could not persist ladder file", "path", path, "err", err)
	}
}
