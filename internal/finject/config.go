package finject

import "fmt"

// ConfigVersion is the current schema version of Config. Version 0 on
// the wire normalizes to it; any other version is rejected so a future
// v2 can change field semantics without silently misreading v1 blocks.
const ConfigVersion = 1

// Config is the engine's one versioned execution-configuration surface:
// stopping rule, injection cap, worker count, seed and checkpoint knob
// in a single JSON-serializable block. Every producer — campaign cell
// specs, experiment spec v1 policy blocks, the /v1/jobs policy body and
// the lease wire — constructs campaigns through it instead of each
// assembling a finject.Policy by hand. Policy remains as a frozen
// compatibility shim the engine consumes internally; new knobs land
// here, not there.
//
// Field semantics match the historical wire forms exactly: zero values
// mean "default" everywhere, and a nil Checkpoint means "keep the
// campaign's own checkpoint knob" (the presence distinction the job
// policy block has always had).
type Config struct {
	// Version is the schema version (0 normalizes to ConfigVersion).
	Version int `json:"v,omitempty"`
	// Workers bounds the parallel device replicas of one campaign
	// (GOMAXPROCS when 0). Execution-only: never part of cell identity.
	Workers int `json:"workers,omitempty"`
	// Margin > 0 enables adaptive sampling down to this Wilson
	// half-width.
	Margin float64 `json:"margin,omitempty"`
	// Confidence is the stopping rule's level (DefaultConfidence when 0).
	Confidence float64 `json:"confidence,omitempty"`
	// MaxInjections caps the campaign when > 0.
	MaxInjections int `json:"max_injections,omitempty"`
	// Seed selects the fault sample when > 0.
	Seed uint64 `json:"seed,omitempty"`
	// Checkpoint overrides the checkpointed fast-forward knob when
	// non-nil; nil keeps the target campaign's own setting.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
}

// Normalize validates the config and resolves its version. Error text
// is part of the HTTP API (the /v1/jobs policy validation) — change it
// only with the corresponding compat tests.
func (c Config) Normalize() (Config, error) {
	if c.Version == 0 {
		c.Version = ConfigVersion
	}
	if c.Version != ConfigVersion {
		return c, fmt.Errorf("bad policy version %d (want %d)", c.Version, ConfigVersion)
	}
	if c.Margin < 0 || c.Margin >= 1 {
		return c, fmt.Errorf("bad policy margin %v (want [0,1))", c.Margin)
	}
	if c.Confidence < 0 || c.Confidence >= 1 {
		return c, fmt.Errorf("bad policy confidence %v (want [0,1))", c.Confidence)
	}
	if c.MaxInjections < 0 {
		return c, fmt.Errorf("bad policy max_injections %d", c.MaxInjections)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("bad policy workers %d", c.Workers)
	}
	if c.Checkpoint != nil && c.Checkpoint.Interval < 0 {
		return c, fmt.Errorf("bad policy checkpoint interval %d", c.Checkpoint.Interval)
	}
	return c, nil
}

// Equal reports whether two configs describe the same execution
// configuration (checkpoint compared by value, not pointer).
func (c Config) Equal(o Config) bool {
	if c.Version != o.Version || c.Workers != o.Workers ||
		c.Margin != o.Margin || c.Confidence != o.Confidence ||
		c.MaxInjections != o.MaxInjections || c.Seed != o.Seed {
		return false
	}
	switch {
	case c.Checkpoint == nil && o.Checkpoint == nil:
		return true
	case c.Checkpoint == nil || o.Checkpoint == nil:
		return false
	default:
		return *c.Checkpoint == *o.Checkpoint
	}
}

// Policy flattens the config onto the frozen Policy shim, using base as
// the checkpoint knob when the config leaves it unset.
func (c Config) Policy(base Checkpoint) Policy {
	ck := base
	if c.Checkpoint != nil {
		ck = *c.Checkpoint
	}
	return Policy{
		Workers:       c.Workers,
		Margin:        c.Margin,
		Confidence:    c.Confidence,
		MaxInjections: c.MaxInjections,
		Checkpoint:    ck,
	}
}

// ApplyTo installs the config on a campaign: the single construction
// path from any wire or spec form to a runnable campaign. The
// campaign's existing checkpoint knob survives a nil Checkpoint, and
// its seed survives a zero Seed.
func (c Config) ApplyTo(cp *Campaign) {
	cp.Policy = c.Policy(cp.Policy.Checkpoint)
	if c.Seed != 0 {
		cp.Seed = c.Seed
	}
}

// ConfigOf snapshots a campaign's execution configuration in wire form.
func ConfigOf(cp Campaign) Config {
	ck := cp.Policy.Checkpoint
	return Config{
		Version:       ConfigVersion,
		Workers:       cp.Policy.Workers,
		Margin:        cp.Policy.Margin,
		Confidence:    cp.Policy.Confidence,
		MaxInjections: cp.Policy.MaxInjections,
		Seed:          cp.Seed,
		Checkpoint:    &ck,
	}
}
