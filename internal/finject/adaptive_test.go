package finject

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func adaptiveCampaign(t *testing.T, cap int, pol Policy) Campaign {
	t.Helper()
	b, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	return Campaign{
		Chip:       chips.MiniNVIDIA(),
		Benchmark:  b,
		Structure:  gpu.RegisterFile,
		Injections: cap,
		Seed:       42,
		Policy:     pol,
	}
}

// TestAdaptiveStopsEarly is the headline property: a high-confidence cell
// (vectoradd's register-file AVF is far from 0.5, so its interval
// tightens quickly) must stop well below the cap once the Wilson interval
// half-width reaches the requested margin.
func TestAdaptiveStopsEarly(t *testing.T) {
	const cap = 2000
	res, err := Run(adaptiveCampaign(t, cap, Policy{Margin: 0.1, Confidence: 0.99}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections >= cap {
		t.Fatalf("adaptive campaign ran all %d injections, want early stop", cap)
	}
	if res.Injections < adaptiveFirstRound {
		t.Fatalf("adaptive campaign stopped at %d, before the first round of %d", res.Injections, adaptiveFirstRound)
	}
	hw, err := res.HalfWidth(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if hw > 0.1 {
		t.Fatalf("stopped with half-width %.4f > margin 0.1", hw)
	}
	total := 0
	for _, cnt := range res.Outcomes {
		total += cnt
	}
	if total != res.Injections {
		t.Fatalf("outcome counts sum %d but Injections is %d", total, res.Injections)
	}
}

// TestAdaptiveRunsToCap: an unattainable margin degrades to the fixed
// sample size — the cap is a hard bound.
func TestAdaptiveRunsToCap(t *testing.T) {
	const cap = 150
	res, err := Run(adaptiveCampaign(t, cap, Policy{Margin: 1e-6}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != cap {
		t.Fatalf("got %d injections, want the cap %d", res.Injections, cap)
	}
}

// TestAdaptivePrefixMatchesFixed: the adaptive engine must inject the
// exact same fault sample as a fixed campaign of the realized size —
// rounds only decide when to stop, never what to inject.
func TestAdaptivePrefixMatchesFixed(t *testing.T) {
	adaptive, err := Run(adaptiveCampaign(t, 2000, Policy{Margin: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(adaptiveCampaign(t, adaptive.Injections, Policy{}))
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Outcomes != fixed.Outcomes {
		t.Fatalf("adaptive outcomes %v != fixed prefix outcomes %v", adaptive.Outcomes, fixed.Outcomes)
	}
}

// TestAdaptiveMaxInjectionsOverridesCap: Policy.MaxInjections wins over
// Campaign.Injections when both are set.
func TestAdaptiveMaxInjectionsOverridesCap(t *testing.T) {
	res, err := Run(adaptiveCampaign(t, 500, Policy{Margin: 1e-6, MaxInjections: 120}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != 120 {
		t.Fatalf("got %d injections, want MaxInjections 120", res.Injections)
	}
}

func TestPolicyCap(t *testing.T) {
	cases := []struct {
		pol        Policy
		injections int
		want       int
	}{
		{Policy{}, 0, DefaultInjections},
		{Policy{}, 300, 300},
		{Policy{MaxInjections: 50}, 300, 50},
		{Policy{MaxInjections: 50}, 0, 50},
	}
	for _, c := range cases {
		if got := c.pol.Cap(c.injections); got != c.want {
			t.Errorf("Cap(%+v, %d) = %d, want %d", c.pol, c.injections, got, c.want)
		}
	}
}

func TestPolicySatisfiedBy(t *testing.T) {
	// 0 failures in 400 trials: Wilson half-width at 99% is ~0.008.
	tight := &Result{Injections: 400}
	tight.Outcomes[gpu.OutcomeMasked] = 400
	// 0 failures in 100 trials: half-width ~0.032.
	loose := &Result{Injections: 100}
	loose.Outcomes[gpu.OutcomeMasked] = 100

	fixed := Policy{}
	adaptive := Policy{Margin: 0.02, Confidence: 0.99}

	if fixed.SatisfiedBy(nil, 400) {
		t.Error("nil result satisfied a request")
	}
	if !fixed.SatisfiedBy(tight, 400) {
		t.Error("full-cap result rejected by fixed request")
	}
	if fixed.SatisfiedBy(loose, 400) {
		t.Error("partial result satisfied a fixed request")
	}
	if !adaptive.SatisfiedBy(tight, 2000) {
		t.Error("tight result rejected by adaptive request within margin")
	}
	if adaptive.SatisfiedBy(loose, 2000) {
		t.Error("loose result satisfied an adaptive request with a tighter margin")
	}
	if !adaptive.SatisfiedBy(loose, 100) {
		t.Error("result at the cap rejected by adaptive request")
	}
}
