package finject

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/wire"
)

// Wire codec for campaign results: the payload body of a RecCell record
// in binary result stores (campaign.BinaryDiskStore). The layout must
// round-trip Result exactly — the binary store's differential tests
// compare figure JSON rendered from converted stores byte for byte.

// EncodeResult appends res to w in wire layout.
func EncodeResult(w *wire.Writer, res *Result) {
	for _, n := range res.Outcomes {
		w.Int(n)
	}
	w.Int(res.Injections)
	w.I64(res.GoldenStats.Cycles)
	w.I64(res.GoldenStats.Instructions)
	w.I64(res.GoldenStats.LaneInstructions)
	w.Int(res.GoldenStats.Launches)
	w.F64(res.GoldenStats.RegOcc.AllocUnitCycles)
	w.F64(res.GoldenStats.LocalOcc.AllocUnitCycles)
	w.F64(res.Occupancy)
	w.U32(uint32(len(res.Records)))
	for _, rec := range res.Records {
		w.Int(int(rec.Fault.Structure))
		w.Int(rec.Fault.Unit)
		w.Int(rec.Fault.Entry)
		w.U64(uint64(rec.Fault.Bit))
		w.U64(uint64(rec.Fault.Width))
		w.I64(rec.Fault.Cycle)
		w.U8(uint8(rec.Outcome))
		w.Int(rec.CorruptBytes)
	}
}

// recordWireSize is the encoded size of one detail Record, used to bound
// decode-time allocation by the input size.
const recordWireSize = 8*6 + 1 + 8

// DecodeResult decodes a Result encoded by EncodeResult, consuming the
// reader exactly.
func DecodeResult(r *wire.Reader) (*Result, error) {
	res := &Result{}
	for i := range res.Outcomes {
		res.Outcomes[i] = r.Int()
	}
	res.Injections = r.Int()
	res.GoldenStats.Cycles = r.I64()
	res.GoldenStats.Instructions = r.I64()
	res.GoldenStats.LaneInstructions = r.I64()
	res.GoldenStats.Launches = r.Int()
	res.GoldenStats.RegOcc.AllocUnitCycles = r.F64()
	res.GoldenStats.LocalOcc.AllocUnitCycles = r.F64()
	res.Occupancy = r.F64()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("finject: result record: %w", err)
	}
	if n > 0 {
		if n > r.Remaining()/recordWireSize {
			return nil, fmt.Errorf("finject: result record: %w: implausible detail count %d", wire.ErrCorrupt, n)
		}
		res.Records = make([]Record, n)
		for i := range res.Records {
			res.Records[i] = Record{
				Fault: gpu.Fault{
					Structure: gpu.Structure(r.Int()),
					Unit:      r.Int(),
					Entry:     r.Int(),
					Bit:       uint(r.U64()),
					Width:     uint(r.U64()),
					Cycle:     r.I64(),
				},
				Outcome:      gpu.Outcome(r.U8()),
				CorruptBytes: r.Int(),
			}
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("finject: result record: %w", err)
	}
	return res, nil
}
