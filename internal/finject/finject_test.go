package finject

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func testCampaign(t *testing.T, chip *chips.Chip, benchName string, st gpu.Structure, n int) *Result {
	t.Helper()
	b, err := workloads.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Campaign{
		Chip: chip, Benchmark: b, Structure: st,
		Injections: n, Seed: 42,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return res
}

func TestCampaignBasics(t *testing.T) {
	res := testCampaign(t, chips.MiniNVIDIA(), "vectoradd", gpu.RegisterFile, 100)
	total := 0
	for _, c := range res.Outcomes {
		total += c
	}
	if total != 100 || res.Injections != 100 {
		t.Fatalf("outcome counts %v don't sum to N", res.Outcomes)
	}
	if res.AVF() < 0 || res.AVF() > 1 {
		t.Fatalf("AVF %v out of range", res.AVF())
	}
	if res.Occupancy <= 0 || res.Occupancy > 1 {
		t.Fatalf("occupancy %v out of range", res.Occupancy)
	}
	lo, hi, err := res.AVFInterval(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if lo > res.AVF() || hi < res.AVF() {
		t.Fatalf("interval [%v,%v] excludes point estimate %v", lo, hi, res.AVF())
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := testCampaign(t, chips.MiniNVIDIA(), "reduction", gpu.LocalMemory, 60)
	b := testCampaign(t, chips.MiniNVIDIA(), "reduction", gpu.LocalMemory, 60)
	if a.Outcomes != b.Outcomes {
		t.Fatalf("same seed produced different outcomes: %v vs %v", a.Outcomes, b.Outcomes)
	}
}

func TestCampaignDifferentSeedsDiffer(t *testing.T) {
	b, err := workloads.ByName("reduction")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(Campaign{Chip: chips.MiniNVIDIA(), Benchmark: b, Structure: gpu.RegisterFile, Injections: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Campaign{Chip: chips.MiniNVIDIA(), Benchmark: b, Structure: gpu.RegisterFile, Injections: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcomes == r2.Outcomes {
		t.Log("warning: different seeds produced identical outcome vectors (possible but unlikely)")
	}
}

func TestCampaignAMD(t *testing.T) {
	res := testCampaign(t, chips.MiniAMD(), "vectoradd", gpu.RegisterFile, 100)
	if res.GoldenStats.Cycles <= 0 {
		t.Fatalf("golden stats missing: %+v", res.GoldenStats)
	}
}

// TestSomeFaultsManifest: with enough injections into the register file of
// a compute-heavy kernel, at least one should fail (AVF > 0) and at least
// one should be masked (AVF < 1).
func TestSomeFaultsManifest(t *testing.T) {
	res := testCampaign(t, chips.MiniNVIDIA(), "matrixMul", gpu.RegisterFile, 200)
	if res.AVF() == 0 {
		t.Fatal("no fault manifested in 200 register-file injections of matrixMul")
	}
	if res.AVF() == 1 {
		t.Fatal("every fault manifested; masking is implausibly absent")
	}
}
