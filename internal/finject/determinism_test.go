package finject

import (
	"encoding/json"
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// TestResultByteIdentical is the engine's determinism contract: with a
// fixed seed, the marshaled Result — outcome counts, realized sample
// size, golden statistics and the full per-injection record stream — is
// byte-identical for any worker count, and for serial vs adaptive
// execution whenever both run the same number of injections (here an
// unattainable margin drives the adaptive run to the cap).
func TestResultByteIdentical(t *testing.T) {
	b, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	golden, err := NewGolden(chip, b)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 150
	campaign := func(pol Policy) Campaign {
		return Campaign{
			Chip: chip, Benchmark: b, Structure: gpu.RegisterFile,
			Injections: cap, Seed: 9, Detail: true, Golden: golden,
			Policy: pol,
		}
	}
	marshal := func(pol Policy) []byte {
		t.Helper()
		res, err := Run(campaign(pol))
		if err != nil {
			t.Fatal(err)
		}
		if res.Injections != cap {
			t.Fatalf("policy %+v ran %d injections, want %d", pol, res.Injections, cap)
		}
		bs, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return bs
	}

	want := marshal(Policy{Workers: 1})
	for _, pol := range []Policy{
		{Workers: 8},
		{Workers: 1, Margin: 1e-9},
		{Workers: 8, Margin: 1e-9},
	} {
		if got := marshal(pol); string(got) != string(want) {
			t.Fatalf("policy %+v produced a different result", pol)
		}
	}
}
