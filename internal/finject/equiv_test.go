package finject

import (
	"fmt"
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// TestCheckpointEquivalenceMatrix is the differential proof that
// checkpointed fast-forward is invisible in results: for every benchmark
// of the suite, on both vendors' simulators, for every structure the
// benchmark exercises, a campaign executed through the checkpoint ladder
// must be byte-identical to the same campaign replayed in full — same
// outcome counts, same golden statistics, and the same per-injection
// record stream (fault site, outcome, SDC severity, in order). The
// comparison itself lives in CheckpointEquivalence so future engine
// changes rerun exactly this proof.
func TestCheckpointEquivalenceMatrix(t *testing.T) {
	const n = 40
	for _, chip := range []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()} {
		for _, bench := range workloads.All() {
			golden, err := NewGolden(chip, bench)
			if err != nil {
				t.Fatalf("%s/%s: golden: %v", chip.Name, bench.Name, err)
			}
			structures := []gpu.Structure{gpu.RegisterFile}
			if bench.UsesLocal {
				structures = append(structures, gpu.LocalMemory)
			}
			for _, st := range structures {
				t.Run(fmt.Sprintf("%s/%s/%s", chip.Vendor, bench.Name, st), func(t *testing.T) {
					seed := CellSeed(chip.Name, bench.Name, st)
					if _, err := CheckpointEquivalence(Campaign{
						Chip: chip, Benchmark: bench, Structure: st,
						Injections: n, Seed: seed, Golden: golden,
					}); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// CellSeed derives a distinct test seed per matrix cell so every cell
// draws its own fault sample.
func CellSeed(chip, bench string, st gpu.Structure) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, s := range []string{chip, bench} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	return (h ^ uint64(st)) * 0x100000001b3
}

// TestCheckpointEquivalenceAdaptive pins the fast-forward engine under
// the adaptive stopping rule: early stopping depends only on outcome
// counts, which checkpointing must not perturb, so the realized sample
// size and the record prefix must match exactly.
func TestCheckpointEquivalenceAdaptive(t *testing.T) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckpointEquivalence(Campaign{
		Chip: chips.MiniNVIDIA(), Benchmark: bench, Structure: gpu.RegisterFile,
		Injections: 800, Seed: 23,
		Policy: Policy{Margin: 0.08},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointIntervalOverrideEquivalence pins an explicit -checkpoint
// interval: a ladder at a fixed, deliberately odd spacing must still be
// invisible in results.
func TestCheckpointIntervalOverrideEquivalence(t *testing.T) {
	bench, err := workloads.ByName("gaussian")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckpointEquivalence(Campaign{
		Chip: chips.MiniNVIDIA(), Benchmark: bench, Structure: gpu.RegisterFile,
		Injections: 80, Seed: 31,
		Policy: Policy{Checkpoint: Checkpoint{Interval: 777}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLadderShape sanity-checks the auto-sized ladder: ascending capture
// cycles within the golden run, and a rung count within the cap.
func TestLadderShape(t *testing.T) {
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGolden(chips.MiniNVIDIA(), bench)
	if err != nil {
		t.Fatal(err)
	}
	cycles := g.CheckpointCycles()
	if len(cycles) == 0 {
		t.Fatalf("no checkpoints captured for a %d-cycle golden run", g.Cycles())
	}
	if len(cycles) > maxLadderSnapshots {
		t.Fatalf("ladder has %d rungs, cap is %d", len(cycles), maxLadderSnapshots)
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] {
			t.Fatalf("ladder cycles not ascending: %v", cycles)
		}
	}
	if last := cycles[len(cycles)-1]; last >= g.Cycles() {
		t.Fatalf("last checkpoint at cycle %d is beyond the golden run (%d cycles)", last, g.Cycles())
	}
}
