package amdsim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/siasm"
	"repro/internal/workloads"
)

// FuzzSnapshotRestore mirrors the nvsim target: for arbitrary assembled
// SI programs and arbitrary snapshot cycles, restore-then-run must end
// in exactly the state, statistics and error of the uninterrupted run.
// The seed corpus is the paper suite's real SI kernels.
func FuzzSnapshotRestore(f *testing.F) {
	for _, src := range workloads.KernelSources(gpu.AMD) {
		f.Add(src, uint32(1000))
	}
	f.Add(".kernel k\ns_endpgm\n", uint32(0))
	f.Add(".kernel k\ns_mov_b32 s4, 7\nloop:\ns_add_i32 s4, s4, 1\ns_branch loop\ns_endpgm\n", uint32(5000))
	f.Fuzz(func(t *testing.T, src string, snapRaw uint32) {
		prog, err := siasm.Assemble(src)
		if err != nil {
			return
		}
		chip := chips.MiniAMD()
		const watchdog = 100_000
		snapCycle := int64(snapRaw % 60_000)

		drive := func(d *Device) error {
			buf, err := d.Mem().Alloc(4096)
			if err != nil {
				return err
			}
			words := make([]uint32, 1024)
			for i := range words {
				words[i] = uint32(i * 2654435761)
			}
			if err := d.Mem().WriteWords(buf, words); err != nil {
				return err
			}
			args := make([]uint32, prog.NumKArgs)
			for i := range args {
				args[i] = buf
			}
			return d.Launch(gpu.LaunchSpec{
				Kernel: prog, Grid: gpu.D1(2), Group: gpu.D1(64), Args: args,
			})
		}

		full, err := New(chip)
		if err != nil {
			t.Fatal(err)
		}
		full.SetWatchdog(watchdog)
		var snap gpu.Snapshot
		full.SetCheckpointHook(snapCycle, func(s gpu.Snapshot) int64 {
			snap = s
			return -1 // one capture per run
		})
		fullErr := drive(full)
		if snap == nil {
			return
		}

		resumed, err := New(chip)
		if err != nil {
			t.Fatal(err)
		}
		resumed.SetWatchdog(watchdog)
		if err := resumed.Restore(snap); err != nil {
			t.Fatalf("restore: %v", err)
		}
		resumedErr := drive(resumed)

		if fmt.Sprint(fullErr) != fmt.Sprint(resumedErr) {
			t.Fatalf("errors diverge: full=%v resumed=%v\nprogram:\n%s", fullErr, resumedErr, src)
		}
		if full.Stats() != resumed.Stats() {
			t.Fatalf("stats diverge:\nfull:    %+v\nresumed: %+v\nprogram:\n%s", full.Stats(), resumed.Stats(), src)
		}
		if !reflect.DeepEqual(full.Snapshot(), resumed.Snapshot()) {
			t.Fatalf("device state diverges after resume (snapshot at cycle %d)\nprogram:\n%s", snap.Cycle(), src)
		}
	})
}
