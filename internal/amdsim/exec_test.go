package amdsim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/siasm"
)

// runScalarSI executes a kernel with one wavefront lane writing v31 to
// OUT (karg[0]) and returns the stored word.
func runScalarSI(t *testing.T, body string, extraArgs ...uint32) uint32 {
	t.Helper()
	src := ".kernel t\n" + body + `
    s_load_dword s30, karg[0]
    v_mov_b32 v30, s30
    buffer_store_dword v31, v30, 0
    s_endpgm
`
	prog, err := siasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Mem().Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]uint32{out}, extraArgs...)
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(1), Args: args})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	v, err := d.Mem().Load32(out)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVectorALUSemantics(t *testing.T) {
	f32 := math.Float32bits
	cases := []struct {
		name string
		body string
		want uint32
	}{
		{"vadd", "v_mov_b32 v1, 7\nv_add_i32 v31, v1, -3", 4},
		{"vsub-wrap", "v_mov_b32 v1, 0\nv_sub_i32 v31, v1, 1", 0xFFFFFFFF},
		{"vmul", "v_mov_b32 v1, -4\nv_mul_i32 v31, v1, 3", uint32(0xFFFFFFF4)},
		{"vmin", "v_mov_b32 v1, -2\nv_min_i32 v31, v1, 1", 0xFFFFFFFE},
		{"vmax", "v_mov_b32 v1, -2\nv_max_i32 v31, v1, 1", 1},
		{"lshlrev", "v_mov_b32 v1, 3\nv_lshlrev_b32 v31, 4, v1", 48}, // D = S1 << S0
		{"lshrrev", "v_mov_b32 v1, 0x80000000\nv_lshrrev_b32 v31, 31, v1", 1},
		{"vaddf", "v_mov_b32 v1, 1.5f\nv_add_f32 v31, v1, 2.25f", f32(3.75)},
		{"vmac", "v_mov_b32 v31, 4.0f\nv_mov_b32 v1, 2.0f\nv_mac_f32 v31, v1, 3.0f", f32(10)},
		{"rcp", "v_mov_b32 v1, 4.0f\nv_rcp_f32 v31, v1", f32(0.25)},
		{"exp2", "v_mov_b32 v1, 3.0f\nv_exp_f32 v31, v1", f32(8)},
		{"log2", "v_mov_b32 v1, 8.0f\nv_log_f32 v31, v1", f32(3)},
		{"sqrt", "v_mov_b32 v1, 9.0f\nv_sqrt_f32 v31, v1", f32(3)},
		{"cvtfi", "v_mov_b32 v1, -7\nv_cvt_f32_i32 v31, v1", f32(-7)},
		{"cvtif", "v_mov_b32 v1, -2.75f\nv_cvt_i32_f32 v31, v1", 0xFFFFFFFE},
		{"minf-nan", "v_mov_b32 v1, 0x7FC00000\nv_min_f32 v31, v1, 3.0f", f32(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runScalarSI(t, c.body); got != c.want {
				t.Fatalf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestScalarALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		want uint32
	}{
		{"sadd", "s_mov_b32 s1, 40\ns_add_i32 s2, s1, 2\nv_mov_b32 v31, s2", 42},
		{"smul", "s_mov_b32 s1, -6\ns_mul_i32 s2, s1, 7\nv_mov_b32 v31, s2", uint32(0xFFFFFFD6)},
		{"smin", "s_mov_b32 s1, -6\ns_min_i32 s2, s1, 2\nv_mov_b32 v31, s2", uint32(0xFFFFFFFA)},
		{"slshl", "s_mov_b32 s1, 3\ns_lshl_b32 s2, s1, 4\nv_mov_b32 v31, s2", 48},
		{"sand", "s_mov_b32 s1, 0xFF\ns_and_b32 s2, s1, 0x0F\nv_mov_b32 v31, s2", 0x0F},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runScalarSI(t, c.body); got != c.want {
				t.Fatalf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestSCmpAndBranch(t *testing.T) {
	body := `
    v_mov_b32 v31, 1
    s_mov_b32 s1, 5
    s_cmp_lt_i32 s1, 10
    s_cbranch_scc0 skip
    v_mov_b32 v31, 2
skip:
`
	if got := runScalarSI(t, body); got != 2 {
		t.Fatalf("scc1 path not taken: %d", got)
	}
}

func TestExecMaskSaveRestore(t *testing.T) {
	// Lanes < 32 take the if; exec must be restored after.
	src := `
.kernel m
    s_load_dword s4, karg[0]
    v_mov_b32 v2, 0
    v_cmp_lt_i32 vcc, v0, 32
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz done
    v_mov_b32 v2, 1
done:
    s_mov_b64 exec, s[10:11]
    v_lshlrev_b32 v3, 2, v0
    v_add_i32 v3, v3, s4
    buffer_store_dword v2, v3, 0
    s_endpgm
`
	prog := siasm.MustAssemble(src)
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Mem().Alloc(4 * 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(64), Args: []uint32{out}}); err != nil {
		t.Fatal(err)
	}
	got, err := d.Mem().ReadWords(out, 64)
	if err != nil {
		t.Fatal(err)
	}
	for lane, v := range got {
		want := uint32(0)
		if lane < 32 {
			want = 1
		}
		if v != want {
			t.Fatalf("lane %d: got %d want %d (exec restore broken)", lane, v, want)
		}
	}
}

func TestScalar64Ops(t *testing.T) {
	// Build a mask in s[10:11], invert and AND it against exec-like
	// values, then materialize a summary bit into v31.
	body := `
    s_mov_b64 s[10:11], -1
    s_not_b64 s[12:13], s[10:11]      ; zero
    s_or_b64 s[14:15], s[12:13], s[10:11]
    s_andn2_b64 s[16:17], s[14:15], s[10:11] ; all &^ all = 0
    v_mov_b32 v31, s16
`
	if got := runScalarSI(t, body); got != 0 {
		t.Fatalf("64-bit scalar chain: %#x", got)
	}
}

func TestCBranchVariants(t *testing.T) {
	// vccz taken when no lane matched.
	body := `
    v_mov_b32 v31, 7
    v_mov_b32 v1, 5
    v_cmp_gt_i32 vcc, v1, 100
    s_cbranch_vccz out
    v_mov_b32 v31, 8
out:
`
	if got := runScalarSI(t, body); got != 7 {
		t.Fatalf("vccz branch not taken: %d", got)
	}
}

func TestLDSOOBIsError(t *testing.T) {
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatal(err)
	}
	prog := siasm.MustAssemble(".kernel oob\n.lds 64\nv_mov_b32 v1, 64\nds_read_b32 v2, v1, 0\ns_endpgm\n")
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(64)}); err == nil {
		t.Fatal("LDS access beyond the group allocation accepted")
	}
}

func TestWildBufferAccessIsError(t *testing.T) {
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatal(err)
	}
	prog := siasm.MustAssemble(".kernel wild\nv_mov_b32 v1, 0x3FFFFF0\nbuffer_load_dword v2, v1, 0\ns_endpgm\n")
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(64)}); err == nil {
		t.Fatal("wild buffer load accepted")
	}
}

func TestPartialWavefrontValidMask(t *testing.T) {
	// 40 work-items: lanes 40..63 must not store.
	src := `
.kernel p
    s_load_dword s4, karg[0]
    v_lshlrev_b32 v1, 2, v0
    v_add_i32 v1, v1, s4
    v_mov_b32 v2, 1
    buffer_store_dword v2, v1, 0
    s_endpgm
`
	prog := siasm.MustAssemble(src)
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Mem().Alloc(4 * 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(40), Args: []uint32{out}}); err != nil {
		t.Fatal(err)
	}
	got, err := d.Mem().ReadWords(out, 64)
	if err != nil {
		t.Fatal(err)
	}
	for lane, v := range got {
		want := uint32(0)
		if lane < 40 {
			want = 1
		}
		if v != want {
			t.Fatalf("lane %d: got %d want %d", lane, v, want)
		}
	}
}

// refVALU mirrors the simulator's integer vector ALU for the
// differential property test.
func refVALU(op string, a, b int32) uint32 {
	ua, ub := uint32(a), uint32(b)
	switch op {
	case "v_add_i32":
		return ua + ub
	case "v_sub_i32":
		return ua - ub
	case "v_mul_i32":
		return uint32(a * b)
	case "v_min_i32":
		if a < b {
			return ua
		}
		return ub
	case "v_max_i32":
		if a > b {
			return ua
		}
		return ub
	case "v_and_b32":
		return ua & ub
	case "v_or_b32":
		return ua | ub
	case "v_xor_b32":
		return ua ^ ub
	case "v_lshlrev_b32":
		return ub << (ua & 31)
	case "v_lshrrev_b32":
		return ub >> (ua & 31)
	default:
		panic(op)
	}
}

// TestRandomVectorProgramsMatchReference is the SI twin of nvsim's
// differential ALU property test.
func TestRandomVectorProgramsMatchReference(t *testing.T) {
	ops := []string{"v_add_i32", "v_sub_i32", "v_mul_i32", "v_min_i32", "v_max_i32",
		"v_and_b32", "v_or_b32", "v_xor_b32", "v_lshlrev_b32", "v_lshrrev_b32"}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(seedVals [4]int32, choices []uint8) bool {
		if len(choices) == 0 || len(choices) > 30 {
			return true
		}
		regs := [8]uint32{}
		var src strings.Builder
		for i, v := range seedVals {
			fmt.Fprintf(&src, "v_mov_b32 v%d, %d\n", i+1, v)
			regs[i+1] = uint32(v)
		}
		for i, ch := range choices {
			op := ops[int(ch)%len(ops)]
			ra := 1 + int(ch>>3)%4
			rb := 1 + int(ch>>5)%4
			rd := 1 + (i % 4)
			fmt.Fprintf(&src, "%s v%d, v%d, v%d\n", op, rd, ra, rb)
			regs[rd] = refVALU(op, int32(regs[ra]), int32(regs[rb]))
		}
		src.WriteString("v_mov_b32 v31, v1\n")
		got := runScalarSI(t, src.String())
		return got == regs[1]
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMultiWaveWorkgroupBarrier(t *testing.T) {
	// 128 work-items (2 wavefronts) communicate through the LDS across a
	// barrier: lane i reads what lane 127-i wrote.
	src := `
.kernel x
.lds 512
    s_load_dword s4, karg[0]
    v_lshlrev_b32 v1, 2, v0
    ds_write_b32 v1, v0, 0
    s_barrier
    v_sub_i32 v2, 127, v0
    v_lshlrev_b32 v2, 2, v2
    ds_read_b32 v3, v2, 0
    v_add_i32 v4, v1, s4
    buffer_store_dword v3, v4, 0
    s_endpgm
`
	prog := siasm.MustAssemble(src)
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Mem().Alloc(4 * 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(128), Args: []uint32{out}}); err != nil {
		t.Fatal(err)
	}
	got, err := d.Mem().ReadWords(out, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(127-i) {
			t.Fatalf("lane %d read %d, want %d", i, v, 127-i)
		}
	}
}

func TestStatsAndReset(t *testing.T) {
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatal(err)
	}
	prog := siasm.MustAssemble(".kernel c\nv_mov_b32 v1, 1\ns_endpgm\n")
	if err := d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(2), Group: gpu.D1(64)}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Instructions != 4 { // 2 groups x 1 wave x 2 instructions
		t.Fatalf("instructions = %d, want 4", st.Instructions)
	}
	if st.LaneInstructions != 2*64+2 { // vector op counts lanes, endpgm counts 1
		t.Fatalf("lane instructions = %d", st.LaneInstructions)
	}
	d.Reset()
	if d.Stats().Cycles != 0 {
		t.Fatal("stats survive reset")
	}
}
