package amdsim

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/siasm"
)

func (d *Device) latency(cl siasm.Class) int64 {
	switch cl {
	case siasm.ClassSFU:
		return int64(d.chip.SFULat)
	case siasm.ClassLDS:
		return int64(d.chip.LocalLat)
	case siasm.ClassGlobal:
		return int64(d.chip.GlobalLat)
	default:
		return int64(d.chip.ALULat)
	}
}

// opReady returns the scoreboard time of one operand.
func (w *wavefront) opReady(o siasm.Operand) int64 {
	switch o.Kind {
	case siasm.OperandVReg:
		if int(o.Reg) < len(w.vgprReady) {
			return w.vgprReady[o.Reg]
		}
	case siasm.OperandSReg:
		return w.sgprReady[o.Reg]
	case siasm.OperandSReg64:
		a := w.sgprReady[o.Reg]
		if int(o.Reg)+1 < len(w.sgprReady) && w.sgprReady[o.Reg+1] > a {
			a = w.sgprReady[o.Reg+1]
		}
		return a
	case siasm.OperandVCC:
		return w.vccReady
	case siasm.OperandEXEC:
		return w.execReady
	}
	return 0
}

// depReady returns the cycle at which all dependencies are available.
func (w *wavefront) depReady(in *siasm.Instr) int64 {
	t := w.opReady(in.Dst)
	for _, o := range in.Src {
		if r := w.opReady(o); r > t {
			t = r
		}
	}
	switch siasm.OpClass(in.Op) {
	case siasm.ClassVector, siasm.ClassSFU, siasm.ClassLDS, siasm.ClassGlobal:
		if in.Op != siasm.OpSLoadDW && w.execReady > t {
			t = w.execReady
		}
	}
	switch in.Op {
	case siasm.OpVCndmask:
		if w.vccReady > t {
			t = w.vccReady
		}
	case siasm.OpSCBranch:
		switch in.BrCond {
		case siasm.BrSCC0, siasm.BrSCC1:
			if w.sccReady > t {
				t = w.sccReady
			}
		case siasm.BrVCCZ, siasm.BrVCCNZ:
			if w.vccReady > t {
				t = w.vccReady
			}
		default:
			if w.execReady > t {
				t = w.execReady
			}
		}
	case siasm.OpSAndSaveexec, siasm.OpSOrSaveexec:
		if w.execReady > t {
			t = w.execReady
		}
	}
	return t
}

// vgprIndex maps (wavefront, lane, architectural VGPR) to the physical
// entry within the CU's VGPR file (register-major layout).
func (d *Device) vgprIndex(w *wavefront, lane int, r uint8) int {
	return w.vgprWBase + int(r)*d.chip.WarpWidth + lane
}

func (d *Device) readVGPR(c *cu, w *wavefront, lane int, r uint8) uint32 {
	idx := d.vgprIndex(w, lane, r)
	if t := d.tracer; t != nil {
		t.RegAccess(c.id, idx, d.cycle, false)
	}
	return c.vgprs[idx]
}

func (d *Device) writeVGPR(c *cu, w *wavefront, lane int, r uint8, v uint32) {
	idx := d.vgprIndex(w, lane, r)
	if t := d.tracer; t != nil {
		t.RegAccess(c.id, idx, d.cycle, true)
	}
	c.vgprs[idx] = v
}

// readOp32 evaluates a 32-bit source for one lane.
func (d *Device) readOp32(c *cu, w *wavefront, lane int, o siasm.Operand) (uint32, error) {
	switch o.Kind {
	case siasm.OperandVReg:
		return d.readVGPR(c, w, lane, o.Reg), nil
	case siasm.OperandSReg:
		return w.sgprs[o.Reg], nil
	case siasm.OperandImm:
		return o.Imm, nil
	default:
		return 0, fmt.Errorf("amdsim: operand %s is not a 32-bit source", o)
	}
}

// read64 evaluates a 64-bit scalar source.
func (w *wavefront) read64(o siasm.Operand) (uint64, error) {
	switch o.Kind {
	case siasm.OperandSReg64:
		return uint64(w.sgprs[o.Reg]) | uint64(w.sgprs[o.Reg+1])<<32, nil
	case siasm.OperandVCC:
		return w.vcc, nil
	case siasm.OperandEXEC:
		return w.exec, nil
	case siasm.OperandImm:
		return uint64(int64(int32(o.Imm))), nil
	default:
		return 0, fmt.Errorf("amdsim: operand %s is not a 64-bit scalar", o)
	}
}

// write64 stores to a 64-bit scalar destination; EXEC writes are masked
// to existing lanes.
func (w *wavefront) write64(o siasm.Operand, v uint64, ready int64) error {
	switch o.Kind {
	case siasm.OperandSReg64:
		w.sgprs[o.Reg] = uint32(v)
		w.sgprs[o.Reg+1] = uint32(v >> 32)
		w.sgprReady[o.Reg] = ready
		w.sgprReady[o.Reg+1] = ready
	case siasm.OperandVCC:
		w.vcc = v
		w.vccReady = ready
	case siasm.OperandEXEC:
		w.exec = v & w.valid
		w.execReady = ready
	default:
		return fmt.Errorf("amdsim: operand %s is not a 64-bit destination", o)
	}
	return nil
}

func (d *Device) finishWave(c *cu, w *wavefront) {
	if w.done {
		return
	}
	w.done = true
	g := w.grp
	g.live--
	c.liveWave--
	if g.live > 0 && g.arrived >= g.live {
		releaseBarrier(g, d.cycle)
	}
}

func releaseBarrier(g *group, cycle int64) {
	g.arrived = 0
	for _, w := range g.waves {
		if !w.done && w.atBarrier {
			w.atBarrier = false
			w.wakeAt = cycle
		}
	}
}

// tryIssue attempts to issue the wavefront's next instruction.
func (d *Device) tryIssue(c *cu, w *wavefront, lc *launchCtx) (bool, int64, error) {
	if w.pc < 0 || w.pc >= len(lc.prog.Instrs) {
		return false, 0, fmt.Errorf("amdsim: kernel %s: invalid PC %d (wave %d of group %d)",
			lc.prog.Name, w.pc, w.idx, w.grp.id)
	}
	in := &lc.prog.Instrs[w.pc]
	if ready := w.depReady(in); ready > d.cycle {
		return false, ready, nil
	}
	lat := d.latency(siasm.OpClass(in.Op))
	active := w.exec & w.valid
	ww := d.chip.WarpWidth

	d.stats.Instructions++
	switch siasm.OpClass(in.Op) {
	case siasm.ClassVector, siasm.ClassSFU, siasm.ClassLDS, siasm.ClassGlobal:
		d.stats.LaneInstructions += int64(popcount64(active))
	default:
		d.stats.LaneInstructions++
	}

	switch in.Op {
	case siasm.OpSNop, siasm.OpSWaitcnt:
		w.pc++

	case siasm.OpSEndpgm:
		w.pc++
		d.finishWave(c, w)

	case siasm.OpSBranch:
		w.pc = in.Target

	case siasm.OpSCBranch:
		taken := false
		switch in.BrCond {
		case siasm.BrSCC0:
			taken = !w.scc
		case siasm.BrSCC1:
			taken = w.scc
		case siasm.BrVCCZ:
			taken = w.vcc == 0
		case siasm.BrVCCNZ:
			taken = w.vcc != 0
		case siasm.BrEXECZ:
			taken = active == 0
		case siasm.BrEXECNZ:
			taken = active != 0
		}
		if taken {
			w.pc = in.Target
		} else {
			w.pc++
		}

	case siasm.OpSBarrier:
		w.pc++
		w.atBarrier = true
		w.grp.arrived++
		if w.grp.arrived >= w.grp.live {
			releaseBarrier(w.grp, d.cycle)
		}

	case siasm.OpSMov32, siasm.OpSAdd, siasm.OpSSub, siasm.OpSMul,
		siasm.OpSAnd32, siasm.OpSOr32, siasm.OpSXor32,
		siasm.OpSLshl, siasm.OpSLshr, siasm.OpSMin, siasm.OpSMax:
		if err := d.execScalar32(c, w, in, lat); err != nil {
			return false, 0, err
		}
		w.pc++

	case siasm.OpSCmp:
		a, err := d.readOp32(c, w, 0, in.Src[0])
		if err != nil {
			return false, 0, err
		}
		b, err := d.readOp32(c, w, 0, in.Src[1])
		if err != nil {
			return false, 0, err
		}
		w.scc = in.Cond.Eval(in.CmpTy, a, b)
		w.sccReady = d.cycle + lat
		w.pc++

	case siasm.OpSLoadDW:
		w.sgprs[in.Dst.Reg] = lc.args[in.KArg]
		w.sgprReady[in.Dst.Reg] = d.cycle + lat
		w.pc++

	case siasm.OpSMov64, siasm.OpSNot64, siasm.OpSAnd64, siasm.OpSOr64,
		siasm.OpSXor64, siasm.OpSAndn264:
		if err := d.execScalar64(w, in, lat); err != nil {
			return false, 0, err
		}
		w.pc++

	case siasm.OpSAndSaveexec, siasm.OpSOrSaveexec:
		s0, err := w.read64(in.Src[0])
		if err != nil {
			return false, 0, err
		}
		old := w.exec
		if err := w.write64(in.Dst, old, d.cycle+lat); err != nil {
			return false, 0, err
		}
		if in.Op == siasm.OpSAndSaveexec {
			w.exec = (old & s0) & w.valid
		} else {
			w.exec = (old | s0) & w.valid
		}
		w.execReady = d.cycle + lat
		w.scc = w.exec != 0
		w.sccReady = d.cycle + lat
		w.pc++

	case siasm.OpVCmp:
		var mask uint64
		for lane := 0; lane < ww; lane++ {
			if active&(1<<lane) == 0 {
				continue
			}
			a, err := d.readOp32(c, w, lane, in.Src[0])
			if err != nil {
				return false, 0, err
			}
			b, err := d.readOp32(c, w, lane, in.Src[1])
			if err != nil {
				return false, 0, err
			}
			if in.Cond.Eval(in.CmpTy, a, b) {
				mask |= 1 << lane
			}
		}
		w.vcc = mask
		w.vccReady = d.cycle + lat
		w.pc++

	case siasm.OpDSRead, siasm.OpDSWrite:
		if err := d.execLDS(c, w, in, active, ww); err != nil {
			return false, 0, err
		}
		if in.Op == siasm.OpDSRead {
			w.vgprReady[in.Dst.Reg] = d.cycle + lat
		}
		w.pc++

	case siasm.OpBufLoad, siasm.OpBufStor:
		if err := d.execBuffer(c, w, in, active, ww); err != nil {
			return false, 0, err
		}
		if in.Op == siasm.OpBufLoad {
			w.vgprReady[in.Dst.Reg] = d.cycle + lat
		}
		w.pc++

	default: // vector ALU/SFU
		for lane := 0; lane < ww; lane++ {
			if active&(1<<lane) == 0 {
				continue
			}
			v, err := d.execVALU(c, w, lane, in)
			if err != nil {
				return false, 0, err
			}
			d.writeVGPR(c, w, lane, in.Dst.Reg, v)
		}
		w.vgprReady[in.Dst.Reg] = d.cycle + lat
		w.pc++
	}

	if w.pc >= len(lc.prog.Instrs) && !w.done {
		return false, 0, fmt.Errorf("amdsim: kernel %s: control flow fell off program end", lc.prog.Name)
	}
	return true, 0, nil
}

func (d *Device) execScalar32(c *cu, w *wavefront, in *siasm.Instr, lat int64) error {
	a, err := d.readOp32(c, w, 0, in.Src[0])
	if err != nil {
		return err
	}
	var b uint32
	if in.Src[1].Kind != siasm.OperandNone {
		b, err = d.readOp32(c, w, 0, in.Src[1])
		if err != nil {
			return err
		}
	}
	var v uint32
	switch in.Op {
	case siasm.OpSMov32:
		v = a
	case siasm.OpSAdd:
		v = a + b
	case siasm.OpSSub:
		v = a - b
	case siasm.OpSMul:
		v = uint32(int32(a) * int32(b))
	case siasm.OpSAnd32:
		v = a & b
	case siasm.OpSOr32:
		v = a | b
	case siasm.OpSXor32:
		v = a ^ b
	case siasm.OpSLshl:
		v = a << (b & 31)
	case siasm.OpSLshr:
		v = a >> (b & 31)
	case siasm.OpSMin:
		if int32(a) < int32(b) {
			v = a
		} else {
			v = b
		}
	case siasm.OpSMax:
		if int32(a) > int32(b) {
			v = a
		} else {
			v = b
		}
	}
	if in.Dst.Kind != siasm.OperandSReg {
		return fmt.Errorf("amdsim: scalar destination %s is not an SGPR", in.Dst)
	}
	w.sgprs[in.Dst.Reg] = v
	w.sgprReady[in.Dst.Reg] = d.cycle + lat
	return nil
}

func (d *Device) execScalar64(w *wavefront, in *siasm.Instr, lat int64) error {
	s0, err := w.read64(in.Src[0])
	if err != nil {
		return err
	}
	var s1 uint64
	if in.Src[1].Kind != siasm.OperandNone {
		s1, err = w.read64(in.Src[1])
		if err != nil {
			return err
		}
	}
	var v uint64
	switch in.Op {
	case siasm.OpSMov64:
		v = s0
	case siasm.OpSNot64:
		v = ^s0
	case siasm.OpSAnd64:
		v = s0 & s1
	case siasm.OpSOr64:
		v = s0 | s1
	case siasm.OpSXor64:
		v = s0 ^ s1
	case siasm.OpSAndn264:
		v = s0 &^ s1
	}
	return w.write64(in.Dst, v, d.cycle+lat)
}

func (d *Device) execVALU(c *cu, w *wavefront, lane int, in *siasm.Instr) (uint32, error) {
	a, err := d.readOp32(c, w, lane, in.Src[0])
	if err != nil {
		return 0, err
	}
	var b uint32
	if in.Src[1].Kind != siasm.OperandNone {
		b, err = d.readOp32(c, w, lane, in.Src[1])
		if err != nil {
			return 0, err
		}
	}
	fa := math.Float32frombits(a)
	fb := math.Float32frombits(b)

	switch in.Op {
	case siasm.OpVMov:
		return a, nil
	case siasm.OpVAddI:
		return a + b, nil
	case siasm.OpVSubI:
		return a - b, nil
	case siasm.OpVMulI:
		return uint32(int32(a) * int32(b)), nil
	case siasm.OpVMinI:
		if int32(a) < int32(b) {
			return a, nil
		}
		return b, nil
	case siasm.OpVMaxI:
		if int32(a) > int32(b) {
			return a, nil
		}
		return b, nil
	case siasm.OpVAnd:
		return a & b, nil
	case siasm.OpVOr:
		return a | b, nil
	case siasm.OpVXor:
		return a ^ b, nil
	case siasm.OpVLshlrev:
		return b << (a & 31), nil
	case siasm.OpVLshrrev:
		return b >> (a & 31), nil
	case siasm.OpVAddF:
		return math.Float32bits(fa + fb), nil
	case siasm.OpVSubF:
		return math.Float32bits(fa - fb), nil
	case siasm.OpVMulF:
		return math.Float32bits(fa * fb), nil
	case siasm.OpVMacF:
		dv := d.readVGPR(c, w, lane, in.Dst.Reg)
		fd := math.Float32frombits(dv)
		return math.Float32bits(float32(math.FMA(float64(fa), float64(fb), float64(fd)))), nil
	case siasm.OpVMinF:
		return math.Float32bits(fminf(fa, fb)), nil
	case siasm.OpVMaxF:
		return math.Float32bits(fmaxf(fa, fb)), nil
	case siasm.OpVRcpF:
		return math.Float32bits(1 / fa), nil
	case siasm.OpVSqrtF:
		return math.Float32bits(float32(math.Sqrt(float64(fa)))), nil
	case siasm.OpVExpF:
		return math.Float32bits(float32(math.Exp2(float64(fa)))), nil
	case siasm.OpVLogF:
		return math.Float32bits(float32(math.Log2(float64(fa)))), nil
	case siasm.OpVCvtFI:
		return math.Float32bits(float32(int32(a))), nil
	case siasm.OpVCvtIF:
		return uint32(f2i(fa)), nil
	case siasm.OpVCndmask:
		if w.vcc&(1<<lane) != 0 {
			return b, nil
		}
		return a, nil
	default:
		return 0, fmt.Errorf("amdsim: unhandled vector opcode %v", in.Op)
	}
}

func (d *Device) execLDS(c *cu, w *wavefront, in *siasm.Instr, active uint64, ww int) error {
	g := w.grp
	for lane := 0; lane < ww; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		addrOp := in.Src[0]
		dataOp := in.Src[1]
		addr, err := d.readOp32(c, w, lane, addrOp)
		if err != nil {
			return err
		}
		addr += uint32(in.MemOff)
		if addr%4 != 0 {
			return fmt.Errorf("amdsim: kernel LDS access misaligned %#x (PC %d)", addr, w.pc)
		}
		if int(addr)+4 > g.ldsCount {
			return fmt.Errorf("amdsim: LDS access %#x beyond group allocation %d (PC %d)", addr, g.ldsCount, w.pc)
		}
		phys := g.ldsBase + int(addr)
		if in.Op == siasm.OpDSRead {
			if t := d.tracer; t != nil {
				t.LocalAccess(c.id, phys, 4, d.cycle, false)
			}
			v := binary.LittleEndian.Uint32(c.lds[phys:])
			d.writeVGPR(c, w, lane, in.Dst.Reg, v)
		} else {
			v, err := d.readOp32(c, w, lane, dataOp)
			if err != nil {
				return err
			}
			if t := d.tracer; t != nil {
				t.LocalAccess(c.id, phys, 4, d.cycle, true)
			}
			binary.LittleEndian.PutUint32(c.lds[phys:], v)
		}
	}
	return nil
}

func (d *Device) execBuffer(c *cu, w *wavefront, in *siasm.Instr, active uint64, ww int) error {
	for lane := 0; lane < ww; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		if in.Op == siasm.OpBufLoad {
			addr, err := d.readOp32(c, w, lane, in.Src[0])
			if err != nil {
				return err
			}
			addr += uint32(in.MemOff)
			if addr%4 != 0 {
				return fmt.Errorf("amdsim: misaligned global access %#x (PC %d)", addr, w.pc)
			}
			v, err := d.mem.Load32(addr)
			if err != nil {
				return fmt.Errorf("amdsim: PC %d: %w", w.pc, err)
			}
			d.writeVGPR(c, w, lane, in.Dst.Reg, v)
		} else {
			// buffer_store_dword vsrc, vaddr.
			v, err := d.readOp32(c, w, lane, in.Src[0])
			if err != nil {
				return err
			}
			addr, err := d.readOp32(c, w, lane, in.Src[1])
			if err != nil {
				return err
			}
			addr += uint32(in.MemOff)
			if addr%4 != 0 {
				return fmt.Errorf("amdsim: misaligned global access %#x (PC %d)", addr, w.pc)
			}
			if err := d.mem.Store32(addr, v); err != nil {
				return fmt.Errorf("amdsim: PC %d: %w", w.pc, err)
			}
		}
	}
	return nil
}

func fminf(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func fmaxf(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a > b:
		return a
	default:
		return b
	}
}

func f2i(f float32) int32 {
	if f != f {
		return 0
	}
	v := math.Trunc(float64(f))
	switch {
	case v > math.MaxInt32:
		return math.MaxInt32
	case v < math.MinInt32:
		return math.MinInt32
	default:
		return int32(v)
	}
}

func popcount64(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
