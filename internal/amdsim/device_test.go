package amdsim

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/siasm"
)

// vecAddSI: karg[0]=A, karg[1]=B, karg[2]=OUT, karg[3]=n, karg[4]=group size.
const vecAddSI = `
.kernel vecadd
    s_load_dword s4, karg[0]
    s_load_dword s5, karg[1]
    s_load_dword s6, karg[2]
    s_load_dword s7, karg[3]
    s_load_dword s8, karg[4]
    s_mul_i32 s9, s12, s8          ; wg_id * wg_size
    v_add_i32 v2, v0, s9           ; gid
    v_cmp_lt_i32 vcc, v2, s7
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz done
    v_lshlrev_b32 v3, 2, v2        ; gid*4
    v_add_i32 v4, v3, s4
    buffer_load_dword v5, v4, 0
    v_add_i32 v6, v3, s5
    buffer_load_dword v7, v6, 0
    v_add_f32 v8, v5, v7
    v_add_i32 v9, v3, s6
    buffer_store_dword v8, v9, 0
done:
    s_mov_b64 exec, s[10:11]
    s_endpgm
`

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New(chips.MiniAMD())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestVecAddSI(t *testing.T) {
	d := newTestDevice(t)
	prog, err := siasm.Assemble(vecAddSI)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	const n = 200 // not a multiple of the workgroup size
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = 3 * float32(i)
	}
	addrA, err := d.Mem().AllocFloats(a)
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := d.Mem().AllocFloats(b)
	if err != nil {
		t.Fatal(err)
	}
	addrC, err := d.Mem().Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	const wg = 128
	err = d.Launch(gpu.LaunchSpec{
		Kernel: prog,
		Grid:   gpu.D1((n + wg - 1) / wg),
		Group:  gpu.D1(wg),
		Args:   []uint32{addrA, addrB, addrC, n, wg},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := d.Mem().ReadFloats(addrC, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := 4 * float32(i); got[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
	if st := d.Stats(); st.Cycles <= 0 || st.Instructions <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// reverseLDS reverses 128 words within a workgroup through the LDS.
const reverseLDS = `
.kernel revlds
.lds 512
    s_load_dword s4, karg[0]
    s_load_dword s5, karg[1]
    v_lshlrev_b32 v2, 2, v0        ; lid*4
    v_add_i32 v3, v2, s4
    buffer_load_dword v4, v3, 0
    ds_write_b32 v2, v4, 0
    s_barrier
    v_sub_i32 v5, 127, v0          ; 127-lid
    v_lshlrev_b32 v6, 2, v5
    ds_read_b32 v7, v6, 0
    v_add_i32 v8, v2, s5
    buffer_store_dword v7, v8, 0
    s_endpgm
`

func TestLDSBarrier(t *testing.T) {
	d := newTestDevice(t)
	prog, err := siasm.Assemble(reverseLDS)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	const n = 128
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(7000 + i)
	}
	addrIn, err := d.Mem().AllocWords(in)
	if err != nil {
		t.Fatal(err)
	}
	addrOut, err := d.Mem().Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Launch(gpu.LaunchSpec{
		Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(n),
		Args: []uint32{addrIn, addrOut},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := d.Mem().ReadWords(addrOut, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := in[n-1-i]; v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

// cndmaskSrc writes max(x, 100) using v_cmp + v_cndmask.
const cndmaskSrc = `
.kernel clamp
    s_load_dword s4, karg[0]
    v_lshlrev_b32 v2, 2, v0
    v_add_i32 v3, v2, s4
    buffer_load_dword v4, v3, 0
    v_cmp_gt_i32 vcc, v4, 100
    v_cndmask_b32 v5, 100, v4, vcc
    buffer_store_dword v5, v3, 0
    s_endpgm
`

func TestCndmask(t *testing.T) {
	d := newTestDevice(t)
	prog, err := siasm.Assemble(cndmaskSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	const n = 64
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(i * 7)
	}
	addr, err := d.Mem().AllocWords(in)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Launch(gpu.LaunchSpec{
		Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(n),
		Args: []uint32{addr},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := d.Mem().ReadWords(addr, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := uint32(i * 7)
		if want < 100 {
			want = 100
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestFaultInjectionFlipsVGPR(t *testing.T) {
	prog, err := siasm.Assemble(vecAddSI)
	if err != nil {
		t.Fatal(err)
	}
	run := func(f *gpu.Fault) []float32 {
		d := newTestDevice(t)
		const n = 64
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = 1
			b[i] = 2
		}
		addrA, _ := d.Mem().AllocFloats(a)
		addrB, _ := d.Mem().AllocFloats(b)
		addrC, _ := d.Mem().Alloc(4 * n)
		d.InjectFault(f)
		err := d.Launch(gpu.LaunchSpec{
			Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(n),
			Args: []uint32{addrA, addrB, addrC, n, n},
		})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		out, err := d.Mem().ReadFloats(addrC, n)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	golden := run(nil)
	manifested := false
	// v5 holds the loaded A value: physical entries 5*64..5*64+63.
	for c := int64(1); c < 4000 && !manifested; c += 11 {
		faulty := run(&gpu.Fault{
			Structure: gpu.RegisterFile, Unit: 0,
			Entry: 5*64 + 3, Bit: 22, Cycle: c,
		})
		for i := range faulty {
			if faulty[i] != golden[i] {
				manifested = true
				break
			}
		}
	}
	if !manifested {
		t.Fatal("no injection manifested as SDC across the scanned cycles")
	}
}

func TestWatchdogFiresSI(t *testing.T) {
	d := newTestDevice(t)
	prog, err := siasm.Assemble(`
.kernel spin
loop:
    s_branch loop
    s_endpgm
`)
	if err != nil {
		t.Fatal(err)
	}
	d.SetWatchdog(5000)
	err = d.Launch(gpu.LaunchSpec{Kernel: prog, Grid: gpu.D1(1), Group: gpu.D1(64)})
	if err != gpu.ErrWatchdog {
		t.Fatalf("got %v, want ErrWatchdog", err)
	}
}
