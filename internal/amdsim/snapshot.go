package amdsim

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/siasm"
)

// Checkpointed fast-forward, mirroring internal/nvsim: the golden run
// captures deep-copy snapshots at the launch loop's top (a deterministic
// scheduling boundary), and each injection restores the greatest
// snapshot below its fault cycle, replays the host program with device
// memory in replay mode, skips completed launches and re-enters the
// interrupted launch's loop with the captured progress. The continuation
// depends only on the restored state, so it is bit-identical to an
// uninterrupted run.

// snapshot is the amdsim implementation of gpu.Snapshot.
type snapshot struct {
	cycle    int64
	stats    gpu.RunStats
	mem      *gpu.MemImage
	cus      []cuImage
	launches int
	inflight *inflightImage
	bytes    int64
}

// Cycle implements gpu.Snapshot.
func (s *snapshot) Cycle() int64 { return s.cycle }

// SizeBytes implements gpu.Snapshot.
func (s *snapshot) SizeBytes() int64 { return s.bytes }

// inflightImage is the interrupted launch's loop-local state.
type inflightImage struct {
	nextGroup   int
	retired     int
	launchStart int64
}

// cuImage is the deep copy of one CU.
type cuImage struct {
	vgprs  []uint32
	lds    []byte
	slots  []bool
	groups []*groupImage // indexed by slot; nil = free
	rrWave int
	// greedySlot/greedyWave locate the GTO head wavefront; -1 when there
	// is none worth re-finding (nil, retired or done — all of which the
	// issue logic treats identically to nil).
	greedySlot, greedyWave int
}

type groupImage struct {
	id, wgX, wgY, slot  int
	vgprBase, vgprCount int
	ldsBase, ldsCount   int
	live, arrived       int
	allocCycle          int64
	waves               []waveImage
}

type waveImage struct {
	idx        int
	pc         int
	valid      uint64
	exec       uint64
	vcc        uint64
	scc        bool
	sgprs      [siasm.MaxSGPRs]uint32
	vgprReady  []int64
	sgprReady  [siasm.MaxSGPRs]int64
	vccReady   int64
	execReady  int64
	sccReady   int64
	atBarrier  bool
	done       bool
	wakeAt     int64
	threadBase int
	vgprWBase  int
}

// Snapshot implements gpu.Device: it captures the state between
// launches (mid-launch snapshots come from the checkpoint hook, which
// supplies the in-flight loop state).
func (d *Device) Snapshot() gpu.Snapshot { return d.capture(nil) }

// capture deep-copies the device state.
func (d *Device) capture(inflight *inflightImage) *snapshot {
	snap := &snapshot{
		cycle:    d.cycle,
		stats:    d.stats,
		mem:      d.mem.Image(),
		launches: d.stats.Launches,
		inflight: inflight,
	}
	snap.bytes = snap.mem.SizeBytes()
	snap.cus = make([]cuImage, len(d.cus))
	for i, c := range d.cus {
		img := cuImage{
			vgprs:      append([]uint32(nil), c.vgprs...),
			lds:        append([]byte(nil), c.lds...),
			slots:      append([]bool(nil), c.slots...),
			rrWave:     c.rrWave,
			greedySlot: -1, greedyWave: -1,
		}
		img.groups = make([]*groupImage, len(c.groups))
		for slot, g := range c.groups {
			if g == nil {
				continue
			}
			gi := &groupImage{
				id: g.id, wgX: g.wgX, wgY: g.wgY, slot: g.slot,
				vgprBase: g.vgprBase, vgprCount: g.vgprCount,
				ldsBase: g.ldsBase, ldsCount: g.ldsCount,
				live: g.live, arrived: g.arrived, allocCycle: g.allocCycle,
			}
			gi.waves = make([]waveImage, len(g.waves))
			for wi, w := range g.waves {
				gi.waves[wi] = waveImage{
					idx: w.idx, pc: w.pc,
					valid: w.valid, exec: w.exec, vcc: w.vcc, scc: w.scc,
					sgprs:     w.sgprs,
					vgprReady: append([]int64(nil), w.vgprReady...),
					sgprReady: w.sgprReady,
					vccReady:  w.vccReady, execReady: w.execReady, sccReady: w.sccReady,
					atBarrier: w.atBarrier, done: w.done,
					wakeAt: w.wakeAt, threadBase: w.threadBase, vgprWBase: w.vgprWBase,
				}
				if c.greedy == w && !w.done {
					img.greedySlot, img.greedyWave = slot, wi
				}
			}
			img.groups[slot] = gi
		}
		snap.bytes += int64(4*len(img.vgprs) + len(img.lds) + len(img.slots))
		snap.cus[i] = img
	}
	return snap
}

// Restore implements gpu.Device. It replaces the execution state with
// the snapshot's and arms fast-forward resume; the armed fault, tracer
// and watchdog are left untouched.
func (d *Device) Restore(s gpu.Snapshot) error {
	snap, ok := s.(*snapshot)
	if !ok {
		return fmt.Errorf("amdsim: cannot restore a %T snapshot", s)
	}
	if len(snap.cus) != len(d.cus) ||
		(len(snap.cus) > 0 && (len(snap.cus[0].vgprs) != len(d.cus[0].vgprs) ||
			len(snap.cus[0].lds) != len(d.cus[0].lds))) {
		return fmt.Errorf("amdsim: snapshot geometry does not match chip %s", d.chip.Name)
	}
	if err := d.mem.SetImage(snap.mem); err != nil {
		return err
	}
	for i, img := range snap.cus {
		cu := d.cus[i]
		copy(cu.vgprs, img.vgprs)
		copy(cu.lds, img.lds)
		// Recycle current residents, then rebuild from the image reusing
		// retained object and slice capacity: restore runs once per
		// injection, so it must not allocate.
		cu.recycleGroups()
		cu.slots = append(cu.slots[:0], img.slots...)
		if cap(cu.groups) >= len(img.groups) {
			cu.groups = cu.groups[:len(img.groups)]
			clear(cu.groups)
		} else {
			cu.groups = make([]*group, len(img.groups))
		}
		cu.rrWave = img.rrWave
		cu.greedy = nil
		cu.liveWave = 0
		cu.order = cu.order[:0]
		for slot, gi := range img.groups {
			if gi == nil {
				continue
			}
			g := cu.takeGroup()
			g.id, g.wgX, g.wgY, g.slot = gi.id, gi.wgX, gi.wgY, gi.slot
			g.vgprBase, g.vgprCount = gi.vgprBase, gi.vgprCount
			g.ldsBase, g.ldsCount = gi.ldsBase, gi.ldsCount
			g.live, g.arrived, g.allocCycle = gi.live, gi.arrived, gi.allocCycle
			sizeWaves(g, len(gi.waves))
			for wi := range gi.waves {
				w := &gi.waves[wi]
				wf := waveAt(g, wi)
				wf.grp, wf.idx, wf.pc = g, w.idx, w.pc
				wf.valid, wf.exec, wf.vcc, wf.scc = w.valid, w.exec, w.vcc, w.scc
				wf.sgprs = w.sgprs
				wf.vgprReady = append(wf.vgprReady[:0], w.vgprReady...)
				wf.sgprReady = w.sgprReady
				wf.vccReady, wf.execReady, wf.sccReady = w.vccReady, w.execReady, w.sccReady
				wf.atBarrier, wf.done = w.atBarrier, w.done
				wf.wakeAt, wf.threadBase, wf.vgprWBase = w.wakeAt, w.threadBase, w.vgprWBase
				if !w.done {
					cu.liveWave++
				}
				if slot == img.greedySlot && wi == img.greedyWave {
					cu.greedy = wf
				}
			}
			cu.groups[slot] = g
		}
	}
	d.stats = snap.stats
	d.cycle = snap.cycle
	d.resume = &resumeState{skip: snap.launches, inflight: snap.inflight}
	return nil
}

// SetCheckpointHook implements gpu.Device.
func (d *Device) SetCheckpointHook(next int64, fn func(s gpu.Snapshot) int64) {
	d.ckptFn = fn
	d.ckptNext = next
}

// resumeState tracks an armed fast-forward: skip counts the completed
// launches the host program will replay, inflight (when non-nil) is the
// loop state of the launch the snapshot interrupted.
type resumeState struct {
	skip     int
	inflight *inflightImage
}
