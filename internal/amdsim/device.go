// Package amdsim is a cycle-level simulator of AMD Southern Islands
// compute units executing the SI-like ISA of internal/siasm. It is the
// reproduction's stand-in for Multi2Sim 4.2, the substrate of the paper's
// SIFI tool.
//
// The model: a chip is a set of compute units (CUs). Workgroups are
// dispatched to CUs subject to residency limits (workgroups, wavefronts,
// VGPR file, LDS). Each wavefront of 64 work-items executes scalar
// instructions once and vector instructions per active lane under the
// program-managed EXEC mask, with per-wavefront scoreboarding and
// round-robin issue of up to IssueWidth wavefront instructions per CU per
// IssuePeriod cycles (a Tahiti CU feeds 4 SIMD units, one wavefront slot
// each per 4-cycle cadence).
//
// Fault-injection targets the physical VGPR file (the paper's "vector
// register file") and the LDS ("local memory"); the tracer streams the
// same accesses to the ACE analysis.
package amdsim

import (
	"fmt"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/siasm"
)

// DefaultWatchdog is the per-launch cycle budget when none is set.
const DefaultWatchdog = 50_000_000

// Device is one simulated AMD GPU.
type Device struct {
	chip  *chips.Chip
	mem   *gpu.Memory
	cus   []*cu
	stats gpu.RunStats

	fault        *gpu.Fault
	faultApplied bool
	tracer       gpu.Tracer
	watchdog     int64

	cycle int64

	// Checkpoint hook (armed on golden runs only; see snapshot.go).
	ckptFn   func(s gpu.Snapshot) int64
	ckptNext int64
	// resume is non-nil between Restore and the fast-forward re-entry.
	resume *resumeState
}

type cu struct {
	id       int
	vgprs    []uint32
	lds      []byte
	groups   []*group
	slots    []bool
	rrWave   int
	greedy   *wavefront // GTO: wavefront that issued most recently
	liveWave int

	// order is the issue scan's scratch slice, rebuilt every cycle (a
	// per-cycle allocation here dominated the injection loop's heap
	// churn; see the nvsim twin for details).
	order []*wavefront
	// freeGrps recycles retired group objects (with their wavefront
	// objects and slices); every field is rewritten on reuse.
	freeGrps []*group
}

// takeGroup returns a recycled group or a fresh one. The caller must
// initialize every field.
func (c *cu) takeGroup() *group {
	if n := len(c.freeGrps); n > 0 {
		g := c.freeGrps[n-1]
		c.freeGrps[n-1] = nil
		c.freeGrps = c.freeGrps[:n-1]
		return g
	}
	return &group{}
}

// recycleGroups moves every resident group to the freelist and clears
// the slot table.
func (c *cu) recycleGroups() {
	for slot, g := range c.groups {
		if g != nil {
			c.freeGrps = append(c.freeGrps, g)
			c.groups[slot] = nil
		}
		c.slots[slot] = false
	}
}

// waveAt returns g.waves[w], reviving a recycled wavefront object when
// one is available. The caller must initialize every field.
func waveAt(g *group, w int) *wavefront {
	wf := g.waves[w]
	if wf == nil {
		wf = &wavefront{}
		g.waves[w] = wf
	}
	return wf
}

// sizeWaves resizes g.waves to n, keeping recycled wavefront objects
// within the retained capacity.
func sizeWaves(g *group, n int) {
	if cap(g.waves) >= n {
		g.waves = g.waves[:n]
		return
	}
	old := g.waves[:cap(g.waves)]
	g.waves = make([]*wavefront, n)
	copy(g.waves, old)
}

type group struct {
	id         int
	wgX, wgY   int
	slot       int
	vgprBase   int
	vgprCount  int
	ldsBase    int
	ldsCount   int
	waves      []*wavefront
	live       int
	arrived    int
	allocCycle int64
}

type wavefront struct {
	grp   *group
	idx   int
	pc    int
	valid uint64
	exec  uint64
	vcc   uint64
	scc   bool
	sgprs [siasm.MaxSGPRs]uint32

	vgprReady []int64
	sgprReady [siasm.MaxSGPRs]int64
	vccReady  int64
	execReady int64
	sccReady  int64

	atBarrier  bool
	done       bool
	wakeAt     int64
	threadBase int // linear work-item id of lane 0 within the group
	vgprWBase  int // physical VGPR base of this wavefront
}

type launchCtx struct {
	prog      *siasm.Program
	args      []uint32
	grid      gpu.Dim3
	group     gpu.Dim3
	threads   int
	wavesPerG int
	vgprPerG  int
	ldsPerG   int
}

// New creates a device for an AMD chip configuration.
func New(chip *chips.Chip) (*Device, error) {
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	if chip.Vendor != gpu.AMD {
		return nil, fmt.Errorf("amdsim: chip %s is not an AMD configuration", chip.Name)
	}
	d := &Device{
		chip:     chip,
		mem:      gpu.NewMemory(chip.GlobalMemBytes),
		watchdog: DefaultWatchdog,
	}
	d.cus = make([]*cu, chip.Units)
	for i := range d.cus {
		d.cus[i] = &cu{
			id:    i,
			vgprs: make([]uint32, chip.RegsPerUnit),
			lds:   make([]byte, chip.LocalBytesPerUnit),
		}
	}
	return d, nil
}

// Name implements gpu.Device.
func (d *Device) Name() string { return d.chip.Name }

// Vendor implements gpu.Device.
func (d *Device) Vendor() gpu.Vendor { return gpu.AMD }

// Mem implements gpu.Device.
func (d *Device) Mem() *gpu.Memory { return d.mem }

// Stats implements gpu.Device.
func (d *Device) Stats() gpu.RunStats { return d.stats }

// Units implements gpu.Device.
func (d *Device) Units() int { return d.chip.Units }

// RestorePageStats implements gpu.RestoreCoster: cumulative COW page
// copy/skip counts from snapshot restores into this device's memory.
func (d *Device) RestorePageStats() (copied, shared int64) { return d.mem.RestorePageStats() }

// StructSize implements gpu.Device.
func (d *Device) StructSize(st gpu.Structure) int { return d.chip.StructSize(st) }

// StructBits implements gpu.Device.
func (d *Device) StructBits(st gpu.Structure) int64 { return d.chip.StructBits(st) }

// ClockGHz implements gpu.Device.
func (d *Device) ClockGHz() float64 { return d.chip.ClockGHz }

// InjectFault implements gpu.Device.
func (d *Device) InjectFault(f *gpu.Fault) {
	d.fault = f
	d.faultApplied = false
}

// SetTracer implements gpu.Device.
func (d *Device) SetTracer(t gpu.Tracer) { d.tracer = t }

// SetWatchdog implements gpu.Device.
func (d *Device) SetWatchdog(maxCycles int64) {
	if maxCycles <= 0 {
		d.watchdog = DefaultWatchdog
		return
	}
	d.watchdog = maxCycles
}

// Reset implements gpu.Device.
func (d *Device) Reset() {
	d.mem.Reset()
	for _, c := range d.cus {
		clear(c.vgprs)
		clear(c.lds)
		c.recycleGroups()
		c.groups = c.groups[:0]
		c.slots = c.slots[:0]
		c.rrWave = 0
		c.greedy = nil
		c.liveWave = 0
		c.order = c.order[:0]
	}
	d.stats = gpu.RunStats{}
	d.cycle = 0
	d.fault = nil
	d.faultApplied = false
	d.tracer = nil
	d.watchdog = DefaultWatchdog
	d.ckptFn = nil
	d.ckptNext = 0
	d.resume = nil
}

// Launch implements gpu.Device. Under an armed fast-forward (see
// Restore) launches the snapshot already completed return immediately
// and the interrupted launch resumes mid-loop.
func (d *Device) Launch(spec gpu.LaunchSpec) error {
	prog, ok := spec.Kernel.(*siasm.Program)
	if !ok {
		return fmt.Errorf("amdsim: kernel %T is not a *siasm.Program", spec.Kernel)
	}
	if r := d.resume; r != nil {
		if r.skip > 0 {
			r.skip--
			return nil
		}
		// This is the launch the snapshot interrupted (or, for a
		// between-launch snapshot, the first launch after it): leave
		// replay mode and continue from the restored state.
		d.resume = nil
		d.mem.EndReplay()
		if inflight := r.inflight; inflight != nil {
			lc, _, err := d.prepare(prog, spec)
			if err != nil {
				return err
			}
			return d.launchLoop(lc, spec.Grid.Count(), inflight.nextGroup, inflight.retired, inflight.launchStart)
		}
	}
	lc, slotsPerCU, err := d.prepare(prog, spec)
	if err != nil {
		return err
	}

	// Initialize slot tables for this launch, recycling any residue from
	// an aborted previous launch and reusing table capacity.
	for _, c := range d.cus {
		c.recycleGroups()
		if cap(c.groups) >= slotsPerCU {
			c.groups = c.groups[:slotsPerCU]
			clear(c.groups)
		} else {
			c.groups = make([]*group, slotsPerCU)
		}
		if cap(c.slots) >= slotsPerCU {
			c.slots = c.slots[:slotsPerCU]
			clear(c.slots)
		} else {
			c.slots = make([]bool, slotsPerCU)
		}
		c.rrWave = 0
		c.greedy = nil
		c.liveWave = 0
	}
	return d.launchLoop(lc, spec.Grid.Count(), 0, 0, d.cycle)
}

// launchLoop runs the launch's dispatch/issue/retire loop from the given
// progress point. Its top is the deterministic boundary where checkpoint
// snapshots are captured and where restored launches re-enter, so the
// continuation of a restored run is bit-identical to the original.
func (d *Device) launchLoop(lc *launchCtx, totalGroups, nextGroup, retired int, launchStart int64) error {
	period := int64(d.chip.IssuePeriod)

	for retired < totalGroups {
		if d.cycle-launchStart > d.watchdog {
			return gpu.ErrWatchdog
		}
		if d.ckptFn != nil && d.cycle >= d.ckptNext {
			snap := d.capture(&inflightImage{nextGroup: nextGroup, retired: retired, launchStart: launchStart})
			if next := d.ckptFn(snap); next > d.cycle {
				d.ckptNext = next
			} else {
				d.ckptFn = nil
			}
		}
		d.applyFault()

		for _, c := range d.cus {
			if nextGroup >= totalGroups {
				break
			}
			for slot := 0; slot < len(c.slots) && nextGroup < totalGroups; slot++ {
				if c.slots[slot] {
					continue
				}
				d.dispatch(c, slot, nextGroup, lc)
				nextGroup++
			}
		}

		progress := false
		nextWake := int64(1) << 62
		for _, c := range d.cus {
			if c.liveWave == 0 {
				continue
			}
			issued, wake, err := d.issueCU(c, lc)
			if err != nil {
				return err
			}
			if issued > 0 {
				progress = true
			}
			if wake < nextWake {
				nextWake = wake
			}
			for slot, g := range c.groups {
				if g != nil && g.live == 0 {
					d.retire(c, slot, g)
					retired++
					progress = true
				}
			}
		}

		if retired >= totalGroups {
			break
		}
		if progress || nextWake <= d.cycle {
			d.cycle += period
		} else if nextWake < (int64(1) << 62) {
			d.cycle = nextWake
		} else {
			return fmt.Errorf("amdsim: deadlock at cycle %d (barrier starvation)", d.cycle)
		}
	}
	d.stats.Cycles = d.cycle
	d.stats.Launches++
	return nil
}

func (d *Device) prepare(prog *siasm.Program, spec gpu.LaunchSpec) (*launchCtx, int, error) {
	c := d.chip
	threads := spec.Group.Count()
	if threads <= 0 {
		return nil, 0, fmt.Errorf("amdsim: empty workgroup")
	}
	if spec.Grid.Count() <= 0 {
		return nil, 0, fmt.Errorf("amdsim: empty NDRange")
	}
	if len(spec.Args) < prog.NumKArgs {
		return nil, 0, fmt.Errorf("amdsim: kernel %s reads %d kernarg words, launch provides %d",
			prog.Name, prog.NumKArgs, len(spec.Args))
	}
	wavesPerG := (threads + c.WarpWidth - 1) / c.WarpWidth
	vgprPerG := wavesPerG * c.WarpWidth * prog.NumVGPRs
	ldsPerG := prog.LDSBytes

	limit := c.MaxGroupsPerUnit
	if byWaves := c.MaxWarpsPerUnit / wavesPerG; byWaves < limit {
		limit = byWaves
	}
	if vgprPerG > 0 {
		if byRegs := c.RegsPerUnit / vgprPerG; byRegs < limit {
			limit = byRegs
		}
	}
	if ldsPerG > 0 {
		if byLDS := c.LocalBytesPerUnit / ldsPerG; byLDS < limit {
			limit = byLDS
		}
	}
	if limit <= 0 {
		return nil, 0, fmt.Errorf("amdsim: kernel %s (%d VGPRs, %d LDS bytes, %d work-items) does not fit on %s",
			prog.Name, prog.NumVGPRs, ldsPerG, threads, c.Name)
	}
	return &launchCtx{
		prog: prog, args: spec.Args, grid: spec.Grid, group: spec.Group,
		threads: threads, wavesPerG: wavesPerG, vgprPerG: vgprPerG, ldsPerG: ldsPerG,
	}, limit, nil
}

func (d *Device) dispatch(c *cu, slot, groupID int, lc *launchCtx) {
	gx := lc.grid.X
	if gx <= 0 {
		gx = 1
	}
	g := c.takeGroup()
	g.id = groupID
	g.wgX = groupID % gx
	g.wgY = groupID / gx
	g.slot = slot
	g.vgprBase = slot * lc.vgprPerG
	g.vgprCount = lc.vgprPerG
	g.ldsBase = slot * lc.ldsPerG
	g.ldsCount = lc.ldsPerG
	g.live = lc.wavesPerG
	g.arrived = 0
	g.allocCycle = d.cycle
	ww := d.chip.WarpWidth
	nv := lc.prog.NumVGPRs
	lsx := lc.group.X
	if lsx <= 0 {
		lsx = 1
	}
	lsy := lc.group.Y
	if lsy <= 0 {
		lsy = 1
	}
	sizeWaves(g, lc.wavesPerG)
	for w := range g.waves {
		base := w * ww
		var valid uint64
		n := lc.threads - base
		if n >= ww {
			valid = ^uint64(0) >> (64 - ww)
		} else {
			valid = (uint64(1) << n) - 1
		}
		wf := waveAt(g, w)
		wf.grp = g
		wf.idx = w
		wf.pc = 0
		wf.valid = valid
		wf.exec = valid
		wf.vcc = 0
		wf.scc = false
		wf.sgprs = [siasm.MaxSGPRs]uint32{}
		if cap(wf.vgprReady) >= nv {
			wf.vgprReady = wf.vgprReady[:nv]
			clear(wf.vgprReady)
		} else {
			wf.vgprReady = make([]int64, nv)
		}
		wf.sgprReady = [siasm.MaxSGPRs]int64{}
		wf.vccReady = 0
		wf.execReady = 0
		wf.sccReady = 0
		wf.atBarrier = false
		wf.done = false
		wf.wakeAt = 0
		wf.threadBase = base
		wf.vgprWBase = g.vgprBase + w*ww*nv
		wf.sgprs[siasm.SRegWGIDX] = uint32(g.wgX)
		wf.sgprs[siasm.SRegWGIDY] = uint32(g.wgY)
		// Hardware preloads the work-item local id into v0 (and v1 for
		// 2-D groups). These are genuine VGPR writes: trace them.
		for lane := 0; lane < ww; lane++ {
			if valid&(1<<lane) == 0 {
				continue
			}
			t := base + lane
			d.writeVGPR(c, wf, lane, 0, uint32(t%lsx))
			if nv > 1 {
				d.writeVGPR(c, wf, lane, 1, uint32((t/lsx)%lsy))
			}
		}
	}
	c.groups[slot] = g
	c.slots[slot] = true
	c.liveWave += lc.wavesPerG
	if t := d.tracer; t != nil {
		if g.vgprCount > 0 {
			t.RegAlloc(c.id, g.vgprBase, g.vgprCount, d.cycle)
		}
		if g.ldsCount > 0 {
			t.LocalAlloc(c.id, g.ldsBase, g.ldsCount, d.cycle)
		}
	}
}

func (d *Device) retire(c *cu, slot int, g *group) {
	dur := float64(d.cycle - g.allocCycle)
	d.stats.RegOcc.AllocUnitCycles += float64(g.vgprCount) * dur
	d.stats.LocalOcc.AllocUnitCycles += float64(g.ldsCount) * dur
	if t := d.tracer; t != nil {
		if g.vgprCount > 0 {
			t.RegFree(c.id, g.vgprBase, g.vgprCount, d.cycle)
		}
		if g.ldsCount > 0 {
			t.LocalFree(c.id, g.ldsBase, g.ldsCount, d.cycle)
		}
	}
	c.groups[slot] = nil
	c.slots[slot] = false
	// Drop a greedy pointer into the retired group before recycling it
	// (a done greedy is skipped everywhere, so this is behaviorally
	// identical — see the nvsim twin).
	if c.greedy != nil && c.greedy.grp == g {
		c.greedy = nil
	}
	c.freeGrps = append(c.freeGrps, g)
}

func (d *Device) applyFault() {
	f := d.fault
	if f == nil || d.faultApplied || d.cycle < f.Cycle {
		return
	}
	d.faultApplied = true
	if f.Unit < 0 || f.Unit >= len(d.cus) {
		return
	}
	c := d.cus[f.Unit]
	switch f.Structure {
	case gpu.RegisterFile:
		if f.Entry >= 0 && f.Entry < len(c.vgprs) {
			c.vgprs[f.Entry] ^= f.Mask(32)
		}
	case gpu.LocalMemory:
		if f.Entry >= 0 && f.Entry < len(c.lds) {
			c.lds[f.Entry] ^= byte(f.Mask(8))
		}
	}
}

func (d *Device) issueCU(c *cu, lc *launchCtx) (int, int64, error) {
	issued := 0
	nextWake := int64(1) << 62
	// Persistent scratch slice — a fresh per-cycle slice here was the
	// dominant allocation of the whole injection loop.
	order := c.order[:0]
	for _, g := range c.groups {
		if g == nil {
			continue
		}
		for _, w := range g.waves {
			if !w.done {
				order = append(order, w)
			}
		}
	}
	c.order = order
	n := len(order)
	if n == 0 {
		return 0, nextWake, nil
	}
	// Greedy-then-oldest: the most recently issued wavefront gets first
	// claim; the fallback scan is oldest-first (dispatch order).
	if d.chip.Scheduler == chips.SchedGTO {
		if g := c.greedy; g != nil && !g.done && !g.atBarrier && g.wakeAt <= d.cycle {
			ok, wake, err := d.tryIssue(c, g, lc)
			if err != nil {
				return issued, nextWake, err
			}
			if ok {
				issued++
			} else if wake > d.cycle {
				g.wakeAt = wake
				if wake < nextWake {
					nextWake = wake
				}
			}
		}
	}
	start := 0
	if d.chip.Scheduler == chips.SchedRR {
		start = c.rrWave % n
	}
	for k := 0; k < n && issued < d.chip.IssueWidth; k++ {
		w := order[(start+k)%n]
		if w.done || w.atBarrier || (d.chip.Scheduler == chips.SchedGTO && w == c.greedy) {
			continue
		}
		if w.wakeAt > d.cycle {
			if w.wakeAt < nextWake {
				nextWake = w.wakeAt
			}
			continue
		}
		ok, wake, err := d.tryIssue(c, w, lc)
		if err != nil {
			return issued, nextWake, err
		}
		if ok {
			issued++
			c.rrWave = (start + k + 1) % n
			c.greedy = w
		} else if wake > d.cycle {
			w.wakeAt = wake
			if wake < nextWake {
				nextWake = wake
			}
		}
	}
	return issued, nextWake, nil
}

var _ gpu.Device = (*Device)(nil)
