package amdsim

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/siasm"
	"repro/internal/wire"
)

// Wire codec for amdsim snapshots (gpu.SnapshotCodec), mirroring
// internal/nvsim's: the memory image travels as content-addressed pages
// in the ladder file, the meta blob carries execution statistics and the
// per-CU scheduler state. The layout is private to amdsim and versioned
// only through the enclosing wire file version.

// MarshalSnapshot implements gpu.SnapshotCodec.
func (d *Device) MarshalSnapshot(s gpu.Snapshot) (*gpu.MemImage, []byte, error) {
	snap, ok := s.(*snapshot)
	if !ok {
		return nil, nil, fmt.Errorf("amdsim: cannot marshal a %T snapshot", s)
	}
	var w wire.Writer
	w.I64(snap.cycle)
	w.I64(snap.stats.Cycles)
	w.I64(snap.stats.Instructions)
	w.I64(snap.stats.LaneInstructions)
	w.Int(snap.stats.Launches)
	w.F64(snap.stats.RegOcc.AllocUnitCycles)
	w.F64(snap.stats.LocalOcc.AllocUnitCycles)
	w.Int(snap.launches)
	w.Bool(snap.inflight != nil)
	if snap.inflight != nil {
		w.Int(snap.inflight.nextGroup)
		w.Int(snap.inflight.retired)
		w.I64(snap.inflight.launchStart)
	}
	w.I64(snap.bytes)
	w.U32(uint32(len(snap.cus)))
	for _, cu := range snap.cus {
		w.U32s(cu.vgprs)
		w.Blob(cu.lds)
		w.Bools(cu.slots)
		w.Int(cu.rrWave)
		w.Int(cu.greedySlot)
		w.Int(cu.greedyWave)
		w.U32(uint32(len(cu.groups)))
		for _, g := range cu.groups {
			w.Bool(g != nil)
			if g == nil {
				continue
			}
			w.Int(g.id)
			w.Int(g.wgX)
			w.Int(g.wgY)
			w.Int(g.slot)
			w.Int(g.vgprBase)
			w.Int(g.vgprCount)
			w.Int(g.ldsBase)
			w.Int(g.ldsCount)
			w.Int(g.live)
			w.Int(g.arrived)
			w.I64(g.allocCycle)
			w.U32(uint32(len(g.waves)))
			for i := range g.waves {
				wv := &g.waves[i]
				w.Int(wv.idx)
				w.Int(wv.pc)
				w.U64(wv.valid)
				w.U64(wv.exec)
				w.U64(wv.vcc)
				w.Bool(wv.scc)
				for _, v := range wv.sgprs {
					w.U32(v)
				}
				w.I64s(wv.vgprReady)
				for _, rdy := range wv.sgprReady {
					w.I64(rdy)
				}
				w.I64(wv.vccReady)
				w.I64(wv.execReady)
				w.I64(wv.sccReady)
				w.Bool(wv.atBarrier)
				w.Bool(wv.done)
				w.I64(wv.wakeAt)
				w.Int(wv.threadBase)
				w.Int(wv.vgprWBase)
			}
		}
	}
	return snap.mem, w.Bytes(), nil
}

// UnmarshalSnapshot implements gpu.SnapshotCodec. The returned snapshot
// references mem directly (which may alias a read-only mapping — the
// restore path only copies out of images, never into them).
func (d *Device) UnmarshalSnapshot(mem *gpu.MemImage, meta []byte) (gpu.Snapshot, error) {
	r := wire.NewReader(meta)
	snap := &snapshot{mem: mem}
	snap.cycle = r.I64()
	snap.stats.Cycles = r.I64()
	snap.stats.Instructions = r.I64()
	snap.stats.LaneInstructions = r.I64()
	snap.stats.Launches = r.Int()
	snap.stats.RegOcc.AllocUnitCycles = r.F64()
	snap.stats.LocalOcc.AllocUnitCycles = r.F64()
	snap.launches = r.Int()
	if r.Bool() {
		snap.inflight = &inflightImage{
			nextGroup:   r.Int(),
			retired:     r.Int(),
			launchStart: r.I64(),
		}
	}
	snap.bytes = r.I64()
	ncu := int(r.U32())
	if r.Err() != nil {
		return nil, fmt.Errorf("amdsim: snapshot meta: %w", r.Err())
	}
	if ncu < 0 || ncu > r.Remaining() {
		return nil, fmt.Errorf("amdsim: snapshot meta: %w: implausible CU count %d", wire.ErrCorrupt, ncu)
	}
	snap.cus = make([]cuImage, ncu)
	for i := range snap.cus {
		cu := &snap.cus[i]
		cu.vgprs = r.U32s()
		cu.lds = r.Blob()
		cu.slots = r.Bools()
		cu.rrWave = r.Int()
		cu.greedySlot = r.Int()
		cu.greedyWave = r.Int()
		ng := int(r.U32())
		if r.Err() != nil {
			return nil, fmt.Errorf("amdsim: snapshot meta: %w", r.Err())
		}
		if ng < 0 || ng > r.Remaining() {
			return nil, fmt.Errorf("amdsim: snapshot meta: %w: implausible group count %d", wire.ErrCorrupt, ng)
		}
		cu.groups = make([]*groupImage, ng)
		for slot := range cu.groups {
			if !r.Bool() {
				continue
			}
			g := &groupImage{
				id: r.Int(), wgX: r.Int(), wgY: r.Int(), slot: r.Int(),
				vgprBase: r.Int(), vgprCount: r.Int(),
				ldsBase: r.Int(), ldsCount: r.Int(),
				live: r.Int(), arrived: r.Int(), allocCycle: r.I64(),
			}
			nw := int(r.U32())
			if r.Err() != nil {
				return nil, fmt.Errorf("amdsim: snapshot meta: %w", r.Err())
			}
			if nw < 0 || nw > r.Remaining() {
				return nil, fmt.Errorf("amdsim: snapshot meta: %w: implausible wave count %d", wire.ErrCorrupt, nw)
			}
			g.waves = make([]waveImage, nw)
			for wi := range g.waves {
				wv := &g.waves[wi]
				wv.idx = r.Int()
				wv.pc = r.Int()
				wv.valid = r.U64()
				wv.exec = r.U64()
				wv.vcc = r.U64()
				wv.scc = r.Bool()
				for si := 0; si < siasm.MaxSGPRs; si++ {
					wv.sgprs[si] = r.U32()
				}
				wv.vgprReady = r.I64s()
				for si := 0; si < siasm.MaxSGPRs; si++ {
					wv.sgprReady[si] = r.I64()
				}
				wv.vccReady = r.I64()
				wv.execReady = r.I64()
				wv.sccReady = r.I64()
				wv.atBarrier = r.Bool()
				wv.done = r.Bool()
				wv.wakeAt = r.I64()
				wv.threadBase = r.Int()
				wv.vgprWBase = r.Int()
			}
			cu.groups[slot] = g
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("amdsim: snapshot meta: %w", err)
	}
	return snap, nil
}
