// Package metrics converts the raw reliability measurements (AVF,
// structure sizes, cycle counts) into the paper's derived metrics:
// FIT (failures in 10^9 device-hours), EIT (benchmark executions in 10^9
// device-hours) and EPF = EIT / FIT_GPU, the combined
// performance-reliability metric of Fig. 3.
package metrics

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
)

// DefaultRawFITPerMbit is the raw soft-error rate assumed for all SRAM
// structures, in FIT per Mbit. The paper does not publish its raw rate;
// 1,000 FIT/Mbit is an industry-typical planar-node figure, and because
// it is applied uniformly it scales all EPF values identically without
// changing cross-chip or cross-benchmark comparisons.
const DefaultRawFITPerMbit = 1000.0

// HoursPerBillion is the FIT time base: 10^9 hours in seconds.
const hoursPerBillionSeconds = 1e9 * 3600

// FIT returns the failure rate contribution of one structure:
// AVF x size(Mbit) x rawRate.
func FIT(avf float64, bits int64, rawPerMbit float64) float64 {
	return avf * float64(bits) / 1e6 * rawPerMbit
}

// ExecSeconds converts a cycle count at a clock (GHz) to seconds.
func ExecSeconds(cycles int64, clockGHz float64) (float64, error) {
	if cycles <= 0 {
		return 0, fmt.Errorf("metrics: non-positive cycle count %d", cycles)
	}
	if clockGHz <= 0 {
		return 0, fmt.Errorf("metrics: non-positive clock %v", clockGHz)
	}
	return float64(cycles) / (clockGHz * 1e9), nil
}

// EIT returns the number of complete benchmark executions in 10^9 device
// hours given one execution's wall-clock seconds.
func EIT(execSeconds float64) (float64, error) {
	if execSeconds <= 0 {
		return 0, errors.New("metrics: non-positive execution time")
	}
	return hoursPerBillionSeconds / execSeconds, nil
}

// StructureAVF carries one structure's measured AVF and its size.
type StructureAVF struct {
	Structure gpu.Structure
	AVF       float64
	Bits      int64
}

// EPF computes Executions Per Failure: EIT over the summed FIT of the
// device's analyzed structures (the paper's FIT_GPU).
func EPF(cycles int64, clockGHz float64, rawPerMbit float64, structs []StructureAVF) (float64, error) {
	secs, err := ExecSeconds(cycles, clockGHz)
	if err != nil {
		return 0, err
	}
	eit, err := EIT(secs)
	if err != nil {
		return 0, err
	}
	var fit float64
	for _, s := range structs {
		if s.AVF < 0 || s.AVF > 1 {
			return 0, fmt.Errorf("metrics: AVF %v of %s out of [0,1]", s.AVF, s.Structure)
		}
		fit += FIT(s.AVF, s.Bits, rawPerMbit)
	}
	if fit <= 0 {
		// A benchmark whose measured AVFs are all zero never fails in the
		// model; report +Inf executions per failure explicitly.
		return 0, errors.New("metrics: zero FIT (all AVFs zero)")
	}
	return eit / fit, nil
}
