package metrics_test

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/metrics"
)

// Combining a measured AVF with chip parameters into the paper's EPF
// metric: a 1 ms execution on a 1.4 GHz chip whose 15.7 Mbit register
// file shows 2% AVF and whose 5.9 Mbit shared memory shows 0.5% AVF.
func ExampleEPF() {
	epf, err := metrics.EPF(
		1_400_000, // cycles: 1 ms at 1.4 GHz
		1.4,       // GHz
		metrics.DefaultRawFITPerMbit,
		[]metrics.StructureAVF{
			{Structure: gpu.RegisterFile, AVF: 0.02, Bits: 15_728_640},
			{Structure: gpu.LocalMemory, AVF: 0.005, Bits: 5_898_240},
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("EPF = %.3e executions per failure\n", epf)
	// Output: EPF = 1.046e+13 executions per failure
}
