package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

func TestFIT(t *testing.T) {
	// 1 Mbit structure, AVF 10%, 1000 FIT/Mbit -> 100 FIT.
	if got := FIT(0.1, 1_000_000, 1000); got != 100 {
		t.Fatalf("FIT = %v, want 100", got)
	}
	if got := FIT(0, 1_000_000, 1000); got != 0 {
		t.Fatalf("zero AVF must give zero FIT, got %v", got)
	}
}

func TestExecSecondsAndEIT(t *testing.T) {
	secs, err := ExecSeconds(2_000_000_000, 2.0) // 2e9 cycles at 2 GHz = 1 s
	if err != nil {
		t.Fatal(err)
	}
	if secs != 1 {
		t.Fatalf("ExecSeconds = %v, want 1", secs)
	}
	eit, err := EIT(secs)
	if err != nil {
		t.Fatal(err)
	}
	if eit != 3.6e12 { // 1e9 hours / 1 s
		t.Fatalf("EIT = %v, want 3.6e12", eit)
	}
	if _, err := ExecSeconds(0, 1); err == nil {
		t.Fatal("zero cycles accepted")
	}
	if _, err := ExecSeconds(100, 0); err == nil {
		t.Fatal("zero clock accepted")
	}
}

func TestEPFHandComputed(t *testing.T) {
	// 1e6 cycles at 1 GHz = 1e-3 s -> EIT = 3.6e15.
	// One structure: 8 Mbit at AVF 25% and 1000 FIT/Mbit -> FIT = 2000.
	// EPF = 3.6e15 / 2000 = 1.8e12.
	epf, err := EPF(1_000_000, 1.0, 1000, []StructureAVF{
		{Structure: gpu.RegisterFile, AVF: 0.25, Bits: 8 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 3.6e15 / (0.25 * float64(8<<20) / 1e6 * 1000)
	if math.Abs(epf-want)/want > 1e-12 {
		t.Fatalf("EPF = %v, want %v", epf, want)
	}
}

func TestEPFZeroFIT(t *testing.T) {
	_, err := EPF(1000, 1, 1000, []StructureAVF{
		{Structure: gpu.RegisterFile, AVF: 0, Bits: 1 << 20},
	})
	if err == nil {
		t.Fatal("zero FIT must error (infinite EPF)")
	}
}

func TestEPFRejectsBadAVF(t *testing.T) {
	_, err := EPF(1000, 1, 1000, []StructureAVF{
		{Structure: gpu.RegisterFile, AVF: 1.5, Bits: 1 << 20},
	})
	if err == nil {
		t.Fatal("AVF > 1 accepted")
	}
}

// Property: EPF decreases when AVF increases (all else equal), and
// increases with clock (faster executions, same failure rate per hour).
func TestEPFMonotonicity(t *testing.T) {
	if err := quick.Check(func(rawA, rawB uint8) bool {
		a := 0.01 + 0.98*float64(rawA)/255
		b := 0.01 + 0.98*float64(rawB)/255
		lo, hi := math.Min(a, b), math.Max(a, b)
		if lo == hi {
			return true
		}
		mk := func(avf, clk float64) float64 {
			epf, err := EPF(1_000_000, clk, 1000, []StructureAVF{
				{Structure: gpu.RegisterFile, AVF: avf, Bits: 1 << 23},
			})
			if err != nil {
				return math.NaN()
			}
			return epf
		}
		if !(mk(hi, 1) < mk(lo, 1)) {
			return false
		}
		return mk(0.5, 2) > mk(0.5, 1)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
