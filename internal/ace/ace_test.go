package ace

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func newAnalyzerWithGeom(units, regs, local int) *Analyzer {
	return &Analyzer{
		regs:  newStructState(units, regs),
		local: newStructState(units, local),
	}
}

func TestIntervalClassification(t *testing.T) {
	a := newAnalyzerWithGeom(1, 4, 4)
	// Allocate entries 0..3 at cycle 0.
	a.RegAlloc(0, 0, 4, 0)
	// Entry 0: W@10 R@20 R@25 W@30 R@40 -> ACE = 10+5+10 = 25.
	a.RegAccess(0, 0, 10, true)
	a.RegAccess(0, 0, 20, false)
	a.RegAccess(0, 0, 25, false)
	a.RegAccess(0, 0, 30, true)
	a.RegAccess(0, 0, 40, false)
	// Entry 1: W@5 W@15 (write-write, tail) -> ACE = 0.
	a.RegAccess(0, 1, 5, true)
	a.RegAccess(0, 1, 15, true)
	// Entry 2: R@10 before any write -> undefined read, ACE = 0.
	a.RegAccess(0, 2, 10, false)
	a.RegFree(0, 0, 4, 50)

	if got := a.ACEEntryCycles(gpu.RegisterFile); got != 25 {
		t.Fatalf("ACE entry-cycles = %v, want 25", got)
	}
	avf, err := a.AVF(gpu.RegisterFile, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := 25.0 / (4 * 100); avf != want {
		t.Fatalf("AVF = %v, want %v", avf, want)
	}
}

func TestAccessOutsideAllocationIgnored(t *testing.T) {
	a := newAnalyzerWithGeom(1, 4, 4)
	a.RegAccess(0, 0, 10, true)
	a.RegAccess(0, 0, 20, false) // no allocation bracket
	if got := a.ACEEntryCycles(gpu.RegisterFile); got != 0 {
		t.Fatalf("unallocated accesses accumulated ACE %v", got)
	}
}

func TestReallocationResetsDefined(t *testing.T) {
	a := newAnalyzerWithGeom(1, 2, 2)
	a.RegAlloc(0, 0, 2, 0)
	a.RegAccess(0, 0, 10, true)
	a.RegFree(0, 0, 2, 20)
	// New owner reads before writing: must not count the stale value.
	a.RegAlloc(0, 0, 2, 30)
	a.RegAccess(0, 0, 40, false)
	if got := a.ACEEntryCycles(gpu.RegisterFile); got != 0 {
		t.Fatalf("stale defined flag leaked across reallocation: ACE %v", got)
	}
}

func TestLocalAccessSpansBytes(t *testing.T) {
	a := newAnalyzerWithGeom(1, 4, 16)
	a.LocalAlloc(0, 0, 16, 0)
	a.LocalAccess(0, 4, 4, 10, true)  // word write at offset 4
	a.LocalAccess(0, 4, 4, 30, false) // word read
	if got := a.ACEEntryCycles(gpu.LocalMemory); got != 4*20 {
		t.Fatalf("local ACE = %v, want 80", got)
	}
}

func TestMeasureOnRealRun(t *testing.T) {
	for _, benchName := range []string{"matrixMul", "reduction"} {
		b, err := workloads.ByName(benchName)
		if err != nil {
			t.Fatal(err)
		}
		for _, chip := range []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()} {
			d, err := devices.New(chip)
			if err != nil {
				t.Fatal(err)
			}
			hp, err := b.New(chip.Vendor)
			if err != nil {
				t.Fatal(err)
			}
			regAVF, localAVF, st, err := Measure(d, hp)
			if err != nil {
				t.Fatalf("%s on %s: %v", benchName, chip.Name, err)
			}
			if regAVF <= 0 || regAVF > 1 {
				t.Fatalf("%s on %s: register AVF %v implausible", benchName, chip.Name, regAVF)
			}
			if localAVF <= 0 || localAVF > 1 {
				t.Fatalf("%s on %s: local AVF %v implausible", benchName, chip.Name, localAVF)
			}
			if st.Cycles <= 0 {
				t.Fatalf("no cycles recorded")
			}
		}
	}
}

func TestUnitAVFBreakdown(t *testing.T) {
	a := newAnalyzerWithGeom(2, 4, 4)
	a.RegAlloc(0, 0, 4, 0)
	a.RegAccess(0, 0, 10, true)
	a.RegAccess(0, 0, 30, false) // 20 ACE entry-cycles on unit 0 only
	a.RegFree(0, 0, 4, 40)
	unit, err := a.UnitAVF(gpu.RegisterFile, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(unit) != 2 {
		t.Fatalf("unit count %d", len(unit))
	}
	if want := 20.0 / (4 * 100); unit[0] != want || unit[1] != 0 {
		t.Fatalf("unit AVFs %v, want [%v 0]", unit, want)
	}
	// The unit breakdown must average (weighted equally here) to the
	// chip-wide AVF.
	avf, err := a.AVF(gpu.RegisterFile, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := (unit[0] + unit[1]) / 2; got != avf {
		t.Fatalf("unit mean %v != chip AVF %v", got, avf)
	}
}

func TestUnitAVFOnRealRun(t *testing.T) {
	b, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	chip := chips.MiniNVIDIA()
	d, err := devices.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := b.New(chip.Vendor)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(d)
	d.SetTracer(an)
	if err := hp.Run(d); err != nil {
		t.Fatal(err)
	}
	unit, err := an.UnitAVF(gpu.RegisterFile, d.Stats().Cycles)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range unit {
		if v < 0 || v > 1 {
			t.Fatalf("unit AVF out of range: %v", unit)
		}
		sum += v
	}
	avf, err := an.AVF(gpu.RegisterFile, d.Stats().Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum / float64(len(unit)); mathAbs(got-avf) > 1e-12 {
		t.Fatalf("unit mean %v != chip AVF %v", got, avf)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
