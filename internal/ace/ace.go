// Package ace implements ACE (Architecturally Correct Execution) lifetime
// analysis for the register file and the local/shared memory, the second
// reliability-assessment methodology the paper compares against
// statistical fault injection.
//
// The analysis streams the access trace of a single fault-free run: each
// storage entry's timeline is cut at its accesses, and an interval is ACE
// exactly when it ends in a read of a previously written (defined) value
// — a bit flip during such an interval would be consumed. Intervals
// ending in writes, trailing intervals, reads of never-written entries,
// and all unallocated time are unACE. This is first-order ACE analysis
// without transitive or program-level masking, which is why (as the paper
// observes) it overestimates the register-file AVF measured by fault
// injection while matching the local-memory AVF closely.
//
// The implementation is O(1) per access: per entry it keeps only the last
// access cycle and a defined flag, accumulating ACE entry-cycles into a
// single running sum per structure.
package ace

import (
	"fmt"

	"repro/internal/gpu"
)

// entry flags.
const (
	flagAllocated byte = 1 << iota
	flagDefined
)

// structState tracks one structure (register file or local memory) across
// all units of the chip.
type structState struct {
	perUnit int
	last    []int64 // last access (or allocation) cycle per entry
	flags   []byte
	aceSum  float64   // accumulated ACE entry-cycles
	unitSum []float64 // per-unit ACE entry-cycles (SM/CU breakdown)
}

func newStructState(units, perUnit int) *structState {
	n := units * perUnit
	return &structState{
		perUnit: perUnit,
		last:    make([]int64, n),
		flags:   make([]byte, n),
		unitSum: make([]float64, units),
	}
}

func (s *structState) access(unit, entry int, cycle int64, write bool) {
	i := unit*s.perUnit + entry
	if i < 0 || i >= len(s.flags) {
		return
	}
	f := s.flags[i]
	if f&flagAllocated == 0 {
		// Access outside an allocation bracket (should not happen with a
		// well-formed simulator trace); ignore.
		return
	}
	if write {
		s.flags[i] = f | flagDefined
	} else if f&flagDefined != 0 {
		d := float64(cycle - s.last[i])
		s.aceSum += d
		s.unitSum[unit] += d
	}
	s.last[i] = cycle
}

func (s *structState) alloc(unit, base, count int, cycle int64) {
	lo := unit*s.perUnit + base
	hi := lo + count
	if lo < 0 || hi > len(s.flags) {
		return
	}
	for i := lo; i < hi; i++ {
		s.flags[i] = flagAllocated
		s.last[i] = cycle
	}
}

func (s *structState) free(unit, base, count int) {
	lo := unit*s.perUnit + base
	hi := lo + count
	if lo < 0 || hi > len(s.flags) {
		return
	}
	for i := lo; i < hi; i++ {
		s.flags[i] = 0
	}
}

// Analyzer is a gpu.Tracer that performs streaming ACE analysis on both
// target structures of one device.
type Analyzer struct {
	regs  *structState
	local *structState
}

// NewAnalyzer builds an analyzer for a device's structure geometry.
func NewAnalyzer(d gpu.Device) *Analyzer {
	return &Analyzer{
		regs:  newStructState(d.Units(), d.StructSize(gpu.RegisterFile)),
		local: newStructState(d.Units(), d.StructSize(gpu.LocalMemory)),
	}
}

// RegAccess implements gpu.Tracer.
func (a *Analyzer) RegAccess(unit, entry int, cycle int64, write bool) {
	a.regs.access(unit, entry, cycle, write)
}

// LocalAccess implements gpu.Tracer. Multi-byte accesses touch each byte.
func (a *Analyzer) LocalAccess(unit, offset, size int, cycle int64, write bool) {
	for b := 0; b < size; b++ {
		a.local.access(unit, offset+b, cycle, write)
	}
}

// RegAlloc implements gpu.Tracer.
func (a *Analyzer) RegAlloc(unit, base, count int, cycle int64) {
	a.regs.alloc(unit, base, count, cycle)
}

// RegFree implements gpu.Tracer.
func (a *Analyzer) RegFree(unit, base, count int, cycle int64) {
	a.regs.free(unit, base, count)
}

// LocalAlloc implements gpu.Tracer.
func (a *Analyzer) LocalAlloc(unit, base, size int, cycle int64) {
	a.local.alloc(unit, base, size, cycle)
}

// LocalFree implements gpu.Tracer.
func (a *Analyzer) LocalFree(unit, base, size int, cycle int64) {
	a.local.free(unit, base, size)
}

// AVF returns the ACE-based architectural vulnerability factor of a
// structure for an execution of totalCycles device cycles: ACE
// entry-cycles over total entry-cycles of the whole chip structure.
func (a *Analyzer) AVF(st gpu.Structure, totalCycles int64) (float64, error) {
	if totalCycles <= 0 {
		return 0, fmt.Errorf("ace: non-positive cycle count %d", totalCycles)
	}
	var s *structState
	switch st {
	case gpu.RegisterFile:
		s = a.regs
	case gpu.LocalMemory:
		s = a.local
	default:
		return 0, fmt.Errorf("ace: unknown structure %v", st)
	}
	total := float64(len(s.flags)) * float64(totalCycles)
	if total == 0 {
		return 0, fmt.Errorf("ace: empty structure %v", st)
	}
	avf := s.aceSum / total
	if avf < 0 || avf > 1 {
		return 0, fmt.Errorf("ace: AVF %v out of [0,1]", avf)
	}
	return avf, nil
}

// ACEEntryCycles exposes the raw accumulated ACE entry-cycles (used by
// tests and the occupancy-normalization ablation).
func (a *Analyzer) ACEEntryCycles(st gpu.Structure) float64 {
	if st == gpu.RegisterFile {
		return a.regs.aceSum
	}
	return a.local.aceSum
}

// UnitAVF returns the per-SM/CU AVF breakdown of a structure: how the
// chip-wide vulnerability distributes across units. With small grids the
// dispatcher fills low-numbered units first, so the tail units' AVF
// drops to zero — the spatial face of the occupancy correlation.
func (a *Analyzer) UnitAVF(st gpu.Structure, totalCycles int64) ([]float64, error) {
	if totalCycles <= 0 {
		return nil, fmt.Errorf("ace: non-positive cycle count %d", totalCycles)
	}
	s := a.regs
	if st == gpu.LocalMemory {
		s = a.local
	}
	out := make([]float64, len(s.unitSum))
	denom := float64(s.perUnit) * float64(totalCycles)
	for u, sum := range s.unitSum {
		out[u] = sum / denom
	}
	return out, nil
}

var _ gpu.Tracer = (*Analyzer)(nil)

// Measure runs the host program once on the device with ACE tracing and
// returns the ACE AVFs of both structures plus the run statistics. The
// device must be freshly reset.
func Measure(d gpu.Device, hp *gpu.HostProgram) (regAVF, localAVF float64, st gpu.RunStats, err error) {
	a := NewAnalyzer(d)
	d.SetTracer(a)
	if err = hp.Run(d); err != nil {
		return 0, 0, st, fmt.Errorf("ace: golden run failed: %w", err)
	}
	d.SetTracer(nil)
	st = d.Stats()
	regAVF, err = a.AVF(gpu.RegisterFile, st.Cycles)
	if err != nil {
		return 0, 0, st, err
	}
	localAVF, err = a.AVF(gpu.LocalMemory, st.Cycles)
	if err != nil {
		return 0, 0, st, err
	}
	return regAVF, localAVF, st, nil
}
