// Package devices constructs the right simulator for a chip
// configuration: nvsim for NVIDIA chips (the GUFI substrate) and amdsim
// for AMD chips (the SIFI substrate).
package devices

import (
	"fmt"

	"repro/internal/amdsim"
	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/nvsim"
)

// New creates a simulated device for the chip.
func New(chip *chips.Chip) (gpu.Device, error) {
	switch chip.Vendor {
	case gpu.NVIDIA:
		return nvsim.New(chip)
	case gpu.AMD:
		return amdsim.New(chip)
	default:
		return nil, fmt.Errorf("devices: unknown vendor %v", chip.Vendor)
	}
}
