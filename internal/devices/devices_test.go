package devices

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
)

func TestVendorDispatch(t *testing.T) {
	nv, err := New(chips.GeForceGTX480())
	if err != nil {
		t.Fatal(err)
	}
	if nv.Vendor() != gpu.NVIDIA || nv.Name() != "GeForce GTX 480" {
		t.Fatalf("NVIDIA dispatch: %v %s", nv.Vendor(), nv.Name())
	}
	amd, err := New(chips.HDRadeon7970())
	if err != nil {
		t.Fatal(err)
	}
	if amd.Vendor() != gpu.AMD {
		t.Fatalf("AMD dispatch: %v", amd.Vendor())
	}
}

func TestEveryCatalogChipConstructs(t *testing.T) {
	all := append(chips.Evaluated(), chips.Extended()...)
	all = append(all, chips.MiniNVIDIA(), chips.MiniAMD())
	for _, c := range all {
		d, err := New(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if d.StructBits(gpu.RegisterFile) != c.StructBits(gpu.RegisterFile) {
			t.Fatalf("%s: structure size mismatch", c.Name)
		}
	}
}

func TestInvalidChipRejected(t *testing.T) {
	bad := chips.MiniNVIDIA()
	bad.Units = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid chip accepted")
	}
}
