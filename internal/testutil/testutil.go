// Package testutil holds the boot-a-server helpers shared by the
// service end-to-end tests, the chaos/crash-injection harness and the
// client tests: tiny JSON HTTP helpers, a canonical mini campaign cell,
// job polling and a concurrency-safe log sink. Everything addresses
// servers by base URL, so the same helpers drive an in-process
// httptest.Server and a real fiserver subprocess alike.
package testutil

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// PostJSON posts v to base+path and decodes the JSON response into out
// (ignored when nil), failing the test unless the status is wantCode.
func PostJSON(t *testing.T, base, path string, v, out any, wantCode int) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// GetJSON fetches base+path and decodes into out (ignored when nil),
// returning the status code.
func GetJSON(t *testing.T, base, path string, out any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// DeleteJSON sends DELETE to base+path and decodes into out (ignored
// when nil), returning the status code.
func DeleteJSON(t *testing.T, base, path string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("DELETE %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// MiniSpec is the canonical tiny campaign cell of the service tests: the
// Mini NVIDIA chip, 20 injections, seeded for determinism.
func MiniSpec(bench string, seed uint64) campaign.CellSpec {
	return campaign.CellSpec{
		Chip:       "Mini NVIDIA",
		Benchmark:  bench,
		Injections: 20,
		Seed:       seed,
	}
}

// WaitForJob polls base until job id leaves the running state, failing
// the test unless it ends "done".
func WaitForJob(t *testing.T, base, id string) {
	t.Helper()
	if state := WaitForJobState(t, base, id); state != "done" {
		t.Fatalf("job %s ended %q", id, state)
	}
}

// WaitForJobState polls base until job id leaves the running state and
// returns the terminal state.
func WaitForJobState(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var status struct {
			State string `json:"state"`
		}
		if code := GetJSON(t, base, "/v1/jobs/"+id, &status); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d", id, code)
		}
		if status.State != "running" {
			return status.State
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// SyncWriter is a concurrency-safe log sink for worker and server
// loggers.
type SyncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

// Write implements io.Writer.
func (w *SyncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

// String snapshots everything written so far.
func (w *SyncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}
