package telemetry

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// Corr is the correlation identity of a unit of campaign work: the job
// that requested it, the cell being computed, and (on the distributed
// tier) the lease under which a worker runs it. Corr travels inside
// context.Context on both sides of the lease wire — the job id crosses
// processes in campaign.Task — so one grep over structured logs
// reconstructs a cell's life from fiserver submit to fiworker complete.
type Corr struct {
	Job    string
	Cell   string
	Lease  string
	Tenant string
}

type corrKey struct{}

// withCorr stores an updated Corr, copying the previous one first.
func withCorr(ctx context.Context, update func(*Corr)) context.Context {
	c := CorrFrom(ctx)
	update(&c)
	return context.WithValue(ctx, corrKey{}, c)
}

// WithJob tags ctx with a job correlation id.
func WithJob(ctx context.Context, job string) context.Context {
	return withCorr(ctx, func(c *Corr) { c.Job = job })
}

// WithCell tags ctx with a cell correlation id.
func WithCell(ctx context.Context, cell string) context.Context {
	return withCorr(ctx, func(c *Corr) { c.Cell = cell })
}

// WithLease tags ctx with a lease correlation id.
func WithLease(ctx context.Context, lease string) context.Context {
	return withCorr(ctx, func(c *Corr) { c.Lease = lease })
}

// WithTenant tags ctx with the tenant the work is accounted to.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return withCorr(ctx, func(c *Corr) { c.Tenant = tenant })
}

// CorrFrom returns the correlation identity in ctx (zero when untagged).
func CorrFrom(ctx context.Context) Corr {
	if ctx == nil {
		return Corr{}
	}
	c, _ := ctx.Value(corrKey{}).(Corr)
	return c
}

// corrHandler is a slog.Handler that appends the context's correlation
// IDs to every record, so call sites log plain messages and correlation
// comes from where the work runs, not from what the code remembers to
// pass.
type corrHandler struct {
	slog.Handler
}

func (h corrHandler) Handle(ctx context.Context, r slog.Record) error {
	c := CorrFrom(ctx)
	if c.Job != "" {
		r.AddAttrs(slog.String("job", c.Job))
	}
	if c.Cell != "" {
		r.AddAttrs(slog.String("cell", c.Cell))
	}
	if c.Lease != "" {
		r.AddAttrs(slog.String("lease", c.Lease))
	}
	if c.Tenant != "" {
		r.AddAttrs(slog.String("tenant", c.Tenant))
	}
	return h.Handler.Handle(ctx, r)
}

func (h corrHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return corrHandler{h.Handler.WithAttrs(attrs)}
}

func (h corrHandler) WithGroup(name string) slog.Handler {
	return corrHandler{h.Handler.WithGroup(name)}
}

// ParseLevel maps a -log-level flag value to a slog level. Unknown
// values default to info rather than erroring: a typo'd log level
// should never kill a campaign.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds a structured logger writing to w at the given level,
// in "text" (logfmt-style) or "json" format, with correlation IDs
// injected from context on every record.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(strings.TrimSpace(format), "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(corrHandler{h})
}
