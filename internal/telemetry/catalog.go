package telemetry

// The standard metric catalog. Every instrumented subsystem pulls its
// metrics from here so the whole fleet shares one naming scheme:
// fi_<subsystem>_<what>_<unit-or-total>, counters suffixed _total,
// gauges named for the quantity they track. All metrics live on the
// Default registry and are exported by fiserver's GET /metrics and
// fiworker's -metrics-addr sidecar. DESIGN.md "Observability" carries
// the human-readable table.
var (
	// Campaign scheduler (internal/campaign.Scheduler).
	SchedCellRuns = Default.Counter("fi_sched_cell_runs_total",
		"Campaign cells executed to completion by the scheduler.")
	SchedCacheHits = Default.Counter("fi_sched_cache_hits_total",
		"Cells answered from the result store without execution.")
	SchedCacheUpgrades = Default.Counter("fi_sched_cache_upgrades_total",
		"Cached cells re-executed because a request wanted more injections.")
	SchedJoins = Default.Counter("fi_sched_joins_total",
		"Requests coalesced onto an identical in-flight cell (singleflight).")
	SchedInflight = Default.Gauge("fi_sched_inflight_cells",
		"Cells currently executing under the scheduler.")
	GoldenCacheHits = Default.Counter("fi_sched_golden_cache_hits_total",
		"Golden reference runs reused from the per-(chip,benchmark) cache.")
	GoldenCacheMisses = Default.Counter("fi_sched_golden_cache_misses_total",
		"Golden reference runs that had to be simulated.")

	// Lease queue (internal/campaign.LeaseQueue).
	LeasesGranted = Default.Counter("fi_lease_granted_total",
		"Leases handed to workers, including re-grants after expiry.")
	LeaseHeartbeats = Default.Counter("fi_lease_heartbeats_total",
		"Successful lease heartbeat renewals.")
	LeaseExpiries = Default.Counter("fi_lease_expiries_total",
		"Leases whose TTL lapsed, re-queueing the cell.")
	LeaseCompletions = Default.Counter("fi_lease_completed_total",
		"Cells completed successfully over the worker protocol.")
	LeaseFailures = Default.Counter("fi_lease_failed_total",
		"Cells whose worker reported an execution error.")
	LeaseQueueDepth = Default.Gauge("fi_lease_queue_depth",
		"Cells waiting in the lease queue, not yet leased.")
	LeaseOutstanding = Default.Gauge("fi_lease_outstanding",
		"Cells currently leased to workers and awaiting completion.")

	// Injection engine (internal/finject).
	Injections = Default.Counter("fi_inject_injections_total",
		"Fault injections simulated and classified.")
	InjectRounds = Default.Counter("fi_inject_rounds_total",
		"Adaptive campaign rounds executed.")
	InjectEarlyStops = Default.Counter("fi_inject_early_stops_total",
		"Campaigns stopped early by the confidence-interval policy.")
	CkptRestores = Default.Counter("fi_inject_ckpt_restores_total",
		"Injections fast-forwarded by restoring a checkpoint-ladder rung.")
	FullReplays = Default.Counter("fi_inject_full_replays_total",
		"Injections replayed from cycle zero (no usable rung).")
	FastForwardCycles = Default.Counter("fi_inject_ff_cycles_total",
		"Simulated cycles skipped via checkpoint restore.")
	RestorePagesCopied = Default.Counter("fi_inject_restore_pages_copied_total",
		"Memory pages copied by COW snapshot restores (identity mismatch).")
	RestorePagesShared = Default.Counter("fi_inject_restore_pages_shared_total",
		"Memory pages skipped by COW snapshot restores (identity match).")
	SimulatedCycles = Default.Counter("fi_inject_sim_cycles_total",
		"Cycles actually simulated during injection classification.")
	LadderBuilds = Default.Counter("fi_ladder_builds_total",
		"Checkpoint ladders built during golden runs.")
	LadderSnapshots = Default.Counter("fi_ladder_snapshots_total",
		"Snapshots taken while building checkpoint ladders.")
	LadderBytes = Default.Counter("fi_ladder_bytes_total",
		"Bytes captured into checkpoint-ladder snapshots.")

	// Result store (internal/campaign.DiskStore).
	StorePuts = Default.Counter("fi_store_disk_puts_total",
		"Cell results appended to disk stores.")
	StoreCompactions = Default.Counter("fi_store_disk_compactions_total",
		"Disk store compactions (dead-record garbage collection).")
	StoreRecordsLive = Default.Gauge("fi_store_disk_records_live",
		"Live (most-recent) records across open disk stores.")
	StoreRecordsDead = Default.Gauge("fi_store_disk_records_dead",
		"Superseded records across open disk stores, pending compaction.")

	// Binary wire format (internal/wire): store/ladder encoding and
	// mmap'd ladder sharing.
	WireBytesWritten = Default.Counter("fi_wire_bytes_written_total",
		"Bytes written to binary wire-format files (stores and ladders).")
	WirePagesStored = Default.Counter("fi_wire_pages_stored_total",
		"Distinct content-addressed 4 KiB pages written to ladder files.")
	WirePagesDeduped = Default.Counter("fi_wire_pages_deduped_total",
		"Snapshot page references deduplicated against an already-stored page.")
	WireMmapHits = Default.Counter("fi_wire_mmap_hits_total",
		"Checkpoint ladders served from an existing ladder file instead of a rebuild.")
	WireLadderSaves = Default.Counter("fi_wire_ladder_saves_total",
		"Checkpoint ladders serialized to ladder files.")
	WireLadderMmapBytes = Default.Gauge("fi_wire_ladder_mmap_bytes",
		"Bytes of ladder files currently mapped read-only into this process (one mapping per file, shared by every consumer).")

	// Job journal and restart recovery (internal/service.JobStore).
	JobJournalAppends = Default.Counter("fi_store_job_journal_appends_total",
		"Records durably appended (fsynced) to the job journal.")
	JobJournalTornTails = Default.Counter("fi_store_job_journal_torn_tails_total",
		"Torn journal tails (partial final records) truncated on recovery.")
	JobJournalCompactions = Default.Counter("fi_store_job_journal_compactions_total",
		"Job journal compactions (rewrite to the live record minimum).")
	JobsRecovered = Default.Counter("fi_store_jobs_recovered_total",
		"Jobs restored from the journal on boot (finished and unfinished).")
	JobsResumed = Default.Counter("fi_store_jobs_resumed_total",
		"Unfinished jobs re-driven through the scheduler after a restart.")

	// HTTP control plane (internal/service).
	HTTPRequests = Default.CounterVec("fi_http_requests_total",
		"Control-plane HTTP requests served, by route.", "route")
	HTTPLatency = Default.HistogramVec("fi_http_request_seconds",
		"Control-plane HTTP request latency in seconds, by route.", "route", DefBuckets)

	// Multi-tenancy (internal/service auth + quotas). Tenant label values
	// come from the -api-keys file, so cardinality is bounded by the
	// operator's tenant table; unauthenticated servers account everything
	// to the "default" tenant.
	HTTPTenantRequests = Default.CounterVec("fi_http_tenant_requests_total",
		"Authenticated control-plane requests served, by tenant.", "tenant")
	HTTPAuthFailures = Default.Counter("fi_http_auth_failures_total",
		"Requests rejected for a missing or unknown API key.")
	JobsSubmitted = Default.CounterVec("fi_jobs_submitted_total",
		"Jobs (batches and experiments) accepted, by tenant.", "tenant")
	JobsQuotaRejected = Default.CounterVec("fi_jobs_quota_rejected_total",
		"Submissions rejected with 429 by a tenant quota, by tenant.", "tenant")
	LeaseTenantDepth = Default.GaugeVec("fi_lease_queue_depth_tenant",
		"Cells waiting in the lease queue, not yet leased, by tenant.", "tenant")

	// Horizontal control plane (internal/service cluster ownership).
	ClusterEpoch = Default.Gauge("fi_cluster_epoch",
		"Ownership epoch this server last claimed or observed (0 outside cluster mode).")
	ClusterActive = Default.Gauge("fi_cluster_active",
		"1 while this server owns the shared job store, 0 in standby.")
	ClusterTakeovers = Default.Counter("fi_cluster_takeovers_total",
		"Ownership claims made after detecting a stale peer (adoptions).")
)
