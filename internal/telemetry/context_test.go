package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestCorrThreadsThroughContext(t *testing.T) {
	ctx := context.Background()
	if CorrFrom(ctx) != (Corr{}) {
		t.Fatal("untagged context has a correlation identity")
	}
	ctx = WithJob(ctx, "job-1")
	ctx = WithCell(ctx, "cell-1")
	ctx = WithLease(ctx, "lease-1")
	if got := CorrFrom(ctx); got != (Corr{Job: "job-1", Cell: "cell-1", Lease: "lease-1"}) {
		t.Fatalf("correlation = %+v", got)
	}
	// Later tags must not leak into earlier contexts.
	inner := WithCell(ctx, "cell-2")
	if CorrFrom(ctx).Cell != "cell-1" || CorrFrom(inner).Cell != "cell-2" {
		t.Fatal("correlation tagging mutated the parent context")
	}
}

func TestLoggerInjectsCorrelationAttrs(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, "json")
	ctx := WithLease(WithJob(context.Background(), "job-000042"), "ls-7")
	log.InfoContext(ctx, "cell done", "n", 120)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["job"] != "job-000042" || rec["lease"] != "ls-7" || rec["msg"] != "cell done" {
		t.Fatalf("log record missing correlation attrs: %v", rec)
	}
	if _, hasCell := rec["cell"]; hasCell {
		t.Fatalf("empty correlation field leaked into the record: %v", rec)
	}
}

func TestLoggerTextFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn, "text")
	ctx := WithJob(context.Background(), "job-9")
	log.InfoContext(ctx, "dropped")
	log.WarnContext(ctx, "kept")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("info record logged at warn level:\n%s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "job=job-9") {
		t.Fatalf("warn record missing or uncorrelated:\n%s", out)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, " warn ": slog.LevelWarn,
		"warning": slog.LevelWarn, "error": slog.LevelError, "bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
