package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// The exposition grammar pieces shared by the validator. Metric and
// label names follow the Prometheus data model.
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// ValidateExposition checks a Prometheus text-format payload the way
// the CI smoke and the /metrics tests need it checked: every line
// parses, every family has HELP and TYPE before its samples, no family
// is declared twice, no sample series repeats, histogram samples use
// only the _bucket/_sum/_count shapes, and every value is a number.
// It returns the number of metric families on success.
func ValidateExposition(r io.Reader) (families int, err error) {
	decls := make(map[string]*familyDecl)
	seen := make(map[string]bool) // full series: name + sorted label set
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, perr := parseComment(line)
			if perr != nil {
				return 0, fmt.Errorf("line %d: %v", lineNo, perr)
			}
			d := decls[name]
			if d == nil {
				d = &familyDecl{}
				decls[name] = d
			}
			switch kind {
			case "HELP":
				if d.help {
					return 0, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				d.help = true
			case "TYPE":
				if d.typ {
					return 0, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				d.typ = true
				d.typName = rest
			}
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			return 0, fmt.Errorf("line %d: unparseable sample %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(value, "+"), 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return 0, fmt.Errorf("line %d: non-numeric value %q", lineNo, value)
		}
		fam, ok := familyFor(name, decls)
		if !ok {
			return 0, fmt.Errorf("line %d: sample %s has no family declaration", lineNo, name)
		}
		d := decls[fam]
		if !d.help || !d.typ {
			return 0, fmt.Errorf("line %d: family %s missing HELP or TYPE before samples", lineNo, fam)
		}
		if d.typName == "histogram" && fam == name {
			return 0, fmt.Errorf("line %d: histogram %s must expose _bucket/_sum/_count, not a bare sample", lineNo, name)
		}
		if d.typName != "histogram" && d.typName != "summary" && fam != name {
			return 0, fmt.Errorf("line %d: %s sample %s does not match its family name", lineNo, d.typName, name)
		}
		if labels != "" {
			if err := validateLabels(labels); err != nil {
				return 0, fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return 0, fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for name, d := range decls {
		if !d.help || !d.typ {
			return 0, fmt.Errorf("family %s declared without both HELP and TYPE", name)
		}
	}
	return len(decls), nil
}

// familyDecl tracks the HELP/TYPE declarations seen for one family.
type familyDecl struct {
	help, typ bool
	typName   string
}

// parseComment splits a "# HELP name text" / "# TYPE name type" line.
func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	name = fields[2]
	if !metricNameRe.MatchString(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	if kind == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("TYPE line for %s missing a type", name)
	}
	return kind, name, rest, nil
}

// parseSample splits a "name{labels} value" sample line. The label body
// is delimited by the first '}' outside a quoted value, so route labels
// like {id} path patterns survive; a regex over [^}]* would not.
func parseSample(line string) (name, labels, value string, ok bool) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return "", "", "", false
	}
	name = line[:i]
	if i < len(line) && line[i] == '{' {
		end := -1
		inQuote, escaping := false, false
	scan:
		for j := i + 1; j < len(line); j++ {
			c := line[j]
			switch {
			case escaping:
				escaping = false
			case c == '\\':
				escaping = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
				break scan
			}
		}
		if end < 0 {
			return "", "", "", false
		}
		labels = line[i+1 : end]
		i = end + 1
	}
	if i >= len(line) || line[i] != ' ' {
		return "", "", "", false
	}
	value = line[i+1:]
	if value == "" || strings.ContainsAny(value, " \t") {
		return "", "", "", false
	}
	return name, labels, value, true
}

// familyFor maps a sample name to its declared family, stripping the
// histogram/summary suffixes when the base family is a histogram or
// summary.
func familyFor(name string, decls map[string]*familyDecl) (string, bool) {
	if _, ok := decls[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if d, ok := decls[base]; ok && (d.typName == "histogram" || d.typName == "summary") {
			return base, true
		}
	}
	return "", false
}

// validateLabels checks a brace-free label body: comma-separated
// name="value" pairs with no duplicate names.
func validateLabels(body string) error {
	names := make(map[string]bool)
	for _, pair := range splitLabelPairs(body) {
		m := labelPairRe.FindStringSubmatch(pair)
		if m == nil {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if names[m[1]] {
			return fmt.Errorf("duplicate label %q", m[1])
		}
		names[m[1]] = true
	}
	return nil
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(body string) []string {
	var (
		pairs    []string
		start    int
		inQuote  bool
		escaping bool
	)
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaping:
			escaping = false
		case c == '\\':
			escaping = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			pairs = append(pairs, body[start:i])
			start = i + 1
		}
	}
	if start < len(body) {
		pairs = append(pairs, body[start:])
	}
	return pairs
}
