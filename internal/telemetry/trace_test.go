package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestStartSpanNoTracerIsNoOp(t *testing.T) {
	SetTracer(nil)
	end := StartSpan(context.Background(), "noop")
	end() // must not panic or record anywhere
}

func TestTracerRecordsSpansWithCorrelation(t *testing.T) {
	tr := NewTracer()
	prev := SetTracer(tr)
	defer SetTracer(prev)

	ctx := WithCell(WithJob(context.Background(), "job-000001"), "cell-a")
	StartSpan(ctx, "golden_run")()
	StartSpan(context.Background(), "anonymous")()
	if tr.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   *int64            `json:"ts"`
			Dur  *int64            `json:"dur"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(out.TraceEvents))
	}
	ev := out.TraceEvents[0]
	if ev.Name != "golden_run" || ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil {
		t.Fatalf("malformed complete event: %+v", ev)
	}
	if ev.Args["job"] != "job-000001" || ev.Args["cell"] != "cell-a" {
		t.Fatalf("span lost correlation args: %+v", ev.Args)
	}
	if out.TraceEvents[1].Args != nil {
		t.Fatalf("uncorrelated span grew args: %+v", out.TraceEvents[1].Args)
	}
}

func TestSetTracerSwapsAtomically(t *testing.T) {
	a, b := NewTracer(), NewTracer()
	SetTracer(a)
	if got := SetTracer(b); got != a {
		t.Fatal("SetTracer did not return the previous tracer")
	}
	if ActiveTracer() != b {
		t.Fatal("ActiveTracer does not reflect the installed tracer")
	}
	SetTracer(nil)
}
