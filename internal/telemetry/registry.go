// Package telemetry is the repo's zero-dependency observability layer:
// a metrics registry rendered in Prometheus text exposition format, span
// tracing exportable as Chrome trace-event JSON, and structured-logging
// helpers that thread job/cell/lease correlation IDs through contexts —
// across the lease wire, so one grep reconstructs a cell's life whether
// it ran in-process or on a remote fiworker.
//
// The layer is provably inert: metrics are plain atomic counters that
// never touch result data, tracing and logging are off unless installed,
// and the differential suite (core.TestFigureJSONTelemetryEquivalence,
// finject's record-stream equivalence test) asserts that figure JSON and
// per-injection record streams are byte-identical with every observer
// running versus none.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a set of named metric families rendered together in
// Prometheus text exposition format. Registration is idempotent: asking
// for an existing name returns the existing metric, so package-level
// instrumentation and tests can share one default registry safely.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one registered metric family.
type family struct {
	name, help, typ string
	metric          sampler
}

// sampler renders a family's samples (everything below # HELP / # TYPE).
type sampler interface {
	samples(name string, w io.Writer)
}

// Default is the process-wide registry behind the standard metric
// catalog (catalog.go), GET /metrics and the fiworker sidecar listener.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the existing family for name (verifying its type) or
// creates it with the given constructor. Reusing a name with a different
// type or metric kind panics: that is a programming error, caught at
// init time because the catalog registers everything up front.
func (r *Registry) register(name, help, typ string, mk func() sampler) sampler {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f.metric
	}
	m := mk()
	r.families[name] = &family{name: name, help: help, typ: typ, metric: m}
	return m
}

// Counter returns the registered monotonically increasing counter,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, "counter", func() sampler { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is not a plain counter", name))
	}
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, "gauge", func() sampler { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is not a plain gauge", name))
	}
	return g
}

// Histogram returns the registered fixed-bucket histogram, creating it
// on first use with the given upper bounds (ascending, +Inf implied).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, help, "histogram", func() sampler { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is not a plain histogram", name))
	}
	return h
}

// CounterVec returns the registered counter family keyed by one label,
// creating it on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, help, "counter", func() sampler {
		return &CounterVec{label: label, m: make(map[string]*Counter)}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is not a counter vec", name))
	}
	return v
}

// GaugeVec returns the registered gauge family keyed by one label,
// creating it on first use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	m := r.register(name, help, "gauge", func() sampler {
		return &GaugeVec{label: label, m: make(map[string]*Gauge)}
	})
	v, ok := m.(*GaugeVec)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is not a gauge vec", name))
	}
	return v
}

// HistogramVec returns the registered histogram family keyed by one
// label, creating it on first use.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	m := r.register(name, help, "histogram", func() sampler {
		return &HistogramVec{label: label, buckets: buckets, m: make(map[string]*Histogram)}
	})
	v, ok := m.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is not a histogram vec", name))
	}
	return v
}

// WritePrometheus renders every family in text exposition format,
// sorted by name so equal registries render byte-identically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.metric.samples(f.name, bw)
	}
	return bw.Flush()
}

// Handler serves the Default registry as a Prometheus scrape target.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w)
	})
}

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; all methods are safe for concurrent use and cost one
// atomic add — cheap enough for per-injection hot paths.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) samples(name string, w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) samples(name string, w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
}

// Histogram is a fixed-bucket distribution metric. Buckets are upper
// bounds in ascending order; the +Inf bucket is implicit. Observations
// are two atomic adds plus one CAS loop for the sum.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, the last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond handlers to multi-second streamed figure runs.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 5, 30}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or the +Inf slot
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) samples(name string, w io.Writer) {
	h.labeledSamples(name, "", w)
}

// labeledSamples renders the histogram's sample lines, with extra (an
// already-rendered `label="value"` pair) merged into every line.
func (h *Histogram) labeledSamples(name, extra string, w io.Writer) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, formatBound(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, wrapLabels(extra), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(extra), h.count.Load())
}

// wrapLabels turns a trailing-comma label fragment into a braced label
// set, or nothing when the fragment is empty.
func wrapLabels(extra string) string {
	if extra == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(extra, ",") + "}"
}

func formatBound(b float64) string { return formatFloat(b) }

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// With returns the child counter for the label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[value]; !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

func (v *CounterVec) samples(name string, w io.Writer) {
	v.mu.RLock()
	values := make([]string, 0, len(v.m))
	for val := range v.m {
		values = append(values, val)
	}
	sort.Strings(values)
	for _, val := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, escapeLabel(val), v.m[val].Value())
	}
	v.mu.RUnlock()
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Gauge
}

// With returns the child gauge for the label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.m[value]; !ok {
		g = &Gauge{}
		v.m[value] = g
	}
	return g
}

func (v *GaugeVec) samples(name string, w io.Writer) {
	v.mu.RLock()
	values := make([]string, 0, len(v.m))
	for val := range v.m {
		values = append(values, val)
	}
	sort.Strings(values)
	for _, val := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, escapeLabel(val), v.m[val].Value())
	}
	v.mu.RUnlock()
}

// HistogramVec is a histogram family keyed by one label; children share
// the vec's bucket bounds.
type HistogramVec struct {
	label   string
	buckets []float64
	mu      sync.RWMutex
	m       map[string]*Histogram
}

// With returns the child histogram for the label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[value]; !ok {
		h = newHistogram(v.buckets)
		v.m[value] = h
	}
	return h
}

func (v *HistogramVec) samples(name string, w io.Writer) {
	v.mu.RLock()
	values := make([]string, 0, len(v.m))
	for val := range v.m {
		values = append(values, val)
	}
	sort.Strings(values)
	for _, val := range values {
		extra := fmt.Sprintf("%s=%q,", v.label, escapeLabel(val))
		v.m[val].labeledSamples(name, extra, w)
	}
	v.mu.RUnlock()
}

// escapeLabel escapes a label value per the exposition format; %q in the
// callers then adds the quotes and escapes quotes and backslashes.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}
