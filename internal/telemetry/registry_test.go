package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "other help ignored")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("idempotent registration did not share state")
	}
}

func TestRegistrationTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("metric", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("metric", "help")
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 106.2; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_sum 106.2`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecRenderingIsSortedAndLabeled(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "help", "route")
	v.With("b").Add(2)
	v.With("a").Inc()
	hv := r.HistogramVec("lat_seconds", "help", "route", []float64{1})
	hv.With("a").Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	ia, ib := strings.Index(out, `req_total{route="a"} 1`), strings.Index(out, `req_total{route="b"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("vec samples missing or unsorted:\n%s", out)
	}
	for _, want := range []string{
		`lat_seconds_bucket{route="a",le="1"} 1`,
		`lat_seconds_sum{route="a"} 0.5`,
		`lat_seconds_count{route="a"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionValidatesAndExposesCatalog(t *testing.T) {
	// Exercise a few catalog metrics so vecs have children, then check
	// the Default registry renders a payload our own validator accepts.
	SchedCellRuns.Inc()
	HTTPRequests.With("GET /v1/stats").Inc()
	HTTPLatency.With("GET /v1/stats").Observe(0.003)
	var sb strings.Builder
	if err := Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("default registry fails validation: %v\n%s", err, sb.String())
	}
	if n < 20 {
		t.Fatalf("catalog exposes %d families, want the full catalog (>= 20)", n)
	}
	for _, fam := range []string{
		"fi_sched_cell_runs_total", "fi_lease_queue_depth", "fi_inject_injections_total",
		"fi_store_disk_puts_total", "fi_http_request_seconds",
	} {
		if !strings.Contains(sb.String(), "# TYPE "+fam+" ") {
			t.Errorf("catalog missing family %s", fam)
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	h := r.Histogram("h_seconds", "help", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 2000 {
		t.Fatalf("histogram count=%d sum=%v, want 8000/2000", h.Count(), h.Sum())
	}
}
