package telemetry

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects campaign spans — golden run, ladder build, injection
// rounds, cell execution, store compaction — and exports them as Chrome
// trace-event JSON loadable in chrome://tracing or ui.perfetto.dev.
// A Tracer is safe for concurrent use; no Tracer is installed by
// default, in which case StartSpan is a two-load no-op.
type Tracer struct {
	start  time.Time
	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one Chrome trace-event ("X" complete events only).
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // µs since trace start
	Dur  int64             `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  uint32            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// NewTracer builds an empty tracer; its clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// global is the installed tracer, nil when tracing is off.
var global atomic.Pointer[Tracer]

// SetTracer installs t as the process tracer (nil disables tracing) and
// returns the previously installed one.
func SetTracer(t *Tracer) *Tracer {
	return global.Swap(t)
}

// ActiveTracer returns the installed tracer, or nil when tracing is off.
func ActiveTracer() *Tracer { return global.Load() }

// StartSpan opens a named span against the installed tracer and returns
// a function that closes it. With no tracer installed the cost is one
// atomic load and the returned closure does nothing, so call sites can
// be unconditional. Correlation IDs in ctx become span args, and the
// span lands on a per-cell trace row so concurrent cells stack visibly.
func StartSpan(ctx context.Context, name string) func() {
	t := global.Load()
	if t == nil {
		return func() {}
	}
	corr := CorrFrom(ctx)
	begin := time.Now()
	return func() {
		end := time.Now()
		var args map[string]string
		if corr != (Corr{}) {
			args = make(map[string]string, 3)
			if corr.Job != "" {
				args["job"] = corr.Job
			}
			if corr.Cell != "" {
				args["cell"] = corr.Cell
			}
			if corr.Lease != "" {
				args["lease"] = corr.Lease
			}
		}
		ev := traceEvent{
			Name: name,
			Ph:   "X",
			Ts:   begin.Sub(t.start).Microseconds(),
			Dur:  end.Sub(begin).Microseconds(),
			Pid:  1,
			Tid:  traceRow(corr.Cell),
			Args: args,
		}
		t.mu.Lock()
		t.events = append(t.events, ev)
		t.mu.Unlock()
	}
}

// traceRow maps a cell id onto a stable Chrome-trace thread row; spans
// with no cell share row 0.
func traceRow(cell string) uint32 {
	if cell == "" {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, cell)
	return 1 + h.Sum32()%4096
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteChromeTrace renders the collected spans as Chrome trace-event
// JSON ({"traceEvents": [...]}).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	return json.NewEncoder(w).Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events})
}
