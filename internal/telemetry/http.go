package telemetry

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// InstrumentHandler wraps an HTTP handler with per-route request and
// latency metrics. The route label is passed explicitly (not derived
// from the request) so label cardinality is fixed at registration time
// and path parameters never explode the metric space.
func InstrumentHandler(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := HTTPRequests.With(route)
	lat := HTTPLatency.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		h(w, r)
		reqs.Inc()
		lat.Observe(time.Since(begin).Seconds())
	}
}

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/, matching what http.DefaultServeMux would get.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// MetricsMux builds the sidecar mux fiworker serves on -metrics-addr:
// GET /metrics over the Default registry, plus pprof when enabled.
func MetricsMux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", Handler())
	if withPprof {
		RegisterPprof(mux)
	}
	return mux
}
