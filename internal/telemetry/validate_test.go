package telemetry

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := `# HELP a_total things
# TYPE a_total counter
a_total 3
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{route="x",le="1"} 1
lat_seconds_bucket{route="x",le="+Inf"} 2
lat_seconds_sum{route="x"} 1.5
lat_seconds_count{route="x"} 2
`
	n, err := ValidateExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if n != 2 {
		t.Fatalf("families = %d, want 2", n)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without declarations": "a_total 3\n",
		"missing TYPE":                "# HELP a_total x\na_total 3\n",
		"duplicate TYPE":              "# HELP a_total x\n# TYPE a_total counter\n# TYPE a_total counter\na_total 3\n",
		"unknown type":                "# HELP a_total x\n# TYPE a_total widget\na_total 3\n",
		"duplicate series":            "# HELP a_total x\n# TYPE a_total counter\na_total 3\na_total 4\n",
		"non-numeric value":           "# HELP a_total x\n# TYPE a_total counter\na_total lots\n",
		"bad metric name":             "# HELP 9a x\n# TYPE 9a counter\n9a 3\n",
		"bare histogram sample":       "# HELP h x\n# TYPE h histogram\nh 3\n",
		"counter with suffix sample":  "# HELP a_total x\n# TYPE a_total counter\na_total_bucket 3\n",
		"duplicate label":             "# HELP a x\n# TYPE a counter\na{l=\"1\",l=\"2\"} 3\n",
		"malformed label pair":        "# HELP a x\n# TYPE a counter\na{l=unquoted} 3\n",
		"declaration without samples": "# HELP a x\n",
	}
	for name, payload := range cases {
		if _, err := ValidateExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: invalid exposition accepted:\n%s", name, payload)
		}
	}
}
