// Byte-identity of the two public surfaces: running a figure through the
// declarative experiment runner must produce exactly the bytes of the
// legacy core figure drivers, off one shared scheduler with zero
// re-executed cells. This is the redesign's acceptance contract. (The
// test lives in core_test because it needs internal/report, which
// imports core.)
package core_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/workloads"
)

func miniGrid(t *testing.T) (opts core.Options, spec experiment.Spec) {
	t.Helper()
	b1, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := workloads.ByName("transpose")
	if err != nil {
		t.Fatal(err)
	}
	opts = core.Options{
		Injections: 50,
		Seed:       9,
		Chips:      []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()},
		Benchmarks: []*workloads.Benchmark{b1, b2},
	}
	spec = experiment.Spec{
		Chips:      []string{"Mini NVIDIA", "Mini AMD"},
		Benchmarks: []string{"vectoradd", "transpose"},
		Injections: 50,
		Seed:       9,
	}
	return opts, spec
}

func TestSpecRunnerMatchesFigureDrivers(t *testing.T) {
	ctx := context.Background()
	sched := campaign.New(campaign.Config{})
	opts, spec := miniGrid(t)
	opts.Scheduler = sched
	runner := &experiment.Runner{Scheduler: sched}

	// Fig. 1 shape: register file, both estimators.
	spec.Structures = []gpu.Structure{gpu.RegisterFile}
	res, err := runner.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	runsAfterSpec := sched.Stats().Runs

	fig, err := core.FigureRegisterFileContext(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Stats().Runs; got != runsAfterSpec {
		t.Fatalf("figure driver re-executed %d cells the spec run already measured", got-runsAfterSpec)
	}

	fromSpec, err := core.FigureOf(res, gpu.RegisterFile)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := report.WriteFigureJSON(&a, fromSpec, "x"); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteFigureJSON(&b, fig, "x"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("figure JSON differs between spec runner and driver:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}

	// Fig. 3 shape: EPF over both structures, reusing the cells above.
	spec.Structures = []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory}
	spec.Estimator = experiment.EstimatorFI
	spec.Metrics = experiment.Metrics{EPF: true}
	epfRes, err := runner.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	runsAfterSpec = sched.Stats().Runs
	epfFig, err := core.FigureEPFContext(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Stats().Runs; got != runsAfterSpec {
		t.Fatalf("EPF driver re-executed %d cells", got-runsAfterSpec)
	}
	fromSpecEPF, err := core.EPFDataOf(epfRes)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset()
	b.Reset()
	if err := report.WriteEPFJSON(&a, fromSpecEPF, "x"); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteEPFJSON(&b, epfFig, "x"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("EPF JSON differs between spec runner and driver:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// TestFigureSpecsMatchFigureCells: the canned figure specs compile to
// exactly the cell lists the legacy FigureCells API reports.
func TestFigureSpecsMatchFigureCells(t *testing.T) {
	for fig := 1; fig <= 3; fig++ {
		spec, err := experiment.Figure(fig)
		if err != nil {
			t.Fatal(err)
		}
		spec.Seed = 5
		spec.Injections = 77
		plan, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := core.FigureCells(fig, core.Options{Seed: 5, Injections: 77})
		if err != nil {
			t.Fatal(err)
		}
		got := plan.CellSpecs()
		if len(got) != len(legacy) {
			t.Fatalf("fig %d: %d cells vs legacy %d", fig, len(got), len(legacy))
		}
		for i := range got {
			if got[i].Key() != legacy[i].Key() {
				t.Fatalf("fig %d cell %d: key mismatch\n%s\nvs\n%s", fig, i, got[i], legacy[i])
			}
		}
	}
}
