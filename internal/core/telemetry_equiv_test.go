package core

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"testing"

	"repro/internal/chips"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// TestFigureJSONTelemetryEquivalence is the observability tier's
// inertness proof at the figure level: the same figure computed with
// every observer running — tracer installed, debug logger as the slog
// default, and a goroutine hammering the metrics registry's exposition
// the whole time — must serialize byte-identically to the unobserved
// run. Campaigns are deterministic functions of (spec, seed); telemetry
// must stay outside that function.
func TestFigureJSONTelemetryEquivalence(t *testing.T) {
	chip, err := chips.ByName("Mini NVIDIA")
	if err != nil {
		t.Fatal(err)
	}
	var benches []*workloads.Benchmark
	for _, name := range []string{"vectoradd", "matrixMul"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, b)
	}
	opts := Options{
		Injections: 40, Seed: 7,
		Chips: []*chips.Chip{chip}, Benchmarks: benches,
	}

	render := func() []byte {
		t.Helper()
		fig, err := FigureRegisterFile(opts)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(fig)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	// Unobserved reference first (other tests may have bumped counters
	// already; counters are always-on and proven inert by this very
	// comparison).
	off := render()

	// Now with the full observer set running.
	prevTracer := telemetry.SetTracer(telemetry.NewTracer())
	prevLog := slog.Default()
	slog.SetDefault(telemetry.NewLogger(io.Discard, slog.LevelDebug, "json"))
	scrapeDone := make(chan struct{})
	stopScrape := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
				telemetry.Default.WritePrometheus(io.Discard)
			}
		}
	}()
	on := render()
	close(stopScrape)
	<-scrapeDone
	slog.SetDefault(prevLog)
	telemetry.SetTracer(prevTracer)

	if !bytes.Equal(off, on) {
		t.Fatalf("figure JSON differs with telemetry on:\noff: %s\non:  %s", off, on)
	}
	if telemetry.ActiveTracer() != prevTracer {
		t.Fatal("tracer not restored")
	}
}
