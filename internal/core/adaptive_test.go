package core

import (
	"testing"

	"repro/internal/workloads"
)

// TestFigureAdaptiveStopsBelowCap: an attainable margin must save
// injections on every cell of a figure run, and the realized count is
// surfaced on the cell.
func TestFigureAdaptiveStopsBelowCap(t *testing.T) {
	b, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	opts := miniOpts(2000)
	opts.Benchmarks = []*workloads.Benchmark{b}
	opts.Margin = 0.1
	fig, err := FigureRegisterFile(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Cells {
		for _, cell := range row {
			if cell.Injections <= 0 || cell.Injections >= 2000 {
				t.Fatalf("cell %s/%s realized %d injections, want early stop below the cap",
					cell.Chip, cell.Benchmark, cell.Injections)
			}
		}
	}
}
