// Package core_test: the report renderers import core, so the
// figure-level differential proof lives in the external test package.
package core_test

import (
	"bytes"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/finject"
	"repro/internal/report"
)

// TestFigureJSONCheckpointEquivalence is the figure-level half of the
// differential proof: all three paper figures, regenerated once with
// checkpointed fast-forward and once with full per-injection replay on
// deliberately separate schedulers (so nothing is served from a shared
// cache), must serialize to byte-identical JSON documents.
func TestFigureJSONCheckpointEquivalence(t *testing.T) {
	render := func(t *testing.T, ckpt finject.Checkpoint) []byte {
		t.Helper()
		sched := campaign.New(campaign.Config{})
		opts := core.Options{
			Injections: 50, Seed: 41,
			Chips:      []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()},
			Checkpoint: ckpt,
			Scheduler:  sched,
		}
		var buf bytes.Buffer
		fig1, err := core.FigureRegisterFile(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := report.WriteFigureJSON(&buf, fig1, "fig1"); err != nil {
			t.Fatal(err)
		}
		fig2, err := core.FigureLocalMemory(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := report.WriteFigureJSON(&buf, fig2, "fig2"); err != nil {
			t.Fatal(err)
		}
		fig3, err := core.FigureEPF(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := report.WriteEPFJSON(&buf, fig3, "fig3"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	full := render(t, finject.Checkpoint{Off: true})
	ckpt := render(t, finject.Checkpoint{})
	if !bytes.Equal(full, ckpt) {
		t.Fatalf("figure JSON diverges between full replay and checkpointed execution:\nfull:\n%s\ncheckpointed:\n%s", full, ckpt)
	}
}
