// Package core is the reproduction's top-level reliability-evaluation
// framework — the equivalent of the paper's GUFI+SIFI pair plus the
// experiment drivers that produce its three figures. Since the
// declarative experiment redesign it is a thin compatibility layer: the
// figure drivers compile their Options into versioned experiment specs
// (see internal/experiment) and run them through the spec runner, so
// "run Fig. 1" and "run the fig1 spec" are literally the same code path
// and produce byte-identical output.
//
// All fault-injection campaigns are routed through a campaign.Scheduler
// (Options.Scheduler), which deduplicates identical cells, bounds
// concurrency and caches results: running FigureRegisterFile,
// FigureLocalMemory and FigureEPF against one shared scheduler executes
// every unique (chip, benchmark, structure) campaign exactly once —
// Fig. 3 reuses the cells Figs. 1 and 2 already measured, and any spec
// run against the same scheduler reuses them too.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/experiment"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// Options configures an experiment.
type Options struct {
	// Injections per fault-injection campaign (paper default 2,000).
	// With Margin set this is the adaptive cap, not an exact count.
	Injections int
	// Seed makes every campaign reproducible.
	Seed uint64
	// Workers bounds each campaign's parallel simulations.
	Workers int
	// Margin, when > 0, runs every campaign adaptively: injections stop
	// once the AVF interval half-width reaches Margin at Confidence,
	// capped at Injections.
	Margin float64
	// Chips defaults to the paper's four evaluated GPUs.
	Chips []*chips.Chip
	// Benchmarks defaults to the figure-appropriate suite.
	Benchmarks []*workloads.Benchmark
	// RawFITPerMbit defaults to metrics.DefaultRawFITPerMbit.
	RawFITPerMbit float64
	// Confidence level for AVF intervals (default 0.99, as the paper).
	Confidence float64
	// Checkpoint configures checkpointed fast-forward execution. The
	// zero value (on, auto-sized interval) is the default; it is an
	// execution knob that never changes results or cell identity.
	Checkpoint finject.Checkpoint
	// Scheduler executes and caches the FI campaigns. Sharing one
	// scheduler across figure calls lets later figures reuse earlier
	// cells (Fig. 3 gets Figs. 1 and 2 for free). A private scheduler is
	// created when nil.
	Scheduler *campaign.Scheduler
	// Executor, used only when Scheduler is nil, routes the private
	// scheduler's campaign execution through a custom tier — e.g. a
	// campaign.RemoteExecutor backed by a fiworker fleet. Results are
	// byte-identical to local execution by the determinism contract.
	Executor campaign.Executor
}

func (o Options) withDefaults(benches []*workloads.Benchmark) Options {
	if o.Injections <= 0 {
		o.Injections = finject.DefaultInjections
	}
	if len(o.Chips) == 0 {
		o.Chips = chips.Evaluated()
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = benches
	}
	if o.RawFITPerMbit <= 0 {
		o.RawFITPerMbit = metrics.DefaultRawFITPerMbit
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.99
	}
	if o.Scheduler == nil {
		o.Scheduler = campaign.New(campaign.Config{CampaignWorkers: o.Workers, Executor: o.Executor})
	}
	return o
}

// spec compiles the result-affecting Options into an experiment spec
// over the given structure axis. Workers and Scheduler stay out: they
// belong to the executing tier, not to the experiment's identity.
func (o Options) spec(structures []gpu.Structure) experiment.Spec {
	s := experiment.Spec{
		Structures: structures,
		Estimator:  experiment.EstimatorBoth,
		Injections: o.Injections,
		Seed:       o.Seed,
		Policy:     experiment.Policy{Margin: o.Margin, Confidence: o.Confidence},
	}
	// Only a non-default knob is written into the spec, so option sets
	// from before the knob existed produce byte-identical specs.
	if o.Checkpoint != (finject.Checkpoint{}) {
		ck := o.Checkpoint
		s.Policy.Checkpoint = &ck
	}
	return s
}

// plan lowers the options onto the explicit chip/benchmark pointer sets
// (which may include unregistered chips, so the name registries are
// bypassed).
func (o Options) plan(s experiment.Spec) (*experiment.Plan, error) {
	if len(o.Chips) == 0 || len(o.Benchmarks) == 0 {
		return nil, errors.New("core: empty chip or benchmark set")
	}
	return s.CompileWith(o.Chips, o.Benchmarks)
}

// figureStructures maps a figure number to its defaults.
func figureStructures(fig int) (structures []gpu.Structure, benches []*workloads.Benchmark, err error) {
	switch fig {
	case 1:
		return []gpu.Structure{gpu.RegisterFile}, workloads.All(), nil
	case 2:
		return []gpu.Structure{gpu.LocalMemory}, workloads.LocalMemorySubset(), nil
	case 3:
		return []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory}, workloads.All(), nil
	default:
		return nil, nil, fmt.Errorf("core: unknown figure %d (want 1, 2 or 3)", fig)
	}
}

// FigureCells returns the normalized specs of every campaign cell figure
// fig (1, 2 or 3) schedules under opts — the exact work list, usable for
// progress accounting before or during a figure run.
func FigureCells(fig int, opts Options) ([]campaign.CellSpec, error) {
	structures, benches, err := figureStructures(fig)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(benches)
	p, err := opts.plan(opts.spec(structures))
	if err != nil {
		return nil, err
	}
	return p.CellSpecs(), nil
}

// Cell is one (chip, benchmark, structure) measurement: both
// methodologies plus occupancy, i.e. one bar group of Fig. 1 or Fig. 2.
type Cell struct {
	Chip      string
	Benchmark string
	Structure gpu.Structure
	// AVFFI is the fault-injection AVF with its confidence interval.
	AVFFI   float64
	AVFFILo float64
	AVFFIHi float64
	// AVFACE is the lifetime-analysis AVF.
	AVFACE float64
	// Occupancy is the time-weighted structure occupancy.
	Occupancy float64
	// Cycles is the golden execution length.
	Cycles int64
	// Injections is the realized FI sample size (an adaptive campaign
	// stops below the cap once its interval is tight enough).
	Injections int
	// Outcomes breaks the injections down by class.
	Outcomes [gpu.NumOutcomes]int
}

// cellOf converts one experiment cell into the legacy core shape.
func cellOf(c *experiment.Cell) *Cell {
	return &Cell{
		Chip:       c.Chip,
		Benchmark:  c.Benchmark,
		Structure:  c.Structure,
		AVFFI:      c.AVFFI,
		AVFFILo:    c.AVFFILo,
		AVFFIHi:    c.AVFFIHi,
		AVFACE:     c.AVFACE,
		Occupancy:  c.Occupancy,
		Cycles:     c.Cycles,
		Injections: c.Injections,
		Outcomes:   c.Outcomes,
	}
}

// MeasureCell runs both methodologies for one cell: a statistical FI
// campaign and a traced ACE run.
func MeasureCell(chip *chips.Chip, bench *workloads.Benchmark, st gpu.Structure, opts Options) (*Cell, error) {
	return MeasureCellContext(context.Background(), chip, bench, st, opts)
}

// MeasureCellContext is MeasureCell under a context: the FI campaign is
// served by the scheduler (cached cells cost nothing) and cancellation
// stops the campaign promptly. It is a single-cell spec run — the same
// code path as the figure drivers and the experiment endpoints.
func MeasureCellContext(ctx context.Context, chip *chips.Chip, bench *workloads.Benchmark, st gpu.Structure, opts Options) (*Cell, error) {
	opts = opts.withDefaults(workloads.All())
	p, err := opts.spec([]gpu.Structure{st}).CompileWith([]*chips.Chip{chip}, []*workloads.Benchmark{bench})
	if err != nil {
		return nil, err
	}
	r := &experiment.Runner{Scheduler: opts.Scheduler}
	res, err := r.RunPlan(ctx, p)
	if err != nil {
		return nil, err
	}
	return cellOf(res.Tables[0].Cells[0][0]), nil
}

// Figure is one AVF figure: cells indexed [benchmark][chip], plus the
// per-chip averages column group the paper appends.
type Figure struct {
	Structure  gpu.Structure
	ChipNames  []string
	BenchNames []string
	// Cells[b][c] corresponds to BenchNames[b] on ChipNames[c].
	Cells [][]*Cell
	// Averages[c] holds the across-benchmark mean cell for ChipNames[c].
	Averages []*Cell
}

// FigureOf converts one structure's table of an experiment result into
// the legacy Figure shape — the conversion behind the figure-driver
// shims, exported so tests (and callers still on the old types) can
// cross-check the two surfaces byte for byte.
func FigureOf(res *experiment.Result, st gpu.Structure) (*Figure, error) {
	tbl := res.Table(st)
	if tbl == nil {
		return nil, fmt.Errorf("core: experiment result has no %s table", st)
	}
	fig := &Figure{
		Structure:  st,
		ChipNames:  append([]string(nil), res.Chips...),
		BenchNames: append([]string(nil), res.Benchmarks...),
	}
	fig.Cells = make([][]*Cell, len(tbl.Cells))
	for bi, row := range tbl.Cells {
		fig.Cells[bi] = make([]*Cell, len(row))
		for ci, c := range row {
			fig.Cells[bi][ci] = cellOf(c)
		}
	}
	for _, avg := range tbl.Averages {
		fig.Averages = append(fig.Averages, cellOf(avg))
	}
	return fig, nil
}

// measureFigure runs one structure's full grid as a spec: the FI
// campaigns of all cells are scheduled as one batch (deduplicated and
// executed across the scheduler's worker pool), then the per-cell
// measurements assemble from the warm store.
func measureFigure(ctx context.Context, st gpu.Structure, defaultBenches []*workloads.Benchmark, opts Options) (*Figure, error) {
	opts = opts.withDefaults(defaultBenches)
	p, err := opts.plan(opts.spec([]gpu.Structure{st}))
	if err != nil {
		return nil, err
	}
	r := &experiment.Runner{Scheduler: opts.Scheduler}
	res, err := r.RunPlan(ctx, p)
	if err != nil {
		return nil, err
	}
	return FigureOf(res, st)
}

// FigureRegisterFile reproduces Fig. 1: register-file AVF by FI and ACE
// with occupancy, for all 10 benchmarks on all 4 chips.
func FigureRegisterFile(opts Options) (*Figure, error) {
	return FigureRegisterFileContext(context.Background(), opts)
}

// FigureRegisterFileContext is FigureRegisterFile under a context.
func FigureRegisterFileContext(ctx context.Context, opts Options) (*Figure, error) {
	return measureFigure(ctx, gpu.RegisterFile, workloads.All(), opts)
}

// FigureLocalMemory reproduces Fig. 2: local-memory AVF for the 7
// shared-memory benchmarks.
func FigureLocalMemory(opts Options) (*Figure, error) {
	return FigureLocalMemoryContext(context.Background(), opts)
}

// FigureLocalMemoryContext is FigureLocalMemory under a context.
func FigureLocalMemoryContext(ctx context.Context, opts Options) (*Figure, error) {
	return measureFigure(ctx, gpu.LocalMemory, workloads.LocalMemorySubset(), opts)
}

// EPFRow is one bar of Fig. 3.
type EPFRow struct {
	Chip      string
	Benchmark string
	// EPF is executions per failure; Seconds is one execution's time.
	EPF     float64
	Seconds float64
	Cycles  int64
	// RegAVF and LocalAVF are the FI AVFs entering FIT_GPU.
	RegAVF   float64
	LocalAVF float64
}

// FigureEPFData is the Fig. 3 dataset, rows ordered benchmark-major in
// the paper's chip order.
type FigureEPFData struct {
	ChipNames  []string
	BenchNames []string
	// Rows[b][c] corresponds to BenchNames[b] on ChipNames[c].
	Rows [][]*EPFRow
}

// EPFDataOf converts an experiment result's EPF table into the legacy
// Fig. 3 shape.
func EPFDataOf(res *experiment.Result) (*FigureEPFData, error) {
	if res.EPF == nil {
		return nil, errors.New("core: experiment result has no EPF table")
	}
	data := &FigureEPFData{
		ChipNames:  append([]string(nil), res.Chips...),
		BenchNames: append([]string(nil), res.Benchmarks...),
	}
	data.Rows = make([][]*EPFRow, len(res.EPF.Rows))
	for bi, row := range res.EPF.Rows {
		data.Rows[bi] = make([]*EPFRow, len(row))
		for ci, r := range row {
			data.Rows[bi][ci] = &EPFRow{
				Chip:      r.Chip,
				Benchmark: r.Benchmark,
				EPF:       r.EPF,
				Seconds:   r.Seconds,
				Cycles:    r.Cycles,
				RegAVF:    r.RegAVF,
				LocalAVF:  r.LocalAVF,
			}
		}
	}
	return data, nil
}

// FigureEPF reproduces Fig. 3: EPF for every benchmark on every chip,
// combining the FI AVFs of both structures with the performance model.
func FigureEPF(opts Options) (*FigureEPFData, error) {
	return FigureEPFContext(context.Background(), opts)
}

// FigureEPFContext is FigureEPF under a context. Both structures'
// campaigns go through the scheduler, so any cell already measured for
// Fig. 1 or Fig. 2 on the same scheduler is reused instead of re-run.
func FigureEPFContext(ctx context.Context, opts Options) (*FigureEPFData, error) {
	opts = opts.withDefaults(workloads.All())
	s := opts.spec([]gpu.Structure{gpu.RegisterFile, gpu.LocalMemory})
	s.Estimator = experiment.EstimatorFI
	s.Metrics = experiment.Metrics{EPF: true, RawFITPerMbit: opts.RawFITPerMbit}
	p, err := opts.plan(s)
	if err != nil {
		return nil, err
	}
	r := &experiment.Runner{Scheduler: opts.Scheduler}
	res, err := r.RunPlan(ctx, p)
	if err != nil {
		return nil, err
	}
	return EPFDataOf(res)
}
