// Package core is the reproduction's top-level reliability-evaluation
// framework — the equivalent of the paper's GUFI+SIFI pair plus the
// experiment drivers that produce its three figures. It composes the
// simulators (via internal/devices), the benchmark suite, the
// fault-injection engine and the ACE analysis into per-(chip, benchmark,
// structure) measurement cells and whole-figure experiments.
//
// All fault-injection campaigns are routed through a campaign.Scheduler
// (Options.Scheduler), which deduplicates identical cells, bounds
// concurrency and caches results: running FigureRegisterFile,
// FigureLocalMemory and FigureEPF against one shared scheduler executes
// every unique (chip, benchmark, structure) campaign exactly once —
// Fig. 3 reuses the cells Figs. 1 and 2 already measured.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ace"
	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// Options configures an experiment.
type Options struct {
	// Injections per fault-injection campaign (paper default 2,000).
	// With Margin set this is the adaptive cap, not an exact count.
	Injections int
	// Seed makes every campaign reproducible.
	Seed uint64
	// Workers bounds each campaign's parallel simulations.
	Workers int
	// Margin, when > 0, runs every campaign adaptively: injections stop
	// once the AVF interval half-width reaches Margin at Confidence,
	// capped at Injections.
	Margin float64
	// Chips defaults to the paper's four evaluated GPUs.
	Chips []*chips.Chip
	// Benchmarks defaults to the figure-appropriate suite.
	Benchmarks []*workloads.Benchmark
	// RawFITPerMbit defaults to metrics.DefaultRawFITPerMbit.
	RawFITPerMbit float64
	// Confidence level for AVF intervals (default 0.99, as the paper).
	Confidence float64
	// Scheduler executes and caches the FI campaigns. Sharing one
	// scheduler across figure calls lets later figures reuse earlier
	// cells (Fig. 3 gets Figs. 1 and 2 for free). A private scheduler is
	// created when nil.
	Scheduler *campaign.Scheduler
	// Executor, used only when Scheduler is nil, routes the private
	// scheduler's campaign execution through a custom tier — e.g. a
	// campaign.RemoteExecutor backed by a fiworker fleet. Results are
	// byte-identical to local execution by the determinism contract.
	Executor campaign.Executor
}

func (o Options) withDefaults(benches []*workloads.Benchmark) Options {
	if o.Injections <= 0 {
		o.Injections = finject.DefaultInjections
	}
	if len(o.Chips) == 0 {
		o.Chips = chips.Evaluated()
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = benches
	}
	if o.RawFITPerMbit <= 0 {
		o.RawFITPerMbit = metrics.DefaultRawFITPerMbit
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.99
	}
	if o.Scheduler == nil {
		o.Scheduler = campaign.New(campaign.Config{CampaignWorkers: o.Workers, Executor: o.Executor})
	}
	return o
}

// campaignFor builds the canonical campaign of one cell; every driver
// goes through this so equal cells always carry equal seeds and hit the
// same store key.
func (o Options) campaignFor(chip *chips.Chip, bench *workloads.Benchmark, st gpu.Structure) finject.Campaign {
	return finject.Campaign{
		Chip:       chip,
		Benchmark:  bench,
		Structure:  st,
		Injections: o.Injections,
		Seed:       cellSeed(o.Seed, chip.Name, bench.Name, st),
		Policy: finject.Policy{
			Workers:    o.Workers,
			Margin:     o.Margin,
			Confidence: o.Confidence,
		},
	}
}

// FigureCells returns the normalized specs of every campaign cell figure
// fig (1, 2 or 3) schedules under opts — the exact work list, usable for
// progress accounting before or during a figure run.
func FigureCells(fig int, opts Options) ([]campaign.CellSpec, error) {
	var structures []gpu.Structure
	switch fig {
	case 1:
		opts = opts.withDefaults(workloads.All())
		structures = []gpu.Structure{gpu.RegisterFile}
	case 2:
		opts = opts.withDefaults(workloads.LocalMemorySubset())
		structures = []gpu.Structure{gpu.LocalMemory}
	case 3:
		opts = opts.withDefaults(workloads.All())
		structures = []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory}
	default:
		return nil, fmt.Errorf("core: unknown figure %d (want 1, 2 or 3)", fig)
	}
	var specs []campaign.CellSpec
	for _, b := range opts.Benchmarks {
		for _, c := range opts.Chips {
			for _, st := range structures {
				specs = append(specs, campaign.SpecOf(opts.campaignFor(c, b, st)))
			}
		}
	}
	return specs, nil
}

// Cell is one (chip, benchmark, structure) measurement: both
// methodologies plus occupancy, i.e. one bar group of Fig. 1 or Fig. 2.
type Cell struct {
	Chip      string
	Benchmark string
	Structure gpu.Structure
	// AVFFI is the fault-injection AVF with its confidence interval.
	AVFFI   float64
	AVFFILo float64
	AVFFIHi float64
	// AVFACE is the lifetime-analysis AVF.
	AVFACE float64
	// Occupancy is the time-weighted structure occupancy.
	Occupancy float64
	// Cycles is the golden execution length.
	Cycles int64
	// Injections is the realized FI sample size (an adaptive campaign
	// stops below the cap once its interval is tight enough).
	Injections int
	// Outcomes breaks the injections down by class.
	Outcomes [gpu.NumOutcomes]int
}

// cellSeed derives a distinct campaign seed per cell so that cells don't
// share fault samples.
func cellSeed(base uint64, chip, bench string, st gpu.Structure) uint64 {
	h := base ^ 0xcbf29ce484222325
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	mix(chip)
	mix(bench)
	h = (h ^ uint64(st)) * 0x100000001b3
	return h
}

// MeasureCell runs both methodologies for one cell: a statistical FI
// campaign and a traced ACE run.
func MeasureCell(chip *chips.Chip, bench *workloads.Benchmark, st gpu.Structure, opts Options) (*Cell, error) {
	return MeasureCellContext(context.Background(), chip, bench, st, opts)
}

// MeasureCellContext is MeasureCell under a context: the FI campaign is
// served by the scheduler (cached cells cost nothing) and cancellation
// stops the campaign promptly.
func MeasureCellContext(ctx context.Context, chip *chips.Chip, bench *workloads.Benchmark, st gpu.Structure, opts Options) (*Cell, error) {
	opts = opts.withDefaults(workloads.All())
	res, err := opts.Scheduler.Run(ctx, opts.campaignFor(chip, bench, st))
	if err != nil {
		return nil, fmt.Errorf("core: FI campaign %s/%s/%s: %w", chip.Name, bench.Name, st, err)
	}
	d, err := devices.New(chip)
	if err != nil {
		return nil, err
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		return nil, err
	}
	regACE, localACE, runStats, err := ace.Measure(d, hp)
	if err != nil {
		return nil, fmt.Errorf("core: ACE run %s/%s: %w", chip.Name, bench.Name, err)
	}
	aceAVF := regACE
	if st == gpu.LocalMemory {
		aceAVF = localACE
	}
	lo, hi, err := res.AVFInterval(opts.Confidence)
	if err != nil {
		return nil, err
	}
	return &Cell{
		Chip:       chip.Name,
		Benchmark:  bench.Name,
		Structure:  st,
		AVFFI:      res.AVF(),
		AVFFILo:    lo,
		AVFFIHi:    hi,
		AVFACE:     aceAVF,
		Occupancy:  res.Occupancy,
		Cycles:     runStats.Cycles,
		Injections: res.Injections,
		Outcomes:   res.Outcomes,
	}, nil
}

// Figure is one AVF figure: cells indexed [benchmark][chip], plus the
// per-chip averages column group the paper appends.
type Figure struct {
	Structure  gpu.Structure
	ChipNames  []string
	BenchNames []string
	// Cells[b][c] corresponds to BenchNames[b] on ChipNames[c].
	Cells [][]*Cell
	// Averages[c] holds the across-benchmark mean cell for ChipNames[c].
	Averages []*Cell
}

// measureFigure runs the full grid for one structure: the FI campaigns of
// all cells are scheduled as one batch (deduplicated and executed across
// the scheduler's worker pool), then the per-cell measurements assemble
// from the warm store.
func measureFigure(ctx context.Context, st gpu.Structure, defaultBenches []*workloads.Benchmark, opts Options) (*Figure, error) {
	opts = opts.withDefaults(defaultBenches)
	if len(opts.Chips) == 0 || len(opts.Benchmarks) == 0 {
		return nil, errors.New("core: empty chip or benchmark set")
	}
	var batch []finject.Campaign
	for _, b := range opts.Benchmarks {
		for _, c := range opts.Chips {
			batch = append(batch, opts.campaignFor(c, b, st))
		}
	}
	if _, err := opts.Scheduler.RunBatch(ctx, batch, nil); err != nil {
		return nil, err
	}
	fig := &Figure{Structure: st}
	for _, c := range opts.Chips {
		fig.ChipNames = append(fig.ChipNames, c.Name)
	}
	for _, b := range opts.Benchmarks {
		fig.BenchNames = append(fig.BenchNames, b.Name)
	}
	fig.Cells = make([][]*Cell, len(opts.Benchmarks))
	for bi, b := range opts.Benchmarks {
		fig.Cells[bi] = make([]*Cell, len(opts.Chips))
		for ci, c := range opts.Chips {
			cell, err := MeasureCellContext(ctx, c, b, st, opts)
			if err != nil {
				return nil, err
			}
			fig.Cells[bi][ci] = cell
		}
	}
	// Across-benchmark averages per chip ("average" group of the figure).
	for ci, c := range opts.Chips {
		avg := &Cell{Chip: c.Name, Benchmark: "average", Structure: st}
		for bi := range opts.Benchmarks {
			cell := fig.Cells[bi][ci]
			avg.AVFFI += cell.AVFFI
			avg.AVFACE += cell.AVFACE
			avg.Occupancy += cell.Occupancy
		}
		n := float64(len(opts.Benchmarks))
		avg.AVFFI /= n
		avg.AVFACE /= n
		avg.Occupancy /= n
		fig.Averages = append(fig.Averages, avg)
	}
	return fig, nil
}

// FigureRegisterFile reproduces Fig. 1: register-file AVF by FI and ACE
// with occupancy, for all 10 benchmarks on all 4 chips.
func FigureRegisterFile(opts Options) (*Figure, error) {
	return FigureRegisterFileContext(context.Background(), opts)
}

// FigureRegisterFileContext is FigureRegisterFile under a context.
func FigureRegisterFileContext(ctx context.Context, opts Options) (*Figure, error) {
	return measureFigure(ctx, gpu.RegisterFile, workloads.All(), opts)
}

// FigureLocalMemory reproduces Fig. 2: local-memory AVF for the 7
// shared-memory benchmarks.
func FigureLocalMemory(opts Options) (*Figure, error) {
	return FigureLocalMemoryContext(context.Background(), opts)
}

// FigureLocalMemoryContext is FigureLocalMemory under a context.
func FigureLocalMemoryContext(ctx context.Context, opts Options) (*Figure, error) {
	return measureFigure(ctx, gpu.LocalMemory, workloads.LocalMemorySubset(), opts)
}

// EPFRow is one bar of Fig. 3.
type EPFRow struct {
	Chip      string
	Benchmark string
	// EPF is executions per failure; Seconds is one execution's time.
	EPF     float64
	Seconds float64
	Cycles  int64
	// RegAVF and LocalAVF are the FI AVFs entering FIT_GPU.
	RegAVF   float64
	LocalAVF float64
}

// FigureEPFData is the Fig. 3 dataset, rows ordered benchmark-major in
// the paper's chip order.
type FigureEPFData struct {
	ChipNames  []string
	BenchNames []string
	// Rows[b][c] corresponds to BenchNames[b] on ChipNames[c].
	Rows [][]*EPFRow
}

// FigureEPF reproduces Fig. 3: EPF for every benchmark on every chip,
// combining the FI AVFs of both structures with the performance model.
func FigureEPF(opts Options) (*FigureEPFData, error) {
	return FigureEPFContext(context.Background(), opts)
}

// FigureEPFContext is FigureEPF under a context. Both structures'
// campaigns go through the scheduler, so any cell already measured for
// Fig. 1 or Fig. 2 on the same scheduler is reused instead of re-run.
func FigureEPFContext(ctx context.Context, opts Options) (*FigureEPFData, error) {
	opts = opts.withDefaults(workloads.All())
	var batch []finject.Campaign
	for _, b := range opts.Benchmarks {
		for _, c := range opts.Chips {
			for _, st := range []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory} {
				batch = append(batch, opts.campaignFor(c, b, st))
			}
		}
	}
	if _, err := opts.Scheduler.RunBatch(ctx, batch, nil); err != nil {
		return nil, err
	}
	data := &FigureEPFData{}
	for _, c := range opts.Chips {
		data.ChipNames = append(data.ChipNames, c.Name)
	}
	for _, b := range opts.Benchmarks {
		data.BenchNames = append(data.BenchNames, b.Name)
	}
	data.Rows = make([][]*EPFRow, len(opts.Benchmarks))
	for bi, b := range opts.Benchmarks {
		data.Rows[bi] = make([]*EPFRow, len(opts.Chips))
		for ci, c := range opts.Chips {
			row, err := measureEPF(ctx, c, b, opts)
			if err != nil {
				return nil, err
			}
			data.Rows[bi][ci] = row
		}
	}
	return data, nil
}

// measureEPF combines both structures' FI campaigns of one (chip,
// benchmark) into an EPF value. The campaigns are served by the
// scheduler's store, so cells shared with Figs. 1 and 2 are never re-run.
func measureEPF(ctx context.Context, chip *chips.Chip, bench *workloads.Benchmark, opts Options) (*EPFRow, error) {
	avfs := make(map[gpu.Structure]*finject.Result, 2)
	for _, st := range []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory} {
		res, err := opts.Scheduler.Run(ctx, opts.campaignFor(chip, bench, st))
		if err != nil {
			return nil, fmt.Errorf("core: EPF campaign %s/%s/%s: %w", chip.Name, bench.Name, st, err)
		}
		avfs[st] = res
	}
	cycles := avfs[gpu.RegisterFile].GoldenStats.Cycles
	secs, err := metrics.ExecSeconds(cycles, chip.ClockGHz)
	if err != nil {
		return nil, err
	}
	epf, err := metrics.EPF(cycles, chip.ClockGHz, opts.RawFITPerMbit, []metrics.StructureAVF{
		{Structure: gpu.RegisterFile, AVF: avfs[gpu.RegisterFile].AVF(), Bits: chip.StructBits(gpu.RegisterFile)},
		{Structure: gpu.LocalMemory, AVF: avfs[gpu.LocalMemory].AVF(), Bits: chip.StructBits(gpu.LocalMemory)},
	})
	if err != nil {
		// All-zero AVFs with small samples: report infinite EPF as 0 with
		// the condition preserved in the row for the renderer.
		epf = 0
	}
	return &EPFRow{
		Chip:      chip.Name,
		Benchmark: bench.Name,
		EPF:       epf,
		Seconds:   secs,
		Cycles:    cycles,
		RegAVF:    avfs[gpu.RegisterFile].AVF(),
		LocalAVF:  avfs[gpu.LocalMemory].AVF(),
	}, nil
}
