package core

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// TestOptionsExecutorRoutesExecution proves Options.Executor is the
// figure drivers' entry into the distributed tier: cells flow through
// the provided executor, not a private local one.
func TestOptionsExecutorRoutesExecution(t *testing.T) {
	exec := campaign.NewLocalExecutor()
	chip := chips.MiniNVIDIA()
	bench, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := MeasureCell(chip, bench, gpu.RegisterFile, Options{
		Injections: 20, Seed: 4, Executor: exec,
		Chips: []*chips.Chip{chip}, Benchmarks: []*workloads.Benchmark{bench},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Injections != 20 {
		t.Fatalf("cell %+v", cell)
	}
	if exec.GoldenRuns() != 1 {
		t.Fatalf("custom executor ran %d goldens, want 1 (not used?)", exec.GoldenRuns())
	}
}

// TestFigureThroughRemoteTierMatchesLocal runs a small figure with the
// campaigns executed by an in-process "fleet" draining a lease queue and
// compares the figure JSON byte-for-byte against the default local path —
// the determinism-across-the-wire contract at the figure level.
func TestFigureThroughRemoteTierMatchesLocal(t *testing.T) {
	chip := chips.MiniNVIDIA()
	bench1, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	bench2, err := workloads.ByName("transpose")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Injections: 30, Seed: 5,
		Chips:      []*chips.Chip{chip},
		Benchmarks: []*workloads.Benchmark{bench1, bench2},
	}

	local, err := FigureRegisterFile(opts)
	if err != nil {
		t.Fatal(err)
	}

	q := campaign.NewLeaseQueue(time.Minute)
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 2; i++ {
		go drainForTest(q, stop)
	}
	remoteOpts := opts
	remoteOpts.Executor = campaign.NewRemoteExecutor(q)
	remote, err := FigureRegisterFile(remoteOpts)
	if err != nil {
		t.Fatal(err)
	}

	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	if string(localJSON) != string(remoteJSON) {
		t.Fatalf("remote figure differs from local:\nlocal:  %s\nremote: %s", localJSON, remoteJSON)
	}
}

// drainForTest is a minimal in-process worker loop.
func drainForTest(q *campaign.LeaseQueue, stop chan struct{}) {
	exec := campaign.NewLocalExecutor()
	for {
		select {
		case <-stop:
			return
		default:
		}
		leases := q.Lease("core-test-worker", 1)
		if len(leases) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		for _, l := range leases {
			spec := l.Task.Spec.Normalize()
			cfg := l.Task.Policy
			cfg.Workers = 1
			res, err := exec.Execute(context.Background(), campaign.Request{Spec: spec, Key: spec.Key(), Policy: cfg.Policy(spec.CheckpointPolicy())})
			msg := ""
			if err != nil {
				msg, res = err.Error(), nil
			}
			q.Complete(l.ID, res, msg)
		}
	}
}
